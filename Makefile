GO ?= go
GOFMT ?= gofmt

.PHONY: check vet fmtcheck build test race bench benchsmoke cachesmoke

## check: the pre-commit gate — vet, gofmt, build, the full suite under
## -race, a single-iteration pass over every benchmark (including the obs
## overhead guard), and a warm-cache smoke run of the persistent store.
check: vet fmtcheck build race benchsmoke cachesmoke

vet:
	$(GO) vet ./...

## fmtcheck: fail if any file needs gofmt (and list the offenders).
fmtcheck:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one testing.B benchmark per paper table/figure, single iteration.
bench:
	$(GO) test -bench=. -benchtime=1x .

## benchsmoke: compile-and-run every benchmark once (no timing fidelity) —
## catches bit-rotted benchmarks and asserts BenchmarkObsOverhead's
## disabled path still runs.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/...
	$(GO) test -run='^$$' -bench=BenchmarkFig8 -benchtime=1x .

## cachesmoke: the persistent artifact store end to end — run the same
## experiment twice into a fresh cache dir; the second run must be served
## from the store (store.hit > 0 in the metrics dump) and print
## byte-identical results (the wall-clock "completed in" line excluded).
cachesmoke:
	@dir="$$(mktemp -d)"; set -e; \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/experiments -run tableII -scale small \
		-bench 505.mcf_r,503.bwaves_r -cache-dir "$$dir/cache" -metrics \
		>"$$dir/cold.txt" 2>"$$dir/cold.metrics"; \
	$(GO) run ./cmd/experiments -run tableII -scale small \
		-bench 505.mcf_r,503.bwaves_r -cache-dir "$$dir/cache" -metrics \
		>"$$dir/warm.txt" 2>"$$dir/warm.metrics"; \
	grep -v '^completed in' "$$dir/cold.txt" >"$$dir/cold.cmp"; \
	grep -v '^completed in' "$$dir/warm.txt" >"$$dir/warm.cmp"; \
	cmp "$$dir/cold.cmp" "$$dir/warm.cmp"; \
	grep -A4 '"store.hit"' "$$dir/warm.metrics" | grep -q '"value"'; \
	echo "cachesmoke: warm run byte-identical and served from the store"
