GO ?= go

.PHONY: check vet build test race bench benchsmoke

## check: the pre-commit gate — vet, build, the full suite under -race, and
## a single-iteration pass over every benchmark (including the obs overhead
## guard), so a broken or newly expensive benchmark fails the gate.
check: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one testing.B benchmark per paper table/figure, single iteration.
bench:
	$(GO) test -bench=. -benchtime=1x .

## benchsmoke: compile-and-run every benchmark once (no timing fidelity) —
## catches bit-rotted benchmarks and asserts BenchmarkObsOverhead's
## disabled path still runs.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/...
	$(GO) test -run='^$$' -bench=BenchmarkFig8 -benchtime=1x .
