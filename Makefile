GO ?= go

.PHONY: check vet build test race bench

## check: the pre-commit gate — vet, build, then the full suite under -race.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: one testing.B benchmark per paper table/figure, single iteration.
bench:
	$(GO) test -bench=. -benchtime=1x .
