GO ?= go
GOFMT ?= gofmt

.PHONY: check vet lint fmtcheck build test race racesmoke bench benchsmoke benchdiff benchrecord cachesmoke shootoutsmoke servesmoke

## check: the pre-commit gate — gofmt, vet, the project's own static
## analysis (speclint), build, the full test suite, the determinism tests
## under -race, a single-iteration pass over every benchmark (including the
## obs overhead guard), a warm-cache smoke run of the persistent store, a
## cross-selector shoot-out smoke, the daemon smoke (dedup, streaming,
## byte-identity, SIGTERM drain), and the performance-regression gate
## against the committed BENCH_*.json baseline (skipped on hosts without
## one).
check: fmtcheck vet lint build test racesmoke benchsmoke cachesmoke shootoutsmoke servesmoke benchdiff

vet:
	$(GO) vet ./...

## lint: the project-specific analyzers (see DESIGN.md §9, §14) —
## determinism, cancellation, cache-key and concurrency invariants the
## generic tools cannot see. -time prints the per-analyzer wall-time
## breakdown so a slow analyzer shows up in CI logs, not in folklore.
lint:
	$(GO) run ./cmd/speclint -time ./...

## fmtcheck: fail if any file needs gofmt (and list the offenders).
fmtcheck:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## racesmoke: the determinism and resume tests under the race detector —
## the exact tests whose guarantees the parallel kernels could quietly
## break. Far faster than `make race`; the full sweep remains available.
racesmoke:
	$(GO) test -race -run 'TestRunIdenticalAcrossWorkerCounts|TestRunIdenticalAcrossRepeats|TestBestKIdenticalAcrossWorkerCounts|TestBestKWeightedIdenticalAcrossWorkerCounts|TestBoundedMatchesPlain|TestBestKBoundedMatchesPlain' ./internal/kmeans
	$(GO) test -race -run 'TestFiguresIdenticalAcrossWorkerCounts|TestResumeAfterCancelledRun|TestCorruptCacheEntriesDegradeToRecompute' ./internal/experiments
	$(GO) test -race -run 'TestReplayerReusedMatchesFresh|TestReplaySuiteMatchesReplayAll|TestReplayAllParallelMatchesSequential' ./internal/pinball
	$(GO) test -race -run 'TestForEachSharded|TestGroupDoCancelledComputerDoesNotPoisonWaiters|TestQueue' ./internal/sched
	$(GO) test -race -run 'TestJSONLSinkConcurrentJobsDoNotTearLines|TestScopedSinksReceiveOnlyTheirJob|TestHistogramConcurrentObserve' ./internal/obs
	$(GO) test -race -run 'TestCollectorRingAndProbes|TestExpositionParsesAndIsCoherent' ./internal/telemetry
	$(GO) test -race -run 'TestLoadSmoke|TestDedupIdenticalConfigs|TestAdmissionAndLoadShedding|TestTraceIDPropagation|TestStatsHistoryEndpoint' ./internal/serve
	$(GO) test -race -run 'TestSelectorDeterminism|TestSelectorInvariants' ./internal/selector

## bench: one testing.B benchmark per paper table/figure, single iteration.
bench:
	$(GO) test -bench=. -benchtime=1x .

## benchsmoke: compile-and-run every benchmark once (no timing fidelity) —
## catches bit-rotted benchmarks and asserts BenchmarkObsOverhead's
## disabled path still runs. The benchmark sets live in internal/perf
## (perf.Targets); cmd/specbench is the single driver.
benchsmoke:
	$(GO) run ./cmd/specbench smoke

## benchdiff: the performance-regression gate (DESIGN.md §10) — re-run the
## recorded benchmark sets and compare against the committed
## BENCH_<host-class>.json with noise-tolerant thresholds. Fails on
## regression; passes trivially on hosts with no committed baseline.
benchdiff:
	$(GO) run ./cmd/specbench diff -skip-missing

## benchrecord: refresh this host class's BENCH_*.json baseline. Run on an
## otherwise idle machine and commit the result together with the change
## that justified it.
benchrecord:
	$(GO) run ./cmd/specbench record

## shootoutsmoke: the cross-selector harness end to end — one benchmark at
## small scale, two repeated subsamples; every registered backend must show
## up in the report with its confidence-interval columns.
shootoutsmoke:
	@out="$$($(GO) run ./cmd/experiments -run shootout -scale small \
		-bench 505.mcf_r -repeats 2)"; set -e; \
	for s in simpoint stratified rankedset; do \
		echo "$$out" | grep -q "$$s" || { \
			echo "shootoutsmoke: backend $$s missing from report"; \
			echo "$$out"; exit 1; }; \
	done; \
	echo "$$out" | grep -q '±' || { \
		echo "shootoutsmoke: no confidence intervals in report"; \
		echo "$$out"; exit 1; }; \
	echo "shootoutsmoke: all backends reported with CIs"

## servesmoke: the daemon end to end — start specsimd on an ephemeral port,
## submit two identical jobs plus one distinct job, and assert: the
## duplicate deduplicates to the first job (no third job appears, the
## serve.dedup counter fires), the events feed streams parseable JSONL
## progress, the result bytes are identical to `cmd/experiments -json` for
## the same configuration computed in a separate cache, the /metrics
## exposition shows the per-route request counters and serve_submit
## advancing across the run (with latency buckets present), and SIGTERM
## drains the daemon cleanly (exit 0).
servesmoke:
	@dir="$$(mktemp -d)"; set -e; \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/specsimd" ./cmd/specsimd; \
	"$$dir/specsimd" -addr 127.0.0.1:0 -cache-dir "$$dir/cache" -metrics \
		2>"$$dir/daemon.log" & pid=$$!; \
	addr=""; for i in $$(seq 1 100); do \
		addr="$$(sed -n 's/^specsimd: listening on \([0-9.:]*\).*/\1/p' "$$dir/daemon.log")"; \
		[ -n "$$addr" ] && break; sleep 0.1; done; \
	[ -n "$$addr" ] || { echo "servesmoke: daemon did not start"; cat "$$dir/daemon.log"; kill $$pid; exit 1; }; \
	curl -fsS "$$addr/metrics" >"$$dir/metrics0.txt"; \
	body='{"run":"tableII","scale":"small","benchmarks":["505.mcf_r","541.leela_r"]}'; \
	curl -fsS -d "$$body" "$$addr/v1/jobs" >"$$dir/sub1.json"; \
	curl -fsS -d "$$body" "$$addr/v1/jobs" >"$$dir/sub2.json"; \
	curl -fsS -d '{"run":"tableIII","scale":"small"}' "$$addr/v1/jobs" >"$$dir/sub3.json"; \
	id1="$$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$$dir/sub1.json")"; \
	id2="$$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$$dir/sub2.json")"; \
	[ "$$id1" = "$$id2" ] || { echo "servesmoke: identical submissions got distinct jobs ($$id1 vs $$id2)"; exit 1; }; \
	grep -q '"dedup": true' "$$dir/sub2.json" || { echo "servesmoke: duplicate not marked dedup"; cat "$$dir/sub2.json"; exit 1; }; \
	curl -fsS "$$addr/v1/jobs/$$id1/events" >"$$dir/events.jsonl"; \
	grep -q '"stage":"analyze"' "$$dir/events.jsonl" || { echo "servesmoke: no analyze progress in events"; cat "$$dir/events.jsonl"; exit 1; }; \
	curl -fsS "$$addr/v1/jobs" >"$$dir/jobs.json"; \
	n="$$(grep -c '"id": ' "$$dir/jobs.json")"; \
	[ "$$n" = "2" ] || { echo "servesmoke: expected 2 jobs after dedup, saw $$n"; exit 1; }; \
	for i in $$(seq 1 300); do \
		curl -fsS "$$addr/v1/jobs/$$id1" | grep -q '"state": "done"' && break; sleep 0.1; done; \
	curl -fsS "$$addr/v1/jobs/$$id1/result" >"$$dir/daemon.json"; \
	$(GO) run ./cmd/experiments -run tableII -scale small \
		-bench 505.mcf_r,541.leela_r -cache-dir "$$dir/cache2" \
		-json "$$dir/cli.json" >/dev/null; \
	cmp "$$dir/daemon.json" "$$dir/cli.json" || { echo "servesmoke: daemon result differs from cmd/experiments"; exit 1; }; \
	curl -fsS "$$addr/metrics" >"$$dir/metrics1.txt"; \
	series='serve_http_requests{route="/v1/jobs",method="POST",code="2xx"}'; \
	r0="$$(grep -F "$$series " "$$dir/metrics0.txt" | awk '{print $$2}')"; \
	r1="$$(grep -F "$$series " "$$dir/metrics1.txt" | awk '{print $$2}')"; \
	[ "$${r1:-0}" -gt "$${r0:-0}" ] || { echo "servesmoke: $$series did not advance ($$r0 -> $$r1)"; exit 1; }; \
	s0="$$(grep '^serve_submit ' "$$dir/metrics0.txt" | awk '{print $$2}')"; \
	s1="$$(grep '^serve_submit ' "$$dir/metrics1.txt" | awk '{print $$2}')"; \
	[ "$${s1:-0}" -gt "$${s0:-0}" ] || { echo "servesmoke: serve_submit did not advance ($$s0 -> $$s1)"; exit 1; }; \
	grep -F 'serve_http_request_seconds_bucket' "$$dir/metrics1.txt" | grep -qF 'le="+Inf"' \
		|| { echo "servesmoke: no +Inf latency bucket in exposition"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "servesmoke: daemon exited non-zero after SIGTERM"; cat "$$dir/daemon.log"; exit 1; }; \
	grep -q 'drained; bye' "$$dir/daemon.log" || { echo "servesmoke: no clean drain"; cat "$$dir/daemon.log"; exit 1; }; \
	grep -A4 '"serve.dedup"' "$$dir/daemon.log" | grep -q '"value"' || { echo "servesmoke: serve.dedup counter never fired"; exit 1; }; \
	echo "servesmoke: dedup, streaming, byte-identity, metrics scrape and drain all verified"

## cachesmoke: the persistent artifact store end to end — run the same
## experiment twice into a fresh cache dir; the second run must be served
## from the store (store.hit > 0 in the metrics dump) and print
## byte-identical results (the wall-clock "completed in" line excluded).
cachesmoke:
	@dir="$$(mktemp -d)"; set -e; \
	trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/experiments -run tableII -scale small \
		-bench 505.mcf_r,503.bwaves_r -cache-dir "$$dir/cache" -metrics \
		>"$$dir/cold.txt" 2>"$$dir/cold.metrics"; \
	$(GO) run ./cmd/experiments -run tableII -scale small \
		-bench 505.mcf_r,503.bwaves_r -cache-dir "$$dir/cache" -metrics \
		>"$$dir/warm.txt" 2>"$$dir/warm.metrics"; \
	grep -v '^completed in' "$$dir/cold.txt" >"$$dir/cold.cmp"; \
	grep -v '^completed in' "$$dir/warm.txt" >"$$dir/warm.cmp"; \
	cmp "$$dir/cold.cmp" "$$dir/warm.cmp"; \
	grep -A4 '"store.hit"' "$$dir/warm.metrics" | grep -q '"value"'; \
	echo "cachesmoke: warm run byte-identical and served from the store"
