// Package specsampling reproduces "Efficacy of Statistical Sampling on
// Contemporary Workloads: The Case of SPEC CPU2017" (Singh & Awasthi,
// IISWC 2019) as a pure-Go system: a synthetic SPEC CPU2017 workload suite,
// a Pin-like instrumentation framework, PinPlay-style pinball checkpoints,
// the SimPoint phase-analysis pipeline, an allcache-style cache simulator,
// a Sniper-style timing model and a native-hardware/perf model.
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B benchmark per table and figure of the paper's evaluation. The
// implementation lives under internal/ (see DESIGN.md for the system
// inventory) and the runnable entry points under cmd/ and examples/.
package specsampling
