package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces context threading: the pipeline's cancellation story
// (deterministic SIGINT aborts, resumable runs) only works if the one root
// context minted in main flows through every stage. A context.Background()
// or context.TODO() minted mid-pipeline silently detaches everything below
// it from cancellation — the run keeps computing after Ctrl-C and the
// "resume from interrupt" guarantee quietly dies. The only place a root
// context may be created is func main of a command (and tests, which this
// driver never loads).
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context is threaded from main, never minted mid-pipeline",
	Run:  runCtxflow,
}

func runCtxflow(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Pkg.Name == "main" && fd.Name.Name == "main" && fd.Recv == nil {
				continue // the entry point is where the root context is born
			}
			hasCtx := funcHasCtxParam(info, fd.Type)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && funcHasCtxParam(info, lit.Type) {
					// A closure with its own ctx parameter is a threading
					// boundary; check it as such.
					checkCtxMints(pass, lit.Body, fd.Name.Name, true)
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				reportCtxMint(pass, call, fd.Name.Name, hasCtx)
				return true
			})
		}
	}
}

// checkCtxMints walks a closure body that declares its own ctx parameter.
func checkCtxMints(pass *Pass, body *ast.BlockStmt, owner string, hasCtx bool) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && funcHasCtxParam(info, lit.Type) {
			checkCtxMints(pass, lit.Body, owner, true)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			reportCtxMint(pass, call, owner, hasCtx)
		}
		return true
	})
}

// reportCtxMint flags a context.Background()/context.TODO() call.
func reportCtxMint(pass *Pass, call *ast.CallExpr, owner string, hasCtx bool) {
	info := pass.Pkg.Info
	name := ""
	switch {
	case isPkgCall(info, call, "context", "Background"):
		name = "Background"
	case isPkgCall(info, call, "context", "TODO"):
		name = "TODO"
	default:
		return
	}
	if hasCtx {
		pass.Reportf(call.Pos(),
			"%s already receives a context.Context; pass it instead of minting context.%s (detaches the call tree from cancellation)",
			owner, name)
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s minted outside func main; accept a ctx parameter and thread it from the entry point",
		name)
}

// funcHasCtxParam reports whether the function type declares a
// context.Context parameter.
func funcHasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}
