package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// Metricname enforces the metric naming convention at every obs registry
// call site. Metrics are flat strings interned at init time across many
// packages, so nothing structural stops "Serve.Requests" and
// "serve.requests" coexisting as two different series; the Prometheus
// exposition, the stats-history flattener and the Makefile smokes all key
// on exact names. The convention is subsystem.noun or subsystem.noun.verb:
// two or three lowercase dotted segments of [a-z][a-z0-9_]*. A label
// suffix in braces (serve.http.requests{route="/v1/jobs"}) is stripped
// before the family name is checked; names built at runtime (fmt.Sprintf,
// concatenation with variables) are not constant-folded and are skipped —
// the convention is checked where the family is spelled out.
var Metricname = &Analyzer{
	Name: "metricname",
	Doc:  "obs metric names are lowercase dotted subsystem.noun[.verb]",
	Run:  runMetricname,
}

// metricNameRe is the allowed family shape: 2 or 3 dotted segments, each
// starting with a letter, lowercase throughout.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,2}$`)

// metricGetters are the obs registry entry points that intern a name.
var metricGetters = map[string]bool{
	"GetCounter":   true,
	"GetGauge":     true,
	"GetHistogram": true,
}

func runMetricname(pass *Pass) {
	info := pass.Pkg.Info
	pass.Pkg.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !metricGetters[fn.Name()] || fn.Pkg() == nil || pathTail(fn.Pkg().Path()) != "obs" {
			return true
		}
		tv, ok := info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true // runtime-built name; nothing to check statically
		}
		name := constant.StringVal(tv.Value)
		family := name
		// A labelled series checks its family; the label block itself is the
		// exposition layer's concern.
		if i := strings.IndexByte(family, '{'); i >= 0 {
			if !strings.HasSuffix(family, "}") {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q has an unterminated label block; want family{k=\"v\",...}", name)
				return true
			}
			family = family[:i]
		}
		if !metricNameRe.MatchString(family) {
			pass.Reportf(call.Args[0].Pos(),
				"metric name %q is not subsystem.noun[.verb] (2-3 lowercase dotted segments of [a-z][a-z0-9_]*)", name)
		}
		return true
	})
}
