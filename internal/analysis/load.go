// Package loading without golang.org/x/tools: the Loader resolves import
// paths to directories itself (module-prefixed paths map into the module
// tree, everything else into GOROOT), selects files with go/build, parses
// them with go/parser and type-checks with go/types. Packages named on the
// command line get full syntax, comments and types.Info; dependencies
// (including the standard library) are type-checked from source with
// IgnoreFuncBodies, which keeps a whole-module load well under a few
// seconds with zero external tooling.

package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader loads and type-checks packages of one module.
type Loader struct {
	fset      *token.FileSet
	buildCtx  build.Context
	moduleDir string
	modPath   string
	goroot    string

	full     map[string]bool   // import paths requested with full syntax
	loading  map[string]bool   // cycle guard
	packages map[string]*entry // memoized loads, by import path
}

type entry struct {
	pkg   *Package // full-syntax result (nil for dependency-only loads)
	types *types.Package
}

// NewLoader creates a loader rooted at the module containing dir (or the
// working directory when dir is ""). It walks up to the nearest go.mod to
// find the module root and path.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, fmt.Errorf("analysis: getwd: %w", err)
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Pure-Go file selection: cgo-only variants never reach the checker.
	ctx.CgoEnabled = false
	return &Loader{
		fset:      token.NewFileSet(),
		buildCtx:  ctx,
		moduleDir: root,
		modPath:   modPath,
		goroot:    ctx.GOROOT,
		full:      map[string]bool{},
		loading:   map[string]bool{},
		packages:  map[string]*entry{},
	}, nil
}

// Fset returns the loader's file set (shared by every loaded package).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModulePath returns the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// findModule walks up from dir to the nearest go.mod and parses the module
// path from its first "module" directive.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// Load loads the packages matched by the patterns with full syntax and type
// information. A pattern is a directory ("./internal/kmeans", absolute paths
// allowed) or a recursive form ("./...", "dir/..."); matched directories
// must lie inside the module. Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		path, err := l.dirImportPath(dir)
		if err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	sort.Strings(paths)
	// Register the full set up front: a pattern package imported by an
	// earlier pattern package must still be loaded with bodies and syntax.
	for _, p := range paths {
		l.full[p] = true
	}
	var pkgs []*Package
	for _, p := range paths {
		e, err := l.load(p)
		if err != nil {
			return nil, err
		}
		if e.pkg != nil {
			pkgs = append(pkgs, e.pkg)
		}
	}
	return pkgs, nil
}

// expand turns patterns into a deduplicated list of package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata holds analyzer fixtures (loaded explicitly by the
			// golden tests, never by "./..."), and hidden/underscore dirs
			// follow the go tool's matching rules.
			if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if l.hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walk %s: %w", abs, err)
		}
	}
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one buildable non-test
// Go file under the loader's build context.
func (l *Loader) hasGoFiles(dir string) bool {
	bp, err := l.buildCtx.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// dirImportPath maps a directory inside the module onto its import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleDir, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleDir)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// resolveDir maps an import path onto the directory holding its source:
// module-prefixed paths into the module tree, everything else into GOROOT
// (with the stdlib vendor directory as fallback).
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.modPath {
		return l.moduleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), nil
	}
	for _, dir := range []string{
		filepath.Join(l.goroot, "src", filepath.FromSlash(path)),
		filepath.Join(l.goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (module %s)", path, l.modPath)
}

// Import implements types.Importer by loading the package from source. Full
// registration (via Load) controls whether bodies and syntax are kept.
func (l *Loader) Import(path string) (*types.Package, error) {
	e, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return e.types, nil
}

// load parses and type-checks one package (memoized).
func (l *Loader) load(path string) (*entry, error) {
	if path == "unsafe" {
		return &entry{types: types.Unsafe}, nil
	}
	if e, ok := l.packages[path]; ok {
		return e, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.buildCtx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	full := l.full[path]
	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
	}
	var typeErrs []error
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: !full,
		Error:            func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-check %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	e := &entry{types: tpkg}
	if full {
		e.pkg = &Package{
			Path:  path,
			Dir:   dir,
			Name:  tpkg.Name(),
			Files: files,
			Types: tpkg,
			Info:  info,
		}
	}
	l.packages[path] = e
	return e, nil
}
