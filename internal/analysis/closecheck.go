package analysis

import (
	"go/ast"
	"go/types"
)

// closeCheckedNames are the I/O completion methods whose error results
// report data loss: a failed Close/Flush/Sync after buffered writes means
// bytes never reached the disk, and a failed Write means they never left
// the process. Dropping those errors turns truncated artifacts into
// "successful" runs.
var closeCheckedNames = map[string]bool{
	"Close": true,
	"Flush": true,
	"Sync":  true,
	"Write": true,
}

// Closecheck flags statement-level calls to Close/Flush/Sync/Write that
// return an error nobody looks at. `defer f.Close()` on read-only handles
// stays allowed (the deferred idiom), and an explicit `_ = f.Close()`
// documents a considered discard — the analyzer only rejects the silent
// form where nothing in the source admits an error exists. Test files are
// never loaded by the driver, so tests are exempt by construction.
var Closecheck = &Analyzer{
	Name: "closecheck",
	Doc:  "no silently discarded Close/Flush/Sync/Write errors",
	Run:  runClosecheck,
}

func runClosecheck(pass *Pass) {
	info := pass.Pkg.Info
	pass.Pkg.Inspect(func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !closeCheckedNames[fn.Name()] {
			return true
		}
		if !returnsError(fn) {
			return true
		}
		// bytes.Buffer, strings.Builder and hash.Hash document that their
		// Write methods never return an error; the error result only exists
		// to satisfy io interfaces. The method object may belong to an
		// embedded interface (hash.Hash's Write is io.Writer's), so the
		// exemption keys on the receiver's declared type, not the method's.
		if neverFailsReceiver(info, call) {
			return true
		}
		pass.Reportf(es.Pos(),
			"error result of %s is silently discarded; handle it or make the discard explicit with `_ = ...`",
			fn.Name())
		return true
	})
}

// neverFailsReceiver reports whether the call's receiver is a named type
// from one of the packages whose Write-family methods are documented never
// to fail (bytes, strings, hash).
func neverFailsReceiver(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "bytes", "strings", "hash":
		return true
	}
	return false
}

// returnsError reports whether any of the function's results is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		t := sig.Results().At(i).Type()
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return true
		}
	}
	return false
}
