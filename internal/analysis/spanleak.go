package analysis

import (
	"go/ast"
	"go/types"
)

// Spanleak verifies that every span begun with obs.Start reaches an End on
// every path out of its scope. A leaked span never reaches the sinks (End
// is what delivers it), so the trace silently loses exactly the regions
// that returned early — usually the error paths one most wants to see.
//
// The check is a conservative statement-level walk rather than a full CFG:
// from the Start assignment to the end of its enclosing block, every
// return must be dominated by either a `defer span.End()` (which covers
// all later exits) or an explicit span.End() call, and the block itself
// must not fall off the end with the span still open. Spans that escape
// (passed to another function, captured by a non-deferred closure, stored
// in a structure) are assumed to be ended elsewhere and skipped.
var Spanleak = &Analyzer{
	Name: "spanleak",
	Doc:  "every obs.Start span must End on every return path",
	Run:  runSpanleak,
}

func runSpanleak(pass *Pass) {
	info := pass.Pkg.Info
	pass.Pkg.Inspect(func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body != nil {
			checkSpanStarts(pass, info, body)
		}
		return true
	})
}

// checkSpanStarts scans one function body (not nested literals — Inspect
// visits those separately) for obs.Start assignments and checks each. The
// recursion mirrors Go's statement structure directly so every statement
// list is visited exactly once and function literals are never entered.
func checkSpanStarts(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	var walkList func(stmts []ast.Stmt)
	walkStmt := func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.IfStmt:
			walkList(s.Body.List)
			for cur := s; ; {
				switch e := cur.Else.(type) {
				case *ast.IfStmt:
					cur = e
					walkList(cur.Body.List)
					continue
				case *ast.BlockStmt:
					walkList(e.List)
				}
				break
			}
		case *ast.ForStmt:
			walkList(s.Body.List)
		case *ast.RangeStmt:
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			for _, b := range clauseBodies(s.Body) {
				walkList(b)
			}
		case *ast.TypeSwitchStmt:
			for _, b := range clauseBodies(s.Body) {
				walkList(b)
			}
		case *ast.SelectStmt:
			for _, b := range clauseBodies(s.Body) {
				walkList(b)
			}
		case *ast.LabeledStmt:
			walkList([]ast.Stmt{s.Stmt})
		}
	}
	walkList = func(stmts []ast.Stmt) {
		for i, stmt := range stmts {
			if as, ok := stmt.(*ast.AssignStmt); ok {
				if obj, pos, ok := spanStartAssign(pass, info, as); ok {
					checkSpanLifetime(pass, info, obj, pos, stmts[i+1:], body)
				}
			}
			walkStmt(stmt)
		}
	}
	walkList(body.List)
}

// spanStartAssign recognises `ctx, span := obs.Start(...)` (or `=`) and
// returns the span variable's object. A span assigned to the blank
// identifier is reported immediately: it can never be ended.
func spanStartAssign(pass *Pass, info *types.Info, as *ast.AssignStmt) (types.Object, ast.Expr, bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isPkgCall(info, call, "obs", "Start") {
		return nil, nil, false
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok {
		return nil, nil, false
	}
	if id.Name == "_" {
		pass.Reportf(as.Pos(), "span from obs.Start is discarded; it can never be ended and will never reach a sink")
		return nil, nil, false
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return nil, nil, false
	}
	return obj, as.Lhs[1], true
}

// checkSpanLifetime runs the path walk for one span over the statements
// that follow its Start in the same block.
func checkSpanLifetime(pass *Pass, info *types.Info, obj types.Object, at ast.Expr, rest []ast.Stmt, fnBody *ast.BlockStmt) {
	if spanEscapes(info, obj, at, fnBody) {
		return
	}
	c := &spanWalker{pass: pass, info: info, obj: obj}
	ended, terminated := c.scan(rest, false)
	if !ended && !terminated {
		pass.Reportf(at.Pos(), "span %s goes out of scope without End on the fall-through path", obj.Name())
	}
}

// spanEscapes reports whether the span variable is used in any way other
// than calling End/Annotate on it — passed as an argument, assigned,
// captured by a non-deferred closure. Such spans are assumed to be ended by
// whoever received them. def is the identifier the Start assignment binds —
// the declaration itself is not a use.
func spanEscapes(info *types.Info, obj types.Object, def ast.Expr, body *ast.BlockStmt) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok {
			if id, ok := sel.X.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				if sel.Sel.Name == "End" || sel.Sel.Name == "Annotate" {
					return false // the blessed uses; skip the inner ident
				}
				escapes = true
				return false
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok && ast.Expr(id) != def && info.ObjectOf(id) == obj {
			// A bare mention outside span.End()/span.Annotate(): the span
			// escapes (argument, assignment, closure capture, ...).
			escapes = true
		}
		return true
	})
	return escapes
}

// spanWalker walks statement lists tracking whether the span has been ended
// on the current path.
type spanWalker struct {
	pass *Pass
	info *types.Info
	obj  types.Object
}

// scan processes a statement list with the incoming ended state and returns
// the state at the end of the list plus whether every path through the list
// terminates (return/panic/exit) before reaching its end.
func (c *spanWalker) scan(stmts []ast.Stmt, ended bool) (endedOut, terminated bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if c.isEndCall(s.X) {
				ended = true
			} else if isTerminalCall(c.info, s.X) {
				return ended, true
			}
		case *ast.DeferStmt:
			// A registered defer ends the span on every later exit; for
			// path purposes it behaves exactly like an End here.
			if c.isDeferredEnd(s) {
				ended = true
			}
		case *ast.ReturnStmt:
			if !ended {
				c.pass.Reportf(s.Pos(), "span %s is not ended on this return path", c.obj.Name())
			}
			return ended, true
		case *ast.IfStmt:
			var exits []bool // ended state of every path that continues past the if
			cur := s
			for {
				thenEnded, thenTerm := c.scan(cur.Body.List, ended)
				if !thenTerm {
					exits = append(exits, thenEnded)
				}
				switch e := cur.Else.(type) {
				case *ast.IfStmt:
					cur = e
					continue
				case *ast.BlockStmt:
					elseEnded, elseTerm := c.scan(e.List, ended)
					if !elseTerm {
						exits = append(exits, elseEnded)
					}
				case nil:
					exits = append(exits, ended) // condition-false fall-through
				}
				break
			}
			if len(exits) == 0 {
				return ended, true
			}
			ended = allTrue(exits)
		case *ast.SwitchStmt:
			ended = c.scanClauses(clauseBodies(s.Body), hasDefaultClause(s.Body), ended)
		case *ast.TypeSwitchStmt:
			ended = c.scanClauses(clauseBodies(s.Body), hasDefaultClause(s.Body), ended)
		case *ast.SelectStmt:
			ended = c.scanClauses(clauseBodies(s.Body), true, ended)
		case *ast.ForStmt:
			// The body may run zero times, so the loop never upgrades the
			// outer state; returns inside still get checked.
			c.scan(s.Body.List, ended)
		case *ast.RangeStmt:
			c.scan(s.Body.List, ended)
		case *ast.BlockStmt:
			var term bool
			ended, term = c.scan(s.List, ended)
			if term {
				return ended, true
			}
		case *ast.LabeledStmt:
			var term bool
			ended, term = c.scan([]ast.Stmt{s.Stmt}, ended)
			if term {
				return ended, true
			}
		}
	}
	return ended, false
}

// scanClauses merges switch/select case bodies: the state after the
// statement is "ended" only if every continuing path ended the span.
func (c *spanWalker) scanClauses(bodies [][]ast.Stmt, hasDefault bool, ended bool) bool {
	var exits []bool
	for _, body := range bodies {
		e, term := c.scan(body, ended)
		if !term {
			exits = append(exits, e)
		}
	}
	if !hasDefault {
		exits = append(exits, ended) // no case taken
	}
	if len(exits) == 0 {
		return ended
	}
	return allTrue(exits)
}

// allTrue reports whether every element is true.
func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

// isEndCall matches span.End() on the tracked span object.
func (c *spanWalker) isEndCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && c.info.ObjectOf(id) == c.obj
}

// isDeferredEnd matches `defer span.End()` and `defer func() { ... span.End()
// ... }()`.
func (c *spanWalker) isDeferredEnd(d *ast.DeferStmt) bool {
	if c.isEndCall(d.Call) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && c.isEndCall(e) {
			found = true
		}
		return !found
	})
	return found
}

// isTerminalCall matches calls that never return: panic, os.Exit, and the
// log.Fatal family.
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	}
	return false
}

// clauseBodies extracts the statement lists of a switch/select body.
func clauseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, s := range body.List {
		switch cl := s.(type) {
		case *ast.CaseClause:
			out = append(out, cl.Body)
		case *ast.CommClause:
			out = append(out, cl.Body)
		}
	}
	return out
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if cl, ok := s.(*ast.CaseClause); ok && cl.List == nil {
			return true
		}
	}
	return false
}
