// Package metricname is the metricname fixture: constant names handed to
// the obs registry must be 2-3 lowercase dotted segments (an optional
// {label="value"} suffix is stripped first); runtime-built names are out of
// the analyzer's static reach and stay silent.
package metricname

import (
	"fmt"

	"specsampling/internal/obs"
)

// badConstName is checked where it is interned, not where it is declared.
const badConstName = "Queue.Depth"

// goodConstName folds to a valid family at the call site.
const goodConstName = "queue" + ".depth"

// Bad names: wrong case, too few or too many segments, empty segments.
var (
	badCase     = obs.GetCounter("Serve.Requests")           // want "metricname: metric name \"Serve.Requests\" is not subsystem"
	badBare     = obs.GetCounter("queue")                    // want "metricname: metric name \"queue\" is not subsystem"
	badDeep     = obs.GetGauge("a.b.c.d")                    // want "metricname: metric name \"a.b.c.d\" is not subsystem"
	badEmptySeg = obs.GetHistogram("serve..requests")        // want "metricname: metric name \"serve..requests\" is not subsystem"
	badConst    = obs.GetGauge(badConstName)                 // want "metricname: metric name \"Queue.Depth\" is not subsystem"
	badLabelled = obs.GetCounter("Serve.Hits{code=\"2xx\"}") // want "metricname: metric name \"Serve.Hits.* is not subsystem"
	badBraces   = obs.GetCounter("serve.hits{code")          // want "metricname: .* unterminated label block"
)

// Good names: two and three segments, underscores, digits after the first
// character, label suffixes, constant folding.
var (
	goodTwo      = obs.GetCounter("store.hit")
	goodThree    = obs.GetHistogram("serve.http.request_seconds")
	goodDigits   = obs.GetGauge("cache.l1_misses")
	goodConst    = obs.GetGauge(goodConstName)
	goodLabelled = obs.GetCounter("serve.http.requests{route=\"/v1/jobs\",code=\"2xx\"}")
)

// GoodDynamic builds the name at runtime; the analyzer cannot fold it and
// must not guess.
func GoodDynamic(route string) *obs.Counter {
	return obs.GetCounter(fmt.Sprintf("serve.http.requests{route=%q}", route))
}
