// Package atomicmix is the atomicmix fixture: gauge.n is updated through
// sync/atomic but read plainly, hits is a package-level counter reset
// plainly, and the peak/safeGauge variants show the two clean disciplines
// (all-atomic functions, and the typed atomics that make mixing a type
// error).
package atomicmix

import "sync/atomic"

// gauge mixes atomic updates with a plain read on n.
type gauge struct {
	n    int64
	peak int64
}

func (g *gauge) bump() {
	atomic.AddInt64(&g.n, 1)
}

func (g *gauge) read() int64 {
	return g.n // want "atomicmix: field n of atomicmix.gauge is accessed with atomic.AddInt64"
}

// peak is only ever touched through sync/atomic — silent.
func (g *gauge) bumpPeak(v int64) {
	atomic.StoreInt64(&g.peak, v)
}

func (g *gauge) readPeak() int64 {
	return atomic.LoadInt64(&g.peak)
}

// hits is updated atomically but reset with a plain store.
var hits int64

// Hit is the hot path.
func Hit() {
	atomic.AddInt64(&hits, 1)
}

// Reset races with Hit.
func Reset() {
	hits = 0 // want "atomicmix: hits is accessed with atomic.AddInt64"
}

// safeGauge uses the typed atomics: a plain access does not typecheck, so
// the analyzer has nothing to find.
type safeGauge struct {
	n atomic.Int64
}

func (s *safeGauge) bump()       { s.n.Add(1) }
func (s *safeGauge) read() int64 { return s.n.Load() }
