// Package simpoint is the nondet fixture. Its package name places it in the
// deterministic-kernel set, so wall-clock, environment and global-RNG reads
// must fire while seeded generators and reasoned suppressions stay silent.
package simpoint

import (
	"math/rand"
	"os"
	"time"
)

// BadClock reads the wall clock twice.
func BadClock() time.Duration {
	began := time.Now()      // want "nondet: call to time.Now in deterministic kernel package simpoint"
	return time.Since(began) // want "nondet: call to time.Since in deterministic kernel package simpoint"
}

// BadEnv reads ambient configuration instead of a Config field.
func BadEnv() string {
	return os.Getenv("SCALE") // want "nondet: call to os.Getenv in deterministic kernel package simpoint"
}

// BadGlobalRNG draws from the shared, unseeded global source.
func BadGlobalRNG() int {
	return rand.Intn(10) // want "nondet: call to rand.Intn uses the global RNG in deterministic kernel package simpoint"
}

// BadReasonless shows that an ignore directive without a reason does not
// suppress anything.
func BadReasonless() time.Time {
	//lint:ignore nondet
	return time.Now() // want "nondet: call to time.Now in deterministic kernel package simpoint"
}

// GoodSeeded draws from an explicitly seeded generator; methods on a
// *rand.Rand are seeded by construction.
func GoodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// GoodSuppressed documents an instrumentation-only clock read.
func GoodSuppressed() time.Time {
	//lint:ignore nondet fixture for a documented instrumentation-only read
	return time.Now()
}
