// Package kmeans is the detmap fixture. Its package name places it in the
// result-producing set, so ranging over a map without sorted keys must fire
// and the order-insensitive loop shapes must stay silent.
package kmeans

import "sort"

// BadFold accumulates values in map iteration order; the float sum and the
// order slice are both run-dependent.
func BadFold(m map[string]float64) ([]string, float64) {
	var order []string
	var sum float64
	for k, v := range m { // want "detmap: range over map has nondeterministic iteration order"
		order = append(order, k)
		sum += v
	}
	return order, sum
}

// BadFirst picks "the first" key, which is a different key every run.
func BadFirst(m map[string]int) string {
	for k := range m { // want "detmap: range over map has nondeterministic iteration order"
		return k
	}
	return ""
}

// GoodSorted is the approved pattern: collect keys, sort, range the slice.
func GoodSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// GoodCount counts entries; integer counting commutes.
func GoodCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// GoodClear deletes every entry; order cannot matter.
func GoodClear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}
