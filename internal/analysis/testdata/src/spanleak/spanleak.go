// Package spanleak is the spanleak fixture: every obs.Start span must End on
// every path out of its scope.
package spanleak

import (
	"context"
	"fmt"

	"specsampling/internal/obs"
)

// GoodDefer ends via defer, which covers every later exit.
func GoodDefer(ctx context.Context) error {
	ctx, span := obs.Start(ctx, "good.defer")
	defer span.End()
	_ = ctx
	return nil
}

// GoodExplicit ends explicitly on both paths.
func GoodExplicit(ctx context.Context, fail bool) error {
	_, span := obs.Start(ctx, "good.explicit")
	if fail {
		span.End()
		return fmt.Errorf("failed")
	}
	span.End()
	return nil
}

// BadReturn leaks the span on the early error return.
func BadReturn(ctx context.Context, fail bool) error {
	_, span := obs.Start(ctx, "bad.return")
	if fail {
		return fmt.Errorf("failed") // want "spanleak: span span is not ended on this return path"
	}
	span.End()
	return nil
}

// BadFallthrough never ends the span at all.
func BadFallthrough(ctx context.Context) {
	_, span := obs.Start(ctx, "bad.fallthrough") // want "spanleak: span span goes out of scope without End on the fall-through path"
	span.Annotate(obs.String("outcome", "lost"))
}

// BadDiscard throws the span away at birth; it can never be ended.
func BadDiscard(ctx context.Context) {
	_, _ = obs.Start(ctx, "bad.discard") // want "spanleak: span from obs.Start is discarded"
}

// GoodEscape hands the span to a helper, which is assumed to end it.
func GoodEscape(ctx context.Context) {
	_, span := obs.Start(ctx, "good.escape")
	endLater(span)
}

func endLater(span *obs.Span) { span.End() }

// GoodBranches ends the span in every switch arm, including default.
func GoodBranches(ctx context.Context, mode int) {
	_, span := obs.Start(ctx, "good.branches")
	switch mode {
	case 0:
		span.End()
	default:
		span.End()
	}
}

// BadGoroutine leaks a span opened inside a go-spawned literal — closures
// are walked just like named functions, spawned or not.
func BadGoroutine(ctx context.Context) {
	go func() {
		_, span := obs.Start(ctx, "bad.goroutine") // want "spanleak: span span goes out of scope without End on the fall-through path"
		span.Annotate(obs.String("outcome", "lost"))
	}()
}

// GoodGoroutine ends its span inside the spawned literal.
func GoodGoroutine(ctx context.Context) {
	go func() {
		_, span := obs.Start(ctx, "good.goroutine")
		defer span.End()
	}()
}

// BadDeferredClosure leaks a span opened inside a deferred closure.
func BadDeferredClosure(ctx context.Context, fail bool) error {
	defer func() {
		_, span := obs.Start(ctx, "bad.deferred")
		if fail {
			return // want "spanleak: span span is not ended on this return path"
		}
		span.End()
	}()
	return nil
}

// GoodDeferredClosure ends its span on every path out of the deferred
// closure.
func GoodDeferredClosure(ctx context.Context) {
	defer func() {
		_, span := obs.Start(ctx, "good.deferred")
		span.End()
	}()
}
