// Command ctxflow is the ctxflow fixture: only func main may mint a root
// context; everything below it must thread the one it received.
package main

import "context"

func main() {
	ctx := context.Background() // silent: the entry point is where the root context is born
	run(ctx)
}

// run already has a context and must not mint a fresh one.
func run(ctx context.Context) {
	detached := context.Background() // want "ctxflow: run already receives a context.Context; pass it instead of minting context.Background"
	use(detached)
	use(ctx)
}

// helper has no context at all; it must grow a parameter, not a TODO.
func helper() {
	use(context.TODO()) // want "ctxflow: context.TODO minted outside func main; accept a ctx parameter and thread it from the entry point"
}

// withClosure shows that a closure with its own ctx parameter is still a
// threading boundary inside its enclosing function.
func withClosure(ctx context.Context) {
	f := func(ctx context.Context) {
		use(context.Background()) // want "ctxflow: withClosure already receives a context.Context; pass it instead of minting context.Background"
		use(ctx)
	}
	f(ctx)
}

// goodThreading passes the context along and stays silent.
func goodThreading(ctx context.Context) {
	run(ctx)
	helper()
	withClosure(ctx)
}

func use(ctx context.Context) { _ = ctx }
