// Package goroleak is the goroleak fixture: every go statement must have a
// bounded exit. LeakyPoll, StartSpin and StartPump leak (unbounded loops
// with no signal, the second one hiding the loop a call down, the third
// behind a method spawn); the rest exercise each sanctioned exit idiom and
// the structural-termination passes.
package goroleak

import (
	"context"
	"sync"
)

func doWork() {}

func compute() int { return 42 }

// LeakyPoll spawns a goroutine that can never be told to stop.
func LeakyPoll() {
	go func() { // want "goroleak: goroutine .function literal. runs an unbounded loop with no exit signal"
		for {
			doWork()
		}
	}()
}

// spin hides the unbounded loop one call down; the summary propagates it
// back to the spawn site.
func spin() {
	for {
		doWork()
	}
}

// StartSpin leaks interprocedurally.
func StartSpin() {
	go func() { // want "goroleak: goroutine .function literal. runs an unbounded loop with no exit signal"
		spin()
	}()
}

// CtxPoll exits when the context is cancelled.
func CtxPoll(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				doWork()
			}
		}
	}()
}

// StopPoll exits when the stop channel closes (close-to-broadcast).
func StopPoll(stop chan struct{}) {
	go func() {
		for {
			doWork()
			<-stop
		}
	}()
}

// DrainWorker drains its queue; the producer's close ends the loop.
func DrainWorker(jobs chan int) {
	go func() {
		for range jobs {
			doWork()
		}
	}()
}

// ShardWorker mirrors sched.ForEachSharded: bounded by ctx.Err polling and
// joined through the WaitGroup.
func ShardWorker(ctx context.Context, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			doWork()
		}
	}()
}

// OneShot terminates structurally: loop-free bodies always exit.
func OneShot(results chan<- int) {
	go func() {
		results <- compute()
	}()
}

// Counted three-clause loops are treated as structurally bounded.
func Counted() {
	go func() {
		for i := 0; i < 8; i++ {
			doWork()
		}
	}()
}

// pump spawns through a declared method: the loop lives in the callee's
// body, not the go statement.
type pump struct{ queue chan int }

func (p *pump) loop() {
	for {
		doWork()
	}
}

// StartPump leaks through the method spawn.
func StartPump(p *pump) {
	go p.loop() // want "goroleak: goroutine .pump.loop. runs an unbounded loop with no exit signal"
}

// drain is the fixed pump: the queue's close ends it.
func (p *pump) drain() {
	for range p.queue {
		doWork()
	}
}

// StartFixedPump stays silent.
func StartFixedPump(p *pump) {
	go p.drain()
}

// Forever is intentionally immortal, and says so.
func Forever() {
	//lint:ignore goroleak debug pump lives for the process lifetime by design
	go func() {
		for {
			doWork()
		}
	}()
}
