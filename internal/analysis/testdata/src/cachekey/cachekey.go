// Package cachekey is the cachekey fixture: ProfileKey folds Scale and
// SliceLen into the digest but forgets Seed, so two configurations differing
// only in Seed would share a cache entry — exactly the bug the analyzer
// exists to catch. Workers is deliberately excluded with a reasoned ignore,
// and CoveredConfig shows a fully covered type staying silent.
package cachekey

import (
	"fmt"

	"specsampling/internal/store"
)

// Config configures the fixture stage.
type Config struct {
	Scale    string
	SliceLen int
	Seed     int64 // want "cachekey: field Seed of cachekey.Config is not covered by any store.Key derivation"
	//lint:ignore cachekey worker budgets cannot change result bytes, only wall-clock
	Workers int
}

// CoveredConfig has every field folded into the key.
type CoveredConfig struct {
	Alpha float64
	Beta  float64
}

// ProfileKey is a key-derivation root: it returns a store.Key.
func ProfileKey(bench string, c Config) store.Key {
	return store.Key{
		Kind:  "profile",
		Bench: bench,
		Parts: parts(c),
	}
}

// parts is reached through the static call graph from ProfileKey; the field
// reads here count as key coverage.
func parts(c Config) []string {
	return []string{
		fmt.Sprintf("scale=%s", c.Scale),
		fmt.Sprintf("slice=%d", c.SliceLen),
	}
}

// CoveredKey folds every CoveredConfig field into its key.
func CoveredKey(bench string, c CoveredConfig) store.Key {
	return store.Key{
		Kind:  "covered",
		Bench: bench,
		Parts: []string{
			fmt.Sprintf("alpha=%g", c.Alpha),
			fmt.Sprintf("beta=%g", c.Beta),
		},
	}
}
