// Package cachekey is the cachekey fixture: ProfileKey folds Scale and
// SliceLen into the digest but forgets Seed, so two configurations differing
// only in Seed would share a cache entry — exactly the bug the analyzer
// exists to catch. Workers is deliberately excluded with a reasoned ignore,
// and CoveredConfig shows a fully covered type staying silent.
package cachekey

import (
	"fmt"

	"specsampling/internal/store"
)

// Config configures the fixture stage.
type Config struct {
	Scale    string
	SliceLen int
	Seed     int64 // want "cachekey: field Seed of cachekey.Config is not covered by any store.Key derivation"
	//lint:ignore cachekey worker budgets cannot change result bytes, only wall-clock
	Workers int
}

// CoveredConfig has every field folded into the key.
type CoveredConfig struct {
	Alpha float64
	Beta  float64
}

// ProfileKey is a key-derivation root: it returns a store.Key.
func ProfileKey(bench string, c Config) store.Key {
	return store.Key{
		Kind:  "profile",
		Bench: bench,
		Parts: parts(c),
	}
}

// parts is reached through the static call graph from ProfileKey; the field
// reads here count as key coverage.
func parts(c Config) []string {
	return []string{
		fmt.Sprintf("scale=%s", c.Scale),
		fmt.Sprintf("slice=%d", c.SliceLen),
	}
}

// CoveredKey folds every CoveredConfig field into its key.
func CoveredKey(bench string, c CoveredConfig) store.Key {
	return store.Key{
		Kind:  "covered",
		Bench: bench,
		Parts: []string{
			fmt.Sprintf("alpha=%g", c.Alpha),
			fmt.Sprintf("beta=%g", c.Beta),
		},
	}
}

// Keyer mirrors the selector.Selector dispatch: the key derivation calls an
// interface method, so no single static callee exists and the analyzer must
// descend into every implementation.
type Keyer interface {
	KeyParts(c BackendConfig) []string
}

// BackendConfig configures the dispatch fixture backend. Gamma is covered
// only inside gammaKeyer.KeyParts — reachable solely through the interface
// call in DispatchKey — while Delta is read nowhere on any key path.
type BackendConfig struct {
	Gamma int
	Delta int // want "cachekey: field Delta of cachekey.BackendConfig is not covered by any store.Key derivation"
}

type gammaKeyer struct{}

// KeyParts covers Gamma; without interface-dispatch resolution this body is
// invisible to the walk and Gamma would be (wrongly) reported too.
func (gammaKeyer) KeyParts(c BackendConfig) []string {
	return []string{fmt.Sprintf("gamma=%d", c.Gamma)}
}

// DispatchKey is a key-derivation root whose parts come from a dynamic call.
func DispatchKey(bench string, k Keyer, c BackendConfig) store.Key {
	return store.Key{Kind: "dispatch", Bench: bench, Parts: k.KeyParts(c)}
}

var _ Keyer = gammaKeyer{}
