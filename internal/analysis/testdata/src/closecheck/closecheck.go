// Package closecheck is the closecheck fixture: statement-level
// Close/Flush/Sync/Write calls whose error nobody looks at must fire; the
// checked, deferred, explicitly-discarded and never-fail forms stay silent.
package closecheck

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"os"
)

// BadClose drops the Close error on the success path — after buffered
// writes, that error is the only notification of data loss.
func BadClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close() // want "closecheck: error result of Close is silently discarded"
	return nil
}

// BadFlush drops the Flush error.
func BadFlush(w *bufio.Writer) {
	w.Flush() // want "closecheck: error result of Flush is silently discarded"
}

// BadSync drops the Sync error.
func BadSync(f *os.File) {
	f.Sync() // want "closecheck: error result of Sync is silently discarded"
}

// GoodChecked returns the Close error to the caller.
func GoodChecked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

// GoodExplicitDiscard documents a considered discard.
func GoodExplicitDiscard(f *os.File) {
	_ = f.Close()
}

// GoodDefer is the deferred idiom on a read-only handle.
func GoodDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// GoodNeverFails exercises the bytes/hash receiver exemption: their Write
// methods are documented never to return an error.
func GoodNeverFails(data []byte) []byte {
	var buf bytes.Buffer
	buf.Write(data)
	h := sha256.New()
	h.Write(buf.Bytes())
	return h.Sum(nil)
}

// BadGoroutine drops a Flush error inside a go-spawned literal — closure
// bodies are checked exactly like named function bodies.
func BadGoroutine(w *bufio.Writer) {
	go func() {
		w.Flush() // want "closecheck: error result of Flush is silently discarded"
	}()
}

// BadDeferredClosure drops a Close error inside a deferred closure. Unlike
// `defer f.Close()` (the sanctioned last-resort idiom), a deferred closure
// has room to check the error, so the discard fires.
func BadDeferredClosure(f *os.File) {
	defer func() {
		f.Close() // want "closecheck: error result of Close is silently discarded"
	}()
}

// GoodDeferredClosure checks the error inside the deferred closure.
func GoodDeferredClosure(f *os.File, errp *error) {
	defer func() {
		if err := f.Close(); err != nil && *errp == nil {
			*errp = err
		}
	}()
}
