// Package lockheld is the lockheld fixture. HandleList reintroduces the
// PR-8 wedge — a handler holding server.mu via defer across the response
// write — and the fixed variant shows the snapshot-then-write shape that
// stays silent. The registry/table and registry/cache pairs seed a lock
// ordering inversion, the second one interprocedurally through a helper's
// acquires summary.
package lockheld

import (
	"encoding/json"
	"net/http"
	"sync"
)

// server mirrors serve.Server: one mutex guarding the job table.
type server struct {
	mu   sync.Mutex
	jobs map[string]int
}

// writeJSON encodes straight to the client — blocking I/O once the
// connection's buffers fill.
func (s *server) writeJSON(w http.ResponseWriter, v interface{}) {
	_ = json.NewEncoder(w).Encode(v)
}

// HandleList is the PR-8 handleList wedge: the deferred unlock keeps
// server.mu held across the response write, so one slow client stalls
// every other request that needs the lock.
func (s *server) HandleList(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeJSON(w, s.jobs) // want "lockheld: lockheld.server.mu is held across a call to server.writeJSON"
}

// HandleListFixed snapshots under the lock and writes after releasing it.
func (s *server) HandleListFixed(w http.ResponseWriter) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	s.writeJSON(w, n)
}

// Notify sends on an unbuffered channel with the lock held: if the
// receiver never comes, neither does anyone else who needs the lock.
func (s *server) Notify(ch chan<- int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- len(s.jobs) // want "lockheld: lockheld.server.mu is held across a channel send"
}

// NotifyNonBlocking drops the event when nobody listens; a select with a
// default clause never blocks, so holding the lock here is fine.
func (s *server) NotifyNonBlocking(ch chan<- int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- len(s.jobs):
	default:
	}
}

// WaitTurn parks on a select with no default while holding the lock.
func (s *server) WaitTurn(stop chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "lockheld: lockheld.server.mu is held across a select with no default clause"
	case <-stop:
	}
}

// Drain blocks between elements with the lock held.
func (s *server) Drain(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n := range ch { // want "lockheld: lockheld.server.mu is held across a range over a channel"
		s.jobs["last"] = n
	}
}

// SpawnUnderLock spawns while holding the lock; the held set does not
// cross the go statement — the spawned goroutine blocks holding nothing.
func (s *server) SpawnUnderLock(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// sink is dispatched through an interface; the engine fans out to every
// implementation, and fileSink's write makes emit a may-block callee.
type sink interface{ emit(line string) }

type fileSink struct{ w http.ResponseWriter }

func (f *fileSink) emit(line string) {
	_, _ = f.w.Write([]byte(line))
}

// Publish calls through the interface with the lock held.
func (s *server) Publish(sk sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sk.emit("refresh") // want "lockheld: lockheld.server.mu is held across a call to sink.emit"
}

// flusher writes under its own lock on purpose: serialising concurrent
// writers is this lock's one job, mirroring the obs sinks.
type flusher struct {
	mu sync.Mutex
	w  http.ResponseWriter
}

func (f *flusher) flush(line string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	//lint:ignore lockheld serialising writers is this lock's purpose (fixture mirror of the obs sinks)
	_, _ = f.w.Write([]byte(line))
}

// registry and table seed a direct ordering inversion.
type registry struct{ mu sync.Mutex }

type table struct{ mu sync.Mutex }

// LockAB establishes registry-before-table …
func LockAB(r *registry, t *table) {
	r.mu.Lock()
	t.mu.Lock() // want "lockheld: lockheld.table.mu is acquired while lockheld.registry.mu is held"
	t.mu.Unlock()
	r.mu.Unlock()
}

// … and LockBA reverses it: the two paths can each hold what the other
// wants.
func LockBA(r *registry, t *table) {
	t.mu.Lock()
	r.mu.Lock() // want "lockheld: lockheld.registry.mu is acquired while lockheld.table.mu is held"
	r.mu.Unlock()
	t.mu.Unlock()
}

// cache closes the second inversion interprocedurally: Refresh holds
// registry.mu while bump's summary says it acquires cache.mu.
type cache struct {
	mu sync.Mutex
	n  int
}

func (c *cache) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func Refresh(r *registry, c *cache) {
	r.mu.Lock()
	c.bump() // want "lockheld: lockheld.cache.mu is acquired while lockheld.registry.mu is held"
	r.mu.Unlock()
}

func Evict(r *registry, c *cache) {
	c.mu.Lock()
	r.mu.Lock() // want "lockheld: lockheld.registry.mu is acquired while lockheld.cache.mu is held"
	r.mu.Unlock()
	c.mu.Unlock()
}
