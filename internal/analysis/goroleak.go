package analysis

import (
	"go/ast"
)

// Goroleak demands a bounded exit for every goroutine: a `go` statement
// whose body can loop forever must, somewhere in its transitive call tree,
// listen for a shutdown signal. The accepted signals are the module's three
// sanctioned idioms (facts.go computes them as the hasExit summary bit):
//
//   - receiving from a struct{}-element channel — ctx.Done(), stop/closing
//     channels — or polling ctx.Err() in the loop condition;
//   - draining a channel with range (the producer's close ends the loop);
//   - WaitGroup ownership (the goroutine calls wg.Done, so someone joins
//     it).
//
// A goroutine with an unbounded loop and none of these outlives every
// shutdown path: the daemon's SIGTERM drain waits forever or leaks the
// worker. Loop-free goroutines terminate structurally and pass; counted
// three-clause for loops are treated as bounded. Spawns through plain
// function values (`go fn()` where fn is a variable) are invisible to the
// call graph and are not checked — a documented caveat (DESIGN.md §14).
var Goroleak = &Analyzer{
	Name:   "goroleak",
	Doc:    "every go statement must have a bounded exit",
	Global: true,
	Run:    runGoroleak,
}

func runGoroleak(pass *Pass) {
	eng := pass.facts()
	for _, pkg := range pass.All {
		info := pkg.Info
		pkg.Inspect(func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var (
				loops, exits bool
				what         string
				known        bool
			)
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				f := eng.litFacts(pkg, lit)
				loops, exits, known = f.hasLoop, f.hasExit, true
				what = "function literal"
			} else if targets := calleeTargets(info, g.Call, eng.decls, eng.loaded); targets != nil {
				// Static callee or interface dispatch: any target that can
				// loop unboundedly needs an exit somewhere in the set.
				for _, target := range targets {
					if f := eng.facts[target]; f != nil {
						loops = loops || f.hasLoop
						exits = exits || f.hasExit
						known = true
					}
				}
				what = shortFuncName(originFunc(calleeFunc(info, g.Call)))
			}
			if known && loops && !exits {
				pass.Reportf(g.Pos(),
					"goroutine (%s) runs an unbounded loop with no exit signal — no ctx-done/stop-channel receive, channel drain, or WaitGroup Done; it cannot be shut down",
					what)
			}
			return true
		})
	}
}
