package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// This file holds the module-wide call-graph machinery shared by the
// interprocedural analyzers (cachekey, lockheld, goroleak). The resolution
// rules grew inside cachekey first and were extracted here once the facts
// engine (facts.go) needed the same view of the program:
//
//   - every function declaration in the loaded set is indexed by its
//     *types.Func, normalised through Origin() so calls to instantiations
//     of a generic function resolve to the one declared body;
//   - a call has a static callee when its Fun names a declared function or
//     concrete method;
//   - a call through an interface value resolves to the abstract interface
//     method, which has no body; the graph conservatively fans out to every
//     declared concrete method with that name whose receiver satisfies the
//     interface (sorted for a deterministic walk order).

// declSite pairs a function declaration with the package that owns it (the
// package's Info is needed to resolve names inside the body).
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// declIndex indexes every function declaration with a body in the loaded
// package set, keyed by the (origin) *types.Func.
func declIndex(pkgs []*Package) map[*types.Func]declSite {
	decls := map[*types.Func]declSite{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[originFunc(fn)] = declSite{pkg: pkg, decl: fd}
			}
		}
	}
	return decls
}

// originFunc normalises an instantiated generic function or method to its
// declared origin, which is what declIndex keys on.
func originFunc(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// calleeTargets resolves a call to the declared functions that may run: the
// static callee when it has a body in the loaded set, or — for a call
// through an interface declared in a loaded package — every satisfying
// concrete method. Dispatch through interfaces declared elsewhere
// (io.Closer, io.Writer, …) is deliberately not expanded: a one-method
// stdlib interface is satisfied by half the module, so fanning out would
// invent call edges (and lock-order cycles) that no call path realises;
// those calls are classified by the curated table instead
// (externBlockKind). Builtins, conversions, function values and bodiless
// callees resolve to nil.
func calleeTargets(info *types.Info, call *ast.CallExpr, decls map[*types.Func]declSite, loaded map[*types.Package]bool) []*types.Func {
	callee := originFunc(calleeFunc(info, call))
	if callee == nil {
		return nil
	}
	if _, ok := decls[callee]; ok {
		return []*types.Func{callee}
	}
	if iface := ifaceRecv(callee); iface != nil && callee.Pkg() != nil && loaded[callee.Pkg()] {
		return implementers(iface, callee.Name(), decls)
	}
	return nil
}

// loadedPkgSet collects the *types.Package of every loaded (full-syntax)
// package, the scope within which interface dispatch is expanded.
func loadedPkgSet(pkgs []*Package) map[*types.Package]bool {
	set := make(map[*types.Package]bool, len(pkgs))
	for _, pkg := range pkgs {
		set[pkg.Types] = true
	}
	return set
}

// ifaceRecv returns the interface type fn is declared on if fn is an
// abstract interface method (the object a call through an interface value
// resolves to), nil for concrete methods and plain functions.
func ifaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementers returns every declared concrete method named name whose
// receiver type (or a pointer to it) implements iface, sorted for a
// deterministic walk order.
func implementers(iface *types.Interface, name string, decls map[*types.Func]declSite) []*types.Func {
	var out []*types.Func
	for fn := range decls {
		if fn.Name() != name {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		if _, abstract := recv.Underlying().(*types.Interface); abstract {
			continue
		}
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// shortFuncName renders fn compactly for diagnostics: "Type.method" for
// methods (the receiver's named type without package or pointer noise),
// "pkg.Func" for package functions.
func shortFuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return pathTail(fn.Pkg().Path()) + "." + fn.Name()
	}
	return fn.Name()
}

// sortFuncs orders functions deterministically by full name (receiver
// included), breaking exotic ties by package path.
func sortFuncs(fns []*types.Func) {
	sort.Slice(fns, func(i, j int) bool {
		a, b := fns[i], fns[j]
		if a.FullName() != b.FullName() {
			return a.FullName() < b.FullName()
		}
		return fmt.Sprint(a.Pkg()) < fmt.Sprint(b.Pkg())
	})
}
