// Package analysis is speclint's engine: a pure-stdlib (go/ast, go/parser,
// go/types, go/token — no golang.org/x/tools) static-analysis driver with
// project-specific analyzers that enforce the reproduction's invariants:
//
//   - detmap     — no order-dependent map iteration in result-producing
//     packages (results must be byte-identical across runs)
//   - nondet     — no wall clock, environment or global-RNG reads inside
//     deterministic kernel packages
//   - ctxflow    — context.Context is threaded, never minted mid-pipeline
//   - spanleak   — every obs.Start span reaches an End on every return path
//   - closecheck — no silently discarded Close/Flush/Sync/Write errors
//   - cachekey   — every Config field is covered by the store.Key
//     derivations, so the persistent cache can never alias two
//     configurations
//   - lockheld   — no mutex is held across a may-block call, and lock
//     classes are acquired in one consistent module-wide order
//   - goroleak   — every go statement has a bounded exit (ctx-done or
//     stop-channel select, channel drain, or WaitGroup ownership)
//   - atomicmix  — no variable is accessed both through sync/atomic and
//     with plain loads/stores
//
// The last three are interprocedural: they consume per-function summaries
// computed by a fixed-point facts engine over a module-wide call graph
// (callgraph.go, facts.go), built once per run and shared between
// analyzers.
//
// The driver loads and type-checks packages itself (see Loader), runs every
// analyzer, and reports diagnostics as "file:line:col: analyzer: message".
// A finding can be suppressed with an explicit, reasoned comment on the
// flagged line or the line above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without one is itself ignored, so
// every exception in the tree documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the name of the analyzer that produced it.
	Analyzer string
	// Message describes the invariant violation.
	Message string
}

// String renders the diagnostic in the conventional
// "file:line:col: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Name is the package name from the package clause (analyzers target
	// packages by name so that testdata fixtures behave like the real tree).
	Name string
	// Files is the parsed syntax (non-test files only).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checking results for Files.
	Info *types.Info
}

// Inspect walks every file of the package in source order.
func (p *Package) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the identifier used in diagnostics and suppressions.
	Name string
	// Doc is a one-line description.
	Doc string
	// Global marks analyzers that need the whole loaded package set at
	// once (cachekey); they run a single pass with Pass.Pkg == nil.
	Global bool
	// Run executes the analyzer.
	Run func(*Pass)
}

// Pass carries one analyzer execution over one package (or, for Global
// analyzers, over the whole loaded set).
type Pass struct {
	// Fset resolves positions for every loaded file.
	Fset *token.FileSet
	// Pkg is the package under analysis (nil for Global analyzers).
	Pkg *Package
	// All is every package loaded from the command-line patterns.
	All []*Package
	// ModulePath is the import path of the module under analysis.
	ModulePath string

	analyzer string
	diags    *[]Diagnostic
	shared   *sharedState
}

// sharedState carries computations that are identical for every analyzer
// in one driver.Run — today, the interprocedural facts engine. Passes copy
// per package, so the state lives behind a pointer.
type sharedState struct {
	facts *factsEngine
}

// facts returns the interprocedural facts engine for the loaded package
// set, building it on first use and memoising it across analyzers.
func (p *Pass) facts() *factsEngine {
	if p.shared == nil {
		p.shared = &sharedState{}
	}
	if p.shared.facts == nil {
		p.shared.facts = buildFacts(p.All)
	}
	return p.shared.facts
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// pathTail returns the last element of an import path: both the real
// "specsampling/internal/obs" and a fixture "…/testdata/src/spanleak/obs"
// count as package obs.
func pathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeFunc resolves the static callee of a call expression: a package
// function, a method, or nil for builtins, conversions, function values and
// interface calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgCall reports whether call is a call to the package-level function
// name of a package whose import path ends in pkgTail.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgTail, name string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return pathTail(fn.Pkg().Path()) == pkgTail
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// namedStruct unwraps pointers and returns the named struct type behind t,
// or nil if t is not a (pointer to a) named struct.
func namedStruct(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}
