package analysis

import (
	"go/token"
	"regexp"
	"sort"
	"strings"
	"time"
)

// All returns every analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Detmap,
		Nondet,
		Ctxflow,
		Spanleak,
		Closecheck,
		Cachekey,
		Metricname,
		Lockheld,
		Goroleak,
		Atomicmix,
	}
}

// Names returns every analyzer name, in reporting order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}

// ByName resolves a comma-separated analyzer list ("detmap,spanleak");
// unknown names return nil.
func ByName(names string) []*Analyzer {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil
		}
	}
	return out
}

// Run executes the analyzers over the loaded packages and returns the
// surviving diagnostics, deduplicated, suppression-filtered and sorted by
// position. modulePath scopes module-wide analyzers (cachekey).
func Run(fset *token.FileSet, pkgs []*Package, modulePath string, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(fset, pkgs, modulePath, analyzers)
	return diags
}

// Timing records one analyzer's wall-clock cost inside RunTimed. The first
// analyzer to need the interprocedural facts engine pays for building it.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is Run plus a per-analyzer wall-time breakdown, in execution
// order (`speclint -time` / `make lint` print it).
func RunTimed(fset *token.FileSet, pkgs []*Package, modulePath string, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var diags []Diagnostic
	shared := &sharedState{}
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		pass := Pass{Fset: fset, All: pkgs, ModulePath: modulePath, analyzer: a.Name, diags: &diags, shared: shared}
		if a.Global {
			a.Run(&pass)
		} else {
			for _, pkg := range pkgs {
				p := pass
				p.Pkg = pkg
				a.Run(&p)
			}
		}
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Since(start)})
	}
	diags = filterSuppressed(fset, pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return dedup(diags), timings
}

// ignoreRe matches "//lint:ignore <analyzer> <reason>". The reason is
// mandatory — an undocumented suppression does not suppress.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+([A-Za-z0-9_,]+)\s+\S`)

// filterSuppressed drops diagnostics covered by a lint:ignore comment on
// the same line or the line immediately above (the directive documents the
// statement it precedes, like a compiler pragma).
func filterSuppressed(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> set of suppressed analyzer names.
	suppress := map[string]map[int]map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := suppress[pos.Filename]
					if byLine == nil {
						byLine = map[int]map[string]bool{}
						suppress[pos.Filename] = byLine
					}
					for _, name := range strings.Split(m[1], ",") {
						for _, line := range []int{pos.Line, pos.Line + 1} {
							if byLine[line] == nil {
								byLine[line] = map[string]bool{}
							}
							byLine[line][name] = true
						}
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if byLine := suppress[d.Pos.Filename]; byLine != nil && byLine[d.Pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// dedup removes identical consecutive diagnostics (a Global analyzer and a
// per-package one can, in principle, land on the same position).
func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
