package analysis

import (
	"path/filepath"
	"testing"
)

// runGolden loads one fixture package from testdata/src/<name>, runs the
// single analyzer it exercises, and checks the diagnostics against the
// fixture's `// want "regexp"` comments.
func runGolden(t *testing.T, name string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	analyzers := ByName(name)
	if analyzers == nil {
		t.Fatalf("unknown analyzer %q", name)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), dir)
	}
	diags := Run(l.Fset(), pkgs, l.ModulePath(), analyzers)
	for _, failure := range CheckGolden(l.Fset(), pkgs, diags) {
		t.Error(failure)
	}
}

func TestDetmapGolden(t *testing.T)     { runGolden(t, "detmap") }
func TestNondetGolden(t *testing.T)     { runGolden(t, "nondet") }
func TestCtxflowGolden(t *testing.T)    { runGolden(t, "ctxflow") }
func TestSpanleakGolden(t *testing.T)   { runGolden(t, "spanleak") }
func TestClosecheckGolden(t *testing.T) { runGolden(t, "closecheck") }
func TestCachekeyGolden(t *testing.T)   { runGolden(t, "cachekey") }
func TestMetricnameGolden(t *testing.T) { runGolden(t, "metricname") }
func TestLockheldGolden(t *testing.T)   { runGolden(t, "lockheld") }
func TestGoroleakGolden(t *testing.T)   { runGolden(t, "goroleak") }
func TestAtomicmixGolden(t *testing.T)  { runGolden(t, "atomicmix") }

// TestTreeClean is the self-run: the full analyzer set over the real module
// must report nothing. This is what `make lint` enforces in CI terms, pinned
// here so `go test` alone catches a regression.
func TestTreeClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(l.ModuleDir(), "..."))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages from the module")
	}
	diags := Run(l.Fset(), pkgs, l.ModulePath(), All())
	for _, d := range diags {
		t.Errorf("finding on the real tree: %s", d)
	}
}

func TestByName(t *testing.T) {
	if got := ByName("detmap,spanleak"); len(got) != 2 {
		t.Fatalf("ByName(detmap,spanleak) returned %d analyzers, want 2", len(got))
	}
	if got := ByName("nosuch"); got != nil {
		t.Fatalf("ByName(nosuch) = %v, want nil", got)
	}
}
