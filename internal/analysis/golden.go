package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
)

// The golden-comment harness: fixture packages under testdata annotate the
// lines where an analyzer must fire with
//
//	// want "regexp"
//
// (several quoted regexps on one line expect several diagnostics). Each
// want must match exactly one diagnostic on its line, and every diagnostic
// must be claimed by a want — seeded violations fire exactly once, fixed
// variants stay silent. Regexps match against "analyzer: message" so a
// fixture can pin which analyzer caught it.

// wantRe extracts the quoted expectations from a want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)

// wantQuoteRe splits the individual quoted regexps.
var wantQuoteRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantEntry struct {
	re      *regexp.Regexp
	raw     string
	line    int
	file    string
	matched bool
}

// CheckGolden compares diagnostics against the fixture's want comments and
// returns one failure message per mismatch (nil means the fixture passed).
func CheckGolden(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []string {
	wants := map[string]map[int][]*wantEntry{} // file -> line -> expectations
	var failures []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range wantQuoteRe.FindAllStringSubmatch(m[1], -1) {
						re, err := regexp.Compile(q[1])
						if err != nil {
							failures = append(failures, fmt.Sprintf(
								"%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q[1], err))
							continue
						}
						if wants[pos.Filename] == nil {
							wants[pos.Filename] = map[int][]*wantEntry{}
						}
						wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line],
							&wantEntry{re: re, raw: q[1], line: pos.Line, file: pos.Filename})
					}
				}
			}
		}
	}

	for _, d := range diags {
		text := d.Analyzer + ": " + d.Message
		claimed := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			failures = append(failures, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	var unmatched []*wantEntry
	for _, byLine := range wants {
		for _, entries := range byLine {
			for _, w := range entries {
				if !w.matched {
					unmatched = append(unmatched, w)
				}
			}
		}
	}
	sort.Slice(unmatched, func(i, j int) bool {
		if unmatched[i].file != unmatched[j].file {
			return unmatched[i].file < unmatched[j].file
		}
		return unmatched[i].line < unmatched[j].line
	})
	for _, w := range unmatched {
		failures = append(failures, fmt.Sprintf(
			"%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw))
	}
	return failures
}
