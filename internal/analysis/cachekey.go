package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Cachekey guards the persistent store's content addressing. Artifacts are
// keyed by a SHA-256 digest of configuration parts (see internal/store), so
// the cache is only sound if every Config field that can change a stage's
// output is folded into some store.Key derivation. A field added to a
// Config but forgotten in the key means two different configurations hash
// to the same artifact — the second run silently reads the first run's
// results. That bug is invisible to example-based tests (every test uses
// one configuration) and is exactly what this analyzer catches at compile
// time.
//
// Mechanics: every function whose results include a store.Key type is a
// key-derivation root. The analyzer walks the static call graph reachable
// from those roots and records every field of every *Config struct that the
// reachable code mentions (reads, writes, or sets in a composite literal —
// a field copied into the key's inputs counts as covered). Calls through an
// interface (the selector.Selector dispatch in core.Config.ClusterKey) have
// no single static callee, so the walk conservatively descends into every
// declared method with the callee's name whose receiver satisfies the
// interface — each registered backend's KeyParts body is part of the key
// derivation no matter which backend a given run picks. Any Config type
// with at least one covered field must have all of its fields covered;
// uncovered fields are reported at their declaration. Fields that are
// deliberately excluded (e.g. worker budgets that cannot change results)
// are documented with //lint:ignore cachekey <reason> at the field.
var Cachekey = &Analyzer{
	Name:   "cachekey",
	Doc:    "every Config field must be covered by a store.Key derivation",
	Global: true,
	Run:    runCachekey,
}

func runCachekey(pass *Pass) {
	// Index every function declaration in the loaded set (callgraph.go —
	// the machinery this analyzer grew is now shared with the facts
	// engine).
	decls := declIndex(pass.All)
	loaded := loadedPkgSet(pass.All)
	var roots []*types.Func
	for fn := range decls {
		if returnsStoreKey(fn) {
			roots = append(roots, fn)
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	// BFS over the call graph from the key-derivation roots. Interface
	// dispatch (the selector.Selector call in core.Config.ClusterKey) fans
	// out to every satisfying declared method — each registered backend's
	// KeyParts body is part of the key derivation no matter which backend a
	// given run picks.
	reachable := map[*types.Func]bool{}
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		if reachable[fn] {
			continue
		}
		reachable[fn] = true
		site, ok := decls[fn]
		if !ok {
			continue
		}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, target := range calleeTargets(site.pkg.Info, call, decls, loaded) {
				if !reachable[target] {
					work = append(work, target)
				}
			}
			return true
		})
	}

	// Collect mentioned (type, field) pairs across the reachable bodies.
	type fieldRef struct {
		typ   *types.Named
		field string
	}
	mentioned := map[fieldRef]bool{}
	candidates := map[*types.Named]bool{}
	consider := func(named *types.Named, field string) {
		if named == nil || !isModuleConfig(pass, named) {
			return
		}
		candidates[named] = true
		mentioned[fieldRef{named, field}] = true
	}
	for fn := range reachable {
		site, ok := decls[fn]
		if !ok {
			continue
		}
		info := site.pkg.Info
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					consider(namedStruct(sel.Recv()), n.Sel.Name)
				}
			case *ast.CompositeLit:
				named := namedStruct(info.TypeOf(n))
				if named == nil {
					return true
				}
				st, _ := named.Underlying().(*types.Struct)
				if st == nil {
					return true
				}
				keyed := false
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						keyed = true
						if id, ok := kv.Key.(*ast.Ident); ok {
							consider(named, id.Name)
						}
					}
				}
				if !keyed && len(n.Elts) > 0 {
					// Positional literal: every field is set.
					for i := 0; i < st.NumFields(); i++ {
						consider(named, st.Field(i).Name())
					}
				}
			}
			return true
		})
	}

	// Also count the receivers of the roots themselves: a method on a
	// Config is part of that Config's key story even before it touches a
	// field.
	for _, fn := range roots {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := namedStruct(sig.Recv().Type()); named != nil && isModuleConfig(pass, named) {
				candidates[named] = true
			}
		}
	}

	rootNames := make([]string, len(roots))
	for i, r := range roots {
		rootNames[i] = r.Name()
	}
	// Report uncovered fields of every candidate Config, in deterministic
	// type order.
	ordered := make([]*types.Named, 0, len(candidates))
	for named := range candidates {
		ordered = append(ordered, named)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].Obj().Pkg().Path()+"."+ordered[i].Obj().Name() <
			ordered[j].Obj().Pkg().Path()+"."+ordered[j].Obj().Name()
	})
	for _, named := range ordered {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if mentioned[fieldRef{named, f.Name()}] {
				continue
			}
			pass.Reportf(f.Pos(),
				"field %s of %s.%s is not covered by any store.Key derivation (%s); configurations differing only in %s would share a cache entry",
				f.Name(), pathTail(named.Obj().Pkg().Path()), named.Obj().Name(),
				strings.Join(rootNames, ", "), f.Name())
		}
	}
}

// returnsStoreKey reports whether any result of fn is the store.Key type
// (a named type Key from a package whose path ends in "store").
func returnsStoreKey(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		named, ok := sig.Results().At(i).Type().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Key" && obj.Pkg() != nil && pathTail(obj.Pkg().Path()) == "store" {
			return true
		}
	}
	return false
}

// isModuleConfig reports whether named is a configuration struct defined in
// the module under analysis (name ending in "Config", inside ModulePath).
func isModuleConfig(pass *Pass, named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Name(), "Config") {
		return false
	}
	path := obj.Pkg().Path()
	return path == pass.ModulePath || strings.HasPrefix(path, pass.ModulePath+"/")
}
