package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// kernelPackages are the deterministic kernels: pure functions of their
// inputs whose outputs feed reports, cache artifacts and the determinism
// tests. A wall-clock read, an environment read or a draw from the global
// RNG inside one of them makes results silently run-dependent.
var kernelPackages = map[string]bool{
	"kmeans":   true,
	"simpoint": true,
	"selector": true,
	"stats":    true,
	"subset":   true,
	"bbv":      true,
	"rng":      true,
	"branch":   true,
	"cache":    true,
	"timing":   true,
	"isa":      true,
	"native":   true,
	"pinball":  true,
	"pintool":  true,
	"pin":      true,
	"program":  true,
	"trace":    true,
	"workload": true,
}

// Nondet flags nondeterminism sources inside deterministic kernel packages:
// time.Now/time.Since (wall clock), os.Getenv/os.LookupEnv/os.Environ
// (ambient configuration that bypasses the Config structs the cache keys
// are derived from) and the global math/rand source (unseeded; explicit
// rand.New(rand.NewSource(seed)) values remain fine). Instrumentation-only
// clock reads are suppressed with a reasoned //lint:ignore nondet comment.
var Nondet = &Analyzer{
	Name: "nondet",
	Doc:  "no wall clock, environment or global-RNG reads in deterministic kernels",
	Run:  runNondet,
}

func runNondet(pass *Pass) {
	if !kernelPackages[pass.Pkg.Name] {
		return
	}
	info := pass.Pkg.Info
	pass.Pkg.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn) are seeded by construction
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
				pass.Reportf(call.Pos(),
					"call to time.%s in deterministic kernel package %s; results must not depend on the wall clock",
					fn.Name(), pass.Pkg.Name)
			}
		case "os":
			if fn.Name() == "Getenv" || fn.Name() == "LookupEnv" || fn.Name() == "Environ" {
				pass.Reportf(call.Pos(),
					"call to os.%s in deterministic kernel package %s; thread configuration through a Config instead of the environment",
					fn.Name(), pass.Pkg.Name)
			}
		case "math/rand", "math/rand/v2":
			// Constructors build explicitly-seeded generators; everything
			// else draws from (or reseeds) the shared global source.
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(call.Pos(),
					"call to %s.%s uses the global RNG in deterministic kernel package %s; use an explicitly seeded rand.New(...) or internal/rng",
					pathTail(fn.Pkg().Path()), fn.Name(), pass.Pkg.Name)
			}
		}
		return true
	})
}
