package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockheld enforces the daemon's two mutex disciplines, interprocedurally:
//
//  1. No mutex is held across a call that may block (facts.go's summary:
//     channel operations, Wait, sleeps, file/socket/HTTP I/O). The PR-8
//     handleList wedge — a handler holding Server.mu via defer while
//     writing the response — is the motivating instance: one slow client
//     stalls every other request that needs the lock.
//  2. Lock classes are acquired in one consistent module-wide order.
//     Every "B taken while A held" observation becomes an edge A→B in an
//     ordering graph; a cycle means two call paths can each hold what the
//     other wants.
//
// The held-set walk is statement-level and path-sensitive in the style of
// spanleak: branches are walked with copies of the held set and the
// fall-through state is the intersection (must-hold). `defer mu.Unlock()`
// keeps the lock held to every later statement — that is precisely the
// shape of the PR-8 bug. Lock identity is by class (type + field, or
// package variable; see lockClass), so two instances of the same struct
// share a class: same-class nesting is therefore not reported (instance
// identity is out of reach without points-to analysis), and calls through
// plain function values are invisible. See DESIGN.md §14 for the full
// soundness story.
var Lockheld = &Analyzer{
	Name:   "lockheld",
	Doc:    "no mutex held across a may-block call; consistent lock order",
	Global: true,
	Run:    runLockheld,
}

// heldLock is one acquired lock on the current path.
type heldLock struct {
	class string
	pos   token.Pos
}

// lockEdge is one observed "to acquired while from held" ordering fact.
type lockEdge struct {
	from, to string
	pos      token.Pos // the acquisition site of to
}

func runLockheld(pass *Pass) {
	eng := pass.facts()
	w := &lockWalker{
		pass:    pass,
		eng:     eng,
		visited: map[*ast.FuncLit]bool{},
		edges:   map[[2]string]token.Pos{},
	}
	for _, pkg := range pass.All {
		w.pkg = pkg
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					w.walkRoot(fd.Body, nil)
				}
			}
		}
		// Function literals not reached from any declaration body
		// (package-level var initialisers) run as their own roots.
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && !w.visited[lit] {
					w.walkRoot(lit.Body, nil)
					return false
				}
				return true
			})
		}
	}
	w.reportInversions()
}

// lockWalker carries the module-wide state (visited literals, ordering
// edges) across per-function walks.
type lockWalker struct {
	pass     *Pass
	pkg      *Package
	eng      *factsEngine
	visited  map[*ast.FuncLit]bool
	edges    map[[2]string]token.Pos
	reported map[string]bool   // per root: class → a block report already fired
	inSelect map[ast.Node]bool // per root: channel ops owned by a select statement
}

// walkRoot analyses one function body from a fresh reporting scope.
func (w *lockWalker) walkRoot(body *ast.BlockStmt, held []heldLock) {
	w.reported = map[string]bool{}
	w.inSelect = map[ast.Node]bool{}
	w.stmts(body.List, held)
}

// stmts walks a statement list, threading the held set through it, and
// reports whether every path through the list terminates before its end.
func (w *lockWalker) stmts(list []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range list {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.topCall(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
		if !w.inSelect[s] {
			w.reportBlock(s.Pos(), held, "a channel send", blockChan, "")
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the list; treat as end-of-path (the
		// jump target is walked with the state it had on the normal path).
		return held, true
	case *ast.DeferStmt:
		return w.deferStmt(s, held), false
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && !w.visited[lit] {
			// The spawned body starts with no locks held, whatever the
			// spawner holds.
			w.visited[lit] = true
			w.stmts(lit.Body.List, nil)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		var exits [][]heldLock
		cur := s
		for {
			if out, term := w.stmts(cur.Body.List, copyHeld(held)); !term {
				exits = append(exits, out)
			}
			switch e := cur.Else.(type) {
			case *ast.IfStmt:
				if e.Init != nil {
					held, _ = w.stmt(e.Init, held)
				}
				w.expr(e.Cond, held)
				cur = e
				continue
			case *ast.BlockStmt:
				if out, term := w.stmts(e.List, copyHeld(held)); !term {
					exits = append(exits, out)
				}
			case nil:
				exits = append(exits, held) // condition-false fall-through
			}
			break
		}
		if len(exits) == 0 {
			return held, true
		}
		return intersectHeld(exits), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		return w.clauses(s.Body, hasDefaultClause(s.Body), held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		return w.clauses(s.Body, hasDefaultClause(s.Body), held)
	case *ast.SelectStmt:
		w.markComms(s)
		if !hasDefaultComm(s.Body) {
			w.reportBlock(s.Pos(), held, "a select with no default clause", blockChan, "")
		}
		for _, cl := range s.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
				held, _ = w.stmt(comm.Comm, held)
			}
		}
		return w.clauses(s.Body, true, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		// The body may run zero times, so the loop does not change the
		// outer state; blocking while held inside is still checked.
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		w.expr(s.X, held)
		if t := w.pkg.Info.TypeOf(s.X); t != nil && isChanType(t) {
			w.reportBlock(s.Pos(), held, "a range over a channel", blockChan, "")
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return held, false
}

// clauses walks switch/select case bodies with copies of the held set and
// joins the continuing paths by intersection (must-hold).
func (w *lockWalker) clauses(body *ast.BlockStmt, hasDefault bool, held []heldLock) ([]heldLock, bool) {
	var exits [][]heldLock
	for _, b := range clauseBodies(body) {
		if out, term := w.stmts(b, copyHeld(held)); !term {
			exits = append(exits, out)
		}
	}
	if !hasDefault {
		exits = append(exits, held) // no case taken
	}
	if len(exits) == 0 {
		return held, true
	}
	return intersectHeld(exits), false
}

// topCall handles a statement-level expression: lock and unlock calls
// mutate the held set here and only here (nested lock calls are treated as
// momentary — ordering edges without a held-set change).
func (w *lockWalker) topCall(e ast.Expr, held []heldLock) []heldLock {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		w.expr(e, held)
		return held
	}
	if callee := originFunc(calleeFunc(w.pkg.Info, call)); callee != nil {
		switch op, class := lockOp(w.pkg.Info, call, callee); op {
		case lockAcquire:
			return w.acquire(call.Pos(), class, held)
		case lockRelease:
			return releaseHeld(held, class)
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok && !w.visited[lit] {
		// Immediately-invoked literal: runs here, with these locks.
		w.visited[lit] = true
		for _, arg := range call.Args {
			w.expr(arg, held)
		}
		w.stmts(lit.Body.List, copyHeld(held))
		return held
	}
	w.expr(call, held)
	return held
}

// deferStmt handles defer: a deferred Unlock keeps the lock held for the
// rest of the walk (that is the PR-8 shape the analyzer exists to catch);
// a deferred literal or call runs with whatever is held at registration —
// an approximation of the held set at return that is exact whenever the
// matching deferred Unlock was registered first (the idiomatic order).
func (w *lockWalker) deferStmt(d *ast.DeferStmt, held []heldLock) []heldLock {
	if callee := originFunc(calleeFunc(w.pkg.Info, d.Call)); callee != nil {
		if op, _ := lockOp(w.pkg.Info, d.Call, callee); op != lockNone {
			return held // defer mu.Unlock(): held to the end of the walk
		}
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && !w.visited[lit] {
		w.visited[lit] = true
		for _, arg := range d.Call.Args {
			w.expr(arg, held)
		}
		w.stmts(lit.Body.List, copyHeld(held))
		return held
	}
	w.expr(d.Call, held)
	return held
}

// acquire records ordering edges against everything held and pushes the
// class. Same-class nesting is skipped: the class abstraction cannot tell
// two instances of one type apart.
func (w *lockWalker) acquire(pos token.Pos, class string, held []heldLock) []heldLock {
	for _, h := range held {
		if h.class == class {
			return held
		}
		w.addEdge(h.class, class, pos)
	}
	return append(copyHeld(held), heldLock{class: class, pos: pos})
}

func (w *lockWalker) addEdge(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if _, ok := w.edges[key]; !ok {
		w.edges[key] = pos
	}
}

// expr scans an expression for effects under the current held set: calls
// whose summaries may block or acquire, raw channel operations, and
// function literals (walked inline when invoked or deferred at statement
// level — here they are escaping values, walked once with nothing held).
func (w *lockWalker) expr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	info := w.pkg.Info
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !w.visited[n] {
				w.visited[n] = true
				w.stmts(n.Body.List, nil)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !w.inSelect[n] {
				w.reportBlock(n.Pos(), held, "a channel receive", blockChan, "")
			}
			return true
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok && !w.visited[lit] {
				// Invoked in expression position: runs right here.
				w.visited[lit] = true
				w.stmts(lit.Body.List, copyHeld(held))
				return true // still scan the arguments
			}
			callee := originFunc(calleeFunc(info, n))
			if callee == nil {
				return true
			}
			if op, class := lockOp(info, n, callee); op != lockNone {
				if op == lockAcquire {
					for _, h := range held {
						if h.class != class {
							w.addEdge(h.class, class, n.Pos())
						}
					}
				}
				return true
			}
			if targets := calleeTargets(info, n, w.eng.decls, w.eng.loaded); targets != nil {
				w.moduleCall(n, callee, targets, held)
				return true
			}
			if kind, what := externBlockKind(callee); kind != 0 {
				w.reportBlock(n.Pos(), held, "a call to "+what, kind, "")
			}
			return true
		}
		return true
	})
}

// moduleCall folds a resolved call's summaries into reports: a may-block
// callee fires the held-across-block report with its witness chain; a
// may-acquire callee contributes ordering edges.
func (w *lockWalker) moduleCall(call *ast.CallExpr, callee *types.Func, targets []*types.Func, held []heldLock) {
	name := shortFuncName(callee)
	for _, target := range targets {
		f := w.eng.facts[target]
		if f == nil {
			continue
		}
		if f.blocks != 0 && len(held) > 0 {
			kind, wit := firstWitness(f)
			chain := append([]string{name}, wit.path...)
			w.reportBlock(call.Pos(), held, "a call to "+name, kind,
				wit.what+" via "+joinArrows(chain))
		}
		if len(held) > 0 && len(f.acquires) > 0 {
			classes := make([]string, 0, len(f.acquires))
			for class := range f.acquires {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			for _, class := range classes {
				for _, h := range held {
					if h.class != class {
						w.addEdge(h.class, class, call.Pos())
					}
				}
			}
		}
	}
}

// firstWitness picks the lowest set blocking bit's witness, giving stable
// diagnostics regardless of how the summary was assembled.
func firstWitness(f *funcFacts) (blockKind, witness) {
	for _, e := range blockKindNames {
		if f.blocks&e.kind != 0 {
			return e.kind, f.witnesses[e.kind]
		}
	}
	return 0, witness{}
}

// joinArrows renders a call chain for a witness message.
func joinArrows(chain []string) string {
	out := ""
	for i, c := range chain {
		if i > 0 {
			out += " → "
		}
		out += c
	}
	return out
}

func copyHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// releaseHeld removes the most recent acquisition of class.
func releaseHeld(held []heldLock, class string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].class == class {
			return append(copyHeld(held[:i]), held[i+1:]...)
		}
	}
	return held
}

// intersectHeld joins branch exit states must-hold style: a lock counts as
// held after the branch only if every continuing path still holds it.
func intersectHeld(states [][]heldLock) []heldLock {
	out := states[0]
	for _, s := range states[1:] {
		var kept []heldLock
		for _, h := range out {
			for _, o := range s {
				if o.class == h.class {
					kept = append(kept, h)
					break
				}
			}
		}
		out = kept
	}
	return out
}

// markComms registers a select's comm-clause channel operations so they
// are not double-reported: the select statement itself carries the
// blocking fact (or none, when a default clause makes it non-blocking).
func (w *lockWalker) markComms(sel *ast.SelectStmt) {
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		switch c := comm.Comm.(type) {
		case *ast.SendStmt:
			w.inSelect[c] = true
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok {
				w.inSelect[u] = true
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok {
					w.inSelect[u] = true
				}
			}
		}
	}
}

// reportBlock fires the held-across-block diagnostic, at most once per
// lock class per function root (the first blocking site names the bug; a
// second report for the same lock in the same function is noise).
func (w *lockWalker) reportBlock(pos token.Pos, held []heldLock, desc string, kind blockKind, via string) {
	if len(held) == 0 {
		return
	}
	h := held[len(held)-1]
	if w.reported[h.class] {
		return
	}
	w.reported[h.class] = true
	detail := kind.String()
	if via != "" {
		detail += " — " + via
	}
	w.pass.Reportf(pos, "%s is held across %s (may block: %s); a blocked holder stalls every other user of the lock",
		h.class, desc, detail)
}

// reportInversions finds cycles in the ordering graph and reports every
// edge that participates in one, citing a witness for the reverse path.
func (w *lockWalker) reportInversions() {
	if len(w.edges) == 0 {
		return
	}
	succ := map[string][]string{}
	for key := range w.edges {
		succ[key[0]] = append(succ[key[0]], key[1])
	}
	for _, s := range succ {
		sort.Strings(s)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, succ[n]...)
		}
		return false
	}
	keys := make([][2]string, 0, len(w.edges))
	for key := range w.edges {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		from, to := key[0], key[1]
		if !reaches(to, from) {
			continue
		}
		cite := "elsewhere"
		if pos, ok := w.edges[[2]string{to, from}]; ok {
			p := w.pass.Fset.Position(pos)
			cite = fmt.Sprintf("%s:%d", p.Filename, p.Line)
		}
		w.pass.Reportf(w.edges[key],
			"%s is acquired while %s is held, but the reverse order exists (%s); inconsistent lock order can deadlock",
			to, from, cite)
	}
}
