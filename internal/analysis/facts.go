package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the interprocedural facts engine: a fixed-point propagator
// that computes one summary per declared function over the call graph
// (callgraph.go). The summary lattice is small and strictly monotone —
// bit-set of may-block kinds, a may-acquire set of lock classes, and three
// booleans — so propagation is a simple round-robin over the functions in
// deterministic order until nothing changes.
//
// Base facts come from three places:
//
//   - syntax: channel sends/receives, selects without a default clause, and
//     ranging over a channel may block; `go` statements spawn; `for` loops
//     with no three-clause bound may loop forever; receiving from a
//     struct{}-element channel, draining a channel with range, calling
//     (*sync.WaitGroup).Done or polling ctx.Err() are bounded-exit signals;
//   - a curated table of standard-library calls whose bodies the loader
//     does not type-check (deps load with IgnoreFuncBodies): time.Sleep,
//     WaitGroup.Wait, bufio/os/net/json writes, http round trips, …;
//   - abstract interface methods declared outside the module (io.Writer,
//     http.ResponseWriter, net.Conn, …) — a call through them can reach a
//     pipe, socket or client connection, so Write/Read/Flush/Close-shaped
//     names count as potential I/O blocks.
//
// Soundness caveats (see DESIGN.md §14): calls through plain function
// values are invisible (no points-to analysis); stdlib callees outside the
// curated table are assumed non-blocking; function literals that do not run
// on the spawning goroutine (`go func(){…}()`) contribute nothing to the
// enclosing summary except spawns=true — their bodies are analysed at the
// spawn site by goroleak and as independent roots by lockheld.

// blockKind is a bit-set classifying why a call may block. Lock
// acquisition is deliberately not a kind: blocking on a mutex is only a
// defect in combination with the held-set and ordering graph, which
// lockheld tracks through the acquires set instead.
type blockKind uint8

const (
	blockChan  blockKind = 1 << iota // channel send/receive, select without default
	blockWait                        // WaitGroup.Wait, Cond.Wait, process waits
	blockIO                          // file, pipe, socket and HTTP reads/writes
	blockSleep                       // time.Sleep and friends
)

var blockKindNames = []struct {
	kind blockKind
	name string
}{
	{blockChan, "chan"},
	{blockWait, "wait"},
	{blockIO, "io"},
	{blockSleep, "sleep"},
}

// String renders the mask as "io+chan" style for diagnostics.
func (k blockKind) String() string {
	var parts []string
	for _, e := range blockKindNames {
		if k&e.kind != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// witness records why one blockKind bit of a summary is set: the base
// operation, where it sits, and the callee chain it was inherited through
// (empty for a direct operation, capped for readability).
type witness struct {
	what string // "channel send", "(*bufio.Writer).Flush", …
	pos  token.Pos
	path []string // call chain from the summarised function down to what
}

// describe renders the witness for a diagnostic message.
func (w witness) describe() string {
	if len(w.path) == 0 {
		return w.what
	}
	return w.what + " via " + strings.Join(w.path, " → ")
}

// funcFacts is one function's interprocedural summary.
type funcFacts struct {
	blocks    blockKind
	witnesses map[blockKind]witness
	spawns    bool                 // contains (or calls something containing) a go statement
	acquires  map[string]token.Pos // lock classes this call may take, however briefly
	hasLoop   bool                 // contains a loop with no structural bound
	hasExit   bool                 // contains a bounded-exit signal (see package comment)
}

func newFuncFacts() *funcFacts {
	return &funcFacts{
		witnesses: map[blockKind]witness{},
		acquires:  map[string]token.Pos{},
	}
}

// setBlock sets one blocking bit with its witness; the first witness for a
// bit wins, keeping diagnostics stable across propagation rounds.
func (f *funcFacts) setBlock(kind blockKind, w witness) bool {
	if f.blocks&kind != 0 {
		return false
	}
	f.blocks |= kind
	f.witnesses[kind] = w
	return true
}

// callSite is one resolved call inside a function body: where it is, what
// to call it in messages, and which declared functions may run.
type callSite struct {
	pos     token.Pos
	name    string
	targets []*types.Func
}

// factsEngine owns the call graph and the computed summaries for one
// loaded package set. It is built once per driver.Run (shared across
// analyzers through Pass.facts) and is read-only after construction.
type factsEngine struct {
	decls  map[*types.Func]declSite
	loaded map[*types.Package]bool // full-syntax packages: interface-dispatch scope
	funcs  []*types.Func           // deterministic propagation order
	facts  map[*types.Func]*funcFacts
	calls  map[*types.Func][]callSite
	lits   map[*ast.FuncLit]*funcFacts // memoised go-spawned literal summaries
}

// buildFacts scans every declared function and runs the propagation to a
// fixed point.
func buildFacts(pkgs []*Package) *factsEngine {
	e := &factsEngine{
		decls:  declIndex(pkgs),
		loaded: loadedPkgSet(pkgs),
		facts:  map[*types.Func]*funcFacts{},
		calls:  map[*types.Func][]callSite{},
		lits:   map[*ast.FuncLit]*funcFacts{},
	}
	for fn := range e.decls {
		e.funcs = append(e.funcs, fn)
	}
	sortFuncs(e.funcs)
	for _, fn := range e.funcs {
		site := e.decls[fn]
		facts, calls := e.scanBody(site.pkg, site.decl.Body)
		e.facts[fn] = facts
		e.calls[fn] = calls
	}
	e.propagate()
	return e
}

// factsFor returns fn's summary (normalising generic instantiations), or
// nil when fn has no body in the loaded set.
func (e *factsEngine) factsFor(fn *types.Func) *funcFacts {
	return e.facts[originFunc(fn)]
}

// litFacts summarises one go-spawned function literal: its direct facts
// plus the summaries of everything it calls. No fixed point is needed — a
// literal cannot be called back into by name.
func (e *factsEngine) litFacts(pkg *Package, lit *ast.FuncLit) *funcFacts {
	if f, ok := e.lits[lit]; ok {
		return f
	}
	facts, calls := e.scanBody(pkg, lit.Body)
	for _, cs := range calls {
		for _, target := range cs.targets {
			if tf := e.facts[target]; tf != nil {
				mergeFacts(facts, tf, cs)
			}
		}
	}
	e.lits[lit] = facts
	return facts
}

// propagate folds callee summaries into caller summaries until the lattice
// stops moving. Everything merged is monotone (bits and set unions), so
// termination is bounded by lattice height × functions.
func (e *factsEngine) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range e.funcs {
			facts := e.facts[fn]
			for _, cs := range e.calls[fn] {
				for _, target := range cs.targets {
					tf := e.facts[target]
					if tf == nil || tf == facts {
						continue
					}
					if mergeFacts(facts, tf, cs) {
						changed = true
					}
				}
			}
		}
	}
}

// mergeFacts folds callee facts into caller facts at call site cs,
// reporting whether anything new was learned.
func mergeFacts(caller, callee *funcFacts, cs callSite) bool {
	changed := false
	for _, e := range blockKindNames {
		if callee.blocks&e.kind == 0 || caller.blocks&e.kind != 0 {
			continue
		}
		w := callee.witnesses[e.kind]
		path := append([]string{cs.name}, w.path...)
		if len(path) > 3 {
			path = append(path[:3:3], "…")
		}
		caller.setBlock(e.kind, witness{what: w.what, pos: cs.pos, path: path})
		changed = true
	}
	if callee.spawns && !caller.spawns {
		caller.spawns = true
		changed = true
	}
	if callee.hasLoop && !caller.hasLoop {
		caller.hasLoop = true
		changed = true
	}
	if callee.hasExit && !caller.hasExit {
		caller.hasExit = true
		changed = true
	}
	for class := range callee.acquires {
		if _, ok := caller.acquires[class]; !ok {
			caller.acquires[class] = cs.pos
			changed = true
		}
	}
	return changed
}

// scanBody computes the direct facts of one function (or literal) body and
// collects its resolved call sites. Function literals that run on the same
// goroutine (immediate calls, defers, assigned closures) are folded into
// the enclosing summary; go-spawned work only sets spawns.
func (e *factsEngine) scanBody(pkg *Package, body *ast.BlockStmt) (*funcFacts, []callSite) {
	s := &bodyScanner{pkg: pkg, decls: e.decls, loaded: e.loaded, facts: newFuncFacts()}
	s.scan(body)
	return s.facts, s.calls
}

type bodyScanner struct {
	pkg      *Package
	decls    map[*types.Func]declSite
	loaded   map[*types.Package]bool
	facts    *funcFacts
	calls    []callSite
	inSelect map[ast.Node]bool // channel ops that belong to a select's comm clauses
}

func (s *bodyScanner) scan(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, s.visit)
}

func (s *bodyScanner) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.GoStmt:
		// The spawn itself never blocks the current goroutine; the spawned
		// body is analysed at the spawn site (goroleak) and as its own root
		// (lockheld). Arguments do evaluate here.
		s.facts.spawns = true
		for _, arg := range n.Call.Args {
			s.scan(arg)
		}
		return false
	case *ast.SelectStmt:
		if !hasDefaultComm(n.Body) {
			s.facts.setBlock(blockChan, witness{what: "select with no default clause", pos: n.Pos()})
		}
		s.markSelectComms(n)
		return true
	case *ast.SendStmt:
		if !s.inSelect[n] {
			s.facts.setBlock(blockChan, witness{what: "channel send", pos: n.Pos()})
		}
		return true
	case *ast.UnaryExpr:
		if n.Op != token.ARROW {
			return true
		}
		if !s.inSelect[n] {
			s.facts.setBlock(blockChan, witness{what: "channel receive", pos: n.Pos()})
		}
		if isSignalChan(s.pkg.Info.TypeOf(n.X)) {
			s.facts.hasExit = true
		}
		return true
	case *ast.RangeStmt:
		if t := s.pkg.Info.TypeOf(n.X); t != nil && isChanType(t) {
			// Draining a channel blocks between elements, and is also a
			// bounded exit: the loop ends when the producer closes it.
			s.facts.setBlock(blockChan, witness{what: "range over channel", pos: n.Pos()})
			s.facts.hasExit = true
		}
		return true
	case *ast.ForStmt:
		// A loop with no three-clause bound (`for {}`, `for cond {}`) can
		// run forever; counted loops are treated as structurally bounded.
		if n.Cond == nil || (n.Init == nil && n.Post == nil) {
			s.facts.hasLoop = true
		}
		return true
	case *ast.CallExpr:
		s.call(n)
		return true
	}
	return true
}

// call classifies one call expression into the summary.
func (s *bodyScanner) call(call *ast.CallExpr) {
	info := s.pkg.Info
	callee := originFunc(calleeFunc(info, call))
	if callee == nil {
		return // builtin, conversion or function value: invisible (caveat)
	}
	if op, class := lockOp(info, call, callee); op != lockNone {
		if op == lockAcquire {
			if _, ok := s.facts.acquires[class]; !ok {
				s.facts.acquires[class] = call.Pos()
			}
		}
		return
	}
	if isWaitGroupDone(callee) || isContextErr(callee) {
		s.facts.hasExit = true
		return
	}
	if targets := calleeTargets(info, call, s.decls, s.loaded); targets != nil {
		s.calls = append(s.calls, callSite{pos: call.Pos(), name: shortFuncName(callee), targets: targets})
		return
	}
	if kind, what := externBlockKind(callee); kind != 0 {
		s.facts.setBlock(kind, witness{what: what, pos: call.Pos()})
	}
}

// markSelectComms records the channel operations that form a select's comm
// clauses so visit does not double-count them: the select statement itself
// already carries the blocking fact (or none, with a default clause).
func (s *bodyScanner) markSelectComms(sel *ast.SelectStmt) {
	if s.inSelect == nil {
		s.inSelect = map[ast.Node]bool{}
	}
	for _, clause := range sel.Body.List {
		comm, ok := clause.(*ast.CommClause)
		if !ok || comm.Comm == nil {
			continue
		}
		switch c := comm.Comm.(type) {
		case *ast.SendStmt:
			s.inSelect[c] = true
		case *ast.ExprStmt:
			if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok {
				s.inSelect[u] = true
			}
		case *ast.AssignStmt:
			for _, rhs := range c.Rhs {
				if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok {
					s.inSelect[u] = true
				}
			}
		}
	}
}

// hasDefaultComm reports whether a select body has a default clause.
func hasDefaultComm(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if c, ok := s.(*ast.CommClause); ok && c.Comm == nil {
			return true
		}
	}
	return false
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isSignalChan reports whether t is a channel of struct{} — the shape of
// ctx.Done(), stop channels and close-to-broadcast done channels, whose
// receive is read as a bounded-exit signal.
func isSignalChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// lockOpKind classifies sync lock-method calls.
type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp recognises (*sync.Mutex)/(*sync.RWMutex) Lock/RLock/Unlock/RUnlock
// calls and derives the lock class (lockClass below).
func lockOp(info *types.Info, call *ast.CallExpr, callee *types.Func) (lockOpKind, string) {
	if callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return lockNone, ""
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockNone, ""
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return lockNone, ""
	}
	var op lockOpKind
	switch callee.Name() {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return lockNone, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone, ""
	}
	return op, lockClass(info, sel.X)
}

// lockClass names the mutex a lock call operates on, identity-by-shape:
// a struct field is "pkg.Type.field" (every instance of the type shares
// the class — the ordering discipline is per-type, not per-object), a
// package-level variable is "pkg.var", anything else falls back to the
// expression text. Aliased mutexes (`m := &s.mu`) fall into the fallback
// and are effectively untracked — a documented caveat.
func lockClass(info *types.Info, mux ast.Expr) string {
	switch m := ast.Unparen(mux).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[m]; ok && sel.Kind() == types.FieldVal {
			if named := namedStruct(sel.Recv()); named != nil {
				pkg := ""
				if named.Obj().Pkg() != nil {
					pkg = pathTail(named.Obj().Pkg().Path()) + "."
				}
				return pkg + named.Obj().Name() + "." + m.Sel.Name
			}
		}
		return types.ExprString(m)
	case *ast.Ident:
		obj := info.ObjectOf(m)
		if obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() {
				return pathTail(obj.Pkg().Path()) + "." + obj.Name()
			}
			return "local " + obj.Name()
		}
		return m.Name
	default:
		return types.ExprString(mux)
	}
}

// isWaitGroupDone matches (*sync.WaitGroup).Done — ownership of a
// WaitGroup counts as a bounded exit for the goroutine holding it.
func isWaitGroupDone(fn *types.Func) bool {
	if fn.Name() != "Done" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isContextErr matches (context.Context).Err — polling ctx.Err() in a loop
// condition is the pipeline's other sanctioned exit idiom.
func isContextErr(fn *types.Func) bool {
	return fn.Name() == "Err" && fn.Pkg() != nil && fn.Pkg().Path() == "context" && ifaceRecv(fn) != nil
}

// externBlockKind is the curated table of standard-library calls that may
// block. The loader type-checks dependencies with IgnoreFuncBodies, so
// these facts cannot be derived — they are asserted. Anything outside the
// table is assumed non-blocking (a documented caveat, not a guarantee).
func externBlockKind(fn *types.Func) (blockKind, string) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, ""
	}
	path, name := pkg.Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	full := func() string {
		if isMethod {
			return "(" + path + ")." + name
		}
		return path + "." + name
	}

	// Abstract interface methods declared outside the module: a call
	// through io.Writer, http.ResponseWriter, net.Conn, … can reach a pipe,
	// socket or client connection.
	if isMethod && ifaceRecv(fn) != nil {
		switch name {
		case "Write", "WriteString", "WriteHeader", "WriteTo", "ReadFrom", "Read", "Flush", "Close", "Accept":
			return blockIO, "(" + pathTail(path) + " interface)." + name
		}
		return 0, ""
	}

	switch path {
	case "time":
		if !isMethod && name == "Sleep" {
			return blockSleep, "time.Sleep"
		}
	case "sync":
		if isMethod && name == "Wait" { // WaitGroup.Wait, Cond.Wait
			return blockWait, full()
		}
	case "os/exec":
		if isMethod && (name == "Wait" || name == "Run" || name == "Output" || name == "CombinedOutput") {
			return blockWait, full()
		}
	case "fmt":
		if !isMethod && strings.HasPrefix(name, "Fprint") {
			return blockIO, "fmt." + name
		}
	case "io":
		if !isMethod {
			switch name {
			case "WriteString", "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull":
				return blockIO, "io." + name
			}
		}
	case "bufio":
		if isMethod && (strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Read") || name == "Flush") {
			return blockIO, full()
		}
	case "encoding/json":
		if isMethod && (name == "Encode" || name == "Decode" || name == "Token" || name == "More") {
			return blockIO, full()
		}
	case "os":
		if isMethod {
			switch name {
			case "Write", "WriteString", "WriteAt", "Read", "ReadAt", "Sync":
				return blockIO, full()
			}
		}
	case "net":
		if isMethod {
			switch name {
			case "Read", "Write", "Accept", "Close":
				return blockIO, full()
			}
		}
	case "net/http":
		if isMethod {
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head", "Serve", "ListenAndServe", "Shutdown":
				return blockIO, full()
			}
		}
	}
	return 0, ""
}
