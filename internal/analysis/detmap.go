package analysis

import (
	"go/ast"
	"go/types"
)

// detmapPackages are the result-producing packages: everything they compute
// lands in a report, a figure or a cache artifact that must be byte-identical
// across runs, so map iteration order must never influence their output.
var detmapPackages = map[string]bool{
	"kmeans":      true,
	"core":        true,
	"stats":       true,
	"simpoint":    true,
	"subset":      true,
	"selector":    true,
	"experiments": true,
	// serve hands out experiment reports over HTTP; its job table and dedup
	// index are maps, and anything folded out of them (listings, stats,
	// result bytes) must not depend on iteration order. ctxflow, spanleak
	// and closecheck already cover it module-wide.
	"serve": true,
}

// Detmap flags `range` over a map in result-producing packages. Go
// randomises map iteration order per run, so any computation that folds over
// it in iteration order (appending to output, accumulating floats, picking
// "the first" match) produces run-dependent results — the exact bug class
// the determinism tests guard against, caught here at compile time. The
// approved pattern is to collect the keys, sort them, and range over the
// sorted slice; a pure key-collection loop (append the key, count, delete)
// is order-insensitive and stays allowed.
var Detmap = &Analyzer{
	Name: "detmap",
	Doc:  "map iteration in result-producing packages must use sorted keys",
	Run:  runDetmap,
}

func runDetmap(pass *Pass) {
	if !detmapPackages[pass.Pkg.Name] {
		return
	}
	info := pass.Pkg.Info
	pass.Pkg.Inspect(func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if orderInsensitiveMapLoop(info, rs) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"range over map has nondeterministic iteration order in a result-producing package; collect the keys, sort them, and range over the slice")
		return true
	})
}

// orderInsensitiveMapLoop recognises the loop shapes whose result cannot
// depend on iteration order: no loop variables at all, or a key-only loop
// whose body just collects the key (append to a slice, integer count,
// delete from a map).
func orderInsensitiveMapLoop(info *types.Info, rs *ast.RangeStmt) bool {
	if rs.Key == nil && rs.Value == nil {
		return true
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	keyObj := info.Defs[key]
	if key.Name == "_" || keyObj == nil {
		return false
	}
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// x = append(x, key)
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") || len(call.Args) != 2 {
				return false
			}
			if !sameObject(info, s.Lhs[0], call.Args[0]) || !usesObject(info, call.Args[1], keyObj) {
				return false
			}
		case *ast.IncDecStmt:
			// n++ (integer counters commute; float accumulation does not)
			t := info.TypeOf(s.X)
			if t == nil {
				return false
			}
			if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, key)
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "delete") {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sameObject reports whether two expressions are identifiers bound to the
// same object.
func sameObject(info *types.Info, a, b ast.Expr) bool {
	ai, ok := ast.Unparen(a).(*ast.Ident)
	if !ok {
		return false
	}
	bi, ok := ast.Unparen(b).(*ast.Ident)
	if !ok {
		return false
	}
	ao := info.ObjectOf(ai)
	return ao != nil && ao == info.ObjectOf(bi)
}

// usesObject reports whether expr is an identifier bound to obj.
func usesObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}
