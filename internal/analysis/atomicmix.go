package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix forbids mixing sync/atomic access with plain loads and stores
// on the same variable. A field updated with atomic.AddInt64 but read with
// a plain selector races: the compiler and CPU are free to tear, cache or
// reorder the plain access, and the race detector only catches the
// schedules a test happens to see. The obs package's sticky scope guard
// and counter fast paths are the motivating surfaces — they moved to the
// typed atomics (atomic.Bool, atomic.Int64), which make mixing a type
// error; this analyzer polices the function-based form module-wide.
//
// Mechanics: the first pass collects every variable whose address is taken
// by a sync/atomic function call — struct fields identified as
// (type, field) so every instance shares the discipline, package-level and
// local variables by their object. The second pass reports every plain
// access to a collected variable outside those sanctioned call sites.
// Methods on the typed atomics are not sync/atomic function calls, so
// types that already use them never register. Keyed struct literals do not
// produce field selections and are deliberately exempt: zero-value
// initialisation before the value is shared is the one safe plain write.
var Atomicmix = &Analyzer{
	Name:   "atomicmix",
	Doc:    "no variable accessed both via sync/atomic and plainly",
	Global: true,
	Run:    runAtomicmix,
}

// atomicRef identifies one atomically-accessed variable: a struct field by
// owner type and name, or any other variable by its object.
type atomicRef struct {
	obj   types.Object
	named *types.Named
	field string
}

func runAtomicmix(pass *Pass) {
	firstUse := map[atomicRef]token.Position{}
	firstFn := map[atomicRef]string{}
	sanctioned := map[ast.Node]bool{}

	// Pass 1: collect &x arguments of sync/atomic function calls.
	for _, pkg := range pass.All {
		info := pkg.Info
		pkg.Inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on atomic.Int64 etc. are the safe form
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				ref, ok := refOf(info, u.X)
				if !ok {
					continue
				}
				sanctioned[ast.Unparen(u.X)] = true
				if _, seen := firstUse[ref]; !seen {
					firstUse[ref] = pass.Fset.Position(u.X.Pos())
					firstFn[ref] = "atomic." + fn.Name()
				}
			}
			return true
		})
	}
	if len(firstUse) == 0 {
		return
	}

	// Pass 2: report plain accesses to the collected variables.
	for _, pkg := range pass.All {
		info := pkg.Info
		pkg.Inspect(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return false
				}
				sel, ok := info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				ref := atomicRef{named: namedStruct(sel.Recv()), field: n.Sel.Name}
				if ref.named == nil {
					return true
				}
				if at, ok := firstUse[ref]; ok {
					pass.Reportf(n.Pos(),
						"field %s of %s.%s is accessed with %s (%s:%d) but read or written plainly here; mixing atomic and plain access is a data race",
						ref.field, pathTail(ref.named.Obj().Pkg().Path()), ref.named.Obj().Name(),
						firstFn[ref], at.Filename, at.Line)
				}
			case *ast.Ident:
				if sanctioned[n] {
					return true
				}
				obj, ok := info.Uses[n].(*types.Var)
				if !ok || obj.IsField() {
					return true
				}
				ref := atomicRef{obj: obj}
				if at, ok := firstUse[ref]; ok {
					pass.Reportf(n.Pos(),
						"%s is accessed with %s (%s:%d) but read or written plainly here; mixing atomic and plain access is a data race",
						obj.Name(), firstFn[ref], at.Filename, at.Line)
				}
			}
			return true
		})
	}
}

// refOf resolves the operand of an atomic &x argument to its identity:
// a struct field selection or a variable identifier.
func refOf(info *types.Info, e ast.Expr) (atomicRef, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedStruct(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
				return atomicRef{named: named, field: e.Sel.Name}, true
			}
		}
	case *ast.Ident:
		if obj, ok := info.ObjectOf(e).(*types.Var); ok && !obj.IsField() {
			return atomicRef{obj: obj}, true
		}
	}
	return atomicRef{}, false
}
