// Package cache implements the functional cache simulator standing in for
// the `allcache` Pintool of the paper: a configurable multi-level hierarchy
// of set-associative (or direct-mapped) caches with true-LRU replacement,
// counting accesses and misses per level.
//
// Table I of the paper defines the hierarchy used for all miss-rate
// experiments; TableIConfig reproduces it exactly.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	// Name labels the level in reports ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// Ways is the associativity; 1 means direct-mapped.
	Ways int
	// LineBytes is the cache-line size.
	LineBytes uint64
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() uint64 {
	return c.SizeBytes / (c.LineBytes * uint64(c.Ways))
}

// Validate reports configuration errors (zero sizes, non-power-of-two
// geometry).
func (c Config) Validate() error {
	if c.SizeBytes == 0 || c.LineBytes == 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: zero-size configuration", c.Name)
	}
	if c.SizeBytes%(c.LineBytes*uint64(c.Ways)) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*linesize", c.Name, c.SizeBytes)
	}
	sets := c.Sets()
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	return nil
}

// Stats counts the traffic a cache level has seen.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	stamp uint64
	valid bool
}

// Cache is a single level. It is not safe for concurrent use.
type Cache struct {
	cfg       Config
	lines     []line // sets * ways, set-major
	ways      int
	setMask   uint64
	lineShift uint
	clock     uint64
	stats     Stats
	warmup    bool
}

// New builds a cache level from a validated config.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, sets*uint64(cfg.Ways)),
		ways:      cfg.Ways,
		setMask:   sets - 1,
		lineShift: uint(bits.TrailingZeros64(cfg.LineBytes)),
	}, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the counters collected outside warm-up.
func (c *Cache) Stats() Stats { return c.stats }

// SetWarmup toggles warm-up mode: accesses update cache state but are not
// counted. This implements the paper's mitigation of running warm-up
// instructions before each simulation point (Section IV-D).
func (c *Cache) SetWarmup(on bool) { c.warmup = on }

// Reset invalidates all lines and zeroes the statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.stats = Stats{}
	c.clock = 0
}

// ResetStats zeroes the counters but keeps cache contents (used between a
// warm-up period and a measured region when warm-up mode is not in play).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Access looks up the line containing addr, filling it on a miss, and
// reports whether the access hit. Addresses are byte addresses.
func (c *Cache) Access(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setMask
	tag := lineAddr >> bits.TrailingZeros64(c.setMask+1)
	base := int(set) * c.ways
	ways := c.lines[base : base+c.ways]
	c.clock++
	if !c.warmup {
		c.stats.Accesses++
	}
	victim := 0
	oldest := uint64(1<<64 - 1)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			l.stamp = c.clock
			return true
		}
		if !l.valid {
			// Prefer invalid ways; stamp 0 guarantees selection below.
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if l.stamp < oldest {
			victim, oldest = i, l.stamp
		}
	}
	if !c.warmup {
		c.stats.Misses++
	}
	ways[victim] = line{tag: tag, stamp: c.clock, valid: true}
	return false
}

// install places the line holding addr into the cache without touching
// statistics (used by the prefetcher).
func (c *Cache) install(addr uint64) {
	saved := c.warmup
	c.warmup = true
	c.Access(addr)
	c.warmup = saved
}

// Contains reports whether the line holding addr is currently cached,
// without touching LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setMask
	tag := lineAddr >> bits.TrailingZeros64(c.setMask+1)
	base := int(set) * c.ways
	for i := 0; i < c.ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// HierarchyConfig describes a three-level hierarchy with a split L1 and
// optional instruction/data TLBs (allcache simulates "instruction+data
// TLB+cache hierarchies"; zero-value TLB configs disable them).
type HierarchyConfig struct {
	L1I  Config
	L1D  Config
	L2   Config
	L3   Config
	ITLB TLBConfig
	DTLB TLBConfig
}

// TableIConfig is the paper's Table I allcache configuration: 32-way 32 kB
// L1I and L1D, a unified direct-mapped 2 MB L2 and a unified direct-mapped
// 16 MB L3, all with 32-byte lines.
func TableIConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:  Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 32, LineBytes: 32},
		L1D:  Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 32, LineBytes: 32},
		L2:   Config{Name: "L2", SizeBytes: 2 << 20, Ways: 1, LineBytes: 32},
		L3:   Config{Name: "L3", SizeBytes: 16 << 20, Ways: 1, LineBytes: 32},
		ITLB: DefaultITLB(),
		DTLB: DefaultDTLB(),
	}
}

// ScaleDivs are per-level capacity divisors for running scaled workloads.
// The reproduction runs benchmarks at ~1/125000 of the paper's dynamic
// instruction counts, so cache capacities must shrink for the
// cold-start-vs-warm-up behaviour (Figure 8) to keep the paper's shape. The
// scaling is deliberately non-uniform: the paper's 30 M-instruction slices
// cover the 2 MB L2 hundreds of times over but the 16 MB LLC only a few
// times, and preserving those coverage ratios against our much shorter
// slices requires shrinking the outer levels more than L1.
type ScaleDivs struct {
	L1 uint64
	L2 uint64
	L3 uint64
}

// ScaledConfig shrinks one cache configuration by div, preserving line size
// and reducing associativity when the shrunken cache has fewer lines than
// ways. The unscaled config documents the paper's Table I/III machine.
func ScaledConfig(c Config, div uint64) Config {
	if div <= 1 {
		return c
	}
	out := c
	out.SizeBytes = c.SizeBytes / div
	minSize := c.LineBytes
	if out.SizeBytes < minSize {
		out.SizeBytes = minSize
	}
	if lines := out.SizeBytes / out.LineBytes; uint64(out.Ways) > lines {
		out.Ways = int(lines)
	}
	return out
}

// ScaledHierarchy applies the per-level divisors to a hierarchy. TLB
// capacities follow the L2 divisor (bounded below at 8 entries) so scaled
// working sets still exercise them.
func ScaledHierarchy(cfg HierarchyConfig, divs ScaleDivs) HierarchyConfig {
	return HierarchyConfig{
		L1I:  ScaledConfig(cfg.L1I, divs.L1),
		L1D:  ScaledConfig(cfg.L1D, divs.L1),
		L2:   ScaledConfig(cfg.L2, divs.L2),
		L3:   ScaledConfig(cfg.L3, divs.L3),
		ITLB: scaledTLB(cfg.ITLB, divs.L2),
		DTLB: scaledTLB(cfg.DTLB, divs.L2),
	}
}

// scaledTLB shrinks a TLB's entry count, keeping geometry valid.
func scaledTLB(cfg TLBConfig, div uint64) TLBConfig {
	if !cfg.Enabled() || div <= 1 {
		return cfg
	}
	out := cfg
	entries := uint64(cfg.Entries) / div
	if entries < 8 {
		entries = 8
	}
	// Round down to a power-of-two multiple of ways.
	out.Entries = int(entries)
	if out.Entries < out.Ways {
		out.Ways = out.Entries
	}
	for (out.Entries/out.Ways)&(out.Entries/out.Ways-1) != 0 {
		out.Entries--
	}
	return out
}

// Hierarchy is a three-level inclusive-lookup cache model: data accesses
// probe L1D, misses probe L2, L2 misses probe L3; instruction fetches probe
// L1I and then share L2/L3. This mirrors allcache's functional
// (latency-free) behaviour — it measures hit/miss ratios only.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	L3  *Cache
	// ITLB and DTLB are nil when disabled.
	ITLB *TLB
	DTLB *TLB

	// prefetch enables a next-line prefetcher on the data path: every L1D
	// miss silently installs the following line throughout the hierarchy,
	// the way an i7-class stream prefetcher hides strided walks. allcache
	// (the paper's functional simulator) has no prefetcher; the timing
	// models enable it.
	prefetch bool
}

// EnablePrefetch turns the next-line data prefetcher on or off.
func (h *Hierarchy) EnablePrefetch(on bool) { h.prefetch = on }

// NewHierarchy builds a hierarchy, validating each level.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	l3, err := New(cfg.L3)
	if err != nil {
		return nil, err
	}
	itlb, err := NewTLB(cfg.ITLB)
	if err != nil {
		return nil, err
	}
	dtlb, err := NewTLB(cfg.DTLB)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, L3: l3, ITLB: itlb, DTLB: dtlb}, nil
}

// AccessLevel identifies how deep an access had to go.
type AccessLevel int

// Access depth outcomes, from an L1 hit to a miss in every level.
const (
	HitL1 AccessLevel = iota
	HitL2
	HitL3
	MissAll
)

// Data performs a data access (load or store — allcache treats both as
// line fills) and reports the level that satisfied it.
func (h *Hierarchy) Data(addr uint64) AccessLevel {
	if h.DTLB != nil {
		h.DTLB.Access(addr)
	}
	lvl := h.dataLookup(addr)
	if h.prefetch && lvl != HitL1 {
		// Install the next line silently (no statistics) at every level.
		next := addr + h.L1D.cfg.LineBytes
		h.L1D.install(next)
		h.L2.install(next)
		h.L3.install(next)
	}
	return lvl
}

func (h *Hierarchy) dataLookup(addr uint64) AccessLevel {
	if h.L1D.Access(addr) {
		return HitL1
	}
	if h.L2.Access(addr) {
		return HitL2
	}
	if h.L3.Access(addr) {
		return HitL3
	}
	return MissAll
}

// Fetch performs an instruction fetch.
func (h *Hierarchy) Fetch(addr uint64) AccessLevel {
	if h.ITLB != nil {
		h.ITLB.Access(addr)
	}
	if h.L1I.Access(addr) {
		return HitL1
	}
	if h.L2.Access(addr) {
		return HitL2
	}
	if h.L3.Access(addr) {
		return HitL3
	}
	return MissAll
}

// SetWarmup toggles warm-up mode on every level.
func (h *Hierarchy) SetWarmup(on bool) {
	h.L1I.SetWarmup(on)
	h.L1D.SetWarmup(on)
	h.L2.SetWarmup(on)
	h.L3.SetWarmup(on)
	if h.ITLB != nil {
		h.ITLB.SetWarmup(on)
	}
	if h.DTLB != nil {
		h.DTLB.SetWarmup(on)
	}
}

// Reset clears contents and statistics of every level.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.L3.Reset()
	if h.ITLB != nil {
		h.ITLB.Reset()
	}
	if h.DTLB != nil {
		h.DTLB.Reset()
	}
}

// MissRates returns the L1D, L2 and L3 miss rates (the three the paper
// plots in Figure 8).
func (h *Hierarchy) MissRates() (l1d, l2, l3 float64) {
	return h.L1D.Stats().MissRate(), h.L2.Stats().MissRate(), h.L3.Stats().MissRate()
}
