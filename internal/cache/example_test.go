package cache_test

import (
	"fmt"

	"specsampling/internal/cache"
)

func ExampleNewHierarchy() {
	h, err := cache.NewHierarchy(cache.TableIConfig())
	if err != nil {
		panic(err)
	}
	h.Data(0x1000) // cold miss everywhere
	h.Data(0x1008) // same 32-byte line: L1 hit
	l1d, _, _ := h.MissRates()
	fmt.Printf("L1D miss rate %.2f\n", l1d)
	// Output: L1D miss rate 0.50
}

func ExampleCache_Access() {
	c, err := cache.New(cache.Config{Name: "L1", SizeBytes: 1024, Ways: 2, LineBytes: 32})
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Access(0x40), c.Access(0x40))
	// Output: false true
}
