package cache

import (
	"testing"
	"testing/quick"
)

func mkCache(t *testing.T, size uint64, ways int, lineBytes uint64) *Cache {
	t.Helper()
	c, err := New(Config{Name: "test", SizeBytes: size, Ways: ways, LineBytes: lineBytes})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", SizeBytes: 32 << 10, Ways: 4, LineBytes: 32}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero-size", SizeBytes: 0, Ways: 1, LineBytes: 32},
		{Name: "zero-ways", SizeBytes: 1024, Ways: 0, LineBytes: 32},
		{Name: "zero-line", SizeBytes: 1024, Ways: 1, LineBytes: 0},
		{Name: "indivisible", SizeBytes: 1000, Ways: 3, LineBytes: 32},
		{Name: "npo2-line", SizeBytes: 96 * 24, Ways: 1, LineBytes: 24},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestTableIConfigMatchesPaper(t *testing.T) {
	cfg := TableIConfig()
	if cfg.L1I.SizeBytes != 32<<10 || cfg.L1I.Ways != 32 || cfg.L1I.LineBytes != 32 {
		t.Errorf("L1I = %+v", cfg.L1I)
	}
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1D.Ways != 32 {
		t.Errorf("L1D = %+v", cfg.L1D)
	}
	if cfg.L2.SizeBytes != 2<<20 || cfg.L2.Ways != 1 {
		t.Errorf("L2 = %+v (must be 2MB direct-mapped)", cfg.L2)
	}
	if cfg.L3.SizeBytes != 16<<20 || cfg.L3.Ways != 1 {
		t.Errorf("L3 = %+v (must be 16MB direct-mapped)", cfg.L3)
	}
	if _, err := NewHierarchy(cfg); err != nil {
		t.Errorf("Table I config does not build: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mkCache(t, 1024, 2, 32)
	if c.Access(0x100) {
		t.Error("first access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access should hit")
	}
	if !c.Access(0x11f) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x120) {
		t.Error("next line should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 2 sets, 32B lines: lines mapping to set 0 are multiples of 64.
	c := mkCache(t, 128, 2, 32)
	c.Access(0)       // set 0, way A
	c.Access(64)      // set 0, way B
	c.Access(0)       // touch A: B is now LRU
	c.Access(128)     // evicts B
	if !c.Access(0) { // A must survive
		t.Error("LRU evicted the most-recently-used line")
	}
	if c.Access(64) { // B must be gone
		t.Error("LRU kept the least-recently-used line")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Direct-mapped, 4 sets of 32B: addresses 0 and 128 collide.
	c := mkCache(t, 128, 1, 32)
	c.Access(0)
	c.Access(128)
	if c.Access(0) {
		t.Error("conflicting line survived in direct-mapped cache")
	}
}

func TestMissesNeverExceedAccesses(t *testing.T) {
	f := func(seed uint64, addrs []uint16) bool {
		c := mkCache(t, 4096, 4, 32)
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		s := c.Stats()
		return s.Misses <= s.Accesses && s.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdenticalStreamsIdenticalStats(t *testing.T) {
	stream := make([]uint64, 5000)
	x := uint64(12345)
	for i := range stream {
		x = x*6364136223846793005 + 1442695040888963407
		stream[i] = x % (1 << 20)
	}
	run := func() Stats {
		c := mkCache(t, 32<<10, 8, 32)
		for _, a := range stream {
			c.Access(a)
		}
		return c.Stats()
	}
	if run() != run() {
		t.Error("same stream produced different stats")
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than the cache must reach 100% hits once warm.
	c := mkCache(t, 32<<10, 8, 32)
	for round := 0; round < 3; round++ {
		for addr := uint64(0); addr < 16<<10; addr += 32 {
			c.Access(addr)
		}
	}
	c.ResetStats()
	for addr := uint64(0); addr < 16<<10; addr += 32 {
		c.Access(addr)
	}
	if m := c.Stats().Misses; m != 0 {
		t.Errorf("%d misses on a warm, fitting working set", m)
	}
}

func TestWarmupModeUpdatesStateNotStats(t *testing.T) {
	c := mkCache(t, 1024, 2, 32)
	c.SetWarmup(true)
	c.Access(0x40)
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("warm-up accesses counted: %+v", s)
	}
	c.SetWarmup(false)
	if !c.Access(0x40) {
		t.Error("warm-up access did not install the line")
	}
	if s := c.Stats(); s.Accesses != 1 || s.Misses != 0 {
		t.Errorf("post-warm-up stats = %+v", s)
	}
}

func TestReset(t *testing.T) {
	c := mkCache(t, 1024, 2, 32)
	c.Access(0x40)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 {
		t.Error("Reset kept stats")
	}
	if c.Access(0x40) {
		t.Error("Reset kept contents")
	}
}

func TestContains(t *testing.T) {
	c := mkCache(t, 1024, 2, 32)
	if c.Contains(0x80) {
		t.Error("empty cache contains a line")
	}
	c.Access(0x80)
	before := c.Stats()
	if !c.Contains(0x80) {
		t.Error("cached line not found")
	}
	if c.Stats() != before {
		t.Error("Contains changed statistics")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle cache miss rate should be 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(HierarchyConfig{
		L1I: Config{Name: "L1I", SizeBytes: 1024, Ways: 2, LineBytes: 32},
		L1D: Config{Name: "L1D", SizeBytes: 1024, Ways: 2, LineBytes: 32},
		L2:  Config{Name: "L2", SizeBytes: 8192, Ways: 1, LineBytes: 32},
		L3:  Config{Name: "L3", SizeBytes: 32768, Ways: 1, LineBytes: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Data(0x100); lvl != MissAll {
		t.Errorf("cold access level = %v", lvl)
	}
	if lvl := h.Data(0x100); lvl != HitL1 {
		t.Errorf("warm access level = %v", lvl)
	}
	// Evict from tiny L1D with conflicting lines; L2 should still hold it.
	for i := uint64(1); i <= 4; i++ {
		h.Data(0x100 + i*1024) // same L1 set (1024B L1 with 16 sets: stride 512 actually)
	}
	// Rather than relying on the precise geometry, verify level ordering
	// statistically: total L2 accesses equal L1D misses.
	if h.L2.Stats().Accesses != h.L1D.Stats().Misses+h.L1I.Stats().Misses {
		t.Errorf("L2 accesses (%d) != L1D misses (%d) + L1I misses (%d)",
			h.L2.Stats().Accesses, h.L1D.Stats().Misses, h.L1I.Stats().Misses)
	}
	if h.L3.Stats().Accesses != h.L2.Stats().Misses {
		t.Errorf("L3 accesses (%d) != L2 misses (%d)", h.L3.Stats().Accesses, h.L2.Stats().Misses)
	}
}

func TestHierarchyFetchUsesL1I(t *testing.T) {
	h, err := NewHierarchy(TableIConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Fetch(0x400000)
	if h.L1I.Stats().Accesses != 1 {
		t.Error("fetch did not reach L1I")
	}
	if h.L1D.Stats().Accesses != 0 {
		t.Error("fetch touched L1D")
	}
}

func TestHierarchyResetAndWarmup(t *testing.T) {
	h, _ := NewHierarchy(TableIConfig())
	h.SetWarmup(true)
	h.Data(0x1000)
	h.SetWarmup(false)
	if lvl := h.Data(0x1000); lvl != HitL1 {
		t.Errorf("warm-up did not fill hierarchy: level %v", lvl)
	}
	h.Reset()
	if lvl := h.Data(0x1000); lvl != MissAll {
		t.Errorf("Reset did not clear hierarchy: level %v", lvl)
	}
}

func TestMissRatesAccessor(t *testing.T) {
	h, _ := NewHierarchy(TableIConfig())
	h.Data(0x2000)
	h.Data(0x2000)
	l1d, l2, l3 := h.MissRates()
	if l1d != 0.5 || l2 != 1 || l3 != 1 {
		t.Errorf("MissRates = %v %v %v", l1d, l2, l3)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, _ := New(Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 32, LineBytes: 32})
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		c.Access(x % (1 << 16))
	}
}

func BenchmarkHierarchyData(b *testing.B) {
	h, _ := NewHierarchy(TableIConfig())
	x := uint64(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		h.Data(x % (1 << 22))
	}
}
