package cache

import "fmt"

// TLBConfig sizes a translation lookaside buffer. The paper's allcache tool
// is "a functional simulator of instruction+data TLB+cache hierarchies"
// (Section II-B); the TLB side is modelled here as a small fully-managed
// cache of page translations. A zero-value config disables the TLB.
type TLBConfig struct {
	// Entries is the total translation count.
	Entries int
	// Ways is the associativity.
	Ways int
	// PageBytes is the page size (4 kB on the paper's machines).
	PageBytes uint64
}

// Enabled reports whether the config describes a real TLB.
func (c TLBConfig) Enabled() bool { return c.Entries > 0 }

// Validate reports configuration errors for enabled TLBs.
func (c TLBConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Ways <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("cache: TLB with %d entries, %d ways", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: TLB set count %d is not a power of two", sets)
	}
	if c.PageBytes == 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("cache: TLB page size %d", c.PageBytes)
	}
	return nil
}

// DefaultITLB is an i7-class 128-entry 4-way instruction TLB over 4 kB
// pages.
func DefaultITLB() TLBConfig { return TLBConfig{Entries: 128, Ways: 4, PageBytes: 4096} }

// DefaultDTLB is an i7-class 64-entry 4-way data TLB over 4 kB pages.
func DefaultDTLB() TLBConfig { return TLBConfig{Entries: 64, Ways: 4, PageBytes: 4096} }

// TLB is a translation lookaside buffer, implemented as a page-granular
// cache (a translation hit is exactly a tag hit on the page number).
type TLB struct {
	cache *Cache
}

// NewTLB builds a TLB; a disabled config returns (nil, nil).
func NewTLB(cfg TLBConfig) (*TLB, error) {
	if !cfg.Enabled() {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := New(Config{
		Name:      "TLB",
		SizeBytes: uint64(cfg.Entries) * cfg.PageBytes,
		Ways:      cfg.Ways,
		LineBytes: cfg.PageBytes,
	})
	if err != nil {
		return nil, err
	}
	return &TLB{cache: c}, nil
}

// Access translates the page holding addr, filling on a miss, and reports
// whether the translation hit.
func (t *TLB) Access(addr uint64) bool { return t.cache.Access(addr) }

// Stats returns hit/miss counters.
func (t *TLB) Stats() Stats { return t.cache.Stats() }

// SetWarmup toggles statistics-free warm-up mode.
func (t *TLB) SetWarmup(on bool) { t.cache.SetWarmup(on) }

// Reset clears translations and statistics.
func (t *TLB) Reset() { t.cache.Reset() }
