package cache

import "testing"

func TestScaledConfigShrinksPreservingGeometry(t *testing.T) {
	base := Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 32, LineBytes: 32}
	s := ScaledConfig(base, 4)
	if s.SizeBytes != 8<<10 {
		t.Errorf("size = %d", s.SizeBytes)
	}
	if s.LineBytes != base.LineBytes {
		t.Error("line size changed")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
}

func TestScaledConfigReducesWaysWhenTiny(t *testing.T) {
	base := Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 32, LineBytes: 32}
	s := ScaledConfig(base, 64) // 512B = 16 lines < 32 ways
	if s.Ways != 16 {
		t.Errorf("ways = %d, want 16", s.Ways)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
}

func TestScaledConfigFloorsAtOneLine(t *testing.T) {
	base := Config{Name: "tiny", SizeBytes: 64, Ways: 1, LineBytes: 32}
	s := ScaledConfig(base, 1024)
	if s.SizeBytes < s.LineBytes {
		t.Errorf("scaled below one line: %d", s.SizeBytes)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("floored config invalid: %v", err)
	}
}

func TestScaledConfigIdentityDivisor(t *testing.T) {
	base := Config{Name: "x", SizeBytes: 1024, Ways: 2, LineBytes: 32}
	if ScaledConfig(base, 1) != base || ScaledConfig(base, 0) != base {
		t.Error("div <= 1 should be identity")
	}
}

func TestScaledHierarchyPerLevelDivisors(t *testing.T) {
	h := ScaledHierarchy(TableIConfig(), ScaleDivs{L1: 4, L2: 64, L3: 64})
	if h.L1D.SizeBytes != 8<<10 {
		t.Errorf("L1D = %d", h.L1D.SizeBytes)
	}
	if h.L2.SizeBytes != 32<<10 {
		t.Errorf("L2 = %d", h.L2.SizeBytes)
	}
	if h.L3.SizeBytes != 256<<10 {
		t.Errorf("L3 = %d", h.L3.SizeBytes)
	}
	if _, err := NewHierarchy(h); err != nil {
		t.Errorf("scaled hierarchy does not build: %v", err)
	}
}

func TestPrefetchHidesSequentialStream(t *testing.T) {
	cfg := HierarchyConfig{
		L1I: Config{Name: "L1I", SizeBytes: 4 << 10, Ways: 8, LineBytes: 64},
		L1D: Config{Name: "L1D", SizeBytes: 4 << 10, Ways: 8, LineBytes: 64},
		L2:  Config{Name: "L2", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L3:  Config{Name: "L3", SizeBytes: 256 << 10, Ways: 16, LineBytes: 64},
	}
	run := func(prefetch bool) float64 {
		h, err := NewHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.EnablePrefetch(prefetch)
		// Stream 4MB line by line: every line is cold.
		for addr := uint64(0); addr < 4<<20; addr += 64 {
			h.Data(addr)
		}
		return h.L1D.Stats().MissRate()
	}
	cold := run(false)
	pref := run(true)
	if cold < 0.99 {
		t.Fatalf("un-prefetched stream should miss every line: %v", cold)
	}
	if pref > 0.55 {
		t.Errorf("next-line prefetch should roughly halve stream misses: %v", pref)
	}
}

func TestPrefetchDoesNotCountStats(t *testing.T) {
	h, err := NewHierarchy(TableIConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.EnablePrefetch(true)
	h.Data(0x1000) // miss; prefetches 0x1020 silently
	if got := h.L1D.Stats().Accesses; got != 1 {
		t.Errorf("prefetch counted as an access: %d", got)
	}
	// The prefetched line must be resident.
	if !h.L1D.Contains(0x1000 + 32) {
		t.Error("next line not prefetched")
	}
}
