package cache

import "testing"

func TestTLBConfigValidate(t *testing.T) {
	if err := DefaultITLB().Validate(); err != nil {
		t.Errorf("default ITLB invalid: %v", err)
	}
	if err := DefaultDTLB().Validate(); err != nil {
		t.Errorf("default DTLB invalid: %v", err)
	}
	if err := (TLBConfig{}).Validate(); err != nil {
		t.Errorf("disabled TLB should validate: %v", err)
	}
	bad := []TLBConfig{
		{Entries: 64, Ways: 0, PageBytes: 4096},
		{Entries: 63, Ways: 4, PageBytes: 4096},
		{Entries: 48, Ways: 4, PageBytes: 4096}, // 12 sets: not a power of two
		{Entries: 64, Ways: 4, PageBytes: 0},
		{Entries: 64, Ways: 4, PageBytes: 5000},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad TLB config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewTLBDisabled(t *testing.T) {
	tlb, err := NewTLB(TLBConfig{})
	if err != nil || tlb != nil {
		t.Errorf("disabled TLB: %v %v", tlb, err)
	}
}

func TestTLBPageGranularity(t *testing.T) {
	tlb, err := NewTLB(DefaultDTLB())
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Access(0x1000) {
		t.Error("first translation should miss")
	}
	// Any address in the same 4kB page hits.
	if !tlb.Access(0x1fff) {
		t.Error("same-page access missed")
	}
	if tlb.Access(0x2000) {
		t.Error("next page should miss")
	}
	s := tlb.Stats()
	if s.Accesses != 3 || s.Misses != 2 {
		t.Errorf("stats %+v", s)
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	// 64-entry TLB: touching 65 distinct pages twice must evict.
	tlb, _ := NewTLB(DefaultDTLB())
	for round := 0; round < 2; round++ {
		for p := uint64(0); p < 65; p++ {
			tlb.Access(p * 4096)
		}
	}
	s := tlb.Stats()
	if s.Misses <= 65 {
		t.Errorf("no capacity misses: %+v", s)
	}
}

func TestTLBWarmupAndReset(t *testing.T) {
	tlb, _ := NewTLB(DefaultDTLB())
	tlb.SetWarmup(true)
	tlb.Access(0x4000)
	tlb.SetWarmup(false)
	if s := tlb.Stats(); s.Accesses != 0 {
		t.Errorf("warm-up counted: %+v", s)
	}
	if !tlb.Access(0x4000) {
		t.Error("warm-up did not install the translation")
	}
	tlb.Reset()
	if tlb.Access(0x4000) {
		t.Error("Reset kept translations")
	}
}

func TestHierarchyTLBsWired(t *testing.T) {
	h, err := NewHierarchy(TableIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.ITLB == nil || h.DTLB == nil {
		t.Fatal("Table I hierarchy should carry TLBs")
	}
	h.Data(0x1000)
	h.Fetch(0x400000)
	if h.DTLB.Stats().Accesses != 1 {
		t.Errorf("DTLB accesses %d", h.DTLB.Stats().Accesses)
	}
	if h.ITLB.Stats().Accesses != 1 {
		t.Errorf("ITLB accesses %d", h.ITLB.Stats().Accesses)
	}
	h.Reset()
	if h.DTLB.Stats().Accesses != 0 {
		t.Error("Reset missed the DTLB")
	}
}

func TestScaledTLB(t *testing.T) {
	s := scaledTLB(DefaultDTLB(), 64)
	if !s.Enabled() {
		t.Fatal("scaling disabled the TLB")
	}
	if s.Entries < 8 {
		t.Errorf("entries floored too low: %d", s.Entries)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled TLB invalid: %v", err)
	}
	if got := scaledTLB(TLBConfig{}, 8); got.Enabled() {
		t.Error("scaling enabled a disabled TLB")
	}
	if got := scaledTLB(DefaultDTLB(), 1); got != DefaultDTLB() {
		t.Error("div 1 should be identity")
	}
}
