// Package textplot renders the experiment outputs — tables, bars and small
// series plots — as plain text, so every figure of the paper has a terminal
// rendition.
package textplot

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which gets %.4g.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// String renders the table. Column widths count runes, not bytes, so cells
// with multibyte characters (the shoot-out's ± intervals) stay aligned.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders value as a proportional bar of at most width characters
// against max. Negative values render empty.
func Bar(value, max float64, width int) string {
	if width <= 0 || max <= 0 || value <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// StackedBar renders weights (summing to <= 1) as a width-character bar with
// a distinct rune per segment, cycling through a small alphabet — the
// text rendition of the paper's Figure 6 stacked weight bars.
func StackedBar(weights []float64, width int) string {
	const alphabet = "#=+-*o.:x%"
	var b strings.Builder
	used := 0
	for i, w := range weights {
		n := int(w * float64(width))
		if used+n > width {
			n = width - used
		}
		if n <= 0 {
			continue
		}
		b.WriteString(strings.Repeat(string(alphabet[i%len(alphabet)]), n))
		used += n
	}
	return b.String()
}

// Series renders (x, y) pairs as a compact one-line-per-point plot with a
// proportional bar, used for sweep figures.
func Series(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("textplot: %d labels vs %d values", len(labels), len(values)))
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		fmt.Fprintf(&b, "%-*s %10.4g |%s\n", maxL, labels[i], v, Bar(v, maxV, width))
	}
	return b.String()
}
