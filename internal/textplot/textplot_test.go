package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignsColumns(t *testing.T) {
	tab := NewTable("Name", "Value")
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// All rows must have the same rendered width.
	w := len(lines[0])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("line %d wider than header: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("row content lost")
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tab := NewTable("A", "B", "C")
	tab.AddRow("only-one")
	out := tab.String()
	if !strings.Contains(out, "only-one") {
		t.Error("short row lost")
	}
}

func TestAddRowfFormats(t *testing.T) {
	tab := NewTable("A", "B", "C")
	tab.AddRowf("x", 3, 1.23456789)
	out := tab.String()
	if !strings.Contains(out, "1.235") {
		t.Errorf("float not formatted: %q", out)
	}
	if !strings.Contains(out, "3") {
		t.Error("int lost")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if Bar(20, 10, 10) != "##########" {
		t.Error("Bar must clamp to width")
	}
	if Bar(-1, 10, 10) != "" || Bar(5, 0, 10) != "" || Bar(5, 10, 0) != "" {
		t.Error("degenerate bars must be empty")
	}
}

func TestStackedBar(t *testing.T) {
	out := StackedBar([]float64{0.5, 0.3, 0.2}, 20)
	if len(out) > 20 {
		t.Errorf("stacked bar too wide: %q", out)
	}
	if !strings.HasPrefix(out, "##########") {
		t.Errorf("first segment wrong: %q", out)
	}
	// Distinct segments use distinct runes.
	if !strings.Contains(out, "=") {
		t.Errorf("second segment missing: %q", out)
	}
}

func TestStackedBarTinyWeightsSkipped(t *testing.T) {
	out := StackedBar([]float64{0.99, 0.001}, 10)
	if len(out) > 10 {
		t.Errorf("overflow: %q", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series([]string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[1], "##########") {
		t.Errorf("max value should fill the width: %q", lines[1])
	}
}

func TestSeriesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Series([]string{"a"}, []float64{1, 2}, 10)
}
