package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"specsampling/internal/store"
	"specsampling/internal/telemetry"
)

// TestLoadSmoke is the daemon's high-traffic acceptance check: one job over
// the full 29-benchmark suite warms the store, then hundreds of concurrent
// requests — status polls, result fetches, identical resubmissions and
// /metrics scrapes — hammer the server. Every response must be well-formed
// and correct (under -race this also pins the server's and the metric
// registry's synchronization), result bytes must be identical across
// concurrent fetches, every exposition must parse and be internally
// consistent even when scraped mid-traffic, and the warm-cache
// status/result p99 latencies are logged for EXPERIMENTS.md.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short mode")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hts := newTestServer(t, context.Background(), Config{Store: st, JobWorkers: 2})

	// Warm: the full suite at small scale, through the daemon itself.
	req := JobRequest{Run: "tableII", Scale: "small"}
	resp, sub := postJob(t, hts.URL, "warm", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("warm submit = %d, want 202", resp.StatusCode)
	}
	if final := waitDone(t, hts.URL, sub.ID); final.State != StateDone {
		t.Fatalf("warm job state = %s (%s)", final.State, final.Error)
	}
	canonical := getResult(t, hts.URL, sub.ID)

	// Load: 60 clients × 10 requests, round-robining status, result,
	// dedup-submit and metrics scrape — ≥500 concurrent requests against
	// the warm cache.
	const clients, perClient = 60, 10
	type sample struct {
		kind string
		d    time.Duration
	}
	var (
		mu      sync.Mutex
		samples []sample
		errs    []string
	)
	httpc := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local []sample
			var localErrs []string
			fail := func(format string, args ...interface{}) {
				localErrs = append(localErrs, fmt.Sprintf(format, args...))
			}
			for i := 0; i < perClient; i++ {
				switch i % 4 {
				case 0: // status poll
					t0 := time.Now()
					r, err := httpc.Get(hts.URL + "/v1/jobs/" + sub.ID)
					if err != nil {
						fail("status: %v", err)
						continue
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					local = append(local, sample{"status", time.Since(t0)})
					if r.StatusCode != http.StatusOK {
						fail("status code %d", r.StatusCode)
					}
				case 1: // result fetch, bytes must match the canonical report
					t0 := time.Now()
					r, err := httpc.Get(hts.URL + "/v1/jobs/" + sub.ID + "/result")
					if err != nil {
						fail("result: %v", err)
						continue
					}
					blob, _ := io.ReadAll(r.Body)
					r.Body.Close()
					local = append(local, sample{"result", time.Since(t0)})
					if r.StatusCode != http.StatusOK {
						fail("result code %d", r.StatusCode)
					} else if !bytes.Equal(blob, canonical) {
						fail("result bytes diverged (%d vs %d bytes)", len(blob), len(canonical))
					}
				case 2: // identical resubmission: must dedup, never recompute
					body, _ := json.Marshal(req)
					hr, _ := http.NewRequest("POST", hts.URL+"/v1/jobs", bytes.NewReader(body))
					hr.Header.Set("X-Client-ID", fmt.Sprintf("load-%02d", c))
					r, err := httpc.Do(hr)
					if err != nil {
						fail("submit: %v", err)
						continue
					}
					var got Status
					derr := json.NewDecoder(r.Body).Decode(&got)
					r.Body.Close()
					if r.StatusCode != http.StatusOK || derr != nil || got.ID != sub.ID || !got.Dedup {
						fail("dedup submit: code=%d err=%v id=%s dedup=%v", r.StatusCode, derr, got.ID, got.Dedup)
					}
				case 3: // metrics scrape: must parse and be internally coherent
					t0 := time.Now()
					r, err := httpc.Get(hts.URL + "/metrics")
					if err != nil {
						fail("metrics: %v", err)
						continue
					}
					blob, _ := io.ReadAll(r.Body)
					r.Body.Close()
					local = append(local, sample{"metrics", time.Since(t0)})
					if r.StatusCode != http.StatusOK {
						fail("metrics code %d", r.StatusCode)
					} else if errs := telemetry.CheckExposition(string(blob)); len(errs) > 0 {
						fail("incoherent exposition under load: %s", errs[0])
					}
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			errs = append(errs, localErrs...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d request errors under load; first: %s", len(errs), errs[0])
	}

	// The dedup table never grew a second job for the hammered config.
	var stats StatsBody
	sr, err := httpc.Get(hts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.Jobs[StateDone] != 1 || stats.Jobs[StateRunning] != 0 || stats.Jobs[StateQueued] != 0 {
		t.Errorf("after load, jobs = %+v; want exactly the one warm job, done", stats.Jobs)
	}

	for _, kind := range []string{"status", "result", "metrics"} {
		var ds []time.Duration
		for _, s := range samples {
			if s.kind == kind {
				ds = append(ds, s.d)
			}
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		p := func(q float64) time.Duration { return ds[int(q*float64(len(ds)-1))] }
		t.Logf("warm-cache %s latency over %d requests: p50=%s p99=%s max=%s",
			kind, len(ds), p(0.50), p(0.99), p(1.0))
	}
}

// getResult fetches a finished job's report bytes.
func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	r, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	blob, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", r.StatusCode, blob)
	}
	return blob
}
