package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"specsampling/internal/experiments"
	"specsampling/internal/store"
	"specsampling/internal/workload"
)

// newTestServer builds a Server over a fresh store plus an httptest front.
func newTestServer(t *testing.T, ctx context.Context, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	srv, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	t.Cleanup(srv.Drain)
	return srv, hts
}

func postJob(t *testing.T, base, client string, req JobRequest) (*http.Response, Status) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		hr.Header.Set("X-Client-ID", client)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

// waitDone polls the job until it reaches a terminal state. The deadline is
// sized for the slowest caller — the load smoke's full-suite warm job under
// -race, which alone takes ~2 minutes on a modest container.
func waitDone(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

func TestSubmitValidation(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	cases := []struct {
		name string
		body string
		want string // substring of the error
	}{
		{"bad run", `{"run":"fig99"}`, "unknown run"},
		{"bad scale", `{"run":"tableI","scale":"huge"}`, "unknown scale"},
		{"bad selector", `{"run":"tableI","selector":"nope"}`, "/v1/selectors"},
		{"bad bench", `{"run":"tableI","benchmarks":["999.zork_r"]}`, "999.zork_r"},
		{"negative repeats", `{"run":"tableI","repeats":-3}`, "negative repeats"},
		{"unknown field", `{"run":"tableI","turbo":true}`, "turbo"},
		{"not json", `run=tableI`, "decode request"},
	}
	for _, tc := range cases {
		resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", tc.name, resp.StatusCode, blob)
			continue
		}
		if !bytes.Contains(blob, []byte(tc.want)) {
			t.Errorf("%s: body %s does not mention %q", tc.name, blob, tc.want)
		}
	}
}

// TestResultByteIdenticalToCLI is the daemon's core contract: the report a
// job serves is byte-for-byte the file `experiments -json` writes for the
// same configuration.
func TestResultByteIdenticalToCLI(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, hts := newTestServer(t, context.Background(), Config{Store: st})

	req := JobRequest{Run: "tableII", Scale: "small", Benchmarks: []string{"505.mcf_r", "541.leela_r"}}
	resp, sub := postJob(t, hts.URL, "", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	final := waitDone(t, hts.URL, sub.ID)
	if final.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", final.State, final.Error)
	}
	rr, err := http.Get(hts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d: %s", rr.StatusCode, got)
	}

	// The reference run goes through the exact cmd/experiments -json path.
	scale, err := workload.ScaleByName(req.Scale)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := experiments.New(experiments.Options{
		Scale:      scale,
		Benchmarks: req.Benchmarks,
		Out:        io.Discard,
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	report := experiments.NewReport()
	if err := runner.RunRecorded(context.Background(), req.Run, report); err != nil {
		t.Fatal(err)
	}
	var benchNames []string
	for _, s := range runner.Benchmarks() {
		benchNames = append(benchNames, s.Name)
	}
	var want bytes.Buffer
	if err := report.WriteJSON(&want, "small", benchNames); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("daemon result differs from CLI bytes:\ndaemon: %d bytes\ncli:    %d bytes", len(got), want.Len())
	}
}

// TestDedupIdenticalConfigs: identical submissions collapse to one job —
// across clients — while a distinct configuration gets its own.
func TestDedupIdenticalConfigs(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	req := JobRequest{Run: "tableI", Scale: "small"}

	r1, s1 := postJob(t, hts.URL, "alice", req)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", r1.StatusCode)
	}
	r2, s2 := postJob(t, hts.URL, "bob", req)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("dup submit = %d, want 200", r2.StatusCode)
	}
	if s2.ID != s1.ID || !s2.Dedup {
		t.Errorf("dup submit id=%s dedup=%v, want id=%s dedup=true", s2.ID, s2.Dedup, s1.ID)
	}
	r3, s3 := postJob(t, hts.URL, "alice", JobRequest{Run: "tableIII", Scale: "small"})
	if r3.StatusCode != http.StatusAccepted || s3.ID == s1.ID {
		t.Errorf("distinct submit = %d id=%s, want 202 and a fresh id", r3.StatusCode, s3.ID)
	}
	waitDone(t, hts.URL, s1.ID)
	waitDone(t, hts.URL, s3.ID)
	// A dup after completion still resolves to the finished job.
	r4, s4 := postJob(t, hts.URL, "carol", req)
	if r4.StatusCode != http.StatusOK || s4.ID != s1.ID || s4.State != StateDone {
		t.Errorf("post-completion dup = %d id=%s state=%s, want 200 %s done", r4.StatusCode, s4.ID, s4.State, s1.ID)
	}
}

// TestAdmissionAndLoadShedding pins the two 503 paths deterministically by
// parking the queue's only worker on a blocked job.
func TestAdmissionAndLoadShedding(t *testing.T) {
	srv, hts := newTestServer(t, context.Background(), Config{
		JobWorkers: 1, QueueDepth: 8, MaxPerClient: 2,
	})
	block := make(chan struct{})
	defer func() {
		select {
		case <-block:
		default:
			close(block)
		}
	}()
	// Park the worker so queued jobs stay queued.
	if err := srv.queue.Submit(func(context.Context) { <-block }); err != nil {
		t.Fatal(err)
	}

	sub := func(client, run string) (*http.Response, Status) {
		return postJob(t, hts.URL, client, JobRequest{Run: run, Scale: "small"})
	}
	r1, s1 := sub("alice", "tableI")
	r2, _ := sub("alice", "tableIII")
	if r1.StatusCode != http.StatusAccepted || r2.StatusCode != http.StatusAccepted {
		t.Fatalf("alice's first two jobs = %d, %d, want 202", r1.StatusCode, r2.StatusCode)
	}
	// Third live job for the same client: per-client admission says no.
	r3, _ := sub("alice", "fig4")
	if r3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("alice's third job = %d, want 503", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra == "" {
		t.Error("per-client 503 missing Retry-After")
	}
	// Another client is still welcome: the limit is per client, not global.
	r4, _ := sub("bob", "fig4")
	if r4.StatusCode != http.StatusAccepted {
		t.Fatalf("bob's job = %d, want 202", r4.StatusCode)
	}
	// Fill the rest of the queue directly, then overflow it.
	for srv.queue.Depth() < 8 {
		if err := srv.queue.Submit(func(context.Context) {}); err != nil {
			t.Fatal(err)
		}
	}
	r5, _ := sub("carol", "fig5")
	if r5.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d, want 503", r5.StatusCode)
	}
	// The rejected job left no trace: its registration was rolled back.
	resp, err := http.Get(hts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct{ Jobs []Status }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 3 {
		t.Errorf("job list has %d entries, want 3 (carol's rollback)", len(list.Jobs))
	}

	close(block)
	waitDone(t, hts.URL, s1.ID)
}

// TestEventsStreamDeliversJobProgress: the events feed carries the job's
// own pipeline progress as parseable JSONL and terminates when the job does.
func TestEventsStreamDeliversJobProgress(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	resp, sub := postJob(t, hts.URL, "", JobRequest{Run: "tableII", Scale: "small", Benchmarks: []string{"505.mcf_r"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	es, err := http.Get(hts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var sawHeader, sawAnalyze, sawSpan bool
	sc := bufio.NewScanner(es.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var ev struct {
			Type  string `json:"type"`
			Stage string `json:"stage"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("unparseable event line %d: %v: %q", lines, err, sc.Text())
		}
		switch {
		case ev.Type == "progress" && ev.Stage == "run":
			sawHeader = true
		case ev.Type == "progress" && ev.Stage == "analyze":
			sawAnalyze = true
		case ev.Type == "span":
			sawSpan = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawHeader || !sawAnalyze || !sawSpan {
		t.Errorf("stream (%d lines) header=%v analyze=%v span=%v, want all true", lines, sawHeader, sawAnalyze, sawSpan)
	}
	if st := waitDone(t, hts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
}

// TestResultBeforeDone: asking for a result too early is a 409 carrying the
// job's current status, not an error or a hang.
func TestResultBeforeDone(t *testing.T) {
	srv, hts := newTestServer(t, context.Background(), Config{JobWorkers: 1})
	block := make(chan struct{})
	defer close(block)
	if err := srv.queue.Submit(func(context.Context) { <-block }); err != nil {
		t.Fatal(err)
	}
	_, sub := postJob(t, hts.URL, "", JobRequest{Run: "tableI", Scale: "small"})
	resp, err := http.Get(hts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result = %d, want 409", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued {
		t.Errorf("early result state = %s, want queued", st.State)
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/result", "/v1/jobs/j999999/events"} {
		resp, err := http.Get(hts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDrain: a drained server finishes accepted work, then sheds
// everything new with 503.
func TestDrain(t *testing.T) {
	srv, hts := newTestServer(t, context.Background(), Config{})
	resp, sub := postJob(t, hts.URL, "", JobRequest{Run: "tableI", Scale: "small"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	srv.Drain() // blocks until the accepted job has finished

	st := waitDone(t, hts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("drained job state = %s, want done", st.State)
	}
	rr, err := http.Get(hts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Errorf("result after drain = %d, want 200", rr.StatusCode)
	}
	post, _ := postJob(t, hts.URL, "", JobRequest{Run: "tableIII", Scale: "small"})
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after drain = %d, want 503", post.StatusCode)
	}
	srv.Drain() // idempotent
}

func TestSelectorsAndStatsEndpoints(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	resp, err := http.Get(hts.URL + "/v1/selectors")
	if err != nil {
		t.Fatal(err)
	}
	var sels struct {
		Selectors []string `json:"selectors"`
		Default   string   `json:"default"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sels); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sels.Selectors) == 0 || sels.Default == "" {
		t.Errorf("selectors = %+v, want a non-empty registry with a default", sels)
	}

	_, sub := postJob(t, hts.URL, "", JobRequest{Run: "tableI", Scale: "small"})
	waitDone(t, hts.URL, sub.ID)
	sr, err := http.Get(hts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsBody
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.Jobs[StateDone] != 1 || stats.Shards == 0 {
		t.Errorf("stats = %+v, want one done job and a shard count", stats)
	}
}

// TestEventLogBoundsAndGap: a reader behind a bounded, overflowing log gets
// an explicit gap record instead of silently missing lines.
func TestEventLogBounds(t *testing.T) {
	l := newEventLog(4)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(l, "{\"n\":%d}\n", i)
	}
	lines, next, dropped, closed, _ := l.since(0)
	if dropped != 6 || len(lines) != 4 || closed {
		t.Fatalf("since(0) = %d lines, %d dropped, closed=%v; want 4, 6, false", len(lines), dropped, closed)
	}
	if got := string(lines[0]); got != `{"n":6}` {
		t.Errorf("first surviving line = %s, want {\"n\":6}", got)
	}
	if next != 10 {
		t.Errorf("next = %d, want 10", next)
	}
	// A partial write only becomes visible once its newline arrives.
	io.WriteString(l, `{"n":10`)
	if _, n, _, _, _ := l.since(next); n != 10 {
		t.Error("partial line leaked into the log")
	}
	io.WriteString(l, "}\n")
	lines, next, _, _, _ = l.since(next)
	if len(lines) != 1 || string(lines[0]) != `{"n":10}` {
		t.Errorf("reassembled line = %q", lines)
	}
	l.closeLog()
	if _, _, _, closed, _ := l.since(next); !closed {
		t.Error("log not closed")
	}
}

// TestRollbackSplicesOwnID: regression for the submit-failure rollback
// truncating whatever id happened to be last in the submission order. The
// lock is dropped between registration and the queue push, so a concurrent
// submit can append another id in that window; a rejected job must splice
// out its own id, or the survivor's id stays in order pointing at a deleted
// job and every list/stats request panics on the nil entry.
func TestRollbackSplicesOwnID(t *testing.T) {
	srv, hts := newTestServer(t, context.Background(), Config{})
	reqA, _, err := JobRequest{Run: "tableI", Scale: "small"}.validate()
	if err != nil {
		t.Fatal(err)
	}
	reqB, _, err := JobRequest{Run: "fig4", Scale: "small"}.validate()
	if err != nil {
		t.Fatal(err)
	}
	// Register A then B exactly as handleSubmit does, then roll A back —
	// the interleaving where B's registration landed inside A's window.
	register := func(req JobRequest, client string) *Job {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		srv.seq++
		j := newJob(fmt.Sprintf("j%06d", srv.seq), req.key(), client, "", req, srv.cfg.EventBuffer)
		srv.jobs[j.id] = j
		srv.order = append(srv.order, j.id)
		srv.byKey[j.key] = j
		srv.perClient[client]++
		return j
	}
	a := register(reqA, "alice")
	b := register(reqB, "bob")

	srv.rollbackSubmit(a)

	srv.mu.Lock()
	order := append([]string(nil), srv.order...)
	_, aLives := srv.jobs[a.id]
	srv.mu.Unlock()
	if aLives || len(order) != 1 || order[0] != b.id {
		t.Fatalf("after rollback: order=%v, jobs still has %s: %v; want order=[%s]", order, a.id, aLives, b.id)
	}
	// The survivor must still be listable — with the old truncation this
	// dereferenced the deleted job's nil entry and panicked the handler.
	resp, err := http.Get(hts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct{ Jobs []Status }
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != b.id {
		t.Errorf("job list = %+v, want exactly %s", list.Jobs, b.id)
	}
	// Settle b so its event log is closed rather than left open forever.
	b.start()
	b.finish(nil, context.Canceled)
}

// TestEventsConcurrentReaders streams one job's feed from several readers at
// once; every line each reader sees must be intact JSON. Under -race this
// pins that handleEvents never writes into the line buffers shared between
// readers of the same event log.
func TestEventsConcurrentReaders(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	resp, sub := postJob(t, hts.URL, "", JobRequest{Run: "tableII", Scale: "small", Benchmarks: []string{"505.mcf_r"}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	const readers = 4
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			es, err := http.Get(hts.URL + sub.EventsURL)
			if err != nil {
				errs <- err
				return
			}
			defer es.Body.Close()
			sc := bufio.NewScanner(es.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			lines := 0
			for sc.Scan() {
				lines++
				var v map[string]interface{}
				if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
					errs <- fmt.Errorf("torn line %d: %v: %q", lines, err, sc.Text())
					return
				}
			}
			if err := sc.Err(); err != nil {
				errs <- err
				return
			}
			if lines == 0 {
				errs <- fmt.Errorf("reader saw no events")
				return
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if st := waitDone(t, hts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
}
