package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"specsampling/internal/obs"
	"specsampling/internal/telemetry"
)

// scrapeMetrics fetches /metrics and sanity-checks the response envelope.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// seriesValue extracts one sample's value from an exposition; -1 when the
// series is absent.
func seriesValue(exposition, series string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// TestHealthzDrainAware pins the load-balancer contract: 200 with uptime
// while serving, 503 + "draining": true once drain has begun.
func TestHealthzDrainAware(t *testing.T) {
	srv, hts := newTestServer(t, context.Background(), Config{})
	var body struct {
		Status   string  `json:"status"`
		Draining bool    `json:"draining"`
		UptimeS  float64 `json:"uptime_s"`
	}
	get := func() int {
		t.Helper()
		resp, err := http.Get(hts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK || body.Draining || body.Status != "ok" {
		t.Fatalf("healthz before drain = %d %+v, want 200 ok not draining", code, body)
	}
	if body.UptimeS < 0 {
		t.Errorf("uptime_s = %g, want >= 0", body.UptimeS)
	}
	srv.Drain()
	if code := get(); code != http.StatusServiceUnavailable || !body.Draining || body.Status != "draining" {
		t.Fatalf("healthz after drain = %d %+v, want 503 draining", code, body)
	}
	if body.UptimeS <= 0 {
		t.Errorf("uptime_s after drain = %g, want > 0", body.UptimeS)
	}
}

// TestTraceIDPropagation: a valid inbound X-Trace-Id is echoed on the
// response, lands in the job's status, and is stamped onto the job's span
// tree so events-feed records are attributable to the originating request.
func TestTraceIDPropagation(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})

	req, err := http.NewRequest("POST", hts.URL+"/v1/jobs",
		strings.NewReader(`{"run":"tableI","scale":"small"}`))
	if err != nil {
		t.Fatal(err)
	}
	const trace = "trace-abc.123_X"
	req.Header.Set("X-Trace-Id", trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != trace {
		t.Errorf("response X-Trace-Id = %q, want %q echoed", got, trace)
	}
	var sub Status
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Trace != trace {
		t.Errorf("submit status trace_id = %q, want %q", sub.Trace, trace)
	}
	if st := waitDone(t, hts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}

	// The serve.job span (first line of the events feed) carries the trace.
	er, err := http.Get(hts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	found := false
	sc := bufio.NewScanner(er.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"trace":"`+trace+`"`) {
			found = true
			break
		}
	}
	if !found {
		t.Error("no events-feed record carries the submit request's trace id")
	}
}

// TestTraceIDMinted: requests without a usable X-Trace-Id get a fresh
// 16-hex-digit id; header-injection attempts are not echoed back.
func TestTraceIDMinted(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)
	for _, inbound := range []string{"", "bad id with spaces", strings.Repeat("x", 65)} {
		req, err := http.NewRequest("GET", hts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if inbound != "" {
			req.Header.Set("X-Trace-Id", inbound)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Trace-Id"); !hexID.MatchString(got) {
			t.Errorf("inbound %q: response trace id %q, want minted 16-hex", inbound, got)
		}
	}
}

// TestMetricsEndpointAdvances scrapes before and after traffic and checks
// the per-route series moved and every scrape is internally coherent.
func TestMetricsEndpointAdvances(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{})
	before := scrapeMetrics(t, hts.URL)
	if errs := telemetry.CheckExposition(before); len(errs) > 0 {
		t.Fatalf("baseline scrape incoherent: %v", errs)
	}

	_, sub := postJob(t, hts.URL, "", JobRequest{Run: "tableI", Scale: "small"})
	waitDone(t, hts.URL, sub.ID)
	after := scrapeMetrics(t, hts.URL)
	if errs := telemetry.CheckExposition(after); len(errs) > 0 {
		t.Fatalf("post-traffic scrape incoherent: %v", errs)
	}

	const submitSeries = `serve_http_requests{route="/v1/jobs",method="POST",code="2xx"}`
	b, a := seriesValue(before, submitSeries), seriesValue(after, submitSeries)
	if a < b+1 || a < 1 {
		t.Errorf("%s: %g → %g, want to advance by >= 1", submitSeries, b, a)
	}
	const statusSeries = `serve_http_requests{route="/v1/jobs/{id}",method="GET",code="2xx"}`
	if v := seriesValue(after, statusSeries); v < 1 {
		t.Errorf("%s = %g, want >= 1 after polling", statusSeries, v)
	}
	// The latency histogram for the submit route exists with coherent
	// count, and job counters from the pipeline show up in the same scrape.
	const submitCount = `serve_http_request_seconds_count{route="/v1/jobs",method="POST"}`
	if v := seriesValue(after, submitCount); v < 1 {
		t.Errorf("%s = %g, want >= 1", submitCount, v)
	}
	if v := seriesValue(after, "serve_submit"); v < 1 {
		t.Errorf("serve_submit = %g, want >= 1", v)
	}
}

// TestStatsHistoryEndpoint: the collector ring is served as JSON, oldest
// first, and carries both runtime and daemon gauges.
func TestStatsHistoryEndpoint(t *testing.T) {
	_, hts := newTestServer(t, context.Background(), Config{
		StatsInterval: 5 * time.Millisecond,
		StatsHistory:  16,
	})
	var body struct {
		IntervalMs int64                `json:"interval_ms"`
		History    []telemetry.Snapshot `json:"history"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hts.URL + "/v1/stats/history")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/stats/history = %d, want 200", resp.StatusCode)
		}
		body.History = nil
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(body.History) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if body.IntervalMs != 5 {
		t.Errorf("interval_ms = %d, want 5", body.IntervalMs)
	}
	if len(body.History) < 2 {
		t.Fatalf("history length = %d, want >= 2 snapshots", len(body.History))
	}
	if !sort.SliceIsSorted(body.History, func(i, j int) bool {
		return body.History[i].TimeMs < body.History[j].TimeMs
	}) {
		t.Error("history snapshots not in time order")
	}
	last := body.History[len(body.History)-1].Metrics
	if last["runtime.goroutines"] < 1 {
		t.Errorf("runtime.goroutines = %g, want >= 1", last["runtime.goroutines"])
	}
	if _, ok := last["serve.jobs.inflight"]; !ok {
		t.Error("serve.jobs.inflight gauge missing from snapshots")
	}
	if _, ok := last["serve.events.dropped"]; !ok {
		t.Error("serve.events.dropped gauge missing from snapshots")
	}
}

// TestAccessLogRecords: every completed request produces one parseable
// line with the route, status and trace id the client saw.
func TestAccessLogRecords(t *testing.T) {
	var logBuf syncBuffer
	sink := obs.NewAccessSink(&logBuf)
	_, hts := newTestServer(t, context.Background(), Config{AccessLog: sink})

	req, err := http.NewRequest("GET", hts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "accesslog-test-1")
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(hts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	type accessLine struct {
		Type   string `json:"type"`
		Route  string `json:"route"`
		Status int    `json:"status"`
		DurUs  int64  `json:"dur_us"`
		Trace  string `json:"trace"`
	}
	var lines []accessLine
	for _, raw := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var al accessLine
		if err := json.Unmarshal([]byte(raw), &al); err != nil {
			t.Fatalf("unparseable access line %q: %v", raw, err)
		}
		lines = append(lines, al)
	}
	if len(lines) != 2 {
		t.Fatalf("access lines = %d, want 2", len(lines))
	}
	if l := lines[0]; l.Type != "access" || l.Route != "/healthz" || l.Status != 200 || l.Trace != "accesslog-test-1" {
		t.Errorf("healthz access line = %+v", l)
	}
	if l := lines[1]; l.Route != "/v1/jobs/{id}" || l.Status != 404 {
		t.Errorf("404 access line = %+v, want route pattern and status 404", l)
	}
	for _, l := range lines {
		if l.DurUs < 0 {
			t.Errorf("negative duration in access line %+v", l)
		}
	}
}

// TestTelemetryDisabled: the opt-out restores the bare request path — no
// trace header, no collector, empty history.
func TestTelemetryDisabled(t *testing.T) {
	srv, hts := newTestServer(t, context.Background(), Config{DisableTelemetry: true})
	if srv.collector != nil {
		t.Error("collector running despite DisableTelemetry")
	}
	resp, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Errorf("X-Trace-Id = %q with telemetry disabled, want none", got)
	}
	hr, err := http.Get(hts.URL + "/v1/stats/history")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var body struct {
		History []telemetry.Snapshot `json:"history"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.History) != 0 {
		t.Errorf("history has %d snapshots with telemetry disabled, want 0", len(body.History))
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: handlers log concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTelemetryOverhead measures the cost of the instrument wrapper on a
// cheap route, enabled vs disabled; the numbers are recorded in
// EXPERIMENTS.md. Informational — it fails only if telemetry is
// catastrophically slow (>5x p50 on a sub-millisecond route).
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement skipped in -short")
	}
	measure := func(disable bool) (p50, p99 time.Duration) {
		t.Helper()
		_, hts := newTestServer(t, context.Background(), Config{DisableTelemetry: disable})
		client := hts.Client()
		const n = 2000
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			resp, err := client.Get(hts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[n/2], lat[n*99/100]
	}
	offP50, offP99 := measure(true)
	onP50, onP99 := measure(false)
	t.Logf("telemetry overhead on /healthz (%d requests): disabled p50=%v p99=%v, enabled p50=%v p99=%v",
		2000, offP50, offP99, onP50, onP99)
	fmt.Printf("TELEMETRY_OVERHEAD disabled_p50=%v disabled_p99=%v enabled_p50=%v enabled_p99=%v\n",
		offP50, offP99, onP50, onP99)
	if onP50 > 5*offP50 && onP50-offP50 > time.Millisecond {
		t.Errorf("enabled p50 %v vs disabled %v: instrumentation too expensive", onP50, offP50)
	}
}
