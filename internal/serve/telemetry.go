package serve

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"specsampling/internal/obs"
)

// Request telemetry: every route is wrapped by Server.instrument, which
// assigns the request a trace id (inbound X-Trace-Id honoured, one minted
// otherwise), records per-route latency/status metrics into pre-interned
// obs handles, and emits one structured access-log line per completed
// request. Handles are interned once at mux construction — the per-request
// hot path is a clock read, a histogram observe and a counter add, with no
// registry lookups and no map allocations.

// codeClasses are the status-code classes the per-route request counters
// are labelled with; bounded cardinality no matter what a handler returns.
var codeClasses = [...]string{"2xx", "3xx", "4xx", "5xx", "other"}

// classIndex maps a status code onto codeClasses.
func classIndex(status int) int {
	if status >= 200 && status < 600 {
		return status/100 - 2
	}
	return len(codeClasses) - 1
}

// routeStats is one route's pre-interned telemetry handles.
type routeStats struct {
	seconds *obs.Histogram
	byClass [len(codeClasses)]*obs.Counter
}

// newRouteStats interns the route's series. The registry names carry the
// Prometheus label suffix the exposition layer groups families by:
// serve.http.request_seconds{route="/v1/jobs",method="POST"} and
// serve.http.requests{route=...,method=...,code="2xx"}.
func newRouteStats(method, route string) *routeStats {
	labels := fmt.Sprintf("route=%q,method=%q", route, method)
	rs := &routeStats{
		seconds: obs.GetHistogram("serve.http.request_seconds{" + labels + "}"),
	}
	for i, class := range codeClasses {
		rs.byClass[i] = obs.GetCounter(fmt.Sprintf("serve.http.requests{%s,code=%q}", labels, class))
	}
	return rs
}

// observe records one completed request.
func (rs *routeStats) observe(status int, seconds float64) {
	rs.seconds.Observe(seconds)
	rs.byClass[classIndex(status)].Add(1)
}

// statusWriter captures the status code and body size a handler produced.
// Flush passes through so the events feed keeps streaming line by line.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the recorded code (200 when the handler never wrote one).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// traceCtxKey carries the request's trace id through the request context
// and from there onto the job it submits.
type traceCtxKey struct{}

// traceFrom extracts the request's trace id ("" when telemetry is off).
func traceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// traceSeq de-duplicates minted trace ids if the system's entropy source
// ever fails; ids stay unique within the process either way.
var traceSeq atomic.Uint64

// newTraceID mints a 16-hex-digit request trace id.
func newTraceID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", traceSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// validTraceID accepts inbound X-Trace-Id values: 1–64 characters of
// [0-9A-Za-z._-]. Anything else (notably header-injection attempts) is
// replaced with a minted id.
func validTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// instrument wraps one route's handler with request telemetry. With
// telemetry disabled it returns the handler untouched — the PR-8 request
// path, no clock reads, no headers, no per-request work at all.
func (s *Server) instrument(method, route string, next http.HandlerFunc) http.HandlerFunc {
	if s.cfg.DisableTelemetry {
		return next
	}
	rs := newRouteStats(method, route)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		tid := r.Header.Get("X-Trace-Id")
		if !validTraceID(tid) {
			tid = newTraceID()
		}
		w.Header().Set("X-Trace-Id", tid)
		sw := &statusWriter{ResponseWriter: w}
		next(sw, r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tid)))
		dur := time.Since(t0)
		rs.observe(sw.Status(), dur.Seconds())
		if s.access != nil {
			s.access.Log(obs.AccessRecord{
				Time:     t0,
				Method:   r.Method,
				Route:    route,
				Path:     r.URL.Path,
				Status:   sw.Status(),
				Bytes:    sw.bytes,
				Duration: dur,
				Client:   clientID(r),
				TraceID:  tid,
			})
		}
	}
}

// Self-monitoring gauges the collector samples via Server.probe.
var (
	inflightGauge = obs.GetGauge("serve.jobs.inflight")
	queuedGauge   = obs.GetGauge("serve.jobs.queued")
	clientsGauge  = obs.GetGauge("serve.clients.live")
	droppedGauge  = obs.GetGauge("serve.events.dropped")
)

// probe publishes the server's own health gauges: jobs by live state,
// clients with live jobs, and the total event-log lines dropped to
// overflow across all jobs (dashboards alert on this growing — it means a
// consumer is falling behind the EventBuffer).
func (s *Server) probe() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var running, queued int64
	var dropped int64
	for _, id := range s.order {
		j := s.jobs[id]
		switch _, state := j.resultBytes(); state {
		case StateRunning:
			running++
		case StateQueued:
			queued++
		}
		dropped += int64(j.events.droppedCount())
	}
	inflightGauge.Set(running)
	queuedGauge.Set(queued)
	clientsGauge.Set(int64(len(s.perClient)))
	droppedGauge.Set(dropped)
}
