package serve

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"specsampling/internal/experiments"
	"specsampling/internal/selector"
	"specsampling/internal/store"
	"specsampling/internal/workload"
)

// JobRequest is the submit body of POST /v1/jobs: one experiment run,
// parameterised exactly like cmd/experiments, so a daemon job and a CLI run
// of the same configuration produce byte-identical reports.
type JobRequest struct {
	// Run is the experiment id (experiments.IDs()) or "all".
	Run string `json:"run"`
	// Scale is the workload scale name; empty means "medium".
	Scale string `json:"scale,omitempty"`
	// Benchmarks restricts the suite; empty means all 29.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Selector names the region-selection backend; empty means the default.
	Selector string `json:"selector,omitempty"`
	// Repeats is the shoot-out repeated-subsampling count; 0 means default.
	Repeats int `json:"repeats,omitempty"`
}

// validate resolves and checks every field, returning the normalized
// request (resolved scale and selector names, trimmed benchmark list) or a
// client-errored explanation. Validation happens at submit time so a bad
// configuration is a 400 with a hint, never a failed job.
func (r JobRequest) validate() (JobRequest, workload.Scale, error) {
	if r.Run == "" {
		r.Run = "all"
	}
	if r.Run != "all" {
		known := false
		for _, id := range experiments.IDs() {
			if id == r.Run {
				known = true
				break
			}
		}
		if !known {
			return r, workload.Scale{}, fmt.Errorf("unknown run %q (want one of %v or all)", r.Run, experiments.IDs())
		}
	}
	if r.Scale == "" {
		r.Scale = "medium"
	}
	scale, err := workload.ScaleByName(r.Scale)
	if err != nil {
		return r, workload.Scale{}, err
	}
	// The env override applies on the daemon host exactly as it does for
	// the CLIs; the resolved name is what the job echoes and keys on.
	scale = workload.ScaleFromEnv(scale)
	r.Scale = scale.Name
	if r.Selector == "" {
		r.Selector = selector.DefaultName
	}
	if _, err := selector.ByName(r.Selector); err != nil {
		return r, workload.Scale{}, fmt.Errorf("%v (GET /v1/selectors lists the registered backends)", err)
	}
	var benches []string
	for _, b := range r.Benchmarks {
		if b = strings.TrimSpace(b); b == "" {
			continue
		}
		if _, err := workload.ByName(b); err != nil {
			return r, workload.Scale{}, err
		}
		benches = append(benches, b)
	}
	r.Benchmarks = benches
	if r.Repeats < 0 {
		return r, workload.Scale{}, fmt.Errorf("negative repeats %d", r.Repeats)
	}
	return r, scale, nil
}

// key is the job's dedup identity: the store-key digest of every semantic
// knob (worker budgets are excluded — they change wall-clock, not bytes).
// Two clients submitting the same configuration land on the same digest and
// therefore the same computation, exactly when their pipeline artifacts
// would share cache entries.
func (r JobRequest) key() string {
	rep := r.Repeats
	if rep <= 0 {
		rep = experiments.DefaultShootoutRepeats
	}
	if rep < 2 {
		rep = 2
	}
	return store.Key{Kind: "servejob", Bench: "suite", Parts: []string{
		"run=" + r.Run,
		"scale=" + r.Scale,
		"bench=" + strings.Join(r.Benchmarks, ","),
		"selector=" + r.Selector,
		fmt.Sprintf("repeats=%d", rep),
	}}.Digest()
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submitted analysis: its request, lifecycle timestamps, the
// report bytes once done, and the live event stream.
type Job struct {
	id     string
	key    string
	req    JobRequest
	client string
	trace  string // trace id of the submitting request ("" without telemetry)
	events *eventLog

	mu       sync.Mutex
	state    string
	errMsg   string
	result   []byte
	created  time.Time
	started  time.Time
	finished time.Time
}

func newJob(id, key, client, trace string, req JobRequest, eventCap int) *Job {
	return &Job{
		id:      id,
		key:     key,
		req:     req,
		client:  client,
		trace:   trace,
		events:  newEventLog(eventCap),
		state:   StateQueued,
		created: time.Now(),
	}
}

func (j *Job) start() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(result []byte, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = result
	}
	j.mu.Unlock()
	j.events.closeLog()
}

func (j *Job) failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateFailed
}

// Status is the wire representation of a job (GET /v1/jobs/{id} and the
// submit response).
type Status struct {
	ID         string   `json:"id"`
	Key        string   `json:"key"`
	Trace      string   `json:"trace_id,omitempty"`
	State      string   `json:"state"`
	Dedup      bool     `json:"dedup,omitempty"`
	Run        string   `json:"run"`
	Scale      string   `json:"scale"`
	Selector   string   `json:"selector"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	Created    string   `json:"created"`
	Started    string   `json:"started,omitempty"`
	Finished   string   `json:"finished,omitempty"`
	Error      string   `json:"error,omitempty"`
	ResultURL  string   `json:"result_url,omitempty"`
	EventsURL  string   `json:"events_url"`
}

func (j *Job) status(dedup bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		Key:        j.key,
		Trace:      j.trace,
		State:      j.state,
		Dedup:      dedup,
		Run:        j.req.Run,
		Scale:      j.req.Scale,
		Selector:   j.req.Selector,
		Benchmarks: j.req.Benchmarks,
		Created:    j.created.UTC().Format(time.RFC3339Nano),
		Error:      j.errMsg,
		EventsURL:  "/v1/jobs/" + j.id + "/events",
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.state == StateDone {
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	return st
}

// resultBytes returns the report and whether the job has one yet.
func (j *Job) resultBytes() ([]byte, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state
}

// ------------------------------------------------------------- event log --

// eventLog buffers a job's JSONL event stream and wakes streaming readers
// as lines arrive. It is the io.Writer under the job's streaming JSONL
// sink: Write accepts arbitrary chunks and splits them into complete lines,
// so readers always observe whole records no matter how the sink's flushes
// chunk the bytes. The buffer is bounded — a runaway job drops its oldest
// lines (counted, and reported on the stream) rather than growing without
// limit inside a long-lived daemon.
type eventLog struct {
	mu      sync.Mutex
	partial []byte
	lines   [][]byte
	base    int // index of lines[0] in the logical stream
	dropped int
	max     int
	closed  bool
	change  chan struct{} // closed and replaced on every append/close
}

func newEventLog(max int) *eventLog {
	if max <= 0 {
		max = 4096
	}
	return &eventLog{max: max, change: make(chan struct{})}
}

// Write implements io.Writer for the job's sink.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return len(p), nil // a straggling flush after finish is dropped
	}
	l.partial = append(l.partial, p...)
	changed := false
	for {
		i := indexByte(l.partial, '\n')
		if i < 0 {
			break
		}
		line := append([]byte(nil), l.partial[:i]...)
		l.partial = l.partial[i+1:]
		l.lines = append(l.lines, line)
		changed = true
		if len(l.lines) > l.max {
			over := len(l.lines) - l.max
			l.lines = l.lines[over:]
			l.base += over
			l.dropped += over
		}
	}
	if changed {
		l.wake()
	}
	return len(p), nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// closeLog marks the stream complete and wakes every reader.
func (l *eventLog) closeLog() {
	l.mu.Lock()
	l.closed = true
	l.wake()
	l.mu.Unlock()
}

// wake must be called with mu held.
func (l *eventLog) wake() {
	close(l.change)
	l.change = make(chan struct{})
}

// droppedCount reports how many lines this log has shed to overflow; the
// self-monitoring probe sums it across jobs into serve.events.dropped.
func (l *eventLog) droppedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// since returns the lines at logical indices >= from, the next index to
// read, whether the stream is complete, and a channel that is closed on the
// next change — captured under the same lock, so a reader that sees no new
// lines cannot miss the wakeup for lines that arrive after it returns.
func (l *eventLog) since(from int) (lines [][]byte, next int, dropped int, closed bool, change <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < l.base {
		dropped = l.base - from
		from = l.base
	}
	if off := from - l.base; off < len(l.lines) {
		lines = append([][]byte(nil), l.lines[off:]...)
	}
	return lines, l.base + len(l.lines), dropped, l.closed, l.change
}
