// Package serve is the sampling pipeline as a long-lived service: an HTTP
// API over the same experiments.Runner that cmd/experiments drives, with a
// bounded job queue in front and the persistent artifact store underneath.
//
// The contract is the CLI's, held under concurrency: a job's report bytes
// are byte-identical to `experiments -json` with the same configuration;
// identical configurations submitted by any number of clients collapse to
// one computation (dedup keys on the same digest machinery the store keys
// artifacts with); overload is shed with 503 + Retry-After instead of
// unbounded queueing; and SIGTERM drains in-flight jobs so every completed
// stage reaches the store before exit.
//
// Endpoints:
//
//	POST /v1/jobs               submit a JobRequest        → 202 / 200 dedup
//	GET  /v1/jobs               list jobs (newest first)
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/result   final report JSON (409 until done)
//	GET  /v1/jobs/{id}/events   live JSONL progress stream
//	GET  /v1/selectors          registered region-selection backends
//	GET  /v1/stats              queue depth and per-state job counts
//	GET  /v1/stats/history      self-monitoring snapshot ring (JSON)
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               liveness (503 once draining)
//
// Every route carries request telemetry (see telemetry.go): a trace id per
// request, per-route latency histograms and status-class counters, and
// optional structured access logs. A background collector samples runtime
// and daemon gauges into the /v1/stats/history ring.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"specsampling/internal/experiments"
	"specsampling/internal/obs"
	"specsampling/internal/sched"
	"specsampling/internal/selector"
	"specsampling/internal/store"
	"specsampling/internal/telemetry"
)

var (
	submitCounter = obs.GetCounter("serve.submit")
	dedupCounter  = obs.GetCounter("serve.dedup")
	rejectCounter = obs.GetCounter("serve.reject")
)

// maxBodyBytes bounds a submit body; a JobRequest is a few hundred bytes.
const maxBodyBytes = 1 << 20

// Config configures a Server. Zero values mean the documented defaults.
type Config struct {
	// Store is the persistent artifact cache every job runs against. It is
	// required: the daemon's whole point is serving many clients from one
	// warm cache.
	Store *store.Store
	// Workers bounds each job's internal pipeline fan-out (experiments
	// Options.Workers); <= 0 means GOMAXPROCS.
	Workers int
	// JobWorkers is the number of jobs executing concurrently (default 2).
	JobWorkers int
	// QueueDepth bounds the jobs waiting to run (default 64); submissions
	// beyond it are shed with 503.
	QueueDepth int
	// MaxPerClient bounds one client's live (queued or running) jobs
	// (default 16); submissions beyond it are shed with 503.
	MaxPerClient int
	// EventBuffer bounds each job's retained event lines (default 4096).
	EventBuffer int
	// AccessLog, when non-nil, receives one structured line per completed
	// request. The sink is the caller's to close (after the HTTP server has
	// shut down); the Server only writes to it.
	AccessLog *obs.AccessSink
	// DisableTelemetry turns off request instrumentation, access logging
	// and the self-monitoring collector. /metrics and /v1/stats/history
	// stay mounted but stop advancing.
	DisableTelemetry bool
	// StatsInterval is the self-monitoring sampling period (default 1s).
	StatsInterval time.Duration
	// StatsHistory is how many snapshots /v1/stats/history retains
	// (default 600 — ten minutes at the default interval).
	StatsHistory int
}

func (c Config) normalize() Config {
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 16
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 4096
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = time.Second
	}
	if c.StatsHistory <= 0 {
		c.StatsHistory = 600
	}
	return c
}

// Server owns the job table and the bounded execution queue.
type Server struct {
	cfg       Config
	queue     *sched.Queue
	access    *obs.AccessSink
	collector *telemetry.Collector
	started   time.Time

	closing   chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	jobs      map[string]*Job // by id
	order     []string        // ids in submission order
	byKey     map[string]*Job // dedup index: config digest → live/done job
	perClient map[string]int  // live (queued+running) jobs per client
	seq       int
}

// New builds a Server. ctx is the runtime context every job executes under:
// cancelling it hard-aborts in-flight jobs (Drain is the graceful path).
// The caller mints ctx — conventionally in func main, per the repo's
// context-flow rule.
func New(ctx context.Context, cfg Config) (*Server, error) {
	cfg = cfg.normalize()
	if cfg.Store == nil {
		return nil, errors.New("serve: Config.Store is required")
	}
	s := &Server{
		cfg:       cfg,
		queue:     sched.NewQueue(ctx, cfg.JobWorkers, cfg.QueueDepth),
		started:   time.Now(),
		closing:   make(chan struct{}),
		jobs:      map[string]*Job{},
		byKey:     map[string]*Job{},
		perClient: map[string]int{},
	}
	if !cfg.DisableTelemetry {
		s.access = cfg.AccessLog
		s.collector = telemetry.NewCollector(cfg.StatsInterval, cfg.StatsHistory,
			telemetry.RuntimeProbe, store.Probe, s.probe)
		s.collector.Start()
	}
	return s, nil
}

// Drain stops accepting work and blocks until every queued and running job
// has finished. Event streams are unblocked (they end cleanly), and every
// completed stage has reached the store by the time Drain returns. Safe to
// call more than once.
func (s *Server) Drain() {
	s.closeOnce.Do(func() { close(s.closing) })
	s.queue.Close()
	if s.collector != nil {
		s.collector.Close()
	}
}

// Handler returns the daemon's HTTP handler. Every route goes through
// instrument, which is the identity when telemetry is disabled; the route
// label is the mux pattern, so series cardinality is fixed at build time.
func (s *Server) Handler() http.Handler {
	metrics := telemetry.MetricsHandler()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.instrument("POST", "/v1/jobs", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument("GET", "/v1/jobs", s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("GET", "/v1/jobs/{id}", s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.instrument("GET", "/v1/jobs/{id}/result", s.handleResult))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("GET", "/v1/jobs/{id}/events", s.handleEvents))
	mux.HandleFunc("GET /v1/selectors", s.instrument("GET", "/v1/selectors", s.handleSelectors))
	mux.HandleFunc("GET /v1/stats", s.instrument("GET", "/v1/stats", s.handleStats))
	mux.HandleFunc("GET /v1/stats/history", s.instrument("GET", "/v1/stats/history", s.handleStatsHistory))
	mux.HandleFunc("GET /metrics", s.instrument("GET", "/metrics", metrics.ServeHTTP))
	mux.HandleFunc("GET /healthz", s.instrument("GET", "/healthz", s.handleHealthz))
	return mux
}

// handleHealthz is the liveness probe. Once SIGTERM drain begins it flips
// to 503 with "draining": true, so load balancers stop routing new work to
// an instance that is finishing its queue.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := struct {
		Status   string  `json:"status"`
		Draining bool    `json:"draining"`
		UptimeS  float64 `json:"uptime_s"`
	}{Status: "ok", UptimeS: time.Since(s.started).Seconds()}
	select {
	case <-s.closing:
		body.Status = "draining"
		body.Draining = true
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}

// statsHistoryBody is the GET /v1/stats/history response: the collector's
// snapshot ring, oldest first.
type statsHistoryBody struct {
	IntervalMs int64                `json:"interval_ms"`
	History    []telemetry.Snapshot `json:"history"`
}

func (s *Server) handleStatsHistory(w http.ResponseWriter, r *http.Request) {
	body := statsHistoryBody{
		IntervalMs: s.cfg.StatsInterval.Milliseconds(),
		History:    []telemetry.Snapshot{},
	}
	if s.collector != nil {
		body.History = s.collector.History()
	}
	writeJSON(w, http.StatusOK, body)
}

// errorBody is every non-2xx response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
	Hint  string `json:"hint,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client went away; nothing useful to do
}

func writeError(w http.ResponseWriter, code int, err error, hint string) {
	writeJSON(w, code, errorBody{Error: err.Error(), Hint: hint})
}

// clientID identifies the submitter for admission accounting: the
// X-Client-ID header when present (so load balancers and test harnesses can
// be explicit), else the peer IP.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.closing:
		rejectCounter.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: draining"), "the daemon is shutting down")
		return
	default:
	}
	var req JobRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode request: %w", err),
			`body is JSON like {"run":"fig4","scale":"small","selector":"simpoint"}`)
		return
	}
	req, _, err := req.validate()
	if err != nil {
		writeError(w, http.StatusBadRequest, err, "")
		return
	}
	key := req.key()
	client := clientID(r)
	submitCounter.Add(1)

	s.mu.Lock()
	// Dedup: an identical configuration already queued, running or done is
	// the caller's job too. Failed jobs do not absorb resubmissions — a
	// retry gets a fresh attempt.
	if prior, ok := s.byKey[key]; ok && !prior.failed() {
		s.mu.Unlock()
		dedupCounter.Add(1)
		writeJSON(w, http.StatusOK, prior.status(true))
		return
	}
	if s.perClient[client] >= s.cfg.MaxPerClient {
		s.mu.Unlock()
		rejectCounter.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("serve: client %q has %d live jobs (limit %d)", client, s.cfg.MaxPerClient, s.cfg.MaxPerClient),
			"wait for a job to finish, or poll an existing job instead of resubmitting")
		return
	}
	s.seq++
	job := newJob(fmt.Sprintf("j%06d", s.seq), key, client, traceFrom(r.Context()), req, s.cfg.EventBuffer)
	s.jobs[job.id] = job
	s.order = append(s.order, job.id)
	s.byKey[key] = job
	s.perClient[client]++
	s.mu.Unlock()

	if err := s.queue.Submit(func(ctx context.Context) { s.runJob(ctx, job) }); err != nil {
		s.rollbackSubmit(job)
		rejectCounter.Add(1)
		w.Header().Set("Retry-After", "5")
		hint := "the job queue is full; retry shortly"
		if errors.Is(err, sched.ErrQueueClosed) {
			hint = "the daemon is shutting down"
		}
		writeError(w, http.StatusServiceUnavailable, err, hint)
		return
	}
	writeJSON(w, http.StatusAccepted, job.status(false))
}

// rollbackSubmit undoes a job's registration after its queue submission was
// rejected. The registration lock was dropped before Submit, so concurrent
// submissions may have appended to order in the window: remove this job's
// own id, wherever it sits, never just the tail element.
func (s *Server) rollbackSubmit(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, job.id)
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == job.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	if s.byKey[job.key] == job {
		delete(s.byKey, job.key)
	}
	s.release(job.client)
}

// release must be called with mu held.
func (s *Server) release(client string) {
	if s.perClient[client]--; s.perClient[client] <= 0 {
		delete(s.perClient, client)
	}
}

// runJob executes one job on a queue worker: the job's event log gets a
// streaming JSONL sink scoped onto the context, the runner executes exactly
// the cmd/experiments -json path, and the report bytes land on the job.
func (s *Server) runJob(ctx context.Context, j *Job) {
	j.start()
	result, err := s.compute(ctx, j)
	j.finish(result, err)
	s.mu.Lock()
	s.release(j.client)
	s.mu.Unlock()
}

func (s *Server) compute(ctx context.Context, j *Job) (_ []byte, err error) {
	sink := obs.NewStreamingJSONLSink(j.events)
	defer func() {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	ctx = obs.WithSink(ctx, sink)
	attrs := []obs.Attr{obs.String("id", j.id), obs.String("run", j.req.Run), obs.String("key", j.key)}
	if j.trace != "" {
		// The submitting request's trace id, so a line in the events feed is
		// attributable back to the access log and the X-Trace-Id a client saw.
		attrs = append(attrs, obs.String("trace", j.trace))
	}
	ctx, span := obs.Start(ctx, "serve.job", attrs...)
	defer span.End()

	_, scale, verr := j.req.validate() // re-resolve the Scale struct from the stored names
	if verr != nil {
		return nil, verr
	}
	runner, err := experiments.New(experiments.Options{
		Scale:           scale,
		Benchmarks:      j.req.Benchmarks,
		Workers:         s.cfg.Workers,
		Out:             io.Discard,
		Store:           s.cfg.Store,
		Selector:        j.req.Selector,
		ShootoutRepeats: j.req.Repeats,
	})
	if err != nil {
		return nil, err
	}
	report := experiments.NewReport()
	if err := runner.RunRecorded(ctx, j.req.Run, report); err != nil {
		return nil, err
	}
	// Mirror cmd/experiments -json exactly — same envelope, same encoder —
	// so the daemon's result bytes match the CLI's file for any config.
	var benchNames []string
	for _, spec := range runner.Benchmarks() {
		benchNames = append(benchNames, spec.Name)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, scale.Name, benchNames); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": s.listStatuses()})
}

// listStatuses snapshots every job's status, newest first. Unlocking via
// defer keeps a panic inside the critical section from wedging the server:
// net/http recovers handler panics, but a mutex locked without defer would
// stay held forever.
func (s *Server) listStatuses() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	statuses := make([]Status, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		statuses = append(statuses, s.jobs[s.order[i]].status(false))
	}
	return statuses
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")), "GET /v1/jobs lists known jobs")
		return
	}
	writeJSON(w, http.StatusOK, j.status(false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")), "GET /v1/jobs lists known jobs")
		return
	}
	result, state := j.resultBytes()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
	case StateFailed:
		writeJSON(w, http.StatusConflict, j.status(false))
	default:
		writeJSON(w, http.StatusConflict, j.status(false))
	}
}

// handleEvents streams the job's JSONL progress feed: everything buffered
// so far, then live lines as the pipeline emits them, ending when the job
// finishes, the client disconnects, or the daemon drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", r.PathValue("id")), "GET /v1/jobs lists known jobs")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	next := 0
	for {
		lines, n, dropped, closed, change := j.events.since(next)
		next = n
		if dropped > 0 {
			fmt.Fprintf(w, "{\"type\":\"gap\",\"dropped\":%d}\n", dropped)
		}
		for _, line := range lines {
			// line's backing array is shared with every other reader of this
			// log; appending the newline in place would be a write race.
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
		}
		if (len(lines) > 0 || dropped > 0) && flusher != nil {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		case <-s.closing:
			// The drain path closes each job's log as it finishes; a job
			// that never runs (hard abort) would otherwise hold readers
			// forever.
			return
		}
	}
}

func (s *Server) handleSelectors(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"selectors": selector.Names(),
		"default":   selector.DefaultName,
	})
}

// StatsBody is the GET /v1/stats response.
type StatsBody struct {
	Jobs       map[string]int `json:"jobs"`
	QueueDepth int            `json:"queue_depth"`
	Clients    int            `json:"clients"`
	Shards     int            `json:"store_shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// stats snapshots the queue and job-state counters; defer-unlocked for the
// same panic-safety reason as listStatuses.
func (s *Server) stats() StatsBody {
	s.mu.Lock()
	defer s.mu.Unlock()
	states := map[string]int{}
	for _, id := range s.order {
		_, st := s.jobs[id].resultBytes()
		states[st]++
	}
	return StatsBody{
		Jobs:       states,
		QueueDepth: s.queue.Depth(),
		Clients:    len(s.perClient),
		Shards:     s.cfg.Store.Shards(),
	}
}
