package simpoint

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"specsampling/internal/program"
	"specsampling/internal/workload"
)

// phasedProgram builds a program with nPhases clearly distinct phases.
func phasedProgram(t testing.TB, nPhases int, total uint64, seed uint64) *program.Program {
	t.Helper()
	specs := make([]program.PhaseSpec, nPhases)
	weights := make([]float64, nPhases)
	for i := range specs {
		specs[i] = program.PhaseSpec{
			Blocks:      5 + i%4,
			MinBlockLen: 4,
			MaxBlockLen: 10,
			Mix:         [4]float64{0.5, 0.3, 0.15, 0.05},
			Pattern: program.MemPattern{Base: uint64(i+1) << 24, WorkingSetBytes: 64 << 10,
				Stride: 8, SeqPermille: 500},
			JumpPermille:    30,
			ShareBlocksWith: -1,
		}
		weights[i] = 1 / float64(nPhases)
	}
	p, err := program.BuildProgram("phased", seed, specs,
		program.UniformSchedule(weights, total, 4))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfilePartitionsRun(t *testing.T) {
	p := phasedProgram(t, 3, 60000, 1)
	slices, total, err := Profile(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for i, s := range slices {
		if s.Index != i {
			t.Fatalf("slice %d has index %d", i, s.Index)
		}
		if s.Start.Instrs != sum {
			t.Fatalf("slice %d starts at %d, previous slices sum to %d", i, s.Start.Instrs, sum)
		}
		sum += s.Len
		var mass float64
		for _, v := range s.BBV {
			mass += v
		}
		if uint64(mass) != s.Len {
			t.Fatalf("slice %d BBV mass %v != length %d", i, mass, s.Len)
		}
	}
	if sum != total {
		t.Errorf("slices sum to %d, total is %d", sum, total)
	}
	if len(slices) < 100 {
		t.Errorf("only %d slices", len(slices))
	}
}

func TestProfileValidation(t *testing.T) {
	p := phasedProgram(t, 2, 10000, 2)
	if _, _, err := Profile(p, 0); err == nil {
		t.Error("accepted zero slice length")
	}
}

func TestAnalyzeFindsPhases(t *testing.T) {
	p := phasedProgram(t, 4, 80000, 3)
	cfg := DefaultConfig(512)
	cfg.MaxK = 10
	res, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPoints() < 3 || res.NumPoints() > 7 {
		t.Errorf("found %d points for a 4-phase program", res.NumPoints())
	}
	if math.Abs(res.WeightTotal()-1) > 1e-9 {
		t.Errorf("weights sum to %v", res.WeightTotal())
	}
	if res.TotalInstrs == 0 || res.NumSlices == 0 {
		t.Error("missing totals")
	}
	if res.SampledInstrs() >= res.TotalInstrs {
		t.Error("sampling did not reduce instruction count")
	}
	// Points must be in execution order with valid slice indices.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].SliceIndex <= res.Points[i-1].SliceIndex {
			t.Error("points out of execution order")
		}
	}
	for _, pt := range res.Points {
		if pt.SliceIndex < 0 || pt.SliceIndex >= res.NumSlices {
			t.Errorf("point slice index %d out of range", pt.SliceIndex)
		}
		if pt.Len == 0 || pt.Weight <= 0 {
			t.Errorf("degenerate point %+v", pt)
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	p := phasedProgram(t, 3, 50000, 4)
	cfg := DefaultConfig(512)
	a, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Analyze(p, cfg)
	if a.NumPoints() != b.NumPoints() {
		t.Fatalf("non-deterministic point count: %d vs %d", a.NumPoints(), b.NumPoints())
	}
	for i := range a.Points {
		if a.Points[i].SliceIndex != b.Points[i].SliceIndex ||
			a.Points[i].Weight != b.Points[i].Weight {
			t.Fatal("non-deterministic points")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	p := phasedProgram(t, 2, 20000, 5)
	if _, err := Analyze(p, Config{SliceLen: 0, MaxK: 5, ProjectDims: 15}); err == nil {
		t.Error("accepted zero slice length")
	}
	if _, err := Analyze(p, Config{SliceLen: 512, MaxK: 0, ProjectDims: 15}); err == nil {
		t.Error("accepted zero MaxK")
	}
	if _, err := Analyze(p, Config{SliceLen: 512, MaxK: 5, ProjectDims: 0}); err == nil {
		t.Error("accepted zero projection dims")
	}
}

func TestReduce(t *testing.T) {
	p := phasedProgram(t, 5, 100000, 6)
	cfg := DefaultConfig(512)
	cfg.MaxK = 12
	res, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	red, err := res.Reduce(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumPoints() > res.NumPoints() {
		t.Error("reduction added points")
	}
	if red.WeightTotal() < 0.9-1e-9 {
		t.Errorf("reduced weight total %v < 0.9", red.WeightTotal())
	}
	// Reduction keeps the heaviest points: the minimum kept weight must be
	// >= the maximum dropped weight.
	kept := map[int]bool{}
	minKept := math.MaxFloat64
	for _, pt := range red.Points {
		kept[pt.SliceIndex] = true
		if pt.Weight < minKept {
			minKept = pt.Weight
		}
	}
	for _, pt := range res.Points {
		if !kept[pt.SliceIndex] && pt.Weight > minKept+1e-12 {
			t.Errorf("dropped point weight %v exceeds kept minimum %v", pt.Weight, minKept)
		}
	}
	// Original untouched.
	if math.Abs(res.WeightTotal()-1) > 1e-9 {
		t.Error("Reduce mutated the original result")
	}
	if _, err := res.Reduce(0); err == nil {
		t.Error("accepted percentile 0")
	}
	if _, err := res.Reduce(1.5); err == nil {
		t.Error("accepted percentile > 1")
	}
	full, err := res.Reduce(1)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumPoints() != res.NumPoints() {
		t.Error("Reduce(1) dropped points")
	}
}

func TestVarianceSweepDecreasesWithK(t *testing.T) {
	p := phasedProgram(t, 6, 120000, 7)
	slices, _, err := Profile(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(512)
	ks := []int{2, 4, 8, 16}
	vs, err := VarianceSweep(slices, ks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != len(ks) {
		t.Fatalf("got %d entries", len(vs))
	}
	// Variance must broadly decrease as clusters increase (Figure 4).
	if vs[16] > vs[2] {
		t.Errorf("variance grew with clusters: k=2 %v, k=16 %v", vs[2], vs[16])
	}
	for k, v := range vs {
		if v < 0 {
			t.Errorf("negative variance at k=%d", k)
		}
	}
}

func TestWorkloadPhaseRecovery(t *testing.T) {
	// End-to-end: a real suite benchmark's clustering should find a point
	// count in the right neighbourhood of its designed phase count.
	spec, err := workload.ByName("520.omnetpp_r") // 4 phases
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(workload.ScaleSmall.SliceLen)
	cfg.MaxK = 20
	res, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPoints() < 3 || res.NumPoints() > 8 {
		t.Errorf("omnetpp_r (4 phases) yielded %d simulation points", res.NumPoints())
	}
}

func TestFilesRoundTrip(t *testing.T) {
	p := phasedProgram(t, 3, 50000, 8)
	cfg := DefaultConfig(512)
	res, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(t.TempDir(), "phased")
	if err := res.SaveFiles(prefix); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadFiles(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != res.NumPoints() {
		t.Fatalf("read %d points, wrote %d", len(pts), res.NumPoints())
	}
	for i, fp := range pts {
		if fp.SliceIndex != res.Points[i].SliceIndex {
			t.Errorf("point %d slice index %d, want %d", i, fp.SliceIndex, res.Points[i].SliceIndex)
		}
		if math.Abs(fp.Weight-res.Points[i].Weight) > 1e-5 {
			t.Errorf("point %d weight %v, want %v", i, fp.Weight, res.Points[i].Weight)
		}
	}
}

func TestFileFormats(t *testing.T) {
	res := &Result{
		Benchmark: "x",
		Points: []Point{
			{SliceIndex: 7, Weight: 0.75},
			{SliceIndex: 42, Weight: 0.25},
		},
	}
	var sp, w bytes.Buffer
	if err := res.WriteSimpointsFile(&sp); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteWeightsFile(&w); err != nil {
		t.Fatal(err)
	}
	if sp.String() != "7 0\n42 1\n" {
		t.Errorf("simpoints file = %q", sp.String())
	}
	if w.String() != "0.750000 0\n0.250000 1\n" {
		t.Errorf("weights file = %q", w.String())
	}
}

func TestReadFilesErrors(t *testing.T) {
	if _, err := ReadFiles(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("read from missing files succeeded")
	}
}
