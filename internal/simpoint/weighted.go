package simpoint

import (
	"fmt"
	"math"
	"sort"

	"specsampling/internal/bbv"
	"specsampling/internal/kmeans"
)

// ClusterWeighted is the variable-length-interval variant of Cluster
// (SimPoint 3.0, Hamerly et al. — discussed in the paper's Section V-B):
// each slice influences the clustering in proportion to its instruction
// count, and a simulation point's weight is its cluster's *instruction*
// share rather than its slice-count share.
//
// For the fixed-length slices the default profiler cuts, the two variants
// agree to within the final short slice; ClusterWeighted is the correct
// formulation when slice lengths vary substantially.
func ClusterWeighted(benchmark string, slices []Slice, totalInstrs uint64, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(slices) == 0 {
		return nil, fmt.Errorf("simpoint: no slices")
	}
	kcfg := cfg.KMeans
	if kcfg.MaxIter == 0 && kcfg.Restarts == 0 {
		kcfg = kmeans.DefaultConfig(cfg.Seed)
	}

	dims := len(slices[0].BBV)
	proj, err := bbv.NewProjector(dims, cfg.ProjectDims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, len(slices))
	weights := make([]float64, len(slices))
	for i, s := range slices {
		v := append([]float64(nil), s.BBV...)
		bbv.NormalizeL1(v)
		points[i] = proj.Project(v)
		weights[i] = float64(s.Len)
	}

	res, scores, err := kmeans.BestKWeighted(points, weights, cfg.MaxK, cfg.BICThreshold, kcfg)
	if err != nil {
		return nil, err
	}
	pts := chooseWeightedPoints(slices, points, res)
	return &Result{
		Benchmark:          benchmark,
		Config:             cfg,
		NumSlices:          len(slices),
		TotalInstrs:        totalInstrs,
		Points:             pts,
		BIC:                scores,
		AvgClusterVariance: res.WCSS / float64(totalInstrs),
	}, nil
}

// chooseWeightedPoints picks the centroid-nearest slice per cluster and
// weights it by the cluster's instruction mass.
func chooseWeightedPoints(slices []Slice, projected [][]float64, res *kmeans.Result) []Point {
	best := make([]int, res.K)
	bestD := make([]float64, res.K)
	instrMass := make([]float64, res.K)
	for c := range best {
		best[c] = -1
		bestD[c] = math.MaxFloat64
	}
	var total float64
	for i, p := range projected {
		c := res.Assign[i]
		instrMass[c] += float64(slices[i].Len)
		total += float64(slices[i].Len)
		if d := bbv.SqDist(p, res.Centroids[c]); d < bestD[c] {
			best[c], bestD[c] = i, d
		}
	}
	pts := make([]Point, 0, res.K)
	for c, idx := range best {
		if idx < 0 {
			continue
		}
		s := slices[idx]
		pts = append(pts, Point{
			SliceIndex: s.Index,
			Start:      s.Start,
			Len:        s.Len,
			Weight:     instrMass[c] / total,
			Cluster:    c,
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].SliceIndex < pts[j].SliceIndex })
	return pts
}
