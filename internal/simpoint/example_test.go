package simpoint_test

import (
	"fmt"

	"specsampling/internal/simpoint"
	"specsampling/internal/workload"
)

func ExampleAnalyze() {
	spec, _ := workload.ByName("520.omnetpp_r")
	prog, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		panic(err)
	}
	res, err := simpoint.Analyze(prog, simpoint.DefaultConfig(workload.ScaleSmall.SliceLen))
	if err != nil {
		panic(err)
	}
	reduced, _ := res.Reduce(0.9)
	fmt.Printf("%d simulation points, %d cover 90%% of execution\n",
		res.NumPoints(), reduced.NumPoints())
	// Output: 6 simulation points, 5 cover 90% of execution
}
