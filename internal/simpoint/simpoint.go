// Package simpoint implements the SimPoint methodology (Sherwood et al.;
// Perelman et al.; Hamerly et al., "SimPoint 3.0") on the reproduction's
// program model, as orchestrated through PinPoints in the paper:
//
//  1. Profile: slice the dynamic execution into fixed-length slices and
//     collect a basic block vector per slice, capturing an executor
//     checkpoint at each slice boundary (so chosen slices become regional
//     pinballs for free).
//  2. Cluster: L1-normalise the BBVs, randomly project to 15 dimensions,
//     and run k-means with BIC model selection up to MaxK.
//  3. Choose: in each cluster, the slice nearest the centroid becomes the
//     cluster's simulation point; its weight is the cluster's share of all
//     slices.
//  4. Reduce (Section IV-C of the paper): keep only the heaviest points
//     whose cumulative weight reaches a percentile (e.g. 90 %), trading a
//     little accuracy for large simulation-time savings.
package simpoint

import (
	"fmt"
	"math"
	"sort"

	"specsampling/internal/bbv"
	"specsampling/internal/kmeans"
	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/pintool"
	"specsampling/internal/program"
)

// sliceCounter totals execution slices produced by Profile.
var sliceCounter = obs.GetCounter("profile.slices")

// Config parameterises the pipeline. The paper's final choice for SPEC
// CPU2017 is MaxK = 35 and 30 M-instruction slices (Section IV-A); slice
// lengths here are in scaled instructions (see workload.Scale).
type Config struct {
	// SliceLen is the slice length in instructions.
	SliceLen uint64
	// MaxK is the maximum number of clusters (the paper's MaxK).
	MaxK int
	// BICThreshold is the fraction of the BIC range a candidate k must
	// reach (SimPoint default 0.9).
	BICThreshold float64
	// ProjectDims is the random-projection dimensionality (SimPoint
	// default 15).
	ProjectDims int
	// Seed drives projection and clustering.
	Seed uint64
	// KMeans tunes the clustering engine; zero values use
	// kmeans.DefaultConfig(Seed).
	KMeans kmeans.Config
}

// Pipeline-wide defaults. These constants are the single source for the
// paper's parameter choices; core.Config and simpoint.Config both normalise
// their zero values against them.
const (
	// DefaultMaxK is the paper's cluster ceiling (Section IV-A).
	DefaultMaxK = 35
	// DefaultBICThreshold is SimPoint's BIC acceptance fraction.
	DefaultBICThreshold = 0.9
	// DefaultSeed is the deterministic seed used across the reproduction.
	DefaultSeed uint64 = 2017
)

// DefaultConfig returns the paper's configuration at a given slice length.
func DefaultConfig(sliceLen uint64) Config {
	return Config{
		SliceLen:     sliceLen,
		MaxK:         DefaultMaxK,
		BICThreshold: DefaultBICThreshold,
		ProjectDims:  bbv.DefaultProjectedDims,
		Seed:         DefaultSeed,
	}
}

func (c Config) validate() error {
	if c.SliceLen == 0 {
		return fmt.Errorf("simpoint: zero slice length")
	}
	if c.MaxK <= 0 {
		return fmt.Errorf("simpoint: MaxK = %d", c.MaxK)
	}
	if c.ProjectDims <= 0 {
		return fmt.Errorf("simpoint: ProjectDims = %d", c.ProjectDims)
	}
	return nil
}

// Slice is one profiled execution slice.
type Slice struct {
	// Index is the slice's position in execution order.
	Index int
	// Start is the executor checkpoint at the slice's first instruction.
	Start program.State
	// Len is the exact instruction count of the slice (the last slice of a
	// program may be short; others may exceed SliceLen by under one block).
	Len uint64
	// BBV is the slice's raw basic block vector.
	BBV []float64
}

// Profile runs the whole program once at block granularity, cutting it into
// slices of cfg-length and collecting one BBV per slice. It returns the
// slices and the total instruction count. This is the "Whole Pinball
// logging + BBV profiling" pass of the PinPoints flow.
func Profile(p *program.Program, sliceLen uint64) ([]Slice, uint64, error) {
	if sliceLen == 0 {
		return nil, 0, fmt.Errorf("simpoint: zero slice length")
	}
	engine := pin.NewEngine(p)
	prof := pintool.NewBBProfile(p.NumBlocks())
	if err := engine.Attach(prof); err != nil {
		return nil, 0, err
	}
	var slices []Slice
	var total uint64
	for !engine.Done() {
		start := engine.Executor().State()
		n := engine.Run(sliceLen)
		if n == 0 {
			break
		}
		prof.CutSlice()
		i := len(slices)
		slices = append(slices, Slice{
			Index: i,
			Start: start,
			Len:   prof.SliceLens[i],
			BBV:   prof.Vectors[i],
		})
		total += n
	}
	if len(slices) == 0 {
		return nil, 0, fmt.Errorf("simpoint: program %q produced no slices", p.Name)
	}
	sliceCounter.Add(int64(len(slices)))
	return slices, total, nil
}

// Point is one simulation point: a representative slice with its weight.
type Point struct {
	// SliceIndex is the chosen slice's execution-order index.
	SliceIndex int
	// Start and Len are the slice's replay coordinates.
	Start program.State
	Len   uint64
	// Weight is the cluster's share of all slices (weights sum to 1).
	Weight float64
	// Cluster is the cluster id the point represents.
	Cluster int
}

// Result is the outcome of the SimPoint pipeline for one benchmark.
type Result struct {
	// Benchmark is the program name.
	Benchmark string
	// Config echoes the configuration used.
	Config Config
	// NumSlices is the profiled slice count.
	NumSlices int
	// TotalInstrs is the whole-run instruction count.
	TotalInstrs uint64
	// Points are the simulation points in execution order.
	Points []Point
	// BIC holds the model-selection scores per candidate k.
	BIC map[int]float64
	// AvgClusterVariance is the mean within-cluster variance (WCSS divided
	// by slice count), the metric of the paper's Figure 4.
	AvgClusterVariance float64
}

// NumPoints returns the number of simulation points (Table II, column 2).
func (r *Result) NumPoints() int { return len(r.Points) }

// WeightTotal returns the sum of point weights (1 for full results, the
// covered fraction for reduced ones).
func (r *Result) WeightTotal() float64 {
	var sum float64
	for _, pt := range r.Points {
		sum += pt.Weight
	}
	return sum
}

// SampledInstrs is the total instruction count the points replay.
func (r *Result) SampledInstrs() uint64 {
	var sum uint64
	for _, pt := range r.Points {
		sum += pt.Len
	}
	return sum
}

// Cluster runs steps 2-3 of the pipeline on profiled slices.
func Cluster(benchmark string, slices []Slice, totalInstrs uint64, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(slices) == 0 {
		return nil, fmt.Errorf("simpoint: no slices")
	}
	kcfg := cfg.KMeans
	if kcfg.MaxIter == 0 && kcfg.Restarts == 0 {
		kcfg = kmeans.DefaultConfig(cfg.Seed)
	}

	// Normalise + project.
	dims := len(slices[0].BBV)
	proj, err := bbv.NewProjector(dims, cfg.ProjectDims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, len(slices))
	for i, s := range slices {
		v := append([]float64(nil), s.BBV...)
		bbv.NormalizeL1(v)
		points[i] = proj.Project(v)
	}

	res, scores, err := kmeans.BestK(points, cfg.MaxK, cfg.BICThreshold, kcfg)
	if err != nil {
		return nil, err
	}
	pts := choosePoints(slices, points, res)
	return &Result{
		Benchmark:          benchmark,
		Config:             cfg,
		NumSlices:          len(slices),
		TotalInstrs:        totalInstrs,
		Points:             pts,
		BIC:                scores,
		AvgClusterVariance: res.WCSS / float64(len(slices)),
	}, nil
}

// Analyze runs the complete pipeline: Profile then Cluster.
func Analyze(p *program.Program, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	slices, total, err := Profile(p, cfg.SliceLen)
	if err != nil {
		return nil, err
	}
	return Cluster(p.Name, slices, total, cfg)
}

// choosePoints picks, per cluster, the slice whose projected BBV is nearest
// the centroid, weighting it by cluster population.
func choosePoints(slices []Slice, projected [][]float64, res *kmeans.Result) []Point {
	best := make([]int, res.K)
	bestD := make([]float64, res.K)
	for c := range best {
		best[c] = -1
		bestD[c] = math.MaxFloat64
	}
	for i, p := range projected {
		c := res.Assign[i]
		if d := bbv.SqDist(p, res.Centroids[c]); d < bestD[c] {
			best[c], bestD[c] = i, d
		}
	}
	total := float64(len(slices))
	pts := make([]Point, 0, res.K)
	for c, idx := range best {
		if idx < 0 {
			continue
		}
		s := slices[idx]
		pts = append(pts, Point{
			SliceIndex: s.Index,
			Start:      s.Start,
			Len:        s.Len,
			Weight:     float64(res.Sizes[c]) / total,
			Cluster:    c,
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].SliceIndex < pts[j].SliceIndex })
	return pts
}

// Reduce returns a copy of the result keeping only the heaviest points whose
// cumulative weight reaches percentile (in (0, 1]), the paper's
// "90th-percentile simulation points" (Section IV-C). Weights are kept
// unrenormalised, matching the paper's weighted-average methodology (the
// aggregation normalises by total weight).
func (r *Result) Reduce(percentile float64) (*Result, error) {
	if percentile <= 0 || percentile > 1 {
		return nil, fmt.Errorf("simpoint: percentile %v out of (0,1]", percentile)
	}
	byWeight := append([]Point(nil), r.Points...)
	sort.Slice(byWeight, func(i, j int) bool {
		if byWeight[i].Weight != byWeight[j].Weight {
			return byWeight[i].Weight > byWeight[j].Weight
		}
		return byWeight[i].SliceIndex < byWeight[j].SliceIndex
	})
	var kept []Point
	acc := 0.0
	for _, pt := range byWeight {
		kept = append(kept, pt)
		acc += pt.Weight
		if acc >= percentile-1e-12 {
			break
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].SliceIndex < kept[j].SliceIndex })
	out := *r
	out.Points = kept
	return &out, nil
}

// VarianceSweep reruns clustering at fixed k values and reports the average
// within-cluster variance for each — the paper's Figure 4 ("as number of
// available clusters decrease, the phases try to adjust themselves within
// these clusters at the expense of accuracy").
func VarianceSweep(slices []Slice, ks []int, cfg Config) (map[int]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(slices) == 0 {
		return nil, fmt.Errorf("simpoint: no slices")
	}
	kcfg := cfg.KMeans
	if kcfg.MaxIter == 0 && kcfg.Restarts == 0 {
		kcfg = kmeans.DefaultConfig(cfg.Seed)
	}
	dims := len(slices[0].BBV)
	proj, err := bbv.NewProjector(dims, cfg.ProjectDims, cfg.Seed)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, len(slices))
	for i, s := range slices {
		v := append([]float64(nil), s.BBV...)
		bbv.NormalizeL1(v)
		points[i] = proj.Project(v)
	}
	out := make(map[int]float64, len(ks))
	for _, k := range ks {
		res, err := kmeans.Run(points, k, kcfg)
		if err != nil {
			return nil, err
		}
		out[k] = res.WCSS / float64(len(points))
	}
	return out, nil
}
