package simpoint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The SimPoint tool emits two parallel text files: a ".simpoints" file with
// lines "<sliceIndex> <pointID>" and a ".weights" file with lines
// "<weight> <pointID>". We reproduce the format so downstream tooling (and
// eyeballs used to the original) can consume our output.

// WriteSimpointsFile writes the ".simpoints" file body.
func (r *Result) WriteSimpointsFile(w io.Writer) error {
	for i, pt := range r.Points {
		if _, err := fmt.Fprintf(w, "%d %d\n", pt.SliceIndex, i); err != nil {
			return fmt.Errorf("simpoint: write simpoints: %w", err)
		}
	}
	return nil
}

// WriteWeightsFile writes the ".weights" file body.
func (r *Result) WriteWeightsFile(w io.Writer) error {
	for i, pt := range r.Points {
		if _, err := fmt.Fprintf(w, "%.6f %d\n", pt.Weight, i); err != nil {
			return fmt.Errorf("simpoint: write weights: %w", err)
		}
	}
	return nil
}

// SaveFiles writes "<prefix>.simpoints" and "<prefix>.weights".
func (r *Result) SaveFiles(prefix string) error {
	for _, f := range []struct {
		suffix string
		write  func(io.Writer) error
	}{
		{".simpoints", r.WriteSimpointsFile},
		{".weights", r.WriteWeightsFile},
	} {
		file, err := os.Create(prefix + f.suffix)
		if err != nil {
			return fmt.Errorf("simpoint: %w", err)
		}
		bw := bufio.NewWriter(file)
		if err := f.write(bw); err != nil {
			_ = file.Close() // the write error is the one worth reporting
			return err
		}
		if err := bw.Flush(); err != nil {
			_ = file.Close()
			return fmt.Errorf("simpoint: flush: %w", err)
		}
		if err := file.Close(); err != nil {
			return fmt.Errorf("simpoint: close: %w", err)
		}
	}
	return nil
}

// FilePoint is one (sliceIndex, weight) pair parsed back from the SimPoint
// text files.
type FilePoint struct {
	SliceIndex int
	Weight     float64
}

// ReadFiles parses "<prefix>.simpoints" and "<prefix>.weights" back into
// (sliceIndex, weight) pairs keyed by point ID order.
func ReadFiles(prefix string) ([]FilePoint, error) {
	simpoints, err := readPairs(prefix + ".simpoints")
	if err != nil {
		return nil, err
	}
	weights, err := readPairs(prefix + ".weights")
	if err != nil {
		return nil, err
	}
	if len(simpoints) != len(weights) {
		return nil, fmt.Errorf("simpoint: %d simpoints vs %d weights", len(simpoints), len(weights))
	}
	out := make([]FilePoint, len(simpoints))
	for i := range simpoints {
		if simpoints[i].id != weights[i].id {
			return nil, fmt.Errorf("simpoint: point id mismatch at line %d: %d vs %d",
				i+1, simpoints[i].id, weights[i].id)
		}
		out[i] = FilePoint{
			SliceIndex: int(simpoints[i].value),
			Weight:     weights[i].value,
		}
	}
	return out, nil
}

type pair struct {
	value float64
	id    int
}

func readPairs(path string) ([]pair, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("simpoint: %w", err)
	}
	defer f.Close()
	var out []pair
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("simpoint: %s:%d: want 2 fields, got %d", path, line, len(fields))
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("simpoint: %s:%d: %w", path, line, err)
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("simpoint: %s:%d: %w", path, line, err)
		}
		out = append(out, pair{value: v, id: id})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("simpoint: scan %s: %w", path, err)
	}
	return out, nil
}
