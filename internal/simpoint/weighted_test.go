package simpoint

import (
	"math"
	"testing"
)

func TestClusterWeightedAgreesWithFixedLength(t *testing.T) {
	// Fixed-length slices: weighted and unweighted clustering must find a
	// similar structure (same order of point count, weights summing to 1).
	p := phasedProgram(t, 4, 80000, 31)
	slices, total, err := Profile(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(512)
	cfg.MaxK = 10

	plain, err := Cluster(p.Name, slices, total, cfg)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := ClusterWeighted(p.Name, slices, total, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(weighted.WeightTotal()-1) > 1e-9 {
		t.Errorf("weighted point weights sum to %v", weighted.WeightTotal())
	}
	if weighted.NumPoints() < plain.NumPoints()/2 || weighted.NumPoints() > plain.NumPoints()*2 {
		t.Errorf("weighted found %d points, plain %d", weighted.NumPoints(), plain.NumPoints())
	}
	for i := 1; i < len(weighted.Points); i++ {
		if weighted.Points[i].SliceIndex <= weighted.Points[i-1].SliceIndex {
			t.Fatal("weighted points out of execution order")
		}
	}
}

func TestClusterWeightedInstructionMassWeights(t *testing.T) {
	// Construct slices with wildly unequal lengths: two behaviours, one
	// carried by a few long slices, one by many short ones. Weights must
	// reflect instruction mass, not slice count.
	mk := func(idx int, length uint64, hot int) Slice {
		v := make([]float64, 4)
		v[hot] = float64(length)
		return Slice{Index: idx, Len: length, BBV: v}
	}
	var slices []Slice
	var total uint64
	// 4 long slices of behaviour A (dim 0): 4 x 10000 = 40000 instrs.
	for i := 0; i < 4; i++ {
		slices = append(slices, mk(len(slices), 10000, 0))
		total += 10000
	}
	// 40 short slices of behaviour B (dim 1): 40 x 250 = 10000 instrs.
	for i := 0; i < 40; i++ {
		slices = append(slices, mk(len(slices), 250, 1))
		total += 250
	}
	cfg := DefaultConfig(512)
	cfg.MaxK = 4
	cfg.ProjectDims = 4
	res, err := ClusterWeighted("synthetic", slices, total, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPoints() != 2 {
		t.Fatalf("found %d points, want 2", res.NumPoints())
	}
	// Behaviour A holds 80% of the instruction mass despite being only
	// 4/44 of the slices.
	var aWeight float64
	for _, pt := range res.Points {
		if pt.SliceIndex < 4 {
			aWeight = pt.Weight
		}
	}
	if math.Abs(aWeight-0.8) > 0.02 {
		t.Errorf("long-slice behaviour weight = %v, want ~0.8 by instruction mass", aWeight)
	}
}

func TestClusterWeightedValidation(t *testing.T) {
	if _, err := ClusterWeighted("x", nil, 0, DefaultConfig(512)); err == nil {
		t.Error("empty slices accepted")
	}
	bad := DefaultConfig(512)
	bad.MaxK = 0
	if _, err := ClusterWeighted("x", []Slice{{Len: 10, BBV: []float64{1}}}, 10, bad); err == nil {
		t.Error("invalid config accepted")
	}
}
