package subset

import (
	"math"
	"testing"

	"specsampling/internal/workload"
)

func characterizeSome(t testing.TB, names ...string) []Features {
	t.Helper()
	var specs []workload.Spec
	for _, n := range names {
		s, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	fs, err := CharacterizeSuite(specs, workload.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCharacterizeProducesSaneFeatures(t *testing.T) {
	fs := characterizeSome(t, "541.leela_r", "505.mcf_r")
	for _, f := range fs {
		var sum float64
		for _, v := range f.Mix {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: mix sums to %v", f.Benchmark, sum)
		}
		for _, v := range []float64{f.L1DMiss, f.L2Miss, f.L3Miss} {
			if v < 0 || v > 1 {
				t.Errorf("%s: miss rate %v out of range", f.Benchmark, v)
			}
		}
		if f.CPI <= 0 || f.CPI > 50 {
			t.Errorf("%s: CPI %v", f.Benchmark, f.CPI)
		}
		if f.BranchMPKI < 0 {
			t.Errorf("%s: negative MPKI", f.Benchmark)
		}
	}
	// A compute-lean benchmark must look different from pointer chasing.
	if fs[0].L1DMiss >= fs[1].L1DMiss {
		t.Errorf("leela L1D miss %v should be below mcf's %v", fs[0].L1DMiss, fs[1].L1DMiss)
	}
}

func TestVectorAndNamesAgree(t *testing.T) {
	f := Features{Benchmark: "x"}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Errorf("vector dims %d != names %d", len(f.Vector()), len(FeatureNames()))
	}
}

func TestSubsetGroupsSimilarBenchmarks(t *testing.T) {
	// Two compute-lean (leela_r / leela_s share a profile) and two
	// pointer-chasing benchmarks: subsetting should need fewer groups than
	// benchmarks, and the representatives must cover both behaviours.
	fs := characterizeSome(t, "541.leela_r", "641.leela_s", "505.mcf_r", "605.mcf_s")
	res, err := Subset(fs, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 || len(res.Groups) > 4 {
		t.Fatalf("%d groups", len(res.Groups))
	}
	total := 0
	for _, g := range res.Groups {
		if g.Representative == "" {
			t.Error("group without representative")
		}
		found := false
		for _, m := range g.Members {
			if m == g.Representative {
				found = true
			}
		}
		if !found {
			t.Error("representative not among members")
		}
		total += len(g.Members)
	}
	if total != len(fs) {
		t.Errorf("groups cover %d of %d benchmarks", total, len(fs))
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Errorf("coverage %v", res.Coverage)
	}
	if got := len(res.Representatives()); got != len(res.Groups) {
		t.Errorf("%d representatives for %d groups", got, len(res.Groups))
	}
}

func TestSubsetValidation(t *testing.T) {
	if _, err := Subset(nil, 3, 1); err == nil {
		t.Error("empty features accepted")
	}
	if _, err := Subset([]Features{{}}, 0, 1); err == nil {
		t.Error("zero maxGroups accepted")
	}
}

func TestSubsetSingleBenchmark(t *testing.T) {
	fs := characterizeSome(t, "541.leela_r")
	res, err := Subset(fs, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.Groups[0].Representative != "541.leela_r" {
		t.Errorf("single-benchmark subset = %+v", res.Groups)
	}
	if res.Coverage != 1 {
		t.Errorf("coverage %v", res.Coverage)
	}
}

func TestZScore(t *testing.T) {
	vs := [][]float64{{1, 5, 7}, {3, 5, 1}}
	out := zscore(vs)
	// Dimension 1 is constant -> zero.
	if out[0][1] != 0 || out[1][1] != 0 {
		t.Error("constant dimension not zeroed")
	}
	// Dimension 0: mean 2, std 1 -> -1 and +1.
	if math.Abs(out[0][0]+1) > 1e-9 || math.Abs(out[1][0]-1) > 1e-9 {
		t.Errorf("z-scores = %v %v", out[0][0], out[1][0])
	}
	if zscore(nil) != nil {
		t.Error("empty input should return nil")
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	a := characterizeSome(t, "557.xz_r")[0]
	b := characterizeSome(t, "557.xz_r")[0]
	if a != b {
		t.Errorf("characterization not deterministic: %+v vs %+v", a, b)
	}
}

func TestSubsetKFixedCount(t *testing.T) {
	fs := characterizeSome(t, "541.leela_r", "641.leela_s", "505.mcf_r", "605.mcf_s")
	res, err := SubsetK(fs, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 {
		t.Errorf("SubsetK(3) returned %d groups", len(res.Groups))
	}
	// Clamping: k above the benchmark count must not error.
	res, err = SubsetK(fs, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) > 4 {
		t.Errorf("%d groups for 4 benchmarks", len(res.Groups))
	}
}
