// Package subset implements benchmark-suite subsetting, the related-work
// methodology the paper discusses in Section V-A (Limaye & Adegbija,
// ISPASS 2018; Panda et al., HPCA 2018; Joshua et al., IISWC 2006): each
// benchmark is characterised by a vector of microarchitecture-level
// features, features are z-score normalised, benchmarks are clustered, and
// one representative per cluster forms a subset of the suite that preserves
// its behavioural coverage at a fraction of the simulation cost.
//
// Where those works use PCA + hierarchical clustering over perf counters,
// this package reuses the reproduction's own substrate: features come from
// whole-run profiles (instruction mix, cache miss rates, branch MPKI, CPI)
// and clustering reuses internal/kmeans with BIC model selection — the same
// engine SimPoint uses for slices, applied across benchmarks.
package subset

import (
	"fmt"
	"math"
	"sort"

	"specsampling/internal/bbv"
	"specsampling/internal/cache"
	"specsampling/internal/kmeans"
	"specsampling/internal/pin"
	"specsampling/internal/pintool"
	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

// Features is one benchmark's characterisation vector.
type Features struct {
	// Benchmark is the full SPEC-style name.
	Benchmark string
	// Mix is the whole-run instruction distribution
	// (NO_MEM, MEM_R, MEM_W, MEM_RW).
	Mix [4]float64
	// L1DMiss, L2Miss, L3Miss are whole-run miss rates at the scaled
	// Table I hierarchy.
	L1DMiss, L2Miss, L3Miss float64
	// BranchMPKI is mispredictions per kilo-instruction on the Table III
	// machine's predictor.
	BranchMPKI float64
	// CPI is the Table III machine's whole-run CPI.
	CPI float64
}

// Vector flattens the features into the clustering space.
func (f Features) Vector() []float64 {
	return []float64{
		f.Mix[0], f.Mix[1], f.Mix[2], f.Mix[3],
		f.L1DMiss, f.L2Miss, f.L3Miss,
		f.BranchMPKI, f.CPI,
	}
}

// featureNames labels Vector dimensions for reports.
var featureNames = []string{
	"NO_MEM", "MEM_R", "MEM_W", "MEM_RW",
	"L1D miss", "L2 miss", "L3 miss", "branch MPKI", "CPI",
}

// FeatureNames returns the dimension labels of Features.Vector.
func FeatureNames() []string { return append([]string(nil), featureNames...) }

// Characterize measures one benchmark's feature vector at the given scale.
// Cost is one whole-run execution with cache and timing models attached.
func Characterize(spec workload.Spec, scale workload.Scale) (Features, error) {
	prog, err := spec.Build(scale)
	if err != nil {
		return Features{}, err
	}
	hier, err := cache.NewHierarchy(cache.ScaledHierarchy(cache.TableIConfig(), scale.CacheDivs))
	if err != nil {
		return Features{}, err
	}
	core, err := timing.NewCore(timing.ScaledConfig(timing.TableIIIConfig(), scale.CacheDivs))
	if err != nil {
		return Features{}, err
	}
	engine := pin.NewEngine(prog)
	mix := pintool.NewLdStMix()
	ac := pintool.NewAllCache(hier)
	for _, tool := range []pin.Tool{mix, ac, core} {
		if err := engine.Attach(tool); err != nil {
			return Features{}, err
		}
	}
	n := engine.RunToEnd()

	c := core.Counters()
	l1d, l2, l3 := hier.MissRates()
	return Features{
		Benchmark:  spec.Name,
		Mix:        mix.Fractions(),
		L1DMiss:    l1d,
		L2Miss:     l2,
		L3Miss:     l3,
		BranchMPKI: c.BranchStats.MPKI(n),
		CPI:        c.CPI(),
	}, nil
}

// CharacterizeSuite measures every benchmark in specs.
func CharacterizeSuite(specs []workload.Spec, scale workload.Scale) ([]Features, error) {
	out := make([]Features, len(specs))
	for i, spec := range specs {
		f, err := Characterize(spec, scale)
		if err != nil {
			return nil, fmt.Errorf("subset: characterize %s: %w", spec.Name, err)
		}
		out[i] = f
	}
	return out, nil
}

// Group is one cluster of behaviourally similar benchmarks.
type Group struct {
	// Representative is the benchmark nearest the cluster centroid — the
	// one to simulate on the subset's behalf.
	Representative string
	// Members are all benchmarks in the cluster (including the
	// representative), sorted by distance to the centroid.
	Members []string
}

// Result is a suite subset.
type Result struct {
	// Groups are the clusters, ordered by size (largest first).
	Groups []Group
	// Coverage is len(Groups)/len(suite): the fraction of the suite that
	// must be simulated.
	Coverage float64
}

// Subset clusters the characterised benchmarks into at most maxGroups
// behavioural groups (BIC picks the actual count — often coarse for a
// ~29-point set, where it resolves only the memory-bound/compute-bound
// split) and selects a representative per group. Features are z-score
// normalised first so CPI (≈1) and MPKI (≈10) contribute comparably.
// SubsetK fixes the group count instead, the way Panda et al. pick a
// target subset size.
func Subset(features []Features, maxGroups int, seed uint64) (*Result, error) {
	return subset(features, maxGroups, seed, false)
}

// SubsetK clusters into exactly k groups (clamped to the benchmark count).
func SubsetK(features []Features, k int, seed uint64) (*Result, error) {
	return subset(features, k, seed, true)
}

func subset(features []Features, maxGroups int, seed uint64, fixed bool) (*Result, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("subset: no features")
	}
	if maxGroups <= 0 {
		return nil, fmt.Errorf("subset: maxGroups = %d", maxGroups)
	}
	vectors := make([][]float64, len(features))
	for i, f := range features {
		vectors[i] = f.Vector()
	}
	normalized := zscore(vectors)

	cfg := kmeans.DefaultConfig(seed)
	cfg.SampleSize = 0 // tiny point set; cluster on everything
	var res *kmeans.Result
	var err error
	if fixed {
		res, err = kmeans.Run(normalized, maxGroups, cfg)
	} else {
		res, _, err = kmeans.BestK(normalized, maxGroups, 0.9, cfg)
	}
	if err != nil {
		return nil, err
	}

	groups := make([]Group, res.K)
	type member struct {
		name string
		dist float64
	}
	members := make([][]member, res.K)
	for i, f := range features {
		c := res.Assign[i]
		members[c] = append(members[c], member{
			name: f.Benchmark,
			dist: bbv.SqDist(normalized[i], res.Centroids[c]),
		})
	}
	for c := range groups {
		sort.Slice(members[c], func(i, j int) bool { return members[c][i].dist < members[c][j].dist })
		for _, m := range members[c] {
			groups[c].Members = append(groups[c].Members, m.name)
		}
		groups[c].Representative = members[c][0].name
	}
	sort.Slice(groups, func(i, j int) bool {
		if len(groups[i].Members) != len(groups[j].Members) {
			return len(groups[i].Members) > len(groups[j].Members)
		}
		return groups[i].Representative < groups[j].Representative
	})
	return &Result{
		Groups:   groups,
		Coverage: float64(res.K) / float64(len(features)),
	}, nil
}

// Representatives lists the subset's benchmarks in group order.
func (r *Result) Representatives() []string {
	out := make([]string, len(r.Groups))
	for i, g := range r.Groups {
		out[i] = g.Representative
	}
	return out
}

// zscore normalises each dimension to zero mean and unit variance
// (constant dimensions become zero).
func zscore(vectors [][]float64) [][]float64 {
	if len(vectors) == 0 {
		return nil
	}
	dims := len(vectors[0])
	mean := make([]float64, dims)
	for _, v := range vectors {
		for d, x := range v {
			mean[d] += x
		}
	}
	for d := range mean {
		mean[d] /= float64(len(vectors))
	}
	std := make([]float64, dims)
	for _, v := range vectors {
		for d, x := range v {
			diff := x - mean[d]
			std[d] += diff * diff
		}
	}
	for d := range std {
		std[d] = math.Sqrt(std[d] / float64(len(vectors)))
	}
	out := make([][]float64, len(vectors))
	for i, v := range vectors {
		out[i] = make([]float64, dims)
		for d, x := range v {
			if std[d] > 0 {
				out[i][d] = (x - mean[d]) / std[d]
			}
		}
	}
	return out
}
