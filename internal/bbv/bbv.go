// Package bbv implements Basic Block Vectors, the program-behaviour
// fingerprint at the heart of SimPoint (Sherwood et al., ASPLOS 2002).
//
// A BBV for an execution slice counts, per static basic block, how many
// instructions that block contributed to the slice (executions × block
// length). Slices with similar BBVs execute similar code and therefore —
// this is SimPoint's empirical cornerstone — behave similarly on every
// microarchitectural metric. Vectors are L1-normalised so slices compare by
// distribution, not length, then randomly projected to a low dimension
// (SimPoint uses 15) to make k-means cheap and distance concentration
// harmless.
package bbv

import (
	"fmt"

	"specsampling/internal/isa"
	"specsampling/internal/obs"
	"specsampling/internal/rng"
)

// projectionCounter counts vectors pushed through random projection.
var projectionCounter = obs.GetCounter("bbv.projections")

// DefaultProjectedDims is SimPoint's default random-projection
// dimensionality.
const DefaultProjectedDims = 15

// Collector accumulates the BBV of the current slice. Attach Observe as the
// executor's block hook, and call Cut at slice boundaries.
type Collector struct {
	dims    int
	current []float64
	instrs  uint64
}

// NewCollector returns a collector for programs with dims static blocks.
func NewCollector(dims int) *Collector {
	return &Collector{
		dims:    dims,
		current: make([]float64, dims),
	}
}

// Observe accounts one dynamic execution of block b.
func (c *Collector) Observe(b *isa.Block) {
	c.current[b.ID] += float64(b.Len())
	c.instrs += uint64(b.Len())
}

// SliceInstrs returns the instruction count accumulated in the current
// slice so far.
func (c *Collector) SliceInstrs() uint64 { return c.instrs }

// Cut finishes the current slice, returning its raw (unnormalised) BBV and
// instruction count, and resets the collector for the next slice. Cutting an
// empty slice returns a nil vector.
func (c *Collector) Cut() ([]float64, uint64) {
	if c.instrs == 0 {
		return nil, 0
	}
	v := c.current
	n := c.instrs
	c.current = make([]float64, c.dims)
	c.instrs = 0
	return v, n
}

// NormalizeL1 scales v in place so its components sum to 1. A zero vector is
// left unchanged.
func NormalizeL1(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
}

// Projector maps high-dimensional BBVs to a low dimension using a random
// matrix with entries uniform in [-1, 1], the projection SimPoint 3.0 uses.
// A Projector is deterministic in (inDims, outDims, seed).
type Projector struct {
	inDims  int
	outDims int
	// matrix is row-major [inDims][outDims].
	matrix []float64
}

// NewProjector builds a projection from inDims to outDims.
func NewProjector(inDims, outDims int, seed uint64) (*Projector, error) {
	if inDims <= 0 || outDims <= 0 {
		return nil, fmt.Errorf("bbv: invalid projection %d -> %d", inDims, outDims)
	}
	r := rng.New(seed ^ 0x9f0e7)
	m := make([]float64, inDims*outDims)
	for i := range m {
		m[i] = 2*r.Float64() - 1
	}
	return &Projector{inDims: inDims, outDims: outDims, matrix: m}, nil
}

// InDims returns the input dimensionality.
func (p *Projector) InDims() int { return p.inDims }

// OutDims returns the output dimensionality.
func (p *Projector) OutDims() int { return p.outDims }

// Project maps one vector. The input length must equal InDims.
func (p *Projector) Project(v []float64) []float64 {
	if len(v) != p.inDims {
		panic(fmt.Sprintf("bbv: projecting %d-dim vector through %d-dim projector", len(v), p.inDims))
	}
	out := make([]float64, p.outDims)
	for i, x := range v {
		if x == 0 {
			continue
		}
		row := p.matrix[i*p.outDims : (i+1)*p.outDims]
		for j, w := range row {
			out[j] += x * w
		}
	}
	return out
}

// ProjectAll maps a set of vectors.
func (p *Projector) ProjectAll(vs [][]float64) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = p.Project(v)
	}
	projectionCounter.Add(int64(len(vs)))
	return out
}

// SqDist returns the squared Euclidean distance between equal-length
// vectors.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bbv: distance between %d-dim and %d-dim vectors", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// ManhattanDist returns the L1 distance between equal-length vectors, the
// metric the original SimPoint paper reports for BBV similarity.
func ManhattanDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bbv: distance between %d-dim and %d-dim vectors", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}
