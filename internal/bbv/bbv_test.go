package bbv

import (
	"math"
	"testing"
	"testing/quick"

	"specsampling/internal/isa"
)

func mkBlock(id, length int) *isa.Block {
	b := &isa.Block{ID: id}
	for i := 0; i < length-1; i++ {
		b.Instrs = append(b.Instrs, isa.StaticInstr{Kind: isa.NoMem, Size: 4})
	}
	b.Instrs = append(b.Instrs, isa.StaticInstr{Kind: isa.Branch, Size: 2})
	b.Finalize()
	return b
}

func TestCollectorAccumulatesAndCuts(t *testing.T) {
	c := NewCollector(3)
	b0, b1 := mkBlock(0, 5), mkBlock(1, 7)
	c.Observe(b0)
	c.Observe(b0)
	c.Observe(b1)
	if c.SliceInstrs() != 17 {
		t.Errorf("SliceInstrs = %d, want 17", c.SliceInstrs())
	}
	v, n := c.Cut()
	if n != 17 {
		t.Errorf("cut instrs = %d", n)
	}
	if v[0] != 10 || v[1] != 7 || v[2] != 0 {
		t.Errorf("vector = %v", v)
	}
	// Collector resets after a cut.
	if c.SliceInstrs() != 0 {
		t.Error("collector not reset")
	}
	if v2, n2 := c.Cut(); v2 != nil || n2 != 0 {
		t.Error("empty cut should return nil")
	}
}

func TestCutVectorIndependence(t *testing.T) {
	c := NewCollector(2)
	b := mkBlock(0, 4)
	c.Observe(b)
	v1, _ := c.Cut()
	c.Observe(b)
	c.Observe(b)
	v2, _ := c.Cut()
	if v1[0] != 4 {
		t.Errorf("first cut mutated: %v", v1)
	}
	if v2[0] != 8 {
		t.Errorf("second cut wrong: %v", v2)
	}
}

func TestNormalizeL1(t *testing.T) {
	v := []float64{2, 6, 2}
	NormalizeL1(v)
	want := []float64{0.2, 0.6, 0.2}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("normalized = %v", v)
			break
		}
	}
	zero := []float64{0, 0}
	NormalizeL1(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Error("zero vector changed")
	}
}

func TestNormalizeL1Property(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		var total float64
		for i, x := range raw {
			v[i] = float64(x)
			total += float64(x)
		}
		NormalizeL1(v)
		if total == 0 {
			return true
		}
		var sum float64
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectorDeterminism(t *testing.T) {
	p1, err := NewProjector(100, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewProjector(100, 15, 7)
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i % 5)
	}
	a, b := p1.Project(v), p2.Project(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed projectors disagree")
		}
	}
	p3, _ := NewProjector(100, 15, 8)
	c := p3.Project(v)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different-seed projectors agree")
	}
}

func TestProjectorLinearity(t *testing.T) {
	p, _ := NewProjector(20, 5, 3)
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(20 - i)
	}
	sum := make([]float64, 20)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	pa, pb, ps := p.Project(a), p.Project(b), p.Project(sum)
	for j := range ps {
		if math.Abs(ps[j]-(pa[j]+pb[j])) > 1e-9 {
			t.Fatalf("projection not linear at dim %d", j)
		}
	}
}

func TestProjectorPreservesSimilarityOrder(t *testing.T) {
	// Near-identical vectors must stay much closer than very different ones.
	p, _ := NewProjector(200, 15, 11)
	base := make([]float64, 200)
	near := make([]float64, 200)
	far := make([]float64, 200)
	for i := range base {
		base[i] = float64((i*7)%13) / 13
		near[i] = base[i]
		far[i] = float64(((i+101)*31)%17) / 17
	}
	near[3] += 0.01
	pb, pn, pf := p.Project(base), p.Project(near), p.Project(far)
	if SqDist(pb, pn) >= SqDist(pb, pf) {
		t.Errorf("projection inverted similarity: near %v, far %v", SqDist(pb, pn), SqDist(pb, pf))
	}
}

func TestProjectorValidation(t *testing.T) {
	if _, err := NewProjector(0, 5, 1); err == nil {
		t.Error("accepted zero input dims")
	}
	if _, err := NewProjector(5, 0, 1); err == nil {
		t.Error("accepted zero output dims")
	}
	p, _ := NewProjector(4, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dim mismatch")
		}
	}()
	p.Project([]float64{1, 2})
}

func TestProjectAll(t *testing.T) {
	p, _ := NewProjector(3, 2, 5)
	vs := [][]float64{{1, 0, 0}, {0, 1, 0}}
	out := p.ProjectAll(vs)
	if len(out) != 2 || len(out[0]) != 2 {
		t.Fatalf("ProjectAll shape wrong: %v", out)
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	if got := SqDist(a, b); got != 9 {
		t.Errorf("SqDist = %v, want 9", got)
	}
	if got := ManhattanDist(a, b); got != 5 {
		t.Errorf("ManhattanDist = %v, want 5", got)
	}
	if SqDist(a, a) != 0 || ManhattanDist(b, b) != 0 {
		t.Error("self distance must be 0")
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax+ay+bx+by) || math.IsInf(ax+ay+bx+by, 0) {
			return true
		}
		a := []float64{ax, ay}
		b := []float64{bx, by}
		return SqDist(a, b) == SqDist(b, a) && ManhattanDist(a, b) == ManhattanDist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SqDist([]float64{1}, []float64{1, 2})
}
