// Package store is the pipeline's persistent artifact cache: a
// content-addressed, on-disk store for the expensive stage outputs of the
// reproduction (per-benchmark BBV profiles, SimPoint clusterings and
// whole-run replay profiles). It is the durable layer behind the in-memory
// singleflight caches — the lookup order everywhere is memory cache → disk
// store → compute — and it is what makes an interrupted suite run resumable:
// artifacts written before the interruption are served from disk on restart,
// so only the unfinished stages recompute.
//
// Keys are canonical: a Key names the artifact kind, the benchmark, and the
// exact configuration parts that determine the artifact's bytes (scale,
// slice length, clustering knobs, …), and the on-disk path is derived from a
// SHA-256 digest of those parts plus a code-version salt. Any configuration
// change therefore lands on a different path and the stale entry is simply
// never read again — invalidation is structural, not mutable metadata.
// Worker counts are deliberately excluded from every key: results are
// byte-identical for any parallelism, so artifacts are shared across worker
// budgets.
//
// Entries are written crash-safely: the payload is framed with a magic,
// length and CRC-64 header, written to a temp file in the destination
// directory, fsynced, and atomically renamed into place (with a best-effort
// directory fsync). A reader can therefore never observe a half-written
// entry under a final name. Corrupt or truncated entries — a torn write from
// a power cut, bit rot, a partial copy — are detected by the header check on
// read, quarantined into the store's quarantine/ directory for post-mortem,
// counted on the store.corrupt counter, and reported as misses: corruption
// degrades to recompute, never to failure.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc64"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"specsampling/internal/obs"
)

// Version is the code-version salt folded into every key digest. Bump it
// whenever a pipeline change alters the bytes a stage produces for the same
// configuration; every existing cache entry then misses cleanly.
const Version = "specart-v1"

// Envelope framing: an 8-byte magic, the big-endian payload length, and the
// CRC-64/ECMA of the payload, followed by the gob payload itself.
const (
	magic     = "SPSART01"
	headerLen = len(magic) + 8 + 8
)

// quarantineDir is where corrupt entries are moved, relative to the root.
const quarantineDir = "quarantine"

var crcTable = crc64.MakeTable(crc64.ECMA)

// Store metrics. hit/miss/corrupt are the read outcomes; write and
// write_error track the persist path (a failed write is recorded, not
// fatal — the pipeline result is still returned to the caller).
var (
	hitCounter      = obs.GetCounter("store.hit")
	missCounter     = obs.GetCounter("store.miss")
	corruptCounter  = obs.GetCounter("store.corrupt")
	writeCounter    = obs.GetCounter("store.write")
	writeErrCounter = obs.GetCounter("store.write_error")
)

// Key names one artifact. Kind and Bench locate it (kind subdirectory,
// benchmark-prefixed filename, for human navigation of the cache dir);
// Parts are the canonical configuration strings that, together with the
// Version salt, form the content-addressing digest.
type Key struct {
	// Kind is the artifact family ("profile", "cluster", "whole_cache", …).
	Kind string
	// Bench is the benchmark name the artifact belongs to.
	Bench string
	// Parts are "name=value" configuration strings in a fixed order.
	Parts []string
}

// digest hashes the version salt and every key component, NUL-separated so
// concatenation ambiguities cannot alias two keys.
func (k Key) digest() string {
	h := sha256.New()
	for _, s := range append([]string{Version, k.Kind, k.Bench}, k.Parts...) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// sanitize maps a benchmark name onto a safe filename fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}

// Store is an open artifact cache rooted at one directory. A nil *Store is
// valid and behaves as an always-miss, never-store cache, so pipeline code
// threads it through unconditionally.
type Store struct {
	dir string
}

// Open creates (if needed) and opens the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// path is the artifact's final on-disk location.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, sanitize(k.Kind), sanitize(k.Bench)+"-"+k.digest()+".art")
}

// Get looks key up and, on a hit, gob-decodes the payload into v (which
// must be a pointer to the type Put stored). It returns whether the lookup
// hit. Missing entries are misses; corrupt, truncated or undecodable
// entries are quarantined and reported as misses — Get never fails the
// pipeline over cache state. On a miss, v may have been partially written
// by a failed decode; callers pass a fresh zero value.
func (s *Store) Get(ctx context.Context, key Key, v interface{}) bool {
	if s == nil {
		return false
	}
	_, span := obs.Start(ctx, "store.get",
		obs.String("kind", key.Kind), obs.String("bench", key.Bench))
	defer span.End()
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		// Not-exist is the normal miss; any other read error (permissions,
		// I/O) is treated the same way — the artifact is recomputable.
		missCounter.Add(1)
		span.Annotate(obs.String("outcome", "miss"))
		return false
	}
	payload, err := checkEnvelope(data)
	if err == nil {
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); derr != nil {
			err = fmt.Errorf("store: decode: %w", derr)
		}
	}
	if err != nil {
		s.quarantine(path)
		corruptCounter.Add(1)
		missCounter.Add(1)
		span.Annotate(obs.String("outcome", "corrupt"))
		return false
	}
	hitCounter.Add(1)
	span.Annotate(obs.String("outcome", "hit"))
	return true
}

// checkEnvelope validates the length+checksum header and returns the
// payload slice.
func checkEnvelope(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: truncated header (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: bad magic")
	}
	payload := data[headerLen:]
	wantLen := binary.BigEndian.Uint64(data[len(magic):])
	if wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("store: payload length %d, header says %d", len(payload), wantLen)
	}
	wantCRC := binary.BigEndian.Uint64(data[len(magic)+8:])
	if got := crc64.Checksum(payload, crcTable); got != wantCRC {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return payload, nil
}

// quarantine moves a corrupt entry aside (best effort — if the move itself
// fails the entry is removed so it cannot poison the next read).
func (s *Store) quarantine(path string) {
	dst := filepath.Join(s.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// Put gob-encodes v and writes it under key using the crash-safe protocol:
// temp file in the destination directory, fsync, atomic rename, directory
// fsync. Put deliberately ignores ctx cancellation for the write itself
// (ctx only parents the tracing span): an artifact computed by a stage that
// finished just as the run was interrupted is exactly what resumption wants
// on disk. The returned error is informational — callers treat a failed
// cache write as a non-event, and it is counted on store.write_error.
func (s *Store) Put(ctx context.Context, key Key, v interface{}) error {
	if s == nil {
		return nil
	}
	_, span := obs.Start(ctx, "store.put",
		obs.String("kind", key.Kind), obs.String("bench", key.Bench))
	defer span.End()
	err := s.put(key, v)
	if err != nil {
		writeErrCounter.Add(1)
		span.Annotate(obs.String("outcome", "error"))
		return err
	}
	writeCounter.Add(1)
	return nil
}

func (s *Store) put(key Key, v interface{}) error {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write(make([]byte, 16)) // length + CRC, patched below
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("store: encode %s/%s: %w", key.Kind, key.Bench, err)
	}
	data := buf.Bytes()
	payload := data[headerLen:]
	binary.BigEndian.PutUint64(data[len(magic):], uint64(len(payload)))
	binary.BigEndian.PutUint64(data[len(magic)+8:], crc64.Checksum(payload, crcTable))

	path := s.path(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so the rename that landed in it is durable.
// Best effort: not every filesystem supports it, and a failure only
// weakens durability, never correctness.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best effort by contract; see the function comment
		_ = d.Close()
	}
}

// Len counts the artifacts currently stored (quarantined entries excluded).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() && d.Name() == quarantineDir {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".art") {
			n++
		}
		return nil
	})
	return n
}

// Quarantined lists the filenames of quarantined (corrupt) entries.
func (s *Store) Quarantined() []string {
	if s == nil {
		return nil
	}
	ents, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out
}
