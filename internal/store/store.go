// Package store is the pipeline's persistent artifact cache: a
// content-addressed, on-disk store for the expensive stage outputs of the
// reproduction (per-benchmark BBV profiles, SimPoint clusterings and
// whole-run replay profiles). It is the durable layer behind the in-memory
// singleflight caches — the lookup order everywhere is memory cache → disk
// store → compute — and it is what makes an interrupted suite run resumable:
// artifacts written before the interruption are served from disk on restart,
// so only the unfinished stages recompute.
//
// Keys are canonical: a Key names the artifact kind, the benchmark, and the
// exact configuration parts that determine the artifact's bytes (scale,
// slice length, clustering knobs, …), and the on-disk path is derived from a
// SHA-256 digest of those parts plus a code-version salt. Any configuration
// change therefore lands on a different path and the stale entry is simply
// never read again — invalidation is structural, not mutable metadata.
// Worker counts are deliberately excluded from every key: results are
// byte-identical for any parallelism, so artifacts are shared across worker
// budgets.
//
// Entries are written crash-safely: the payload is framed with a magic,
// length and CRC-64 header, written to a temp file in the destination
// directory, fsynced, and atomically renamed into place (with a best-effort
// directory fsync). A reader can therefore never observe a half-written
// entry under a final name. Corrupt or truncated entries — a torn write from
// a power cut, bit rot, a partial copy — are detected by the header check on
// read, quarantined into the store's quarantine/ directory for post-mortem,
// counted on the store.corrupt counter, and reported as misses: corruption
// degrades to recompute, never to failure. A write that died between the
// temp-file create and the rename leaves an orphaned .tmp-* file; Open reaps
// orphans older than an hour (young ones may belong to a live writer
// sharing the directory), so a crashed run never accretes garbage.
//
// The on-disk layout is sharded: within each kind directory, entries fan
// out across N shard subdirectories (s00/, s01/, …) selected by the key
// digest, so a daemon hammering one artifact kind from hundreds of
// concurrent jobs spreads directory-entry insertion (and the rename+fsync
// dance) across N directories instead of serialising on one. The shard
// count is pinned by a marker file at the store root the first time a
// directory is opened — reopening with a different count keeps the pinned
// layout, so entries never silently change addresses. Stores written before
// sharding existed keep working: a read that misses its shard falls back to
// the legacy flat path and, on a hit, migrates the entry into its shard.
package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc64"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"specsampling/internal/obs"
)

// Version is the code-version salt folded into every key digest. Bump it
// whenever a pipeline change alters the bytes a stage produces for the same
// configuration; every existing cache entry then misses cleanly.
const Version = "specart-v1"

// Envelope framing: an 8-byte magic, the big-endian payload length, and the
// CRC-64/ECMA of the payload, followed by the gob payload itself.
const (
	magic     = "SPSART01"
	headerLen = len(magic) + 8 + 8
)

// quarantineDir is where corrupt entries are moved, relative to the root.
const quarantineDir = "quarantine"

// Sharding: entries fan out across shard subdirectories inside each kind
// directory. DefaultShards is used when a store directory is first opened
// without an explicit count; shardsMarker pins whatever count the directory
// was created with, so every later open agrees on the layout.
const (
	DefaultShards = 16
	MaxShards     = 256
	shardsMarker  = "shards"
)

// tempMaxAge is how old an orphaned .tmp-* file must be before Open reaps
// it. Younger temp files may belong to a writer in another process sharing
// the directory, so they are left alone.
const tempMaxAge = time.Hour

var crcTable = crc64.MakeTable(crc64.ECMA)

// Store metrics. hit/miss/corrupt are the read outcomes; write and
// write_error track the persist path (a failed write is recorded, not
// fatal — the pipeline result is still returned to the caller).
var (
	hitCounter      = obs.GetCounter("store.hit")
	missCounter     = obs.GetCounter("store.miss")
	corruptCounter  = obs.GetCounter("store.corrupt")
	writeCounter    = obs.GetCounter("store.write")
	writeErrCounter = obs.GetCounter("store.write_error")
	migrateCounter  = obs.GetCounter("store.migrate")
	reapCounter     = obs.GetCounter("store.reap")
)

// hitRatioGauge is the derived cache-health gauge Probe publishes: hits
// per thousand reads. A gauge (not a live computation) so scrapes and
// stats history see the value without re-deriving it, and in permille
// because obs gauges are integral.
var hitRatioGauge = obs.GetGauge("store.hit_ratio_permille")

// Probe publishes the hit-ratio gauge from the process-wide hit/miss
// counters. The telemetry collector runs it once per sampling tick; it is
// cheap (two atomic loads) and safe from any goroutine. With no reads yet
// the gauge stays at its zero value.
func Probe() {
	hits, misses := hitCounter.Value(), missCounter.Value()
	if total := hits + misses; total > 0 {
		hitRatioGauge.Set(hits * 1000 / total)
	}
}

// Key names one artifact. Kind and Bench locate it (kind subdirectory,
// benchmark-prefixed filename, for human navigation of the cache dir);
// Parts are the canonical configuration strings that, together with the
// Version salt, form the content-addressing digest.
type Key struct {
	// Kind is the artifact family ("profile", "cluster", "whole_cache", …).
	Kind string
	// Bench is the benchmark name the artifact belongs to.
	Bench string
	// Parts are "name=value" configuration strings in a fixed order.
	Parts []string
}

// digest hashes the version salt and every key component, NUL-separated so
// concatenation ambiguities cannot alias two keys.
func (k Key) digest() string {
	h := sha256.New()
	for _, s := range append([]string{Version, k.Kind, k.Bench}, k.Parts...) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Digest exposes the key's content-addressing digest (version salt folded
// in). The serving layer uses it as the canonical identity of a job
// configuration, so two clients submitting the same work deduplicate onto
// one computation exactly when their artifacts would share cache entries.
func (k Key) Digest() string { return k.digest() }

// sanitize maps a benchmark name onto a safe filename fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}

// Store is an open artifact cache rooted at one directory. A nil *Store is
// valid and behaves as an always-miss, never-store cache, so pipeline code
// threads it through unconditionally.
type Store struct {
	dir    string
	shards int
}

// Open creates (if needed) and opens the store rooted at dir with the
// directory's pinned shard count (DefaultShards for a new directory).
func Open(dir string) (*Store, error) {
	return OpenSharded(dir, 0)
}

// OpenSharded opens the store rooted at dir, creating it with the given
// shard count if the directory is new (shards <= 0 means DefaultShards,
// values above MaxShards are clamped). A directory that has been opened
// before keeps the shard count it was created with — the marker file at the
// root wins over the argument — because entries are addressed by shard and
// must never move when a different caller picks a different number.
func OpenSharded(dir string, shards int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	pinned, err := pinShards(dir, shards)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, shards: pinned}
	s.reapTemps()
	return s, nil
}

// pinShards resolves the directory's shard count: the marker file when one
// exists, otherwise the requested count, which is then published atomically
// (temp file + link) so every open — including two racing first-opens —
// agrees on the count actually on disk.
func pinShards(dir string, requested int) (int, error) {
	return pinShardsAt(filepath.Join(dir, shardsMarker), requested)
}

func pinShardsAt(marker string, requested int) (int, error) {
	for attempt := 0; ; attempt++ {
		if data, err := os.ReadFile(marker); err == nil {
			var n int
			if _, serr := fmt.Sscanf(strings.TrimSpace(string(data)), "%d", &n); serr == nil && n >= 1 && n <= MaxShards {
				return n, nil
			}
			// An unreadable marker means the layout is unknown; refuse rather
			// than guess and strand every existing entry in the wrong shard.
			return 0, fmt.Errorf("store: corrupt shard marker %s: %q", marker, data)
		}
		tmp, err := os.CreateTemp(filepath.Dir(marker), ".tmp-")
		if err != nil {
			return 0, fmt.Errorf("store: pin shards: %w", err)
		}
		_, werr := fmt.Fprintf(tmp, "%d\n", requested)
		if cerr := tmp.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			os.Remove(tmp.Name())
			return 0, fmt.Errorf("store: pin shards: %w", werr)
		}
		// Publish via link(2), not rename: link fails with EEXIST when a
		// marker already landed, so when two first-opens race exactly one
		// count ever reaches disk — rename's last-writer-wins would let both
		// openers return different counts while one marker silently replaced
		// the other. The loser loops once and reads the winner's marker.
		lerr := os.Link(tmp.Name(), marker)
		os.Remove(tmp.Name())
		if lerr == nil {
			return requested, nil
		}
		if !errors.Is(lerr, fs.ErrExist) || attempt > 0 {
			return 0, fmt.Errorf("store: pin shards: %w", lerr)
		}
	}
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Shards returns the store's pinned shard count (0 for a nil store).
func (s *Store) Shards() int {
	if s == nil {
		return 0
	}
	return s.shards
}

// shardDir names the shard subdirectory a digest lands in: the digest's
// first byte modulo the shard count, so entries spread uniformly and the
// address is a pure function of the key.
func (s *Store) shardDir(digest string) string {
	v := hexByte(digest)
	return fmt.Sprintf("s%02x", v%s.shards)
}

// hexByte decodes the first two hex characters of a digest.
func hexByte(digest string) int {
	v := 0
	for i := 0; i < 2 && i < len(digest); i++ {
		c := digest[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | int(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | int(c-'a'+10)
		}
	}
	return v
}

// path is the artifact's final on-disk location (sharded layout).
func (s *Store) path(k Key) string {
	d := k.digest()
	return filepath.Join(s.dir, sanitize(k.Kind), s.shardDir(d), sanitize(k.Bench)+"-"+d+".art")
}

// legacyPath is where a pre-sharding store kept the artifact: directly in
// the kind directory. Reads fall back to it; writes never target it.
func (s *Store) legacyPath(k Key) string {
	return filepath.Join(s.dir, sanitize(k.Kind), sanitize(k.Bench)+"-"+k.digest()+".art")
}

// reapTemps removes orphaned .tmp-* files older than tempMaxAge anywhere
// under the root — the debris of a Put that died between the temp-file
// create and the rename. Best effort: a failed removal only means the
// orphan survives until the next open.
func (s *Store) reapTemps() {
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil || time.Since(info.ModTime()) < tempMaxAge {
			return nil
		}
		if os.Remove(path) == nil {
			reapCounter.Add(1)
		}
		return nil
	})
}

// Get looks key up and, on a hit, gob-decodes the payload into v (which
// must be a pointer to the type Put stored). It returns whether the lookup
// hit. Missing entries are misses; corrupt, truncated or undecodable
// entries are quarantined and reported as misses — Get never fails the
// pipeline over cache state. On a miss, v may have been partially written
// by a failed decode; callers pass a fresh zero value.
func (s *Store) Get(ctx context.Context, key Key, v interface{}) bool {
	if s == nil {
		return false
	}
	_, span := obs.Start(ctx, "store.get",
		obs.String("kind", key.Kind), obs.String("bench", key.Bench))
	defer span.End()
	path := s.path(key)
	legacy := false
	data, err := os.ReadFile(path)
	if err != nil {
		// Sharded miss: fall back to the flat pre-sharding location. Any
		// read error other than not-exist is treated like a miss either way —
		// the artifact is recomputable.
		path = s.legacyPath(key)
		if data, err = os.ReadFile(path); err != nil {
			missCounter.Add(1)
			span.Annotate(obs.String("outcome", "miss"))
			return false
		}
		legacy = true
	}
	payload, err := checkEnvelope(data)
	if err == nil {
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); derr != nil {
			err = fmt.Errorf("store: decode: %w", derr)
		}
	}
	if err != nil {
		s.quarantine(path)
		corruptCounter.Add(1)
		missCounter.Add(1)
		span.Annotate(obs.String("outcome", "corrupt"))
		return false
	}
	if legacy {
		s.migrate(key)
	}
	hitCounter.Add(1)
	span.Annotate(obs.String("outcome", "hit"))
	return true
}

// migrate moves a legacy flat entry into its shard, so the fallback read
// happens once per entry rather than forever. Best effort: the entry was
// already decoded, so a failed rename only costs the next read a fallback.
func (s *Store) migrate(key Key) {
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return
	}
	if err := os.Rename(s.legacyPath(key), dst); err == nil {
		migrateCounter.Add(1)
		syncDir(filepath.Dir(dst))
	}
}

// checkEnvelope validates the length+checksum header and returns the
// payload slice.
func checkEnvelope(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("store: truncated header (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: bad magic")
	}
	payload := data[headerLen:]
	wantLen := binary.BigEndian.Uint64(data[len(magic):])
	if wantLen != uint64(len(payload)) {
		return nil, fmt.Errorf("store: payload length %d, header says %d", len(payload), wantLen)
	}
	wantCRC := binary.BigEndian.Uint64(data[len(magic)+8:])
	if got := crc64.Checksum(payload, crcTable); got != wantCRC {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return payload, nil
}

// quarantine moves a corrupt entry aside (best effort — if the move itself
// fails the entry is removed so it cannot poison the next read).
func (s *Store) quarantine(path string) {
	dst := filepath.Join(s.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// Put gob-encodes v and writes it under key using the crash-safe protocol:
// temp file in the destination directory, fsync, atomic rename, directory
// fsync. Put deliberately ignores ctx cancellation for the write itself
// (ctx only parents the tracing span): an artifact computed by a stage that
// finished just as the run was interrupted is exactly what resumption wants
// on disk. The returned error is informational — callers treat a failed
// cache write as a non-event, and it is counted on store.write_error.
func (s *Store) Put(ctx context.Context, key Key, v interface{}) error {
	if s == nil {
		return nil
	}
	_, span := obs.Start(ctx, "store.put",
		obs.String("kind", key.Kind), obs.String("bench", key.Bench))
	defer span.End()
	err := s.put(key, v)
	if err != nil {
		writeErrCounter.Add(1)
		span.Annotate(obs.String("outcome", "error"))
		return err
	}
	writeCounter.Add(1)
	return nil
}

func (s *Store) put(key Key, v interface{}) error {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write(make([]byte, 16)) // length + CRC, patched below
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("store: encode %s/%s: %w", key.Kind, key.Bench, err)
	}
	data := buf.Bytes()
	payload := data[headerLen:]
	binary.BigEndian.PutUint64(data[len(magic):], uint64(len(payload)))
	binary.BigEndian.PutUint64(data[len(magic)+8:], crc64.Checksum(payload, crcTable))

	path := s.path(key)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("store: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so the rename that landed in it is durable.
// Best effort: not every filesystem supports it, and a failure only
// weakens durability, never correctness.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // best effort by contract; see the function comment
		_ = d.Close()
	}
}

// Len counts the artifacts currently stored (quarantined entries excluded).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if d.IsDir() && d.Name() == quarantineDir {
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".art") {
			n++
		}
		return nil
	})
	return n
}

// Quarantined lists the filenames of quarantined (corrupt) entries.
func (s *Store) Quarantined() []string {
	if s == nil {
		return nil
	}
	ents, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	return out
}
