package store

import (
	"testing"

	"specsampling/internal/obs"
)

// TestProbeHitRatio pins the derived gauge: hits per thousand reads,
// computed from the live counters at probe time.
func TestProbeHitRatio(t *testing.T) {
	obs.ResetMetrics()
	defer obs.ResetMetrics()
	Probe()
	if got := obs.GetGauge("store.hit_ratio_permille").Value(); got != 0 {
		t.Fatalf("ratio with no reads = %d, want 0", got)
	}
	hitCounter.Add(3)
	missCounter.Add(1)
	Probe()
	if got := obs.GetGauge("store.hit_ratio_permille").Value(); got != 750 {
		t.Fatalf("ratio after 3 hits / 1 miss = %d, want 750", got)
	}
}
