package store

import (
	"flag"
	"os"
)

// Flags is the standard cache flag pair every command exposes:
//
//	-cache-dir DIR   persistent artifact cache (default: env SPECSIM_CACHE)
//	-no-cache        force the cache off even when a directory is configured
//
// Bind them with BindFlags, then Open after parsing; Open returns a nil
// *Store (a valid always-miss cache) when caching is disabled.
type Flags struct {
	Dir     string
	NoCache bool
}

// BindFlags registers the cache flags on fs. The -cache-dir default comes
// from the SPECSIM_CACHE environment variable, so a standing cache can be
// configured once per machine.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Dir, "cache-dir", os.Getenv("SPECSIM_CACHE"),
		"persistent artifact cache directory: profiles, clusterings and replay "+
			"profiles are reused across runs and interrupted runs resume "+
			"(empty disables; env SPECSIM_CACHE sets the default)")
	fs.BoolVar(&f.NoCache, "no-cache", false,
		"disable the persistent artifact cache even when -cache-dir or SPECSIM_CACHE is set")
	return f
}

// Open resolves the parsed flags to a store: nil when disabled.
func (f *Flags) Open() (*Store, error) {
	if f.NoCache || f.Dir == "" {
		return nil, nil
	}
	return Open(f.Dir)
}
