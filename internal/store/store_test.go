package store

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"specsampling/internal/obs"
)

var ctx = context.Background()

type artifact struct {
	Name   string
	Values []float64
	Total  uint64
}

func testKey(parts ...string) Key {
	return Key{Kind: "profile", Bench: "505.mcf_r", Parts: parts}
}

func mustOpen(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := mustOpen(t)
	in := artifact{Name: "x", Values: []float64{1.5, -2.25, 0}, Total: 42}
	if err := s.Put(ctx, testKey("slice=64"), in); err != nil {
		t.Fatal(err)
	}
	var out artifact
	if !s.Get(ctx, testKey("slice=64"), &out) {
		t.Fatal("fresh entry missed")
	}
	if out.Name != in.Name || out.Total != in.Total || len(out.Values) != len(in.Values) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	for i := range in.Values {
		if out.Values[i] != in.Values[i] {
			t.Fatalf("value %d: got %v, want %v", i, out.Values[i], in.Values[i])
		}
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestMissOnDifferentKey(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(ctx, testKey("slice=64"), artifact{Total: 1}); err != nil {
		t.Fatal(err)
	}
	var out artifact
	// A changed config part, a changed kind and a changed benchmark all miss.
	if s.Get(ctx, testKey("slice=128"), &out) {
		t.Error("different config part hit the cache")
	}
	k := testKey("slice=64")
	k.Kind = "cluster"
	if s.Get(ctx, k, &out) {
		t.Error("different kind hit the cache")
	}
	k = testKey("slice=64")
	k.Bench = "541.leela_r"
	if s.Get(ctx, k, &out) {
		t.Error("different benchmark hit the cache")
	}
}

func TestNilStore(t *testing.T) {
	var s *Store
	if err := s.Put(ctx, testKey(), artifact{}); err != nil {
		t.Fatal(err)
	}
	var out artifact
	if s.Get(ctx, testKey(), &out) {
		t.Error("nil store hit")
	}
	if s.Len() != 0 || s.Dir() != "" || s.Quarantined() != nil {
		t.Error("nil store accessors not zero")
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	s := mustOpen(t)
	if err := s.Put(ctx, testKey("a=1"), artifact{Total: 7}); err != nil {
		t.Fatal(err)
	}
	var tmps []string
	filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(info.Name(), ".tmp-") {
			tmps = append(tmps, path)
		}
		return nil
	})
	if len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

// artifactPath returns the single .art file in the store.
func artifactPath(t *testing.T, s *Store) string {
	t.Helper()
	var paths []string
	filepath.Walk(s.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".art") {
			paths = append(paths, path)
		}
		return nil
	})
	if len(paths) != 1 {
		t.Fatalf("want exactly 1 artifact, found %v", paths)
	}
	return paths[0]
}

// corruptionCases mutates a valid entry in representative ways; every one
// must degrade to a quarantined miss, never an error or a bogus hit.
func TestCorruptEntriesQuarantinedAsMisses(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1] ^= 0xff
			return out
		}},
		{"flipped header byte", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[0] ^= 0xff
			return out
		}},
		{"truncated payload", func(b []byte) []byte {
			return append([]byte(nil), b[:len(b)-3]...)
		}},
		{"truncated header", func(b []byte) []byte {
			return append([]byte(nil), b[:headerLen-4]...)
		}},
		{"empty file", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t)
			if err := s.Put(ctx, testKey("a=1"), artifact{Name: "good", Total: 9}); err != nil {
				t.Fatal(err)
			}
			path := artifactPath(t, s)
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(blob), 0o644); err != nil {
				t.Fatal(err)
			}

			obs.ResetMetrics()
			var out artifact
			if s.Get(ctx, testKey("a=1"), &out) {
				t.Fatal("corrupt entry reported as hit")
			}
			if got := obs.GetCounter("store.corrupt").Value(); got != 1 {
				t.Errorf("store.corrupt = %d, want 1", got)
			}
			if q := s.Quarantined(); len(q) != 1 {
				t.Errorf("quarantined = %v, want one entry", q)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry still readable at its original path")
			}
			// The slot is reusable: a fresh Put round-trips again.
			if err := s.Put(ctx, testKey("a=1"), artifact{Name: "fresh", Total: 10}); err != nil {
				t.Fatal(err)
			}
			if !s.Get(ctx, testKey("a=1"), &out) || out.Name != "fresh" {
				t.Fatalf("re-put entry not served: %+v", out)
			}
		})
	}
}

func TestUndecodablePayloadIsCorrupt(t *testing.T) {
	s := mustOpen(t)
	// A valid envelope whose payload is a gob of the wrong type.
	if err := s.Put(ctx, testKey("a=1"), "just a string"); err != nil {
		t.Fatal(err)
	}
	obs.ResetMetrics()
	var out artifact
	if s.Get(ctx, testKey("a=1"), &out) {
		t.Fatal("type-mismatched payload reported as hit")
	}
	if got := obs.GetCounter("store.corrupt").Value(); got != 1 {
		t.Errorf("store.corrupt = %d, want 1", got)
	}
	if q := s.Quarantined(); len(q) != 1 {
		t.Errorf("quarantined = %v, want one entry", q)
	}
}

func TestHitMissCounters(t *testing.T) {
	s := mustOpen(t)
	obs.ResetMetrics()
	var out artifact
	if s.Get(ctx, testKey("a=1"), &out) {
		t.Fatal("empty store hit")
	}
	if err := s.Put(ctx, testKey("a=1"), artifact{Total: 3}); err != nil {
		t.Fatal(err)
	}
	if !s.Get(ctx, testKey("a=1"), &out) {
		t.Fatal("stored entry missed")
	}
	if hits := obs.GetCounter("store.hit").Value(); hits != 1 {
		t.Errorf("store.hit = %d, want 1", hits)
	}
	if misses := obs.GetCounter("store.miss").Value(); misses != 1 {
		t.Errorf("store.miss = %d, want 1", misses)
	}
	if writes := obs.GetCounter("store.write").Value(); writes != 1 {
		t.Errorf("store.write = %d, want 1", writes)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") succeeded")
	}
}

func TestFlags(t *testing.T) {
	dir := t.TempDir()

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := BindFlags(fs)
	if err := fs.Parse([]string{"-cache-dir", dir}); err != nil {
		t.Fatal(err)
	}
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.Dir() != dir {
		t.Fatalf("flags did not open %s", dir)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	f = BindFlags(fs)
	if err := fs.Parse([]string{"-cache-dir", dir, "-no-cache"}); err != nil {
		t.Fatal(err)
	}
	if s, err := f.Open(); err != nil || s != nil {
		t.Fatalf("-no-cache did not disable the store (store=%v err=%v)", s, err)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	f = BindFlags(fs)
	f.Dir = "" // simulate no flag, no env
	if s, err := f.Open(); err != nil || s != nil {
		t.Fatalf("empty dir did not disable the store (store=%v err=%v)", s, err)
	}
}

// TestPinShardsConcurrentFirstOpen: regression for the first-open race where
// two openers racing to pin a fresh directory with different shard counts
// each returned their own requested count while the last marker write won on
// disk — briefly addressing entries under different layouts. Every opener
// must return the count that actually landed in the marker.
func TestPinShardsConcurrentFirstOpen(t *testing.T) {
	marker := filepath.Join(t.TempDir(), shardsMarker)
	const openers = 8
	got := make([]int, openers)
	var wg sync.WaitGroup
	for i := 0; i < openers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := pinShardsAt(marker, i+1)
			if err != nil {
				t.Errorf("opener %d: %v", i, err)
				return
			}
			got[i] = n
		}(i)
	}
	wg.Wait()
	onDisk, err := pinShardsAt(marker, 0) // marker exists; reads the winner
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range got {
		if n != onDisk {
			t.Errorf("opener %d pinned %d shards, marker on disk says %d", i, n, onDisk)
		}
	}
}
