package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specsampling/internal/obs"
)

// TestShardedLayout pins the on-disk contract of the sharded store: a Put
// lands inside a shard subdirectory of the kind directory, at the exact
// path the key addresses.
func TestShardedLayout(t *testing.T) {
	s := mustOpen(t)
	if s.Shards() != DefaultShards {
		t.Fatalf("Shards = %d, want %d", s.Shards(), DefaultShards)
	}
	key := testKey("slice=64")
	if err := s.Put(ctx, key, artifact{Total: 1}); err != nil {
		t.Fatal(err)
	}
	path := artifactPath(t, s)
	if want := s.path(key); path != want {
		t.Fatalf("artifact at %s, addressed at %s", path, want)
	}
	shard := filepath.Base(filepath.Dir(path))
	if !strings.HasPrefix(shard, "s") || filepath.Base(filepath.Dir(filepath.Dir(path))) != "profile" {
		t.Fatalf("artifact not under kind/shard: %s", path)
	}
}

// TestLegacyEntryReadAndMigrated proves a flat pre-sharding entry is served
// transparently and moved into its shard on first read.
func TestLegacyEntryReadAndMigrated(t *testing.T) {
	s := mustOpen(t)
	key := testKey("slice=64")
	if err := s.Put(ctx, key, artifact{Name: "legacy", Total: 9}); err != nil {
		t.Fatal(err)
	}
	// Demote the entry to the flat legacy location a pre-sharding store
	// would have written.
	if err := os.Rename(s.path(key), s.legacyPath(key)); err != nil {
		t.Fatal(err)
	}

	obs.ResetMetrics()
	var out artifact
	if !s.Get(ctx, key, &out) || out.Name != "legacy" {
		t.Fatalf("legacy entry not served: %+v", out)
	}
	if got := obs.GetCounter("store.migrate").Value(); got != 1 {
		t.Errorf("store.migrate = %d, want 1", got)
	}
	if _, err := os.Stat(s.path(key)); err != nil {
		t.Errorf("entry not migrated into its shard: %v", err)
	}
	if _, err := os.Stat(s.legacyPath(key)); !os.IsNotExist(err) {
		t.Errorf("legacy entry still present after migration")
	}
	// The second read is a plain sharded hit, no further migration.
	if !s.Get(ctx, key, &out) || out.Name != "legacy" {
		t.Fatalf("migrated entry not served: %+v", out)
	}
	if got := obs.GetCounter("store.migrate").Value(); got != 1 {
		t.Errorf("store.migrate after second read = %d, want 1", got)
	}
}

// TestShardCountPinned proves the first open wins: reopening with a
// different count keeps the pinned layout and every entry stays readable.
func TestShardCountPinned(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards())
	}
	key := testKey("slice=64")
	if err := s.Put(ctx, key, artifact{Total: 3}); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Shards() != 4 {
		t.Fatalf("reopened Shards = %d, want pinned 4", s2.Shards())
	}
	var out artifact
	if !s2.Get(ctx, key, &out) || out.Total != 3 {
		t.Fatalf("entry lost across reopen: %+v", out)
	}

	// Open (no explicit count) also honours the pin.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Shards() != 4 {
		t.Fatalf("Open Shards = %d, want pinned 4", s3.Shards())
	}
}

func TestCorruptShardMarkerRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenSharded(dir, 8); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, shardsMarker), []byte("bogus"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt shard marker accepted")
	}
}

// TestCrashDuringPutRecovery simulates a write killed between the temp-file
// create and the rename: the orphaned .tmp-* file must be reaped on the
// next open (once old enough to be unambiguous), the interrupted entry must
// read as a clean miss, and a fresh Put must recompute the slot — in both
// the sharded and the legacy flat layout.
func TestCrashDuringPutRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	survivor := testKey("slice=64")
	if err := s.Put(ctx, survivor, artifact{Name: "ok", Total: 5}); err != nil {
		t.Fatal(err)
	}

	// A killed write for a different key: the temp file exists, the final
	// name does not. Plant one in the sharded location and one in a legacy
	// flat kind directory.
	victim := testKey("slice=128")
	shardOrphan := filepath.Join(filepath.Dir(s.path(victim)), ".tmp-crashed1")
	legacyOrphan := filepath.Join(filepath.Dir(s.legacyPath(victim)), ".tmp-crashed2")
	freshOrphan := filepath.Join(filepath.Dir(s.path(victim)), ".tmp-live")
	if err := os.MkdirAll(filepath.Dir(shardOrphan), 0o755); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tempMaxAge)
	for _, p := range []string{shardOrphan, legacyOrphan} {
		if err := os.WriteFile(p, []byte("half a write"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	// A young temp file may belong to a live writer in another process and
	// must survive the reap.
	if err := os.WriteFile(freshOrphan, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	obs.ResetMetrics()
	s2, err := Open(dir) // restart
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{shardOrphan, legacyOrphan} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphaned temp file survived restart: %s", p)
		}
	}
	if _, err := os.Stat(freshOrphan); err != nil {
		t.Errorf("young temp file reaped: %v", err)
	}
	if got := obs.GetCounter("store.reap").Value(); got != 2 {
		t.Errorf("store.reap = %d, want 2", got)
	}

	// The interrupted entry is a clean miss and recomputes.
	var out artifact
	if s2.Get(ctx, victim, &out) {
		t.Fatal("interrupted entry reported as hit")
	}
	if err := s2.Put(ctx, victim, artifact{Name: "recomputed", Total: 6}); err != nil {
		t.Fatal(err)
	}
	if !s2.Get(ctx, victim, &out) || out.Name != "recomputed" {
		t.Fatalf("recomputed entry not served: %+v", out)
	}
	// The neighbouring completed entry was untouched.
	if !s2.Get(ctx, survivor, &out) || out.Name != "ok" {
		t.Fatalf("survivor entry lost: %+v", out)
	}
}
