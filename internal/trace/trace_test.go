package trace

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"specsampling/internal/program"
	"specsampling/internal/workload"
)

func testProgram(t testing.TB) *program.Program {
	t.Helper()
	spec, err := workload.ByName("557.xz_r")
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRecordReadRoundTrip(t *testing.T) {
	p := testProgram(t)
	exec := program.NewExecutor(p)
	exec.Run(5000, program.Hooks{})
	start := exec.State()

	var buf bytes.Buffer
	n, err := Record(exec, 3000, &buf, p.Name)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3000 {
		t.Fatalf("recorded only %d instructions", n)
	}

	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark() != p.Name {
		t.Errorf("benchmark %q", r.Benchmark())
	}
	if r.Blocks() == 0 {
		t.Error("no blocks recorded")
	}
	// The trace must verify against a replay from the recorded start.
	if n, err := Verify(p, start, 3000, buf.Bytes()); err != nil {
		t.Fatalf("verify after record: %v (verified %d)", err, n)
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	p := testProgram(t)
	exec := program.NewExecutor(p)
	exec.Run(2000, program.Hooks{})
	start := exec.State()

	var buf bytes.Buffer
	if _, err := Record(exec, 2000, &buf, p.Name); err != nil {
		t.Fatal(err)
	}

	// Verifying from the WRONG start state must fail.
	wrong := program.NewExecutor(p)
	wrong.Run(100, program.Hooks{})
	if _, err := Verify(p, wrong.State(), 2000, buf.Bytes()); err == nil {
		t.Error("divergent replay verified successfully")
	}

	// Verifying from the right state succeeds.
	if n, err := Verify(p, start, 2000, buf.Bytes()); err != nil {
		t.Errorf("correct replay failed: %v (verified %d)", err, n)
	}
}

func TestVerifyRejectsWrongBenchmark(t *testing.T) {
	p := testProgram(t)
	exec := program.NewExecutor(p)
	var buf bytes.Buffer
	if _, err := Record(exec, 1000, &buf, "some-other-benchmark"); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(p, program.NewExecutor(p).State(), 1000, buf.Bytes()); err == nil {
		t.Error("foreign trace accepted")
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	p := testProgram(t)
	exec := program.NewExecutor(p)
	var buf bytes.Buffer
	if _, err := Record(exec, 1000, &buf, p.Name); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := NewReader(data[:8]); err == nil {
		t.Error("truncated trace accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := NewReader(bad); err == nil {
		t.Error("bad magic accepted")
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := NewReader(flipped); err == nil {
		t.Error("corrupt body accepted")
	}
}

func TestReaderEOF(t *testing.T) {
	p := testProgram(t)
	exec := program.NewExecutor(p)
	var buf bytes.Buffer
	if _, err := Record(exec, 500, &buf, p.Name); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != r.Blocks() {
		t.Errorf("walked %d of %d blocks", count, r.Blocks())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Error("Next after EOF should keep returning EOF")
	}
}

func TestSaveLoad(t *testing.T) {
	p := testProgram(t)
	exec := program.NewExecutor(p)
	path := filepath.Join(t.TempDir(), "region.trc")
	if _, err := Save(path, exec, 1500, p.Name); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() == 0 {
		t.Error("empty trace")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCompactness(t *testing.T) {
	// Mostly-sequential block streams should cost ~1 byte per block.
	p := testProgram(t)
	exec := program.NewExecutor(p)
	var buf bytes.Buffer
	if _, err := Record(exec, 50000, &buf, p.Name); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	bytesPerBlock := float64(buf.Len()) / float64(r.Blocks())
	if bytesPerBlock > 2.0 {
		t.Errorf("trace costs %.2f bytes/block, want <= 2", bytesPerBlock)
	}
}
