// Package trace implements execution-trace logging and replay — the other
// half of Pin's logger/replayer pair (the paper's Section II-B lists
// "logger (records execution traces)" and "replayer (replays the logged
// execution traces)" among the Pintools used).
//
// A trace is the dynamic basic-block stream of an execution region, stored
// compactly: block IDs are delta-encoded against the previous block and
// varint-compressed, so the common fall-through pattern (delta +1) costs
// one byte per block. Traces serve two purposes:
//
//   - validation: Verify replays a region and checks the executor
//     reproduces the recorded stream bit-exactly (the pinball determinism
//     property, checkable against an artefact rather than in-process);
//   - analysis: a trace can be consumed by tools without re-executing the
//     program (Reader walks it block by block).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"specsampling/internal/isa"
	"specsampling/internal/pin"
	"specsampling/internal/program"
)

const (
	magic   = "STRC"
	version = uint16(1)
)

// Writer streams a block trace.
type Writer struct {
	w      *bufio.Writer
	crc    uint32
	prev   int64
	blocks uint64
	instrs uint64
	header bool
	name   string
}

// NewWriter starts a trace for the named benchmark.
func NewWriter(w io.Writer, benchmark string) *Writer {
	return &Writer{w: bufio.NewWriter(w), name: benchmark}
}

func (t *Writer) writeHeader() error {
	if t.header {
		return nil
	}
	t.header = true
	if _, err := t.w.WriteString(magic); err != nil {
		return err
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], version)
	if _, err := t.w.Write(v[:]); err != nil {
		return err
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(t.name)))
	if _, err := t.w.Write(n[:]); err != nil {
		return err
	}
	_, err := t.w.WriteString(t.name)
	return err
}

// Observe appends one dynamic block execution. It is shaped to serve as a
// pin block hook.
func (t *Writer) Observe(b *isa.Block, _ int) {
	// Errors surface at Close; bufio retains the first error.
	if !t.header {
		if err := t.writeHeader(); err != nil {
			return
		}
	}
	delta := int64(b.ID) - t.prev
	t.prev = int64(b.ID)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], delta)
	_, _ = t.w.Write(buf[:n])
	t.crc = crc32.Update(t.crc, crc32.IEEETable, buf[:n])
	t.blocks++
	t.instrs += uint64(b.Len())
}

// Name implements pin.Tool.
func (*Writer) Name() string { return "tracelogger" }

// OnBlock implements pin.BlockTool.
func (t *Writer) OnBlock(b *isa.Block, phase int) { t.Observe(b, phase) }

// Blocks returns the number of recorded block executions.
func (t *Writer) Blocks() uint64 { return t.blocks }

// Instrs returns the number of recorded instructions.
func (t *Writer) Instrs() uint64 { return t.instrs }

// Close flushes the trace and appends the trailer (block count + CRC).
func (t *Writer) Close() error {
	if err := t.writeHeader(); err != nil {
		return fmt.Errorf("trace: header: %w", err)
	}
	// Trailer marker: varint 0 cannot follow a real stream ambiguity since
	// deltas of 0 are legal... so the trailer is length-delimited instead:
	// an explicit 8-byte block count and 4-byte CRC after the stream,
	// found via the footer when reading the whole file.
	var tail [12]byte
	binary.LittleEndian.PutUint64(tail[:8], t.blocks)
	binary.LittleEndian.PutUint32(tail[8:], t.crc)
	if _, err := t.w.Write(tail[:]); err != nil {
		return fmt.Errorf("trace: trailer: %w", err)
	}
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Reader walks a recorded trace.
type Reader struct {
	data   []byte
	pos    int
	prev   int64
	read   uint64
	blocks uint64
	crcPos int
	name   string
}

// NewReader parses a complete trace held in data.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < len(magic)+2+4+12 {
		return nil, fmt.Errorf("trace: too short (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen := int(binary.LittleEndian.Uint32(data[6:10]))
	if nameLen > 1<<20 || 10+nameLen+12 > len(data) {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := string(data[10 : 10+nameLen])
	body := data[10+nameLen : len(data)-12]
	blocks := binary.LittleEndian.Uint64(data[len(data)-12 : len(data)-4])
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("trace: checksum mismatch")
	}
	return &Reader{
		data:   body,
		blocks: blocks,
		name:   name,
	}, nil
}

// Benchmark returns the recorded benchmark name.
func (r *Reader) Benchmark() string { return r.name }

// Blocks returns the recorded block-execution count.
func (r *Reader) Blocks() uint64 { return r.blocks }

// Next returns the next block ID, or io.EOF when the trace ends.
func (r *Reader) Next() (int, error) {
	if r.read == r.blocks {
		return 0, io.EOF
	}
	delta, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: corrupt varint at offset %d", r.pos)
	}
	r.pos += n
	r.prev += delta
	r.read++
	if r.prev < 0 {
		return 0, fmt.Errorf("trace: negative block ID %d", r.prev)
	}
	return int(r.prev), nil
}

// Record runs length instructions of prog from its current state, writing
// the block trace to w, and returns the instruction count executed.
func Record(exec *program.Executor, length uint64, w io.Writer, benchmark string) (uint64, error) {
	tw := NewWriter(w, benchmark)
	engine := pin.NewEngineAt(exec)
	if err := engine.Attach(tw); err != nil {
		return 0, err
	}
	n := engine.Run(length)
	if err := tw.Close(); err != nil {
		return 0, err
	}
	return n, nil
}

// Verify replays a region from the given state and checks the executor's
// block stream matches the recorded trace exactly. It returns the number of
// verified blocks.
func Verify(prog *program.Program, start program.State, length uint64, traceData []byte) (uint64, error) {
	r, err := NewReader(traceData)
	if err != nil {
		return 0, err
	}
	if r.Benchmark() != prog.Name {
		return 0, fmt.Errorf("trace: recorded for %q, verifying against %q", r.Benchmark(), prog.Name)
	}
	exec := program.NewExecutor(prog)
	if err := exec.Restore(start); err != nil {
		return 0, err
	}
	var verified uint64
	var mismatch error
	exec.Run(length, program.Hooks{Block: func(b *isa.Block, _ int) {
		if mismatch != nil {
			return
		}
		want, err := r.Next()
		if err == io.EOF {
			mismatch = fmt.Errorf("trace: execution produced more blocks than recorded (%d)", verified)
			return
		}
		if err != nil {
			mismatch = err
			return
		}
		if b.ID != want {
			mismatch = fmt.Errorf("trace: block %d diverges: executed %d, recorded %d", verified, b.ID, want)
			return
		}
		verified++
	}})
	if mismatch != nil {
		return verified, mismatch
	}
	if verified != r.Blocks() {
		return verified, fmt.Errorf("trace: verified %d of %d recorded blocks", verified, r.Blocks())
	}
	return verified, nil
}

// Save records a region to a file.
func Save(path string, exec *program.Executor, length uint64, benchmark string) (uint64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("trace: %w", err)
	}
	n, err := Record(exec, length, f, benchmark)
	if err != nil {
		_ = f.Close() // the record error is the one worth reporting
		return n, err
	}
	return n, f.Close()
}

// Load reads a trace file.
func Load(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return NewReader(data)
}
