package trace

import (
	"bytes"
	"io"
	"testing"

	"specsampling/internal/program"
	"specsampling/internal/workload"
)

// FuzzNewReader exercises the trace decoder against arbitrary bytes: it
// must never panic, and any accepted trace must be walkable to EOF without
// errors beyond the declared block count.
func FuzzNewReader(f *testing.F) {
	spec, err := workload.ByName("520.omnetpp_r")
	if err != nil {
		f.Fatal(err)
	}
	p, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Record(program.NewExecutor(p), 2000, &buf, p.Name); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STRC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			return
		}
		var walked uint64
		for walked <= r.Blocks() {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				return // corrupt varints may hide behind a valid CRC of garbage
			}
			walked++
		}
		if walked > r.Blocks() {
			t.Fatalf("walked %d blocks, trailer declares %d", walked, r.Blocks())
		}
	})
}
