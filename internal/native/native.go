// Package native models "real hardware + perf" — the reference side of the
// paper's Figure 12 comparison. With no physical i7-3770 available, the
// native machine is a second timing model of the same microarchitecture
// whose constants deliberately differ from the Sniper model's (a real chip
// never matches a simulator exactly) and whose runs carry deterministic
// pseudo-noise standing in for the run-to-run variance of real hardware
// ("these results also include errors due to non-determinism", Section
// IV-E). The package exposes perf-stat-style counters (cpu-cycles,
// instructions) from whole-program native execution.
package native

import (
	"fmt"

	"specsampling/internal/cache"
	"specsampling/internal/pin"
	"specsampling/internal/program"
	"specsampling/internal/rng"
	"specsampling/internal/timing"
)

// MachineConfig reproduces the i7-3770 of Table III as the *hardware* sees
// it: the same structure as the Sniper model but with slightly different
// effective parameters — a marginally deeper effective memory latency
// (DRAM page behaviour), a slightly better branch front end, and a
// per-block micro-op fusion benefit the simulator does not model. The gap
// between this machine and timing.TableIIIConfig is the model error that,
// combined with sampling error, produces the paper's 2.59 % average CPI
// difference.
func MachineConfig() timing.Config {
	cfg := timing.TableIIIConfig()
	cfg.Name = "native-i7-3770"
	cfg.DispatchWidth = 4.15 // uop fusion lets the real core exceed 4/cycle
	cfg.MemLatency = 192     // measured DRAM latency vs the model's nominal
	cfg.MLP = 2.75
	cfg.FrontendStall = 0.34
	cfg.BranchMissPenalty = 8.5
	return cfg
}

// Noise is the relative amplitude of run-to-run variance injected into the
// cycle counts (0.004 = ±0.4 %, a typical perf run spread on a quiet
// machine).
const Noise = 0.004

// PerfStat runs the benchmark natively (whole program, no sampling) and
// returns its hardware counters, like `perf stat -e cpu-cycles,instructions`.
// divs are the workload scale's cache divisors (workload.Scale.CacheDivs) —
// the "hardware" must be scaled exactly like the simulated machine. run
// distinguishes repeated executions: different run indices see slightly
// different cycle counts, deterministically.
func PerfStat(p *program.Program, divs cache.ScaleDivs, run int) (timing.Counters, error) {
	core, err := timing.NewCore(timing.ScaledConfig(MachineConfig(), divs))
	if err != nil {
		return timing.Counters{}, fmt.Errorf("native: %w", err)
	}
	engine := pin.NewEngine(p)
	if err := engine.Attach(core); err != nil {
		return timing.Counters{}, fmt.Errorf("native: %w", err)
	}
	engine.RunToEnd()
	c := core.Counters()

	// Deterministic pseudo-noise in the cycle counter, seeded by
	// (benchmark, run): the same run always measures the same value, but
	// repeated runs differ — exactly how perf behaves on real hardware.
	r := rng.New(hashString(p.Name) ^ uint64(run)*0x9e3779b97f4a7c15)
	c.Cycles *= 1 + Noise*(2*r.Float64()-1)
	return c, nil
}

// hashString is FNV-1a, enough to decorrelate benchmark seeds.
func hashString(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
