package native

import (
	"math"
	"testing"

	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

func TestMachineConfigDiffersFromSniper(t *testing.T) {
	nat := MachineConfig()
	snp := timing.TableIIIConfig()
	if nat.Name == snp.Name {
		t.Error("native machine should be distinguishable")
	}
	if nat.DispatchWidth == snp.DispatchWidth && nat.MemLatency == snp.MemLatency &&
		nat.MLP == snp.MLP && nat.FrontendStall == snp.FrontendStall {
		t.Error("native machine is identical to the Sniper model; there would be no model error")
	}
	// But it is the same machine class: caches and ROB match Table III.
	if nat.Caches != snp.Caches || nat.ROBEntries != snp.ROBEntries {
		t.Error("native machine's structure should match Table III")
	}
	if err := nat.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPerfStatRunsAndIsRepeatable(t *testing.T) {
	spec, err := workload.ByName("520.omnetpp_r")
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PerfStat(p, workload.ScaleSmall.CacheDivs, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PerfStat(p, workload.ScaleSmall.CacheDivs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Error("same run index must reproduce identical counters")
	}
	if a.Instructions == 0 || a.CPI() <= 0 {
		t.Errorf("degenerate counters: %+v", a)
	}
}

func TestPerfStatRunToRunNoise(t *testing.T) {
	spec, _ := workload.ByName("520.omnetpp_r")
	p, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := PerfStat(p, workload.ScaleSmall.CacheDivs, 0)
	b, _ := PerfStat(p, workload.ScaleSmall.CacheDivs, 1)
	if a.Cycles == b.Cycles {
		t.Error("different runs should differ slightly (hardware noise)")
	}
	if a.Instructions != b.Instructions {
		t.Error("instruction counts must be exact across runs")
	}
	rel := math.Abs(a.Cycles-b.Cycles) / a.Cycles
	if rel > 2.5*Noise {
		t.Errorf("noise %v exceeds the declared amplitude %v", rel, Noise)
	}
}

func TestHashStringDistinguishes(t *testing.T) {
	if hashString("505.mcf_r") == hashString("505.mcf_s") {
		t.Error("hash collision on near-identical names")
	}
}
