package obs

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// failAfterWriter accepts the first n bytes, then fails every write with a
// distinct error so the test can assert the *first* failure is the one
// surfaced (a full disk keeps failing, but the first error carries the
// truncation point).
type failAfterWriter struct {
	n     int
	fails int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n >= len(p) && w.fails == 0 {
		w.n -= len(p)
		return len(p), nil
	}
	w.fails++
	return 0, fmt.Errorf("disk full (write %d)", w.fails)
}

// TestJSONLSinkSurfacesWriteErrors regresses the silent-truncation bug:
// emit used to ignore bufio write errors entirely, so a trace cut short by
// a full disk looked like a clean run. The sink must record the first
// write error and return it from Close.
func TestJSONLSinkSurfacesWriteErrors(t *testing.T) {
	w := &failAfterWriter{n: 64}
	s := NewJSONLSink(w)
	// Push well past the 4 KiB bufio buffer so the failing writer is hit
	// mid-run, not only at the final flush.
	for i := 0; i < 200; i++ {
		s.Progress(ProgressEvent{
			Time:  time.Now(),
			Stage: "analyze",
			Done:  i,
			Total: 200,
			Msg:   "some benchmark name to pad the record out",
		})
	}
	err := s.Close()
	if err == nil {
		t.Fatal("Close returned nil after underlying writes failed")
	}
	if got, want := err.Error(), "disk full (write 1)"; got != want {
		t.Errorf("Close error = %q, want the first write error %q", got, want)
	}
	if w.fails == 0 {
		t.Fatal("test writer never failed; buffer sizing assumption broken")
	}
}

// TestJSONLSinkCloseErrorPrecedence: a recorded write error wins over a
// close error from the underlying file.
type failCloser struct{ failAfterWriter }

func (c *failCloser) Close() error { return errors.New("close failed") }

func TestJSONLSinkCloseErrorPrecedence(t *testing.T) {
	c := &failCloser{failAfterWriter{n: 0}}
	s := NewJSONLSink(c)
	for i := 0; i < 200; i++ {
		s.Progress(ProgressEvent{Time: time.Now(), Stage: "x", Msg: "padding padding padding"})
	}
	err := s.Close()
	if err == nil {
		t.Fatal("Close returned nil")
	}
	if got, want := err.Error(), "disk full (write 1)"; got != want {
		t.Errorf("Close error = %q, want first write error %q (not the close error)", got, want)
	}
}

// TestJSONLSinkCleanClose: no writes fail, Close reports only a close
// failure from the underlying writer (pre-existing behaviour preserved).
type okCloser struct {
	failAfterWriter
	closeErr error
}

func (c *okCloser) Close() error { return c.closeErr }

func TestJSONLSinkCleanClose(t *testing.T) {
	c := &okCloser{failAfterWriter: failAfterWriter{n: 1 << 20}, closeErr: errors.New("boom")}
	s := NewJSONLSink(c)
	s.Progress(ProgressEvent{Time: time.Now(), Stage: "x"})
	if err := s.Close(); err == nil || err.Error() != "boom" {
		t.Errorf("Close error = %v, want the underlying close error", err)
	}
}
