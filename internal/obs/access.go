package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AccessRecord is one completed HTTP request, as the serving layer reports
// it: what was asked, who asked, what happened, and how long it took. Route
// is the mux pattern ("/v1/jobs/{id}"), Path the concrete URL path — the
// pair lets log consumers aggregate by route while retaining the instance.
type AccessRecord struct {
	Time     time.Time
	Method   string
	Route    string
	Path     string
	Status   int
	Bytes    int64
	Duration time.Duration
	Client   string
	TraceID  string
}

// AccessSink writes structured one-line JSON access logs: one record per
// completed request, flushed immediately so the file is live-tailable.
// Records are serialized whole under the sink's lock — concurrent handlers
// never tear lines. Like JSONLSink, the first write error is recorded and
// surfaced from Close so a full disk never silently truncates the log.
type AccessSink struct {
	mu   sync.Mutex
	w    *bufio.Writer
	c    io.Closer
	werr error
}

// NewAccessSink wraps w. If w is an io.Closer (a file), Close closes it.
func NewAccessSink(w io.Writer) *AccessSink {
	s := &AccessSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// accessLine is the wire shape of one record.
type accessLine struct {
	Type   string `json:"type"`
	Time   string `json:"t"`
	Method string `json:"method"`
	Route  string `json:"route"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	Bytes  int64  `json:"bytes"`
	DurUS  int64  `json:"dur_us"`
	Client string `json:"client,omitempty"`
	Trace  string `json:"trace,omitempty"`
}

// Log writes one access record as a single JSON line.
func (s *AccessSink) Log(rec AccessRecord) {
	blob, err := json.Marshal(accessLine{
		Type:   "access",
		Time:   rec.Time.UTC().Format(time.RFC3339Nano),
		Method: rec.Method,
		Route:  rec.Route,
		Path:   rec.Path,
		Status: rec.Status,
		Bytes:  rec.Bytes,
		DurUS:  rec.Duration.Microseconds(),
		Client: rec.Client,
		Trace:  rec.TraceID,
	})
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockheld serialising writers is this lock's purpose: one access line per request, marshalled outside the lock
	if _, werr := s.w.Write(blob); werr != nil && s.werr == nil {
		s.werr = werr
	}
	if werr := s.w.WriteByte('\n'); werr != nil && s.werr == nil {
		s.werr = werr
	}
	if werr := s.w.Flush(); werr != nil && s.werr == nil {
		s.werr = werr
	}
}

// Close flushes and closes the underlying file if there is one, surfacing
// the first error the sink encountered.
func (s *AccessSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.werr
	//lint:ignore lockheld Close races only with in-flight Log calls; the final flush must exclude them
	if ferr := s.w.Flush(); err == nil {
		err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
