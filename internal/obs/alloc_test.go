package obs

import (
	"context"
	"testing"
)

// TestDisabledFastPathAllocs is the satellite allocation-regression test
// for the tracing-off fast path: instrumentation that sits inside kernels
// and replay loops (Start/End spans without attributes, counter adds,
// histogram observes, Enabled checks) must not allocate when no tracer is
// installed. Attribute-carrying Start calls pay one slice allocation at the
// call site and therefore belong outside hot loops or behind Enabled().
func TestDisabledFastPathAllocs(t *testing.T) {
	if Enabled() {
		t.Skip("a tracer is active; the disabled fast path is not in effect")
	}
	ctx := context.Background()
	c := GetCounter("alloctest.counter")
	h := GetHistogram("alloctest.hist")

	if got := testing.AllocsPerRun(100, func() {
		ctx2, span := Start(ctx, "alloctest.span")
		span.Annotate()
		span.End()
		_ = ctx2
	}); got != 0 {
		t.Errorf("disabled Start/End allocates %.1f objects per span, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		c.Add(1)
	}); got != 0 {
		t.Errorf("Counter.Add allocates %.1f objects, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		h.Observe(1.5)
	}); got != 0 {
		t.Errorf("Histogram.Observe allocates %.1f objects, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		_ = Enabled()
	}); got != 0 {
		t.Errorf("Enabled allocates %.1f objects, want 0", got)
	}
}
