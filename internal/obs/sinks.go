package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// ------------------------------------------------------------ JSONL sink --

// JSONLSink writes one JSON object per line: finished spans as they end,
// progress events as they happen, and a final metrics snapshot on Close.
// Span records carry id/parent links, so the file reconstructs the full
// span tree of a run (profile → cluster → replay, per benchmark).
type JSONLSink struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	epoch time.Time
	done  bool
	// werr records the first write error so Close can surface it. Without
	// it a full disk mid-run would yield a silently truncated trace.
	werr error
	// stream flushes after every record so a live reader (the daemon's
	// /events feed) sees each line as it happens instead of at Close.
	stream bool
	// noMetrics skips the final metrics record on Close. The process-wide
	// counter snapshot belongs to a whole-process trace, not to one job's
	// stream among many.
	noMetrics bool
}

// NewJSONLSink wraps w. If w is an io.Closer (a file), Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w), epoch: time.Now()}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// NewStreamingJSONLSink is NewJSONLSink tuned for live consumption: every
// record is flushed to w as soon as it is written, and Close appends no
// process-wide metrics snapshot. Record emission stays serialized under the
// sink's lock, so concurrent emitters never interleave mid-record; a
// consumer that splits on '\n' reconstructs exact records regardless of
// write chunking. This is the per-job sink behind the daemon's
// /v1/jobs/{id}/events feed.
func NewStreamingJSONLSink(w io.Writer) *JSONLSink {
	s := NewJSONLSink(w)
	s.stream = true
	s.noMetrics = true
	return s
}

// jsonAttrs flattens span attributes to a JSON-friendly map.
func jsonAttrs(attrs []Attr) map[string]interface{} {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]interface{}, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func (s *JSONLSink) emit(v interface{}) {
	blob, err := json.Marshal(v)
	if err != nil {
		return // an unmarshalable attribute must not kill the run
	}
	s.mu.Lock()
	if !s.done {
		//lint:ignore lockheld serialising writers is this lock's purpose: one JSONL record per event, marshalled outside the lock
		if _, werr := s.w.Write(blob); werr != nil && s.werr == nil {
			s.werr = werr
		}
		if werr := s.w.WriteByte('\n'); werr != nil && s.werr == nil {
			s.werr = werr
		}
		if s.stream {
			if werr := s.w.Flush(); werr != nil && s.werr == nil {
				s.werr = werr
			}
		}
	}
	s.mu.Unlock()
}

// SpanEnd writes the span as {"type":"span",...} with microsecond offsets
// from the sink's epoch.
func (s *JSONLSink) SpanEnd(sd *SpanData) {
	s.emit(struct {
		Type    string                 `json:"type"`
		ID      uint64                 `json:"id"`
		Parent  uint64                 `json:"parent,omitempty"`
		Name    string                 `json:"name"`
		StartUS int64                  `json:"start_us"`
		DurUS   int64                  `json:"dur_us"`
		Attrs   map[string]interface{} `json:"attrs,omitempty"`
	}{
		Type:    "span",
		ID:      sd.ID,
		Parent:  sd.Parent,
		Name:    sd.Name,
		StartUS: sd.Start.Sub(s.epoch).Microseconds(),
		DurUS:   sd.Duration().Microseconds(),
		Attrs:   jsonAttrs(sd.Attrs),
	})
}

// Progress writes the event as {"type":"progress",...}.
func (s *JSONLSink) Progress(ev ProgressEvent) {
	s.emit(struct {
		Type  string `json:"type"`
		TUS   int64  `json:"t_us"`
		Stage string `json:"stage"`
		Done  int    `json:"done,omitempty"`
		Total int    `json:"total,omitempty"`
		Msg   string `json:"msg,omitempty"`
	}{
		Type:  "progress",
		TUS:   ev.Time.Sub(s.epoch).Microseconds(),
		Stage: ev.Stage,
		Done:  ev.Done,
		Total: ev.Total,
		Msg:   ev.Msg,
	})
}

// Close appends a final {"type":"metrics",...} snapshot (unless the sink
// is a per-job streaming sink), flushes, and closes the underlying file if
// there is one. It returns the first error the sink encountered — a
// mid-run write failure (recorded by emit), then a flush failure, then a
// close failure — so a truncated trace is never silent.
func (s *JSONLSink) Close() error {
	if !s.noMetrics {
		s.emit(struct {
			Type    string        `json:"type"`
			Metrics []MetricValue `json:"metrics"`
		}{Type: "metrics", Metrics: Snapshot()})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	err := s.werr
	//lint:ignore lockheld Close races only with in-flight emit calls; the final flush must exclude them
	if ferr := s.w.Flush(); err == nil {
		err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// --------------------------------------------------------- narrator sink --

// Narrator renders the progress stream for a human watching the run: one
// line per event, stamped with elapsed time. Spans are ignored — the
// narrator is the "what is happening right now" view; the JSONL sink is the
// "where did the time go" view.
type Narrator struct {
	mu    sync.Mutex
	w     io.Writer
	epoch time.Time
}

// NewNarrator writes progress lines to w (conventionally os.Stderr, so the
// narration never pollutes result tables on stdout).
func NewNarrator(w io.Writer) *Narrator {
	return &Narrator{w: w, epoch: time.Now()}
}

// SpanEnd is a no-op: the narrator follows progress events only.
func (n *Narrator) SpanEnd(*SpanData) {}

// Progress prints "[ 12.3s] stage (done/total) msg".
func (n *Narrator) Progress(ev ProgressEvent) {
	elapsed := ev.Time.Sub(n.epoch).Seconds()
	n.mu.Lock()
	defer n.mu.Unlock()
	if ev.Total > 0 {
		//lint:ignore lockheld interleaved progress lines would be worse than a stalled narrator; stderr writes are short
		fmt.Fprintf(n.w, "[%6.1fs] %s (%d/%d) %s\n", elapsed, ev.Stage, ev.Done, ev.Total, ev.Msg)
		return
	}
	fmt.Fprintf(n.w, "[%6.1fs] %s %s\n", elapsed, ev.Stage, ev.Msg)
}

// Close is a no-op (the narrator does not own its writer).
func (n *Narrator) Close() error { return nil }
