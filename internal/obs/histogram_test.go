package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

// findMetric pulls one metric out of a snapshot by name.
func findMetric(t *testing.T, snap []MetricValue, name string) MetricValue {
	t.Helper()
	for _, mv := range snap {
		if mv.Name == name {
			return mv
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return MetricValue{}
}

func TestHistogramBuckets(t *testing.T) {
	h := GetHistogram("histtest.buckets")
	defer ResetMetrics()
	h.Observe(0.00005) // below the first bound -> bucket 0
	h.Observe(0.0001)  // on the first bound -> bucket 0 (le semantics)
	h.Observe(0.3)     // (0.25, 0.5]
	h.Observe(42)      // (25, 50]
	h.Observe(5e8)     // above the last bound -> overflow

	mv := findMetric(t, Snapshot(), "histtest.buckets")
	if mv.Count != 5 {
		t.Fatalf("count = %d, want 5", mv.Count)
	}
	if len(mv.Buckets) != len(histBounds)+1 {
		t.Fatalf("len(buckets) = %d, want %d", len(mv.Buckets), len(histBounds)+1)
	}
	var total int64
	for _, n := range mv.Buckets {
		total += n
	}
	if total != mv.Count {
		t.Errorf("bucket sum = %d, count = %d; must match", total, mv.Count)
	}
	if mv.Buckets[0] != 2 {
		t.Errorf("bucket[0] = %d, want 2 (5e-5 and the 1e-4 boundary)", mv.Buckets[0])
	}
	if mv.Buckets[len(mv.Buckets)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", mv.Buckets[len(mv.Buckets)-1])
	}
	for i, bound := range histBounds {
		switch {
		case bound >= 0.3 && (i == 0 || histBounds[i-1] < 0.3):
			if mv.Buckets[i] != 1 {
				t.Errorf("bucket le=%g = %d, want 1 (0.3)", bound, mv.Buckets[i])
			}
		case bound >= 42 && (i == 0 || histBounds[i-1] < 42):
			if mv.Buckets[i] != 1 {
				t.Errorf("bucket le=%g = %d, want 1 (42)", bound, mv.Buckets[i])
			}
		}
	}
	if mv.Min != 0.00005 || mv.Max != 5e8 {
		t.Errorf("min/max = %g/%g, want 5e-05/5e+08", mv.Min, mv.Max)
	}
}

func TestHistogramQuantileDerivable(t *testing.T) {
	h := GetHistogram("histtest.quantile")
	defer ResetMetrics()
	// 100 observations spread 1..100 (ms-scale): true p50 = 50, p99 = 99.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	mv := findMetric(t, Snapshot(), "histtest.quantile")
	p50 := mv.Quantile(0.50)
	p99 := mv.Quantile(0.99)
	// The estimate must land inside the bucket covering the true quantile:
	// 50 lies in (25, 50], 99 in (50, 100].
	if p50 <= 25 || p50 > 50 {
		t.Errorf("p50 = %g, want in (25, 50]", p50)
	}
	if p99 <= 50 || p99 > 100 {
		t.Errorf("p99 = %g, want in (50, 100]", p99)
	}
	if p50 > p99 {
		t.Errorf("p50 %g > p99 %g; quantiles must be monotone", p50, p99)
	}

	// A single-valued distribution clamps to the observed value exactly.
	one := GetHistogram("histtest.single")
	one.Observe(7)
	mv = findMetric(t, Snapshot(), "histtest.single")
	if got := mv.Quantile(0.5); got != 7 {
		t.Errorf("single-value p50 = %g, want exactly 7 (min/max clamp)", got)
	}
	if got := mv.Quantile(0.99); got != 7 {
		t.Errorf("single-value p99 = %g, want exactly 7 (min/max clamp)", got)
	}
}

// TestHistogramEmptyMinMaxZero is the satellite regression: an empty
// histogram — never observed, or zeroed by ResetMetrics — must report
// min = max = 0, never stale values.
func TestHistogramEmptyMinMaxZero(t *testing.T) {
	defer ResetMetrics()
	GetHistogram("histtest.empty")
	fresh := findMetric(t, Snapshot(), "histtest.empty")
	if fresh.Min != 0 || fresh.Max != 0 || fresh.Count != 0 {
		t.Errorf("fresh histogram min/max/count = %g/%g/%d, want all 0", fresh.Min, fresh.Max, fresh.Count)
	}
	h := GetHistogram("histtest.reset")
	h.Observe(-3.5)
	h.Observe(1e6)
	ResetMetrics()
	mv := findMetric(t, Snapshot(), "histtest.reset")
	if mv.Min != 0 || mv.Max != 0 || mv.Count != 0 || mv.Sum != 0 {
		t.Errorf("after reset min/max/count/sum = %g/%g/%d/%g, want all 0", mv.Min, mv.Max, mv.Count, mv.Sum)
	}
	if len(mv.Buckets) != 0 {
		t.Errorf("after reset buckets = %v, want omitted", mv.Buckets)
	}
}

// TestSnapshotSortedByName is the satellite regression for deterministic
// snapshot order: whatever the registration order, Snapshot sorts by name.
func TestSnapshotSortedByName(t *testing.T) {
	defer ResetMetrics()
	GetCounter("histtest.zz_last")
	GetGauge("histtest.aa_first")
	GetHistogram("histtest.mm_middle")
	snap := Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
		var names []string
		for _, mv := range snap {
			names = append(names, mv.Name)
		}
		t.Fatalf("snapshot not sorted by name: %v", names)
	}
}

func TestBucketBoundsMonotone(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != len(histBounds) {
		t.Fatalf("BucketBounds length %d, want %d", len(bounds), len(histBounds))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			t.Fatalf("bounds not strictly increasing at %d: %g then %g", i, bounds[i-1], bounds[i])
		}
	}
	// Index function agrees with a linear scan for a spread of values.
	for _, v := range []float64{-1, 0, 1e-9, 0.0001, 0.00011, 0.42, 1, 999, 1e7, 1e7 + 1, math.Inf(1)} {
		want := len(bounds)
		for i, b := range bounds {
			if b >= v {
				want = i
				break
			}
		}
		if got := bucketIndex(v); got != want {
			t.Errorf("bucketIndex(%g) = %d, want %d", v, got, want)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := GetHistogram("histtest.concurrent")
	defer ResetMetrics()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	mv := findMetric(t, Snapshot(), "histtest.concurrent")
	if mv.Count != workers*per {
		t.Fatalf("count = %d, want %d", mv.Count, workers*per)
	}
	var total int64
	for _, n := range mv.Buckets {
		total += n
	}
	if total != mv.Count {
		t.Fatalf("bucket sum %d != count %d", total, mv.Count)
	}
}

func TestAccessSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewAccessSink(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink.Log(AccessRecord{
				Time:     time.Unix(1700000000, 0),
				Method:   "GET",
				Route:    "/v1/jobs/{id}",
				Path:     "/v1/jobs/j000001",
				Status:   200,
				Bytes:    512,
				Duration: 1500 * time.Microsecond,
				Client:   "test",
				TraceID:  "abc123",
			})
		}(i)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for _, line := range lines {
		var rec map[string]interface{}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("unparseable access line %q: %v", line, err)
		}
		if rec["type"] != "access" || rec["route"] != "/v1/jobs/{id}" || rec["status"] != float64(200) {
			t.Errorf("unexpected record: %v", rec)
		}
		if rec["dur_us"] != float64(1500) || rec["trace"] != "abc123" {
			t.Errorf("unexpected timing/trace fields: %v", rec)
		}
	}
}
