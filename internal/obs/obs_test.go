package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// collectSink records everything it receives, for assertions.
type collectSink struct {
	mu       sync.Mutex
	spans    []SpanData
	progress []ProgressEvent
	closed   bool
}

func (c *collectSink) SpanEnd(sd *SpanData) {
	c.mu.Lock()
	c.spans = append(c.spans, *sd)
	c.mu.Unlock()
}

func (c *collectSink) Progress(ev ProgressEvent) {
	c.mu.Lock()
	c.progress = append(c.progress, ev)
	c.mu.Unlock()
}

func (c *collectSink) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func withSink(t *testing.T) *collectSink {
	t.Helper()
	sink := &collectSink{}
	Enable(sink)
	t.Cleanup(func() { Disable() })
	return sink
}

func TestDisabledStartIsNoop(t *testing.T) {
	Disable()
	ctx, sp := Start(context.Background(), "root")
	if sp != nil {
		t.Fatal("disabled Start returned a live span")
	}
	if ctx != context.Background() {
		t.Fatal("disabled Start derived a new context")
	}
	// All nil-span methods must be safe.
	sp.Annotate(Int("k", 1))
	sp.End()
	Progress("stage", 1, 2, "msg")
	Headerf("header %d", 1)
}

func TestSpanTreeParentLinks(t *testing.T) {
	sink := withSink(t)

	ctx, root := Start(context.Background(), "analyze", String("bench", "505.mcf_r"))
	cctx, child := Start(ctx, "profile")
	_, grand := Start(cctx, "slice")
	grand.End()
	child.End()
	// A sibling under root, started after child ended.
	_, sib := Start(ctx, "cluster")
	sib.End()
	root.Annotate(Int("slices", 42))
	root.End()

	if len(sink.spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(sink.spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range sink.spans {
		byName[sd.Name] = sd
	}
	if byName["analyze"].Parent != 0 {
		t.Errorf("root has parent %d", byName["analyze"].Parent)
	}
	for _, name := range []string{"profile", "cluster"} {
		if byName[name].Parent != byName["analyze"].ID {
			t.Errorf("%s parent = %d, want %d", name, byName[name].Parent, byName["analyze"].ID)
		}
	}
	if byName["slice"].Parent != byName["profile"].ID {
		t.Errorf("slice parent = %d, want %d", byName["slice"].Parent, byName["profile"].ID)
	}
	// Annotations must reach the sink.
	var found bool
	for _, a := range byName["analyze"].Attrs {
		if a.Key == "slices" {
			found = true
		}
	}
	if !found {
		t.Error("Annotate attribute lost")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	sink := withSink(t)
	_, sp := Start(context.Background(), "once")
	sp.End()
	sp.End()
	if len(sink.spans) != 1 {
		t.Fatalf("double End delivered %d spans", len(sink.spans))
	}
}

func TestProgressAndHeader(t *testing.T) {
	sink := withSink(t)
	Headerf("scale=%s workers=%d", "small", 4)
	Progress("analyze", 2, 6, "505.mcf_r")
	if len(sink.progress) != 2 {
		t.Fatalf("got %d events, want 2", len(sink.progress))
	}
	if sink.progress[0].Stage != "run" || !strings.Contains(sink.progress[0].Msg, "scale=small") {
		t.Errorf("header event = %+v", sink.progress[0])
	}
	if ev := sink.progress[1]; ev.Done != 2 || ev.Total != 6 || ev.Stage != "analyze" {
		t.Errorf("progress event = %+v", ev)
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	ResetMetrics()
	c := GetCounter("test.counter")
	if c != GetCounter("test.counter") {
		t.Fatal("counter handle not interned")
	}
	c.Add(2)
	c.Add(3)
	GetGauge("test.gauge").Set(7)
	h := GetHistogram("test.hist")
	h.Observe(1)
	h.Observe(3)

	snap := Snapshot()
	byName := map[string]MetricValue{}
	for _, mv := range snap {
		byName[mv.Name] = mv
	}
	if v := byName["test.counter"]; v.Kind != "counter" || v.Value != 5 {
		t.Errorf("counter = %+v", v)
	}
	if v := byName["test.gauge"]; v.Kind != "gauge" || v.Value != 7 {
		t.Errorf("gauge = %+v", v)
	}
	if v := byName["test.hist"]; v.Kind != "histogram" || v.Count != 2 || v.Sum != 4 || v.Min != 1 || v.Max != 3 || v.Mean != 2 {
		t.Errorf("histogram = %+v", v)
	}

	ResetMetrics()
	if got := c.Value(); got != 0 {
		t.Errorf("counter after reset = %d", got)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	ResetMetrics()
	c := GetCounter("test.concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				GetHistogram("test.concurrent.hist").Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

// TestJSONLSinkValidTree drives a realistic span tree through the JSONL
// sink and checks that every line parses and the id/parent links form a
// tree rooted at the top-level span.
func TestJSONLSinkValidTree(t *testing.T) {
	var buf bytes.Buffer
	Enable(NewJSONLSink(&buf))
	ctx, root := Start(context.Background(), "analyze", String("bench", "b"))
	_, p := Start(ctx, "profile")
	p.End()
	_, cl := Start(ctx, "cluster")
	cl.End()
	Progress("analyze", 1, 1, "b")
	root.End()
	if err := Disable(); err != nil {
		t.Fatal(err)
	}

	type line struct {
		Type   string `json:"type"`
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
		Name   string `json:"name"`
	}
	ids := map[uint64]bool{}
	var spans []line
	var sawProgress, sawMetrics bool
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		switch l.Type {
		case "span":
			spans = append(spans, l)
			ids[l.ID] = true
		case "progress":
			sawProgress = true
		case "metrics":
			sawMetrics = true
		}
	}
	if len(spans) != 3 {
		t.Fatalf("got %d span lines, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Parent != 0 && !ids[s.Parent] {
			t.Errorf("span %q parent %d not in trace", s.Name, s.Parent)
		}
	}
	if !sawProgress || !sawMetrics {
		t.Errorf("progress=%v metrics=%v lines missing", sawProgress, sawMetrics)
	}
}

func TestNarratorFormat(t *testing.T) {
	var buf bytes.Buffer
	n := NewNarrator(&buf)
	Enable(n)
	defer Disable()
	Headerf("scale=small")
	Progress("analyze", 3, 6, "505.mcf_r")
	out := buf.String()
	if !strings.Contains(out, "run scale=small") {
		t.Errorf("header line missing: %q", out)
	}
	if !strings.Contains(out, "analyze (3/6) 505.mcf_r") {
		t.Errorf("progress line missing: %q", out)
	}
}

func TestDisableClosesSinks(t *testing.T) {
	sink := &collectSink{}
	Enable(sink)
	if !Enabled() {
		t.Fatal("Enable did not enable")
	}
	if err := Disable(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("Disable left tracing on")
	}
	if !sink.closed {
		t.Fatal("Disable did not close the sink")
	}
	// Second Disable is a no-op.
	if err := Disable(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSpans(t *testing.T) {
	sink := withSink(t)
	ctx, root := Start(context.Background(), "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, sp := Start(ctx, "child")
				sp.Annotate(Int("worker", w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if len(sink.spans) != 8*50+1 {
		t.Fatalf("got %d spans, want %d", len(sink.spans), 8*50+1)
	}
	for _, sd := range sink.spans {
		if sd.Name == "child" && sd.Parent != sink.spans[len(sink.spans)-1].ID {
			// Root ends last, so it is the final span delivered.
			t.Fatalf("child parented to %d", sd.Parent)
		}
	}
}
