package obs

import (
	"context"
	"io"
	"testing"
)

// BenchmarkObsOverhead is the overhead guard for the instrumentation layer:
// `make check` runs it once so a regression on the disabled path (the one
// every hot loop pays) is visible in CI diffs.
//
//	baseline  — the instrumented region with no obs calls at all
//	disabled  — spans + progress with no tracer installed (atomic nil-check)
//	enabled   — spans + progress against a JSONL sink writing to io.Discard
//
// disabled must stay within noise of baseline; that is the "near-free"
// contract core/experiments rely on.
func BenchmarkObsOverhead(b *testing.B) {
	work := func(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			s += i * i
		}
		return s
	}
	const workSize = 64
	var sink int

	b.Run("baseline", func(b *testing.B) {
		Disable()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += work(workSize)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		Disable()
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sctx, sp := Start(ctx, "stage")
			_ = sctx
			sink += work(workSize)
			sp.End()
		}
	})
	b.Run("enabled-jsonl", func(b *testing.B) {
		Enable(NewJSONLSink(io.Discard))
		defer Disable()
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sctx, sp := Start(ctx, "stage")
			_ = sctx
			sink += work(workSize)
			sp.End()
		}
	})
	_ = sink
}

// BenchmarkCounterAdd measures the always-on metric path used inside
// pipeline loops (one uncontended atomic add).
func BenchmarkCounterAdd(b *testing.B) {
	c := GetCounter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve is the bucketed-histogram hot path: the
// per-request latency record every instrumented route pays. Must stay
// allocation-free (also pinned by TestDisabledFastPathAllocs) and within a
// few nanoseconds of the pre-bucketed mutex histogram.
func BenchmarkHistogramObserve(b *testing.B) {
	h := GetHistogram("bench.histogram")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}
