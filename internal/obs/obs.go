// Package obs is the reproduction's zero-dependency observability layer:
// hierarchical spans, monotonic counters/gauges/histograms and a progress
// event stream, all fanned out to pluggable sinks (a human-readable
// narrator, a JSONL trace writer, or anything implementing Sink).
//
// The layer is built around one invariant: when no sink is installed the
// instrumentation is near-free. Start performs a single atomic pointer load
// and returns a nil *Span whose methods are no-ops, so hot pipeline loops
// can stay instrumented unconditionally. Metric handles are plain atomics
// and are always live (they never allocate after registration), but every
// instrumentation point that needs a clock guards itself with Enabled().
//
// Instrumentation never participates in the pipeline's arithmetic: spans,
// counters and progress events observe the computation without touching RNG
// draws or floating-point accumulation order, so every reported number stays
// byte-identical for any worker count with tracing on or off.
package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value interface{}
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Uint64 builds an unsigned attribute.
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// SpanData is the immutable record of a finished span, as delivered to
// sinks. IDs are unique within one tracer; Parent is 0 for root spans.
type SpanData struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Duration is the span's wall-clock length.
func (sd *SpanData) Duration() time.Duration { return sd.End.Sub(sd.Start) }

// ProgressEvent is one line of the live progress stream. Done/Total carry
// "k of n" completion when known (both zero otherwise). Stage "run" with
// Done == Total == 0 is the run header.
type ProgressEvent struct {
	Time  time.Time
	Stage string
	Done  int
	Total int
	Msg   string
}

// Sink receives observability events. Implementations must be safe for
// concurrent use; the pipeline emits from many goroutines.
type Sink interface {
	// SpanEnd delivers a finished span. The SpanData is owned by the sink
	// from this point (the tracer never mutates it afterwards).
	SpanEnd(sd *SpanData)
	// Progress delivers one progress event.
	Progress(ev ProgressEvent)
	// Close flushes and releases the sink. Called once, from Disable.
	Close() error
}

// tracer is the active collector: the process-global sink fan-out.
type tracer struct {
	sinks []Sink
}

// active is the whole enable/disable story: nil means disabled, and every
// instrumentation point pays exactly one atomic load to find out.
var active atomic.Pointer[tracer]

// spanIDs allocates span IDs for global and scoped tracing alike, so a
// span tree stays consistent when both are live.
var spanIDs atomic.Uint64

// scope carries job-local sinks through a context — the daemon's per-job
// event streams, where one process runs many pipelines concurrently and a
// single global sink would interleave them. Spans started and progress
// emitted under a scoped context are delivered to the scope's sinks in
// addition to the global tracer's (either may be absent).
type scope struct {
	sinks []Sink
}

type scopeCtxKey struct{}

// scopeUsed flips (stickily) the first time any scope is created. The
// disabled fast path in Start/ProgressCtx checks it before touching
// ctx.Value, so processes that never scope — every CLI — keep paying just
// atomic loads.
var scopeUsed atomic.Bool

// WithSink returns a context that delivers the observability stream of
// everything under it — finished spans and progress events — to the given
// sinks, in addition to any globally Enabled ones. Scopes nest: sinks
// accumulate. The caller owns the sinks' lifecycle (Close is never called
// by the library for scoped sinks).
func WithSink(ctx context.Context, sinks ...Sink) context.Context {
	if len(sinks) == 0 {
		return ctx
	}
	scopeUsed.Store(true)
	merged := sinks
	if prev := scopeFrom(ctx); prev != nil {
		merged = append(append([]Sink(nil), prev.sinks...), sinks...)
	}
	return context.WithValue(ctx, scopeCtxKey{}, &scope{sinks: merged})
}

// scopeFrom extracts the sink scope, nil when ctx carries none.
func scopeFrom(ctx context.Context) *scope {
	sc, _ := ctx.Value(scopeCtxKey{}).(*scope)
	return sc
}

// Enable installs the given sinks and turns tracing on. Passing no sinks is
// a no-op. Enable replaces (without closing) any previously active sinks;
// call Disable first when swapping mid-run.
func Enable(sinks ...Sink) {
	if len(sinks) == 0 {
		return
	}
	active.Store(&tracer{sinks: sinks})
}

// Disable turns tracing off and closes the active sinks. It returns the
// first close error. Safe to call when already disabled.
func Disable() error {
	t := active.Swap(nil)
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Enabled reports whether a tracer is installed. Instrumentation that needs
// a clock (time.Now costs more than an atomic load) should guard on it.
func Enabled() bool { return active.Load() != nil }

// spanKey carries the current span ID through a context.
type spanKey struct{}

// Span is one in-flight region of work. A nil *Span (what Start returns
// when tracing is disabled) is valid: all methods are no-ops.
type Span struct {
	sinks []Sink
	mu    sync.Mutex
	sd    SpanData
}

// Start begins a span named name under the span carried by ctx (if any) and
// returns a derived context carrying the new span. When tracing is disabled
// and ctx carries no sink scope it returns ctx unchanged and a nil span —
// two atomic loads (the ctx.Value walk is skipped entirely in processes
// that never scope).
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := active.Load()
	var sc *scope
	if scopeUsed.Load() {
		sc = scopeFrom(ctx)
	}
	if t == nil && sc == nil {
		return ctx, nil
	}
	sp := &Span{sinks: combineSinks(t, sc)}
	sp.sd = SpanData{
		ID:    spanIDs.Add(1),
		Name:  name,
		Start: time.Now(),
		Attrs: attrs,
	}
	if parent, ok := ctx.Value(spanKey{}).(uint64); ok {
		sp.sd.Parent = parent
	}
	return context.WithValue(ctx, spanKey{}, sp.sd.ID), sp
}

// combineSinks merges the global tracer's sinks (if enabled) with a
// scope's (if present). At least one side is non-nil at every call site.
func combineSinks(t *tracer, sc *scope) []Sink {
	switch {
	case t == nil:
		return sc.sinks
	case sc == nil:
		return t.sinks
	default:
		return append(append([]Sink(nil), t.sinks...), sc.sinks...)
	}
}

// Annotate appends attributes to the span, to be reported at End.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sd.Attrs = append(s.sd.Attrs, attrs...)
	s.mu.Unlock()
}

// End finishes the span and delivers it to every sink. Safe on a nil span
// and idempotent (a second End is ignored).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.sd.End.IsZero() {
		s.mu.Unlock()
		return
	}
	s.sd.End = time.Now()
	sd := s.sd
	s.mu.Unlock()
	for _, sink := range s.sinks {
		sink.SpanEnd(&sd)
	}
}

// Progress emits one progress event to the globally Enabled sinks. Cheap
// when disabled (one atomic load, no clock). Pipeline stages that hold a
// context should prefer ProgressCtx so scoped (per-job) sinks see the
// event too.
func Progress(stage string, done, total int, msg string) {
	t := active.Load()
	if t == nil {
		return
	}
	ev := ProgressEvent{Time: time.Now(), Stage: stage, Done: done, Total: total, Msg: msg}
	for _, s := range t.sinks {
		s.Progress(ev)
	}
}

// ProgressCtx is Progress for context-holding call sites: the event reaches
// the global sinks and any sinks scoped onto ctx with WithSink, so a
// daemon job's live feed sees the same stream a CLI run narrates.
func ProgressCtx(ctx context.Context, stage string, done, total int, msg string) {
	t := active.Load()
	var sc *scope
	if scopeUsed.Load() {
		sc = scopeFrom(ctx)
	}
	if t == nil && sc == nil {
		return
	}
	ev := ProgressEvent{Time: time.Now(), Stage: stage, Done: done, Total: total, Msg: msg}
	deliverProgress(t, sc, ev)
}

// Headerf emits the run header — the one-line "what is this run" summary
// (scale, slice length, MaxK, workers, seed) sinks show before any work.
func Headerf(format string, args ...interface{}) {
	t := active.Load()
	if t == nil {
		return
	}
	ev := ProgressEvent{Time: time.Now(), Stage: "run", Msg: fmt.Sprintf(format, args...)}
	for _, s := range t.sinks {
		s.Progress(ev)
	}
}

// HeaderfCtx is Headerf for context-holding call sites; see ProgressCtx.
func HeaderfCtx(ctx context.Context, format string, args ...interface{}) {
	t := active.Load()
	var sc *scope
	if scopeUsed.Load() {
		sc = scopeFrom(ctx)
	}
	if t == nil && sc == nil {
		return
	}
	ev := ProgressEvent{Time: time.Now(), Stage: "run", Msg: fmt.Sprintf(format, args...)}
	deliverProgress(t, sc, ev)
}

// deliverProgress fans one event out to the global and scoped sinks.
func deliverProgress(t *tracer, sc *scope, ev ProgressEvent) {
	if t != nil {
		for _, s := range t.sinks {
			s.Progress(ev)
		}
	}
	if sc != nil {
		for _, s := range sc.sinks {
			s.Progress(ev)
		}
	}
}
