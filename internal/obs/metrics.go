package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry is global and always live: handles are atomics, so a
// counter add in a pipeline loop costs one uncontended atomic op whether or
// not any sink is installed. Instrumentation points that would need a clock
// (histogram timings) guard themselves with Enabled().
//
// Handles are interned by name: GetCounter("pinball.replayed") returns the
// same *Counter everywhere, so packages can hold them in package-level vars
// and skip the map lookup on the hot path.

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins measurement.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates a distribution as count/sum/min/max. Observations
// are coarse pipeline events (a candidate-k run, a replay batch), so a
// mutex is fine here.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// snapshot returns the histogram's aggregates.
func (h *Histogram) snapshot() (count int64, sum, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, h.min, h.max
}

// registry interns metric handles by name.
var registry sync.Map // name -> *Counter | *Gauge | *Histogram

// GetCounter returns (registering on first use) the named counter.
func GetCounter(name string) *Counter {
	if v, ok := registry.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := registry.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// GetGauge returns (registering on first use) the named gauge.
func GetGauge(name string) *Gauge {
	if v, ok := registry.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := registry.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// GetHistogram returns (registering on first use) the named histogram.
func GetHistogram(name string) *Histogram {
	if v, ok := registry.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := registry.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// ResetMetrics zeroes every registered metric (handles stay valid). For
// tests and benchmarks that need a clean slate.
func ResetMetrics() {
	registry.Range(func(_, v interface{}) bool {
		switch m := v.(type) {
		case *Counter:
			m.v.Store(0)
		case *Gauge:
			m.v.Store(0)
		case *Histogram:
			m.mu.Lock()
			m.count, m.sum, m.min, m.max = 0, 0, 0, 0
			m.mu.Unlock()
		}
		return true
	})
}

// MetricValue is one metric's state in a Snapshot. Kind is "counter",
// "gauge" or "histogram"; Count/Sum/Min/Max/Mean are histogram-only.
type MetricValue struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value int64   `json:"value,omitempty"`
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
}

// Snapshot returns every registered metric, sorted by name — the
// expvar-style point-in-time view of the pipeline.
func Snapshot() []MetricValue {
	var out []MetricValue
	registry.Range(func(k, v interface{}) bool {
		mv := MetricValue{Name: k.(string)}
		switch m := v.(type) {
		case *Counter:
			mv.Kind = "counter"
			mv.Value = m.Value()
		case *Gauge:
			mv.Kind = "gauge"
			mv.Value = m.Value()
		case *Histogram:
			mv.Kind = "histogram"
			mv.Count, mv.Sum, mv.Min, mv.Max = m.snapshot()
			if mv.Count > 0 {
				mv.Mean = mv.Sum / float64(mv.Count)
			}
			if math.IsNaN(mv.Mean) || math.IsInf(mv.Mean, 0) {
				mv.Mean = 0
			}
		}
		out = append(out, mv)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteMetrics emits the snapshot as one indented JSON object keyed by
// metric name (expvar's wire shape), for the -metrics flag.
func WriteMetrics(w io.Writer) error {
	snap := Snapshot()
	obj := make(map[string]MetricValue, len(snap))
	for _, mv := range snap {
		obj[mv.Name] = mv
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}
