package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// The metrics registry is global and always live: handles are atomics, so a
// counter add in a pipeline loop costs one uncontended atomic op whether or
// not any sink is installed. Instrumentation points that would need a clock
// (histogram timings) guard themselves with Enabled().
//
// Handles are interned by name: GetCounter("pinball.replayed") returns the
// same *Counter everywhere, so packages can hold them in package-level vars
// and skip the map lookup on the hot path.

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins measurement.
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBounds are the fixed exponential bucket upper bounds every Histogram
// shares: a 1–2.5–5 series per decade spanning 1e-4 … 1e7, wide enough to
// hold sub-millisecond request latencies in seconds and coarse pipeline
// timings in milliseconds in the same registry. Sharing one fixed scheme
// keeps Observe allocation-free (the counts live in a fixed-size array
// inside the Histogram) and makes every exposition deterministic. An
// observation lands in the first bucket whose bound is >= the value
// (cumulative "le" semantics are applied at snapshot-consumption time);
// values above the last bound are counted in a dedicated overflow slot.
var histBounds = [...]float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 25, 50,
	100, 250, 500,
	1000, 2500, 5000,
	10000, 25000, 50000,
	100000, 250000, 500000,
	1e6, 2.5e6, 5e6,
	1e7,
}

// numBuckets is the finite bounds plus the overflow slot.
const numBuckets = len(histBounds) + 1

// BucketBounds returns the shared exponential bucket upper bounds (a copy;
// the overflow bucket is implicit — +Inf).
func BucketBounds() []float64 {
	out := make([]float64, len(histBounds))
	copy(out, histBounds[:])
	return out
}

// bucketIndex maps a value to its bucket: the first bound >= v, or the
// overflow slot. Binary search over the fixed table — no allocation, a
// handful of compares.
func bucketIndex(v float64) int {
	lo, hi := 0, len(histBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(histBounds) means overflow
}

// Histogram accumulates a distribution as count/sum/min/max plus fixed
// exponential buckets (histBounds), from which p50/p90/p99 are derivable.
// Observe stays allocation-free — the bucket counts are an inline array —
// and a single mutex keeps snapshots internally consistent (sum, count and
// buckets always describe the same set of observations), which the
// concurrent-scrape tests pin. Observations range from coarse pipeline
// events to per-request latencies; an uncontended mutex lock is a few
// nanoseconds and never allocates.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  [numBuckets]int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := bucketIndex(v)
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[i]++
	h.mu.Unlock()
}

// snapshot returns the histogram's aggregates. min and max are 0 (never
// stale values from before a reset) when the histogram is empty.
func (h *Histogram) snapshot() (count int64, sum, min, max float64, buckets [numBuckets]int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0, h.sum, 0, 0, h.buckets
	}
	return h.count, h.sum, h.min, h.max, h.buckets
}

// registry interns metric handles by name.
var registry sync.Map // name -> *Counter | *Gauge | *Histogram

// GetCounter returns (registering on first use) the named counter.
func GetCounter(name string) *Counter {
	if v, ok := registry.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := registry.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// GetGauge returns (registering on first use) the named gauge.
func GetGauge(name string) *Gauge {
	if v, ok := registry.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := registry.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// GetHistogram returns (registering on first use) the named histogram.
func GetHistogram(name string) *Histogram {
	if v, ok := registry.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := registry.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// ResetMetrics zeroes every registered metric (handles stay valid). For
// tests and benchmarks that need a clean slate.
func ResetMetrics() {
	registry.Range(func(_, v interface{}) bool {
		switch m := v.(type) {
		case *Counter:
			m.v.Store(0)
		case *Gauge:
			m.v.Store(0)
		case *Histogram:
			m.mu.Lock()
			m.count, m.sum, m.min, m.max = 0, 0, 0, 0
			m.buckets = [numBuckets]int64{}
			m.mu.Unlock()
		}
		return true
	})
}

// MetricValue is one metric's state in a Snapshot. Kind is "counter",
// "gauge" or "histogram"; Count/Sum/Min/Max/Mean/Buckets are
// histogram-only. Buckets holds per-bucket (non-cumulative) counts aligned
// with BucketBounds(), with one extra trailing overflow slot for
// observations above the last bound.
type MetricValue struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Value   int64   `json:"value,omitempty"`
	Count   int64   `json:"count,omitempty"`
	Sum     float64 `json:"sum,omitempty"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	Mean    float64 `json:"mean,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Quantile derives the q-quantile (0 <= q <= 1) of a histogram metric from
// its buckets by linear interpolation inside the covering bucket — the
// standard exposition-side estimate (what PromQL's histogram_quantile
// computes). The result is clamped to the observed min/max, so p50/p99 of
// a single-valued distribution is that value exactly. Returns 0 for empty
// or non-histogram metrics.
func (mv MetricValue) Quantile(q float64) float64 {
	if mv.Kind != "histogram" || mv.Count == 0 || len(mv.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(mv.Count)
	var cum float64
	est := mv.Max
	for i, n := range mv.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += float64(n)
		if cum < rank {
			continue
		}
		if i >= len(histBounds) {
			// Overflow bucket: no finite upper bound to interpolate toward.
			est = mv.Max
			break
		}
		lower := 0.0
		if i > 0 {
			lower = histBounds[i-1]
		}
		upper := histBounds[i]
		frac := 0.0
		if n > 0 {
			frac = (rank - prev) / float64(n)
		}
		est = lower + (upper-lower)*frac
		break
	}
	if est < mv.Min {
		est = mv.Min
	}
	if est > mv.Max {
		est = mv.Max
	}
	return est
}

// Snapshot returns every registered metric, sorted by name — the
// expvar-style point-in-time view of the pipeline.
func Snapshot() []MetricValue {
	var out []MetricValue
	registry.Range(func(k, v interface{}) bool {
		mv := MetricValue{Name: k.(string)}
		switch m := v.(type) {
		case *Counter:
			mv.Kind = "counter"
			mv.Value = m.Value()
		case *Gauge:
			mv.Kind = "gauge"
			mv.Value = m.Value()
		case *Histogram:
			mv.Kind = "histogram"
			var buckets [numBuckets]int64
			mv.Count, mv.Sum, mv.Min, mv.Max, buckets = m.snapshot()
			if mv.Count > 0 {
				mv.Mean = mv.Sum / float64(mv.Count)
				mv.Buckets = buckets[:]
			}
			if math.IsNaN(mv.Mean) || math.IsInf(mv.Mean, 0) {
				mv.Mean = 0
			}
		}
		out = append(out, mv)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteMetrics emits the snapshot as one indented JSON object keyed by
// metric name (expvar's wire shape), for the -metrics flag.
func WriteMetrics(w io.Writer) error {
	snap := Snapshot()
	obj := make(map[string]MetricValue, len(snap))
	for _, mv := range snap {
		obj[mv.Name] = mv
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}
