package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestScopedSinksReceiveOnlyTheirJob: two scoped contexts in one process,
// no global tracer — each sink sees exactly its own job's spans and
// progress, the isolation the daemon's per-job event feeds rely on.
func TestScopedSinksReceiveOnlyTheirJob(t *testing.T) {
	if Enabled() {
		t.Skip("a global tracer is active")
	}
	a, b := &collectSink{}, &collectSink{}
	ctxA := WithSink(context.Background(), a)
	ctxB := WithSink(context.Background(), b)

	_, spA := Start(ctxA, "job-a.work")
	spA.End()
	ProgressCtx(ctxA, "analyze", 1, 2, "505.mcf_r")
	HeaderfCtx(ctxA, "scale=%s", "small")

	_, spB := Start(ctxB, "job-b.work")
	spB.End()
	ProgressCtx(ctxB, "analyze", 2, 2, "541.leela_r")

	if len(a.spans) != 1 || a.spans[0].Name != "job-a.work" {
		t.Errorf("sink A spans = %v, want [job-a.work]", a.spans)
	}
	if len(b.spans) != 1 || b.spans[0].Name != "job-b.work" {
		t.Errorf("sink B spans = %v, want [job-b.work]", b.spans)
	}
	if len(a.progress) != 2 || a.progress[0].Msg != "505.mcf_r" || a.progress[1].Stage != "run" {
		t.Errorf("sink A events = %+v, want its progress + header", a.progress)
	}
	if len(b.progress) != 1 || b.progress[0].Msg != "541.leela_r" {
		t.Errorf("sink B events = %+v, want its single progress event", b.progress)
	}
}

// TestScopedAndGlobalSinksBothDeliver: a scoped span also reaches the
// global tracer, so a daemon-wide -trace still captures everything.
func TestScopedAndGlobalSinksBothDeliver(t *testing.T) {
	global, scoped := &collectSink{}, &collectSink{}
	Enable(global)
	defer func() {
		if err := Disable(); err != nil {
			t.Fatal(err)
		}
	}()

	ctx := WithSink(context.Background(), scoped)
	_, sp := Start(ctx, "shared.work")
	sp.End()
	ProgressCtx(ctx, "stage", 0, 0, "msg")
	// An unscoped emission reaches only the global sink.
	Progress("global-only", 0, 0, "msg")

	if len(global.spans) != 1 || len(global.progress) != 2 {
		t.Errorf("global sink saw %d spans / %d events, want 1 / 2", len(global.spans), len(global.progress))
	}
	if len(scoped.spans) != 1 || len(scoped.progress) != 1 {
		t.Errorf("scoped sink saw %d spans / %d events, want 1 / 1", len(scoped.spans), len(scoped.progress))
	}
}

// TestWithSinkNests: sinks accumulate through nested scopes.
func TestWithSinkNests(t *testing.T) {
	outer, inner := &collectSink{}, &collectSink{}
	ctx := WithSink(context.Background(), outer)
	ctx = WithSink(ctx, inner)
	ProgressCtx(ctx, "stage", 0, 0, "msg")
	if len(outer.progress) != 1 || len(inner.progress) != 1 {
		t.Errorf("outer %d / inner %d events, want 1 / 1", len(outer.progress), len(inner.progress))
	}
}

// chunkRecorder records every Write chunk it receives, to prove torn lines
// would be visible if they happened.
type chunkRecorder struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *chunkRecorder) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(p)
}

// TestJSONLSinkConcurrentJobsDoNotTearLines is the regression test for the
// daemon-concurrency wart: many jobs hammering one JSONL sink (spans,
// progress, and a racing Close) must produce a byte stream in which every
// line parses as a standalone JSON object. Run under -race, it also pins
// the sink's internal synchronization.
func TestJSONLSinkConcurrentJobsDoNotTearLines(t *testing.T) {
	rec := &chunkRecorder{}
	sink := NewStreamingJSONLSink(rec)

	const jobs, perJob = 16, 200
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for i := 0; i < perJob; i++ {
				sink.Progress(ProgressEvent{
					Stage: fmt.Sprintf("job-%02d", j),
					Done:  i, Total: perJob,
					Msg: "a message long enough to span buffer boundaries when interleaved",
				})
				sink.SpanEnd(&SpanData{ID: uint64(j*perJob + i + 1), Name: "work"})
			}
		}(j)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&rec.buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var v map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("torn JSONL line %d: %v: %q", lines+1, err, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := jobs * perJob * 2; lines != want {
		t.Fatalf("got %d intact lines, want %d", lines, want)
	}
}

// TestStreamingSinkFlushesPerRecord: a reader polling the underlying
// writer sees each record without waiting for Close.
func TestStreamingSinkFlushesPerRecord(t *testing.T) {
	var buf bytes.Buffer
	sink := NewStreamingJSONLSink(&buf)
	sink.Progress(ProgressEvent{Stage: "analyze", Done: 1, Total: 2})
	if buf.Len() == 0 {
		t.Fatal("record not flushed before Close")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// No process-wide metrics record lands in a per-job stream.
	if bytes.Contains(buf.Bytes(), []byte(`"type":"metrics"`)) {
		t.Error("streaming sink appended the global metrics snapshot")
	}
}

// TestBufferedSinkStillBatches: the classic whole-run sink keeps its
// batching (nothing reaches the writer before Close) and its final
// metrics record.
func TestBufferedSinkStillBatches(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(nopCloser{&buf})
	sink.Progress(ProgressEvent{Stage: "analyze"})
	if buf.Len() != 0 {
		t.Error("buffered sink flushed before Close")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"type":"metrics"`)) {
		t.Error("whole-run sink missing the final metrics record")
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
