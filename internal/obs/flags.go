package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags is the standard observability flag set every command exposes:
//
//	-trace file.jsonl   write a JSONL span/progress/metrics trace
//	-progress           narrate live progress on stderr
//	-metrics            dump the metrics snapshot on exit
//
// Bind them with BindFlags, then Activate after parsing; the returned
// shutdown function flushes and closes everything.
type Flags struct {
	Trace    string
	Progress bool
	Metrics  bool
}

// BindFlags registers the three observability flags on fs.
func BindFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL trace (spans, progress, metrics) to this file")
	fs.BoolVar(&f.Progress, "progress", false, "narrate live pipeline progress on stderr")
	fs.BoolVar(&f.Metrics, "metrics", false, "dump the metrics snapshot to stderr on exit")
	return f
}

// Activate installs the sinks the parsed flags ask for and returns a
// shutdown function to defer. The -metrics snapshot goes to metricsOut
// (os.Stderr when nil). With no flags set, both activation and shutdown are
// no-ops and tracing stays disabled (the near-free path).
func (f *Flags) Activate(metricsOut io.Writer) (func() error, error) {
	if metricsOut == nil {
		metricsOut = os.Stderr
	}
	var sinks []Sink
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: create trace file: %w", err)
		}
		sinks = append(sinks, NewJSONLSink(file))
	}
	if f.Progress {
		sinks = append(sinks, NewNarrator(os.Stderr))
	}
	Enable(sinks...)
	metrics := f.Metrics
	return func() error {
		err := Disable()
		if metrics {
			if werr := WriteMetrics(metricsOut); err == nil {
				err = werr
			}
		}
		return err
	}, nil
}
