package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"help", flag.ErrHelp, 0},
		{"wrapped help", fmt.Errorf("parse: %w", flag.ErrHelp), 0},
		{"usage", Usagef("unknown scale %q", "huge"), 2},
		{"wrapped usage", fmt.Errorf("specsim: %w", Usagef("missing -bench")), 2},
		{"sentinel", ErrUsage, 2},
		{"canceled", context.Canceled, 130},
		{"wrapped canceled", fmt.Errorf("interrupted: %w", context.Canceled), 130},
		{"runtime", errors.New("boom"), 1},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestUsagefMessageIsClean(t *testing.T) {
	err := Usagef("missing -bench")
	if got := err.Error(); got != "missing -bench" {
		t.Errorf("Usagef message = %q, want it without the sentinel text", got)
	}
	if !errors.Is(err, ErrUsage) {
		t.Error("Usagef error does not match ErrUsage")
	}
}

func TestSelectorHint(t *testing.T) {
	err := SelectorHint("experiments", errors.New(`selector: unknown backend "x"`))
	if !errors.Is(err, ErrUsage) {
		t.Error("SelectorHint error does not match ErrUsage")
	}
	want := `selector: unknown backend "x" (run 'experiments -selector list' to see the registered backends)`
	if err.Error() != want {
		t.Errorf("SelectorHint = %q, want %q", err.Error(), want)
	}
}
