// Package cli holds the exit-code and usage-error conventions shared by the
// repo's binaries (cmd/experiments, cmd/specsim, cmd/specsimd).
//
// The convention follows the shell's: 0 success, 1 runtime failure, 2
// command-line usage error (the status flag.ExitOnError would use), 130 for
// a SIGINT-cancelled run (128+SIGINT — "interrupted" is a normal, resumable
// state for this pipeline, not a generic failure). Every command maps its
// run error through ExitCode so a misspelled -selector exits identically
// everywhere, and scripts can distinguish "you typed it wrong" from "the
// pipeline failed".
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
)

// ErrUsage marks an error as a command-line usage problem. Match with
// errors.Is; build one with Usagef.
var ErrUsage = errors.New("usage error")

// usageErr is a message that Is(ErrUsage) without the sentinel's text
// polluting the printed message. reported means the user has already seen
// it (flag.Parse prints its own message and usage block), so main should
// exit 2 without printing it again.
type usageErr struct {
	msg      string
	reported bool
}

func (e *usageErr) Error() string        { return e.msg }
func (e *usageErr) Is(target error) bool { return target == ErrUsage }

// Usagef builds a usage error: the command prints it (with its usual
// "<cmd>: " prefix) and exits 2.
func Usagef(format string, args ...interface{}) error {
	return &usageErr{msg: fmt.Sprintf(format, args...)}
}

// ParseError adapts a flag.FlagSet.Parse error to the convention: help
// requests pass through (ExitCode maps them to 0), anything else becomes a
// usage error already reported to the user — flag printed the message and
// the usage block itself — so main exits 2 without repeating it.
func ParseError(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return &usageErr{msg: err.Error(), reported: true}
}

// Reported says whether the user has already seen this error (so main
// should not print it again before exiting).
func Reported(err error) bool {
	var u *usageErr
	return errors.As(err, &u) && u.reported
}

// SelectorHint decorates a selector-resolution error with the discovery
// pointer every command shares, as a usage error.
func SelectorHint(cmd string, err error) error {
	return Usagef("%v (run '%s -selector list' to see the registered backends)", err, cmd)
}

// ExitCode maps a command's run error to its process exit status:
//
//	nil, flag.ErrHelp    → 0 (asking for -h is not a failure)
//	ErrUsage             → 2 (bad flags or arguments; flag.Parse errors
//	                          should be wrapped with Usagef)
//	context.Canceled     → 130 (128+SIGINT; the run is resumable)
//	anything else        → 1
func ExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, ErrUsage):
		return 2
	case errors.Is(err, context.Canceled):
		return 130
	default:
		return 1
	}
}
