package timing

import (
	"testing"

	"specsampling/internal/pin"
	"specsampling/internal/pinball"
	"specsampling/internal/program"
)

func testProgram(t testing.TB, ws uint64, jump uint32) *program.Program {
	t.Helper()
	specs := []program.PhaseSpec{
		{Blocks: 6, MinBlockLen: 4, MaxBlockLen: 10, Mix: [4]float64{0.5, 0.35, 0.14, 0.01},
			Pattern: program.MemPattern{Base: 1 << 22, WorkingSetBytes: ws, Stride: 8,
				SeqPermille: 500, StreamPermille: 50, StreamBase: 1 << 36, StreamBytes: 1 << 28},
			JumpPermille: jump, ShareBlocksWith: -1},
	}
	p, err := program.BuildProgram("timetest", 5, specs,
		[]program.Segment{{Phase: 0, Instrs: 60000}})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t testing.TB, p *program.Program, cfg Config) Counters {
	t.Helper()
	core, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := pin.NewEngine(p)
	if err := e.Attach(core); err != nil {
		t.Fatal(err)
	}
	e.RunToEnd()
	return core.Counters()
}

func TestTableIIIConfigMatchesPaper(t *testing.T) {
	cfg := TableIIIConfig()
	if cfg.FrequencyGHz != 3.4 {
		t.Errorf("frequency %v, Table III says 3.4 GHz", cfg.FrequencyGHz)
	}
	if cfg.ROBEntries != 168 {
		t.Errorf("ROB %d, Table III says 168", cfg.ROBEntries)
	}
	if cfg.BranchMissPenalty != 8 {
		t.Errorf("branch penalty %v, Table III says 8", cfg.BranchMissPenalty)
	}
	if cfg.Caches.L1D.SizeBytes != 32<<10 || cfg.Caches.L1D.Ways != 8 {
		t.Errorf("L1D %+v", cfg.Caches.L1D)
	}
	if cfg.Caches.L2.SizeBytes != 256<<10 || cfg.Caches.L3.SizeBytes != 8<<20 || cfg.Caches.L3.Ways != 16 {
		t.Errorf("L2/L3 %+v %+v", cfg.Caches.L2, cfg.Caches.L3)
	}
	if cfg.Caches.L1D.LineBytes != 64 {
		t.Errorf("line size %d, Table III says 64", cfg.Caches.L1D.LineBytes)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cfg := TableIIIConfig()
	cfg.DispatchWidth = 0
	if _, err := NewCore(cfg); err == nil {
		t.Error("accepted zero dispatch width")
	}
	cfg = TableIIIConfig()
	cfg.MLP = 0
	if _, err := NewCore(cfg); err == nil {
		t.Error("accepted zero MLP")
	}
	cfg = TableIIIConfig()
	cfg.MemLatency = 0
	if _, err := NewCore(cfg); err == nil {
		t.Error("accepted zero memory latency")
	}
}

func TestCPIIsPlausible(t *testing.T) {
	c := run(t, testProgram(t, 64<<10, 40), TableIIIConfig())
	cpi := c.CPI()
	if cpi < 0.25 || cpi > 5 {
		t.Errorf("CPI = %v, outside the plausible range for an i7-class core", cpi)
	}
	if c.Instructions == 0 || c.Cycles <= 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestLargerWorkingSetHigherCPI(t *testing.T) {
	small := run(t, testProgram(t, 16<<10, 40), TableIIIConfig())
	large := run(t, testProgram(t, 16<<20, 40), TableIIIConfig())
	if large.CPI() <= small.CPI() {
		t.Errorf("16MB working set CPI %v <= 16kB working set CPI %v",
			large.CPI(), small.CPI())
	}
}

func TestIrregularControlFlowHigherCPI(t *testing.T) {
	regular := run(t, testProgram(t, 32<<10, 5), TableIIIConfig())
	irregular := run(t, testProgram(t, 32<<10, 300), TableIIIConfig())
	if irregular.CPI() <= regular.CPI() {
		t.Errorf("irregular control flow CPI %v <= regular CPI %v",
			irregular.CPI(), regular.CPI())
	}
	if irregular.BranchStats.Rate() <= regular.BranchStats.Rate() {
		t.Errorf("irregular misprediction rate %v <= regular %v",
			irregular.BranchStats.Rate(), regular.BranchStats.Rate())
	}
}

func TestDeterministic(t *testing.T) {
	p := testProgram(t, 128<<10, 60)
	a := run(t, p, TableIIIConfig())
	b := run(t, p, TableIIIConfig())
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Errorf("same program, different counters: %+v vs %+v", a, b)
	}
}

func TestWarmupAccountsNothing(t *testing.T) {
	p := testProgram(t, 64<<10, 40)
	core, err := NewCore(TableIIIConfig())
	if err != nil {
		t.Fatal(err)
	}
	core.SetWarmup(true)
	e := pin.NewEngine(p)
	if err := e.Attach(core); err != nil {
		t.Fatal(err)
	}
	e.Run(10000)
	c := core.Counters()
	if c.Instructions != 0 || c.Cycles != 0 {
		t.Errorf("warm-up accumulated counters: %+v", c)
	}
	// But microarchitectural state must have been learned.
	if core.Hierarchy().L1D.Stats().Accesses != 0 {
		t.Error("warm-up counted cache stats")
	}
	core.SetWarmup(false)
	e.Run(10000)
	if core.Counters().Instructions == 0 {
		t.Error("nothing measured after warm-up")
	}
}

func TestWarmupLowersColdStartCPI(t *testing.T) {
	// Replaying a region with warm-up must not yield a higher CPI than the
	// same region replayed cold (modulo noise, warm caches only help).
	p := testProgram(t, 1<<20, 40)
	exec := program.NewExecutor(p)
	exec.Run(20000, program.Hooks{})
	warm := exec.State()
	warmLen := exec.Run(8000, program.Hooks{})
	start := exec.State()

	cold := pinball.NewRegional("timetest", "small", 0, start, 4096, 1)
	coldCore, _ := NewCore(TableIIIConfig())
	if _, err := pinball.Replay(p, cold, coldCore); err != nil {
		t.Fatal(err)
	}

	warmPB := pinball.NewRegional("timetest", "small", 0, start, 4096, 1).WithWarmup(warm, warmLen)
	warmCore, _ := NewCore(TableIIIConfig())
	if _, err := pinball.Replay(p, warmPB, warmCore); err != nil {
		t.Fatal(err)
	}

	if warmCore.CPI() > coldCore.CPI() {
		t.Errorf("warmed CPI %v > cold CPI %v", warmCore.CPI(), coldCore.CPI())
	}
	if warmCore.Counters().Instructions != coldCore.Counters().Instructions {
		t.Error("warm-up changed the measured instruction count")
	}
}

func TestReset(t *testing.T) {
	p := testProgram(t, 64<<10, 40)
	core, _ := NewCore(TableIIIConfig())
	e := pin.NewEngine(p)
	if err := e.Attach(core); err != nil {
		t.Fatal(err)
	}
	e.Run(5000)
	core.Reset()
	c := core.Counters()
	if c.Instructions != 0 || c.Cycles != 0 {
		t.Errorf("Reset left counters: %+v", c)
	}
}

func TestCountersHelpers(t *testing.T) {
	var c Counters
	if c.CPI() != 0 {
		t.Error("zero counters CPI should be 0")
	}
	c = Counters{Instructions: 1000, Cycles: 1500}
	if c.CPI() != 1.5 {
		t.Errorf("CPI = %v", c.CPI())
	}
	if s := c.SecondsAt(3.0); s != 1500/3e9 {
		t.Errorf("SecondsAt = %v", s)
	}
	if c.SecondsAt(0) != 0 {
		t.Error("zero frequency should give 0 seconds")
	}
}
