// Package timing implements the reproduction's Sniper analogue: an
// interval-style out-of-order core timing model. Like Sniper, it does not
// simulate the pipeline cycle by cycle; it accounts a base dispatch cost
// per instruction and adds penalty intervals for branch mispredictions and
// memory accesses that miss in the cache hierarchy, with a configurable
// memory-level-parallelism overlap factor. This is exactly the level of
// abstraction the paper uses the real Sniper at (Table III machine,
// Section IV-E), and it produces CPI in the right regime (~0.3-2.0).
//
// The model is a Pintool (attach it to a pin.Engine or pass it to
// pinball.Replay) and is Warmable: during pinball warm-up it updates caches
// and predictor state without accumulating cycles.
package timing

import (
	"fmt"

	"specsampling/internal/branch"
	"specsampling/internal/cache"
	"specsampling/internal/isa"
)

// Config describes the simulated machine.
type Config struct {
	// Name labels the machine in reports.
	Name string
	// FrequencyGHz converts cycles to wall-clock time in reports.
	FrequencyGHz float64
	// DispatchWidth is the sustained dispatch rate in instructions per
	// cycle (the fused-uop width of Table III).
	DispatchWidth float64
	// ROBEntries bounds the out-of-order window (used to cap miss overlap).
	ROBEntries int
	// BranchMissPenalty is the pipeline-refill cost of a misprediction, in
	// cycles.
	BranchMissPenalty float64
	// Caches is the hierarchy geometry.
	Caches cache.HierarchyConfig
	// L1Latency is the load-to-use latency of an L1 hit that the pipeline
	// cannot hide (0 means fully hidden).
	L1Latency float64
	// L2Latency, L3Latency and MemLatency are the additional cycles paid by
	// accesses satisfied at each deeper level.
	L2Latency  float64
	L3Latency  float64
	MemLatency float64
	// MLP is the average number of outstanding long-latency misses the
	// core overlaps; miss penalties are divided by it.
	MLP float64
	// FrontendStall is a fixed per-block cost modelling fetch/decode
	// discontinuities at taken branches.
	FrontendStall float64
	// Prefetch enables the hierarchy's next-line data prefetcher (on for
	// the i7-class machines; allcache has none).
	Prefetch bool
	// PageWalkLatency is the cycle cost of a DTLB miss (0 when the
	// hierarchy has no TLBs).
	PageWalkLatency float64
	// Branch sizes the branch predictor.
	Branch branch.Config
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DispatchWidth <= 0 {
		return fmt.Errorf("timing %s: dispatch width %v", c.Name, c.DispatchWidth)
	}
	if c.MLP <= 0 {
		return fmt.Errorf("timing %s: MLP %v", c.Name, c.MLP)
	}
	if c.MemLatency <= 0 {
		return fmt.Errorf("timing %s: memory latency %v", c.Name, c.MemLatency)
	}
	return nil
}

// TableIIIConfig reproduces the paper's Table III Sniper machine: an 8-core
// Intel i7-3770 modelled at 3.4 GHz with a 19-stage out-of-order pipeline,
// 4-wide commit, 168-entry ROB, 8-cycle branch-miss penalty, and a
// 32 kB/32 kB + 256 kB + 8 MB cache hierarchy with 64-byte lines and
// 4/10/30-cycle latencies. (The paper runs single-threaded rate binaries,
// so one core is modelled.)
func TableIIIConfig() Config {
	return Config{
		Name:              "sniper-i7-3770",
		FrequencyGHz:      3.4,
		DispatchWidth:     4,
		ROBEntries:        168,
		BranchMissPenalty: 8,
		Caches: cache.HierarchyConfig{
			L1I:  cache.Config{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
			L1D:  cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
			L2:   cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
			L3:   cache.Config{Name: "L3", SizeBytes: 8 << 20, Ways: 16, LineBytes: 64},
			ITLB: cache.DefaultITLB(),
			DTLB: cache.DefaultDTLB(),
		},
		PageWalkLatency: 25,
		L1Latency:       0, // hidden by the pipeline
		L2Latency:       10,
		L3Latency:       30,
		MemLatency:      180,
		MLP:             2.6,
		FrontendStall:   0.4,
		Prefetch:        true,
		Branch:          branch.DefaultConfig(),
	}
}

// ScaledConfig shrinks the machine's cache capacities (latencies, widths
// and penalties are unchanged) — the timing-model counterpart of
// cache.ScaledHierarchy, used when running scaled workloads.
func ScaledConfig(cfg Config, divs cache.ScaleDivs) Config {
	out := cfg
	out.Caches = cache.ScaledHierarchy(cfg.Caches, divs)
	return out
}

// Counters are the perf-style outputs of a timing run.
type Counters struct {
	// Instructions is the retired instruction count ("instructions").
	Instructions uint64
	// Cycles is the simulated cycle count ("cpu-cycles").
	Cycles float64
	// BranchStats mirrors the predictor's counters.
	BranchStats branch.Stats
}

// CPI returns cycles per instruction — the metric the paper compares
// between native execution and Sniper-on-SimPoints (Figure 12). Note the
// paper's caution (Section IV-D): CPI is instruction-normalised and may be
// weight-averaged; IPC may not.
func (c Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return c.Cycles / float64(c.Instructions)
}

// SecondsAt returns wall-clock seconds at the given core frequency.
func (c Counters) SecondsAt(ghz float64) float64 {
	if ghz <= 0 {
		return 0
	}
	return c.Cycles / (ghz * 1e9)
}

// Core is the timing model. Attach it to a pin.Engine (it implements
// BlockTool, MemTool, BranchTool and FetchTool) or pass it to
// pinball.Replay.
type Core struct {
	cfg  Config
	pred *branch.Predictor
	hier *cache.Hierarchy

	warm   bool
	cycles float64
	instrs uint64
}

// NewCore builds a core model.
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := branch.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.Caches)
	if err != nil {
		return nil, err
	}
	hier.EnablePrefetch(cfg.Prefetch)
	return &Core{cfg: cfg, pred: pred, hier: hier}, nil
}

// Config returns the machine description.
func (c *Core) Config() Config { return c.cfg }

// Hierarchy exposes the cache hierarchy (for miss-rate reporting).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Name implements pin.Tool.
func (*Core) Name() string { return "sniper" }

// SetWarmup implements pinball.Warmable: in warm-up, caches and the branch
// predictor learn but no cycles or instructions are accounted.
func (c *Core) SetWarmup(on bool) {
	c.warm = on
	c.hier.SetWarmup(on)
}

// OnBlock implements pin.BlockTool: base dispatch cost plus the frontend
// stall.
func (c *Core) OnBlock(b *isa.Block, _ int) {
	if c.warm {
		return
	}
	n := uint64(b.Len())
	c.instrs += n
	c.cycles += float64(n)/c.cfg.DispatchWidth + c.cfg.FrontendStall
}

// OnFetch implements pin.FetchTool: instruction-cache traffic; front-end
// misses stall the pipeline with no overlap.
func (c *Core) OnFetch(pc uint64, bytes uint64) {
	lineBytes := c.hier.L1I.Config().LineBytes
	for addr := pc &^ (lineBytes - 1); addr < pc+bytes; addr += lineBytes {
		switch c.hier.Fetch(addr) {
		case cache.HitL1:
		case cache.HitL2:
			if !c.warm {
				c.cycles += c.cfg.L2Latency
			}
		case cache.HitL3:
			if !c.warm {
				c.cycles += c.cfg.L3Latency
			}
		case cache.MissAll:
			if !c.warm {
				c.cycles += c.cfg.MemLatency
			}
		}
	}
}

// OnMem implements pin.MemTool: data-cache access with MLP-overlapped miss
// penalties, plus a page-walk penalty on DTLB misses.
func (c *Core) OnMem(ref isa.MemRef) {
	var tlbMissesBefore uint64
	if c.hier.DTLB != nil {
		tlbMissesBefore = c.hier.DTLB.Stats().Misses
	}
	lvl := c.hier.Data(ref.Addr)
	if c.warm {
		return
	}
	if c.hier.DTLB != nil && c.hier.DTLB.Stats().Misses > tlbMissesBefore {
		c.cycles += c.cfg.PageWalkLatency
	}
	switch lvl {
	case cache.HitL1:
		c.cycles += c.cfg.L1Latency
	case cache.HitL2:
		c.cycles += c.cfg.L2Latency / c.cfg.MLP
	case cache.HitL3:
		c.cycles += c.cfg.L3Latency / c.cfg.MLP
	case cache.MissAll:
		// Stores retire without stalling (store buffer); loads pay the
		// overlapped memory latency.
		p := c.cfg.MemLatency / c.cfg.MLP
		if ref.Write {
			p *= 0.3
		}
		c.cycles += p
	}
}

// OnBranch implements pin.BranchTool.
func (c *Core) OnBranch(ev isa.BranchEvent) {
	mis := c.pred.Access(ev.PC, ev.Taken)
	if c.warm {
		return
	}
	if mis {
		c.cycles += c.cfg.BranchMissPenalty
	}
}

// Counters returns the accumulated measurements.
func (c *Core) Counters() Counters {
	return Counters{
		Instructions: c.instrs,
		Cycles:       c.cycles,
		BranchStats:  c.pred.Stats(),
	}
}

// CPI is shorthand for Counters().CPI().
func (c *Core) CPI() float64 { return c.Counters().CPI() }

// Reset clears measurements and microarchitectural state.
func (c *Core) Reset() {
	c.cycles = 0
	c.instrs = 0
	c.hier.Reset()
	c.pred.ResetStats()
}
