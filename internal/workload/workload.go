// Package workload defines the synthetic SPEC CPU2017 suite — the
// reproduction's stand-in for the proprietary benchmarks. It models the 29
// workloads of the paper's Table II, each as a deterministic generative
// program (internal/program) whose phase structure mirrors what the paper
// measured:
//
//   - the number of phases equals the benchmark's simulation-point count in
//     Table II;
//   - the phase-weight distribution is a geometric decay whose rate is
//     solved so that the paper's 90th-percentile simulation-point count is
//     reproduced (e.g. bwaves_r concentrates >60 % of execution in one
//     dominant phase, deepsjeng_s spreads weight almost uniformly);
//   - per-phase instruction mixes scatter around the suite averages the
//     paper reports (49.1 % NO_MEM, 36.7 % MEM_R, 12.9 % MEM_W);
//   - per-phase working sets range from L1-resident to multi-megabyte, so
//     the Table I cache hierarchy shows the paper's cold-start gradient.
//
// Whole-run instruction counts are scaled (see Scale) so experiments run on
// a laptop while preserving the ratios the paper reports.
package workload

import (
	"fmt"
	"math"
	"os"
	"sort"

	"specsampling/internal/cache"
	"specsampling/internal/program"
)

// Class is the benchmark's SPEC CPU2017 sub-suite.
type Class int

// SPEC CPU2017 sub-suites.
const (
	IntRate Class = iota
	IntSpeed
	FPRate
	FPSpeed
)

// String names the class the way SPEC does.
func (c Class) String() string {
	switch c {
	case IntRate:
		return "SPECrate INT"
	case IntSpeed:
		return "SPECspeed INT"
	case FPRate:
		return "SPECrate FP"
	case FPSpeed:
		return "SPECspeed FP"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Scale trades fidelity for run time. The paper's benchmarks average
// 6 873.9 G instructions with 30 M-instruction slices; Full scale divides
// all dynamic counts by ~125 000 while keeping the slice-count-to-
// simulation-point ratios (and therefore the paper's headline reduction
// factors) intact. Medium and Small divide further for benchmarks and unit
// tests.
type Scale struct {
	// Name identifies the scale ("full", "medium", "small").
	Name string
	// Div divides every benchmark's nominal whole-run length.
	Div uint64
	// SliceLen is the SimPoint slice length at this scale, corresponding to
	// the paper's 30 M-instruction slices.
	SliceLen uint64
	// PaperSliceInstrs is the paper-equivalent slice size SliceLen stands
	// for, used for labelling sweep outputs.
	PaperSliceInstrs uint64
	// CacheDivs divides cache capacities per level
	// (cache.ScaledHierarchy / timing.ScaledConfig) so slice-to-cache
	// coverage proportions track the paper's: a 30 M-instruction slice
	// warms an L2 completely and an LLC only partially, and our much
	// shorter slices must do the same to their scaled caches. Working sets
	// scale by CacheDivs.L3 so the footprint-to-LLC ratios are preserved
	// too.
	CacheDivs cache.ScaleDivs
}

// The three standard scales.
var (
	ScaleFull = Scale{Name: "full", Div: 1, SliceLen: 4096, PaperSliceInstrs: 30_000_000,
		CacheDivs: cache.ScaleDivs{L1: 4, L2: 64, L3: 64}}
	ScaleMedium = Scale{Name: "medium", Div: 8, SliceLen: 2048, PaperSliceInstrs: 30_000_000,
		CacheDivs: cache.ScaleDivs{L1: 8, L2: 128, L3: 128}}
	ScaleSmall = Scale{Name: "small", Div: 64, SliceLen: 512, PaperSliceInstrs: 30_000_000,
		CacheDivs: cache.ScaleDivs{L1: 16, L2: 512, L3: 512}}
)

// ScaleByName resolves a scale name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "full":
		return ScaleFull, nil
	case "medium":
		return ScaleMedium, nil
	case "small":
		return ScaleSmall, nil
	default:
		return Scale{}, fmt.Errorf("workload: unknown scale %q (want full, medium or small)", name)
	}
}

// ScaleFromEnv returns the scale named by the SPECSIM_SCALE environment
// variable, or def when unset.
func ScaleFromEnv(def Scale) Scale {
	//lint:ignore nondet ScaleFromEnv is the cmd layer's one explicit env entry point; kernels receive the resolved Scale
	if name := os.Getenv("SPECSIM_SCALE"); name != "" {
		if s, err := ScaleByName(name); err == nil {
			return s
		}
	}
	return def
}

// SliceLenForPaperSize converts a paper-scale slice size (e.g. 15 M, 50 M)
// to this scale's equivalent, preserving the proportion to the default
// 30 M slice. Used by the Figure 3(b) slice-size sweep.
func (s Scale) SliceLenForPaperSize(paperInstrs uint64) uint64 {
	v := s.SliceLen * paperInstrs / s.PaperSliceInstrs
	if v < 64 {
		v = 64
	}
	return v
}

// MemProfile characterises a benchmark's memory behaviour.
type MemProfile struct {
	// MinWS and MaxWS bound the per-phase working-set sizes (bytes);
	// individual phases interpolate log-uniformly between them.
	MinWS uint64
	MaxWS uint64
	// StreamPermille is the base probability (per mille) of streaming
	// accesses that walk through a region larger than the LLC.
	StreamPermille uint32
	// Stride is the sequential component's byte stride.
	Stride uint64
}

// Spec declares one benchmark of the synthetic suite.
type Spec struct {
	// Name is the SPEC-style benchmark name, e.g. "523.xalancbmk_r".
	Name string
	// Number is the SPEC benchmark number (500, 502, ...).
	Number int
	// Class is the sub-suite.
	Class Class
	// WholeInstrs is the full-scale nominal whole-run dynamic instruction
	// count.
	WholeInstrs uint64
	// Phases is the benchmark's phase count, set to the simulation-point
	// count the paper reports in Table II.
	Phases int
	// Phases90 is the paper's 90th-percentile simulation-point count
	// (Table II, third column); it determines the weight skew.
	Phases90 int
	// DominantWeight, when > 0, pins the first phase's weight (bwaves_r's
	// single 60 % phase); the remaining phases share the rest geometrically.
	DominantWeight float64
	// BaseMix is the target instruction distribution
	// (NO_MEM, MEM_R, MEM_W, MEM_RW); phases jitter around it.
	BaseMix [4]float64
	// Mem is the benchmark's memory profile.
	Mem MemProfile
	// JumpPermille is the base control-flow irregularity; phases jitter
	// around it. Higher values make branches harder to predict.
	JumpPermille uint32
	// Seed isolates the benchmark's pseudo-random structure.
	Seed uint64
}

// ScaledInstrs returns the nominal whole-run length at the given scale.
func (s Spec) ScaledInstrs(scale Scale) uint64 {
	n := s.WholeInstrs / scale.Div
	min := 40 * scale.SliceLen
	if n < min {
		n = min
	}
	return n
}

// TargetWeights returns the designed phase-weight vector (descending), the
// distribution the SimPoint pipeline should approximately recover.
func (s Spec) TargetWeights() []float64 {
	return solveWeights(s.Phases, s.Phases90, s.DominantWeight)
}

// Build constructs the benchmark's program at the given scale.
func (s Spec) Build(scale Scale) (*program.Program, error) {
	if s.Phases <= 0 || s.Phases90 <= 0 || s.Phases90 > s.Phases {
		return nil, fmt.Errorf("workload %s: invalid phase counts %d/%d", s.Name, s.Phases, s.Phases90)
	}
	weights := s.TargetWeights()
	total := s.ScaledInstrs(scale)

	// Floor tiny phases at a few slices so every designed phase is
	// discoverable by clustering, then renormalise.
	floor := float64(12*scale.SliceLen) / float64(total)
	weights = floorWeights(weights, floor)

	specs := make([]program.PhaseSpec, s.Phases)
	for i := range specs {
		h := phaseHash(s.Seed, i)
		specs[i] = program.PhaseSpec{
			Blocks:          6 + int(h%11),
			MinBlockLen:     4,
			MaxBlockLen:     14,
			Mix:             jitterMix(s.BaseMix, h>>8),
			Pattern:         s.phasePattern(i, h, scale.CacheDivs.L3),
			JumpPermille:    jitterPermille(s.JumpPermille, h>>24),
			ShareBlocksWith: -1,
		}
		// Roughly a third of phases share a couple of blocks with phase 0,
		// modelling common library code.
		if i > 0 && (h>>40)%10 < 3 {
			specs[i].ShareBlocksWith = 0
			specs[i].ShareCount = 2
		}
	}

	sched := buildSchedule(weights, total, s.Seed, 4*scale.SliceLen)
	return program.BuildProgram(s.Name, s.Seed, specs, sched)
}

// phasePattern derives phase i's memory pattern from the benchmark
// profile. Working-set and streaming-region sizes are divided by wsDiv —
// the scale's LLC divisor — so footprint-to-cache ratios match the paper's
// machine regardless of scale.
func (s Spec) phasePattern(i int, h uint64, wsDiv uint64) program.MemPattern {
	if wsDiv == 0 {
		wsDiv = 1
	}
	ws := logInterp(s.Mem.MinWS, s.Mem.MaxWS, float64((h>>16)%1024)/1023) / wsDiv
	// Round the working set to 64 bytes.
	ws = ws &^ 63
	if ws < 2048 {
		ws = 2048
	}
	seq := 550 + uint32((h>>32)%300) // 55-85 % sequential
	stream := s.Mem.StreamPermille
	if stream > 0 {
		stream = jitterPermille(stream, h>>48)
	}
	if seq+stream > 950 {
		seq = 950 - stream
	}
	streamBytes := uint64(256<<20) / wsDiv
	if streamBytes < 1<<20 {
		streamBytes = 1 << 20
	}
	return program.MemPattern{
		Base:            (uint64(i) + 1) << 26, // 64 MB apart per phase
		WorkingSetBytes: ws,
		Stride:          s.Mem.Stride,
		SeqPermille:     seq,
		StreamPermille:  stream,
		StreamBase:      1 << 40,
		StreamBytes:     streamBytes,
	}
}

// solveWeights produces n descending weights summing to 1 such that the
// smallest prefix reaching 0.9 has approximately n90 elements. Weights are
// geometric (w_i ∝ r^i); r is found by bisection on the prefix count. When
// dominant > 0, the first weight is pinned and the remaining mass decays
// geometrically so that n90-1 further phases complete the 0.9 prefix.
func solveWeights(n, n90 int, dominant float64) []float64 {
	if n == 1 {
		return []float64{1}
	}
	if dominant > 0 {
		rest := solveWeightsPlain(n-1, maxInt(1, n90-1), (0.9-dominant)/(1-dominant))
		out := make([]float64, 0, n)
		out = append(out, dominant)
		for _, w := range rest {
			out = append(out, w*(1-dominant))
		}
		return out
	}
	return solveWeightsPlain(n, n90, 0.9)
}

// solveWeightsPlain finds geometric weights over n phases whose smallest
// prefix reaching `target` mass has n90 elements.
func solveWeightsPlain(n, n90 int, target float64) []float64 {
	if n90 >= n {
		// Uniform is the flattest possible; prefix to target is ~target*n.
		return geometric(n, 1)
	}
	lo, hi := 0.05, 1.0
	for iter := 0; iter < 60; iter++ {
		r := (lo + hi) / 2
		m := prefixCount(geometric(n, r), target)
		switch {
		case m > n90:
			hi = r // too flat; skew more
		case m < n90:
			lo = r // too skewed; flatten
		default:
			return geometric(n, r)
		}
	}
	return geometric(n, (lo+hi)/2)
}

// geometric returns n weights ∝ r^i, normalised, descending.
func geometric(n int, r float64) []float64 {
	w := make([]float64, n)
	cur, sum := 1.0, 0.0
	for i := range w {
		w[i] = cur
		sum += cur
		cur *= r
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// prefixCount returns the smallest number of leading (descending) weights
// whose sum reaches target.
func prefixCount(w []float64, target float64) int {
	sorted := append([]float64(nil), w...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	acc := 0.0
	for i, v := range sorted {
		acc += v
		if acc >= target-1e-12 {
			return i + 1
		}
	}
	return len(sorted)
}

// floorWeights raises every weight to at least floor and renormalises,
// preserving the descending order.
func floorWeights(w []float64, floor float64) []float64 {
	if floor <= 0 || floor*float64(len(w)) >= 1 {
		return w
	}
	out := make([]float64, len(w))
	var excess, flex float64
	for i, v := range w {
		if v < floor {
			out[i] = floor
			excess += floor - v
		} else {
			out[i] = v
			flex += v - floor
		}
	}
	if flex <= 0 {
		return out
	}
	// Take the excess proportionally from the weights above the floor.
	for i := range out {
		if out[i] > floor {
			out[i] -= excess * (out[i] - floor) / flex
		}
	}
	return out
}

// buildSchedule interleaves phase visits: each phase's instruction budget is
// split across several recurrences (more for heavier phases), and rounds
// emit segments in a hash-shuffled phase order — producing the scattered,
// recurrent phase behaviour SimPoint exploits.
func buildSchedule(weights []float64, total uint64, seed uint64, minSeg uint64) []program.Segment {
	n := len(weights)
	budget := make([]uint64, n)
	visits := make([]int, n)
	prefSeg := total / 120
	if prefSeg < minSeg {
		prefSeg = minSeg
	}
	for i, w := range weights {
		budget[i] = uint64(w * float64(total))
		if budget[i] < minSeg {
			budget[i] = minSeg
		}
		v := int(budget[i] / prefSeg)
		if v < 1 {
			v = 1
		}
		if v > 10 {
			v = 10
		}
		visits[i] = v
	}

	maxVisits := 0
	for _, v := range visits {
		if v > maxVisits {
			maxVisits = v
		}
	}

	var sched []program.Segment
	for round := 0; round < maxVisits; round++ {
		order := shuffledOrder(n, seed^uint64(round)*0x9e3779b97f4a7c15)
		for _, ph := range order {
			if round >= visits[ph] {
				continue
			}
			seg := budget[ph] / uint64(visits[ph])
			if round == visits[ph]-1 {
				// Last visit takes the remainder.
				seg = budget[ph] - seg*uint64(visits[ph]-1)
			}
			if seg == 0 {
				continue
			}
			sched = append(sched, program.Segment{Phase: ph, Instrs: seg})
		}
	}
	return sched
}

// shuffledOrder returns a deterministic permutation of 0..n-1.
func shuffledOrder(n int, seed uint64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Fisher-Yates with hashed draws.
	for i := n - 1; i > 0; i-- {
		j := int(phaseHash(seed, i) % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// jitterMix perturbs each mix category by up to ±20 % deterministically.
func jitterMix(base [4]float64, h uint64) [4]float64 {
	var out [4]float64
	for i := range base {
		f := 0.8 + 0.4*float64((h>>(8*i))&0xff)/255
		out[i] = base[i] * f
	}
	return out
}

// jitterPermille perturbs a permille value by up to ±50 %, clamped to
// [1, 900].
func jitterPermille(base uint32, h uint64) uint32 {
	f := 0.5 + float64(h&0xff)/255
	v := uint32(float64(base) * f)
	if v < 1 {
		v = 1
	}
	if v > 900 {
		v = 900
	}
	return v
}

// logInterp interpolates log-uniformly between lo and hi.
func logInterp(lo, hi uint64, t float64) uint64 {
	if lo == 0 {
		lo = 1
	}
	if hi <= lo {
		return lo
	}
	ratio := float64(hi) / float64(lo)
	return uint64(float64(lo) * math.Pow(ratio, t))
}

func phaseHash(seed uint64, i int) uint64 {
	x := seed ^ uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
