package workload_test

import (
	"fmt"

	"specsampling/internal/workload"
)

func ExampleByName() {
	spec, err := workload.ByName("505.mcf_r")
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Name, spec.Class, spec.Phases, spec.Phases90)
	// Output: 505.mcf_r SPECrate INT 18 9
}

func ExampleSpec_Build() {
	spec, _ := workload.ByName("520.omnetpp_r")
	prog, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(prog.Phases), "phases,", prog.NumBlocks(), "static blocks")
	// Output: 4 phases, 40 static blocks
}

func ExampleScaleByName() {
	scale, _ := workload.ScaleByName("full")
	fmt.Println(scale.SliceLen, "instructions per slice (stands for", scale.PaperSliceInstrs, "in the paper)")
	// Output: 4096 instructions per slice (stands for 30000000 in the paper)
}
