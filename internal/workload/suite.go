package workload

import "fmt"

// Memory profiles by benchmark character. Working-set ceilings are chosen
// against the Table I hierarchy (32 kB L1D, 2 MB L2, 16 MB L3): cacheable
// profiles stay mostly inside L2/L3 so their steady-state miss rates depend
// on warm-up, while streaming-heavy profiles generate compulsory LLC traffic
// in whole and sampled runs alike.
var (
	// pointerChasing: mcf/omnetpp/xalancbmk-like — large irregular working
	// sets, little streaming.
	pointerChasing = MemProfile{MinWS: 512 << 10, MaxWS: 12 << 20, StreamPermille: 30, Stride: 8}
	// computeLean: exchange2/deepsjeng/leela-like — small hot working sets.
	computeLean = MemProfile{MinWS: 32 << 10, MaxWS: 512 << 10, StreamPermille: 10, Stride: 8}
	// mixedInt: perlbench/gcc/x264/xz-like — moderate working sets.
	mixedInt = MemProfile{MinWS: 128 << 10, MaxWS: 4 << 20, StreamPermille: 40, Stride: 8}
	// fpStreaming: bwaves/lbm/fotonik3d-like — stencil codes that stream
	// through large grids.
	fpStreaming = MemProfile{MinWS: 1 << 20, MaxWS: 10 << 20, StreamPermille: 140, Stride: 8}
	// fpCacheable: namd/nab/povray/imagick-like — FP codes with good reuse.
	fpCacheable = MemProfile{MinWS: 64 << 10, MaxWS: 2 << 20, StreamPermille: 20, Stride: 8}
	// fpLarge: parest/cactuBSSN/blender-like — large FP working sets.
	fpLarge = MemProfile{MinWS: 512 << 10, MaxWS: 8 << 20, StreamPermille: 70, Stride: 8}
)

// Standard instruction-mix targets (NO_MEM, MEM_R, MEM_W, MEM_RW). The
// suite averages land near the paper's whole-run distribution of 49.1 %
// compute-only, 36.7 % memory-read and 12.9 % memory-write instructions.
var (
	mixIntTypical = [4]float64{0.48, 0.37, 0.13, 0.02}
	mixIntCompute = [4]float64{0.58, 0.30, 0.11, 0.01}
	mixIntMemory  = [4]float64{0.42, 0.42, 0.15, 0.01}
	mixFPTypical  = [4]float64{0.50, 0.36, 0.13, 0.01}
	mixFPCompute  = [4]float64{0.56, 0.32, 0.11, 0.01}
	mixFPMemory   = [4]float64{0.44, 0.41, 0.14, 0.01}
)

// suite is the synthetic SPEC CPU2017 subset of the paper's Table II. The
// Phases and Phases90 columns are the paper's measured simulation-point
// counts; WholeInstrs are full-scale nominal lengths (the paper's dynamic
// counts divided by ~125 000, keeping the relative magnitudes of Figure 5).
var suite = []Spec{
	// SPECrate INT
	{Name: "500.perlbench_r", Number: 500, Class: IntRate, WholeInstrs: 44 << 20, Phases: 18, Phases90: 11,
		BaseMix: mixIntTypical, Mem: mixedInt, JumpPermille: 70, Seed: 0x500},
	{Name: "502.gcc_r", Number: 502, Class: IntRate, WholeInstrs: 36 << 20, Phases: 27, Phases90: 15,
		BaseMix: mixIntTypical, Mem: mixedInt, JumpPermille: 90, Seed: 0x502},
	{Name: "505.mcf_r", Number: 505, Class: IntRate, WholeInstrs: 40 << 20, Phases: 18, Phases90: 9,
		BaseMix: mixIntMemory, Mem: pointerChasing, JumpPermille: 110, Seed: 0x505},
	{Name: "520.omnetpp_r", Number: 520, Class: IntRate, WholeInstrs: 28 << 20, Phases: 4, Phases90: 3,
		BaseMix: mixIntMemory, Mem: pointerChasing, JumpPermille: 100, Seed: 0x520},
	{Name: "525.x264_r", Number: 525, Class: IntRate, WholeInstrs: 48 << 20, Phases: 23, Phases90: 15,
		BaseMix: mixIntTypical, Mem: mixedInt, JumpPermille: 50, Seed: 0x525},
	{Name: "531.deepsjeng_r", Number: 531, Class: IntRate, WholeInstrs: 40 << 20, Phases: 20, Phases90: 15,
		BaseMix: mixIntCompute, Mem: computeLean, JumpPermille: 80, Seed: 0x531},
	{Name: "541.leela_r", Number: 541, Class: IntRate, WholeInstrs: 44 << 20, Phases: 19, Phases90: 12,
		BaseMix: mixIntCompute, Mem: computeLean, JumpPermille: 85, Seed: 0x541},
	{Name: "548.exchange2_r", Number: 548, Class: IntRate, WholeInstrs: 48 << 20, Phases: 21, Phases90: 16,
		BaseMix: mixIntCompute, Mem: computeLean, JumpPermille: 40, Seed: 0x548},
	{Name: "557.xz_r", Number: 557, Class: IntRate, WholeInstrs: 32 << 20, Phases: 13, Phases90: 7,
		BaseMix: mixIntMemory, Mem: mixedInt, JumpPermille: 75, Seed: 0x557},

	// SPECspeed INT
	{Name: "600.perlbench_s", Number: 600, Class: IntSpeed, WholeInstrs: 72 << 20, Phases: 21, Phases90: 13,
		BaseMix: mixIntTypical, Mem: mixedInt, JumpPermille: 70, Seed: 0x600},
	{Name: "602.gcc_s", Number: 602, Class: IntSpeed, WholeInstrs: 64 << 20, Phases: 15, Phases90: 5,
		BaseMix: mixIntTypical, Mem: mixedInt, JumpPermille: 90, Seed: 0x602},
	{Name: "605.mcf_s", Number: 605, Class: IntSpeed, WholeInstrs: 80 << 20, Phases: 28, Phases90: 14,
		BaseMix: mixIntMemory, Mem: pointerChasing, JumpPermille: 110, Seed: 0x605},
	{Name: "620.omnetpp_s", Number: 620, Class: IntSpeed, WholeInstrs: 52 << 20, Phases: 3, Phases90: 2,
		BaseMix: mixIntMemory, Mem: pointerChasing, JumpPermille: 100, Seed: 0x620},
	{Name: "623.xalancbmk_s", Number: 623, Class: IntSpeed, WholeInstrs: 68 << 20, Phases: 25, Phases90: 19,
		BaseMix: mixIntMemory, Mem: pointerChasing, JumpPermille: 95, Seed: 0x623},
	{Name: "625.x264_s", Number: 625, Class: IntSpeed, WholeInstrs: 76 << 20, Phases: 19, Phases90: 13,
		BaseMix: mixIntTypical, Mem: mixedInt, JumpPermille: 50, Seed: 0x625},
	{Name: "631.deepsjeng_s", Number: 631, Class: IntSpeed, WholeInstrs: 64 << 20, Phases: 12, Phases90: 10,
		BaseMix: mixIntCompute, Mem: computeLean, JumpPermille: 80, Seed: 0x631},
	{Name: "641.leela_s", Number: 641, Class: IntSpeed, WholeInstrs: 72 << 20, Phases: 20, Phases90: 13,
		BaseMix: mixIntCompute, Mem: computeLean, JumpPermille: 85, Seed: 0x641},
	{Name: "648.exchange2_s", Number: 648, Class: IntSpeed, WholeInstrs: 80 << 20, Phases: 19, Phases90: 15,
		BaseMix: mixIntCompute, Mem: computeLean, JumpPermille: 40, Seed: 0x648},
	{Name: "657.xz_s", Number: 657, Class: IntSpeed, WholeInstrs: 60 << 20, Phases: 18, Phases90: 10,
		BaseMix: mixIntMemory, Mem: mixedInt, JumpPermille: 75, Seed: 0x657},

	// SPECrate FP
	{Name: "503.bwaves_r", Number: 503, Class: FPRate, WholeInstrs: 128 << 20, Phases: 26, Phases90: 7,
		DominantWeight: 0.60,
		BaseMix:        mixFPMemory, Mem: fpStreaming, JumpPermille: 6, Seed: 0x503},
	{Name: "507.cactuBSSN_r", Number: 507, Class: FPRate, WholeInstrs: 96 << 20, Phases: 25, Phases90: 4,
		BaseMix: mixFPMemory, Mem: fpLarge, JumpPermille: 8, Seed: 0x507},
	{Name: "508.namd_r", Number: 508, Class: FPRate, WholeInstrs: 88 << 20, Phases: 26, Phases90: 17,
		BaseMix: mixFPCompute, Mem: fpCacheable, JumpPermille: 20, Seed: 0x508},
	{Name: "510.parest_r", Number: 510, Class: FPRate, WholeInstrs: 92 << 20, Phases: 23, Phases90: 14,
		BaseMix: mixFPTypical, Mem: fpLarge, JumpPermille: 35, Seed: 0x510},
	{Name: "511.povray_r", Number: 511, Class: FPRate, WholeInstrs: 84 << 20, Phases: 23, Phases90: 19,
		BaseMix: mixFPCompute, Mem: fpCacheable, JumpPermille: 45, Seed: 0x511},
	{Name: "519.lbm_r", Number: 519, Class: FPRate, WholeInstrs: 72 << 20, Phases: 22, Phases90: 8,
		BaseMix: mixFPMemory, Mem: fpStreaming, JumpPermille: 6, Seed: 0x519},
	{Name: "526.blender_r", Number: 526, Class: FPRate, WholeInstrs: 76 << 20, Phases: 22, Phases90: 14,
		BaseMix: mixFPTypical, Mem: fpLarge, JumpPermille: 55, Seed: 0x526},
	{Name: "538.imagick_r", Number: 538, Class: FPRate, WholeInstrs: 64 << 20, Phases: 14, Phases90: 7,
		BaseMix: mixFPCompute, Mem: fpCacheable, JumpPermille: 25, Seed: 0x538},
	{Name: "544.nab_r", Number: 544, Class: FPRate, WholeInstrs: 68 << 20, Phases: 22, Phases90: 10,
		BaseMix: mixFPCompute, Mem: fpCacheable, JumpPermille: 30, Seed: 0x544},
	{Name: "549.fotonik3d_r", Number: 549, Class: FPRate, WholeInstrs: 80 << 20, Phases: 27, Phases90: 11,
		BaseMix: mixFPMemory, Mem: fpStreaming, JumpPermille: 8, Seed: 0x549},
}

// Suite returns the full synthetic suite (a copy; callers may reorder).
func Suite() []Spec {
	out := make([]Spec, len(suite))
	copy(out, suite)
	return out
}

// ByName finds a benchmark by its full SPEC name ("623.xalancbmk_s") or its
// short name ("xalancbmk_s").
func ByName(name string) (Spec, error) {
	for _, s := range suite {
		if s.Name == name || shortName(s.Name) == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all full benchmark names in suite order.
func Names() []string {
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Name
	}
	return out
}

// shortName strips the leading SPEC number ("623.xalancbmk_s" ->
// "xalancbmk_s").
func shortName(full string) string {
	for i := 0; i < len(full); i++ {
		if full[i] == '.' {
			return full[i+1:]
		}
	}
	return full
}
