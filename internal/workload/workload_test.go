package workload

import (
	"math"
	"testing"

	"specsampling/internal/pin"
	"specsampling/internal/pintool"
)

func TestSuiteMatchesTableII(t *testing.T) {
	s := Suite()
	if len(s) != 29 {
		t.Fatalf("suite has %d benchmarks, Table II lists 29", len(s))
	}
	var sumPts, sum90 int
	for _, b := range s {
		if b.Phases <= 0 || b.Phases90 <= 0 || b.Phases90 > b.Phases {
			t.Errorf("%s: bad phase counts %d/%d", b.Name, b.Phases, b.Phases90)
		}
		sumPts += b.Phases
		sum90 += b.Phases90
	}
	avgPts := float64(sumPts) / float64(len(s))
	avg90 := float64(sum90) / float64(len(s))
	// Table II averages: 19.75 and 11.31.
	if math.Abs(avgPts-19.75) > 0.01 {
		t.Errorf("average simulation points = %v, Table II says 19.75", avgPts)
	}
	if math.Abs(avg90-11.31) > 0.01 {
		t.Errorf("average 90th-percentile points = %v, Table II says 11.31", avg90)
	}
}

func TestSpecificTableIIRows(t *testing.T) {
	rows := map[string][2]int{
		"500.perlbench_r": {18, 11},
		"502.gcc_r":       {27, 15},
		"520.omnetpp_r":   {4, 3},
		"620.omnetpp_s":   {3, 2},
		"623.xalancbmk_s": {25, 19},
		"503.bwaves_r":    {26, 7},
		"507.cactuBSSN_r": {25, 4},
		"549.fotonik3d_r": {27, 11},
	}
	for name, want := range rows {
		b, err := ByName(name)
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if b.Phases != want[0] || b.Phases90 != want[1] {
			t.Errorf("%s: phases %d/%d, Table II says %d/%d",
				name, b.Phases, b.Phases90, want[0], want[1])
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("623.xalancbmk_s"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("xalancbmk_s"); err != nil {
		t.Error("short name lookup failed")
	}
	if _, err := ByName("999.nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 29 {
		t.Fatalf("%d names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate name %s", n)
		}
		seen[n] = true
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"full", "medium", "small"} {
		s, err := ScaleByName(name)
		if err != nil {
			t.Errorf("ScaleByName(%s): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("scale name %q", s.Name)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScaleFromEnv(t *testing.T) {
	t.Setenv("SPECSIM_SCALE", "medium")
	if s := ScaleFromEnv(ScaleSmall); s.Name != "medium" {
		t.Errorf("env scale not honoured: %s", s.Name)
	}
	t.Setenv("SPECSIM_SCALE", "bogus")
	if s := ScaleFromEnv(ScaleSmall); s.Name != "small" {
		t.Errorf("bogus env should fall back to default: %s", s.Name)
	}
}

func TestSliceLenForPaperSize(t *testing.T) {
	// 15M paper slice = half the 30M default.
	if got := ScaleFull.SliceLenForPaperSize(15_000_000); got != ScaleFull.SliceLen/2 {
		t.Errorf("15M slice = %d, want %d", got, ScaleFull.SliceLen/2)
	}
	if got := ScaleFull.SliceLenForPaperSize(100_000_000); got <= ScaleFull.SliceLen {
		t.Errorf("100M slice = %d, should exceed the default", got)
	}
	if got := ScaleSmall.SliceLenForPaperSize(1); got < 64 {
		t.Errorf("tiny slice not floored: %d", got)
	}
}

func TestTargetWeights(t *testing.T) {
	for _, b := range Suite() {
		w := b.TargetWeights()
		if len(w) != b.Phases {
			t.Fatalf("%s: %d weights for %d phases", b.Name, len(w), b.Phases)
		}
		var sum float64
		for i, v := range w {
			if v <= 0 {
				t.Fatalf("%s: weight %d is %v", b.Name, i, v)
			}
			if i > 0 && v > w[i-1]+1e-12 {
				t.Fatalf("%s: weights not descending at %d", b.Name, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: weights sum to %v", b.Name, sum)
		}
		// The designed 90th-percentile prefix must match Table II within 1.
		got := prefixCount(w, 0.9)
		if d := got - b.Phases90; d < -1 || d > 1 {
			t.Errorf("%s: weight prefix to 0.9 = %d, Table II says %d", b.Name, got, b.Phases90)
		}
	}
}

func TestBwavesDominantPhase(t *testing.T) {
	b, err := ByName("503.bwaves_r")
	if err != nil {
		t.Fatal(err)
	}
	w := b.TargetWeights()
	if w[0] < 0.55 {
		t.Errorf("bwaves_r dominant weight = %v, paper reports ~0.60", w[0])
	}
	top3 := w[0] + w[1] + w[2]
	if top3 < 0.70 || top3 > 0.92 {
		t.Errorf("bwaves_r top-3 weight = %v, paper reports ~0.80", top3)
	}
}

func TestBuildAllBenchmarksSmall(t *testing.T) {
	for _, b := range Suite() {
		p, err := b.Build(ScaleSmall)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(p.Phases) != b.Phases {
			t.Errorf("%s: program has %d phases, want %d", b.Name, len(p.Phases), b.Phases)
		}
		if p.TotalInstrs() == 0 {
			t.Errorf("%s: empty program", b.Name)
		}
		// Every phase must appear in the schedule.
		seen := make([]bool, len(p.Phases))
		for _, seg := range p.Schedule {
			seen[seg.Phase] = true
		}
		for i, ok := range seen {
			if !ok {
				t.Errorf("%s: phase %d never scheduled", b.Name, i)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	b, _ := ByName("505.mcf_r")
	p1, err := b.Build(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := b.Build(ScaleSmall)
	if p1.NumBlocks() != p2.NumBlocks() || len(p1.Schedule) != len(p2.Schedule) {
		t.Fatal("same spec built different programs")
	}
	for i := range p1.Schedule {
		if p1.Schedule[i] != p2.Schedule[i] {
			t.Fatal("schedules differ")
		}
	}
}

func TestBuildRunsAndMixIsPlausible(t *testing.T) {
	b, _ := ByName("623.xalancbmk_s")
	p, err := b.Build(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	e := pin.NewEngine(p)
	mix := pintool.NewLdStMix()
	if err := e.Attach(mix); err != nil {
		t.Fatal(err)
	}
	e.RunToEnd()
	fr := mix.Fractions()
	// Whole-suite paper averages are 49.1/36.7/12.9; individual benchmarks
	// scatter, so assert loose plausibility.
	if fr[0] < 0.30 || fr[0] > 0.75 {
		t.Errorf("NO_MEM share = %v", fr[0])
	}
	if fr[1] < 0.15 || fr[1] > 0.55 {
		t.Errorf("MEM_R share = %v", fr[1])
	}
	if fr[2] < 0.04 || fr[2] > 0.30 {
		t.Errorf("MEM_W share = %v", fr[2])
	}
}

func TestPhaseWeightsApproximateTargets(t *testing.T) {
	// The realised schedule weights should track the designed weights for
	// the heavy phases (floors distort the tail).
	b, _ := ByName("503.bwaves_r")
	p, err := b.Build(ScaleMedium)
	if err != nil {
		t.Fatal(err)
	}
	got := p.PhaseWeights()
	want := b.TargetWeights()
	if math.Abs(got[0]-want[0]) > 0.08 {
		t.Errorf("dominant phase realised weight %v vs designed %v", got[0], want[0])
	}
}

func TestScaledInstrs(t *testing.T) {
	b, _ := ByName("502.gcc_r")
	full := b.ScaledInstrs(ScaleFull)
	small := b.ScaledInstrs(ScaleSmall)
	if full != b.WholeInstrs {
		t.Errorf("full scale changed length: %d vs %d", full, b.WholeInstrs)
	}
	if small >= full {
		t.Error("small scale is not smaller")
	}
	if small < 40*ScaleSmall.SliceLen {
		t.Errorf("small scale below the slice floor: %d", small)
	}
}

func TestSolveWeightsEdgeCases(t *testing.T) {
	if w := solveWeights(1, 1, 0); len(w) != 1 || w[0] != 1 {
		t.Errorf("single phase weights = %v", w)
	}
	// n90 == n forces uniform.
	w := solveWeights(5, 5, 0)
	for _, v := range w {
		if math.Abs(v-0.2) > 1e-9 {
			t.Errorf("uniform weights = %v", w)
			break
		}
	}
}

func TestFloorWeights(t *testing.T) {
	w := []float64{0.7, 0.2, 0.06, 0.03, 0.01}
	out := floorWeights(w, 0.05)
	var sum float64
	for i, v := range out {
		if v < 0.05-1e-12 {
			t.Errorf("weight %d below floor: %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("floored weights sum to %v", sum)
	}
	// Degenerate floor is a no-op.
	same := floorWeights(w, 0.5)
	if &same[0] == &w[0] {
		// returned as-is is fine; just ensure content preserved
		_ = same
	}
}

func TestClassString(t *testing.T) {
	if IntRate.String() != "SPECrate INT" || FPRate.String() != "SPECrate FP" {
		t.Error("class names wrong")
	}
	if IntSpeed.String() != "SPECspeed INT" || FPSpeed.String() != "SPECspeed FP" {
		t.Error("class names wrong")
	}
}

func TestShortName(t *testing.T) {
	if shortName("623.xalancbmk_s") != "xalancbmk_s" {
		t.Error("shortName failed")
	}
	if shortName("nodot") != "nodot" {
		t.Error("shortName without dot failed")
	}
}
