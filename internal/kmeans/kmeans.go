// Package kmeans implements the clustering machinery SimPoint 3.0 uses to
// group execution slices: Lloyd's algorithm with k-means++ seeding,
// multiple restarts, and Bayesian Information Criterion (BIC) model
// selection over k (Pelleg & Moore's x-means BIC, as adopted by SimPoint).
//
// The kernels operate on a flat row-major copy of the point set with
// precomputed squared norms, reuse scratch buffers across Lloyd iterations
// and restarts, and parallelise both the assignment step and the
// independent candidate-k runs of BestK. On top of the norm-expansion
// pruning, Lloyd iterations maintain Hamerly-style triangle-inequality
// lower bounds (see bounded.go) that skip the full centroid scan for
// points provably still closest to their assigned centroid — with a
// conservative floating-point margin sized so the bounded path is
// bit-identical to the plain scan. Results are deterministic in the
// configuration seed and, by construction, independent of Workers: every
// per-point decision is computed from the same inputs regardless of how
// points are partitioned across goroutines, and all floating-point
// reductions (WCSS, centroid sums) happen in a fixed serial order.
package kmeans

import (
	"fmt"
	"math"
	"sync"
	"time"

	"specsampling/internal/obs"
	"specsampling/internal/rng"
	"specsampling/internal/sched"
)

// Clustering metrics: restart/iteration counts are always-on atomics;
// candidate-k timings are observed only when a tracer is installed.
var (
	runCounter     = obs.GetCounter("kmeans.runs")
	restartCounter = obs.GetCounter("kmeans.restarts")
	iterCounter    = obs.GetCounter("kmeans.lloyd_iters")
	candidateKMS   = obs.GetHistogram("kmeans.candidate_k_ms")
)

// Config controls a clustering run.
type Config struct {
	// Restarts is the number of independent k-means++ initialisations; the
	// best (lowest within-cluster sum of squares) run wins.
	Restarts int
	// MaxIter bounds Lloyd iterations per restart.
	MaxIter int
	// Seed makes the run deterministic.
	Seed uint64
	// SampleSize, when > 0 and smaller than the point count, clusters on a
	// deterministic subsample and then assigns all points to the resulting
	// centroids. SimPoint supports the same optimisation for very long
	// programs (tens of thousands of slices).
	SampleSize int
	// Workers bounds the parallelism of the assignment kernel and of
	// BestK's candidate-k runs; <= 0 uses GOMAXPROCS. The result is
	// identical for every worker count.
	Workers int
}

// DefaultConfig returns the configuration used throughout the reproduction.
func DefaultConfig(seed uint64) Config {
	return Config{Restarts: 3, MaxIter: 40, Seed: seed, SampleSize: 4096}
}

// Normalize resolves zero values to their documented defaults: Restarts 1,
// MaxIter 40 (Workers stays as-is and resolves through sched.Workers at the
// point of use, so a Config normalised on one machine is portable to
// another). This is the single place kmeans defaults live; Run and BestK
// call it on entry, so a zero Config (plus a k) is always safe.
//
// Note the deliberate asymmetry with DefaultConfig: a zero Restarts
// normalises to 1 — the historical behaviour direct Run callers rely on for
// bit-identical results — while DefaultConfig opts into 3 restarts and
// subsampling for the pipeline.
func (c Config) Normalize() Config {
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 40
	}
	return c
}

// Result is a clustering of a point set.
type Result struct {
	// K is the number of clusters actually used (clusters may come out
	// empty and are dropped, so K can be below the requested k).
	K int
	// Assign maps each point index to its cluster in [0, K).
	Assign []int
	// Centroids are the cluster centres.
	Centroids [][]float64
	// Sizes counts points per cluster.
	Sizes []int
	// WCSS is the total within-cluster sum of squared distances.
	WCSS float64
}

// ------------------------------------------------------------- flat layout --

// matrix is a flat row-major point set: row i is data[i*d : (i+1)*d].
// norm[i] and snorm[i] hold ‖xᵢ‖² and ‖xᵢ‖, precomputed once so the
// assignment kernel can expand ‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖² and prune
// candidate centroids with the norm lower bound (‖x‖−‖c‖)² ≤ ‖x−c‖².
// maxSnorm is the largest point norm — the scale the bounded kernel's
// floating-point safety margin derives from.
type matrix struct {
	data     []float64
	norm     []float64
	snorm    []float64
	maxSnorm float64
	n, d     int
}

func (m *matrix) row(i int) []float64 { return m.data[i*m.d : (i+1)*m.d] }

// flatten copies points into a matrix and precomputes the per-point norms.
func flatten(points [][]float64) *matrix {
	n, d := len(points), len(points[0])
	m := &matrix{
		data:  make([]float64, n*d),
		norm:  make([]float64, n),
		snorm: make([]float64, n),
		n:     n,
		d:     d,
	}
	for i, p := range points {
		copy(m.data[i*d:], p)
		var s float64
		for _, x := range p {
			s += x * x
		}
		m.norm[i] = s
		sq := math.Sqrt(s)
		m.snorm[i] = sq
		if sq > m.maxSnorm {
			m.maxSnorm = sq
		}
	}
	return m
}

// gather builds the submatrix of rows idx.
func (m *matrix) gather(idx []int) *matrix {
	out := &matrix{
		data:  make([]float64, len(idx)*m.d),
		norm:  make([]float64, len(idx)),
		snorm: make([]float64, len(idx)),
		n:     len(idx),
		d:     m.d,
	}
	for i, j := range idx {
		copy(out.data[i*m.d:(i+1)*m.d], m.row(j))
		out.norm[i] = m.norm[j]
		out.snorm[i] = m.snorm[j]
		if out.snorm[i] > out.maxSnorm {
			out.maxSnorm = out.snorm[i]
		}
	}
	return out
}

// scratch holds every buffer one Lloyd run needs; it is reused across
// iterations, restarts and (through ensure) the candidate runs of a BestK
// sweep, so the inner loop performs no allocation.
type scratch struct {
	cents    []float64 // k*d flat centroids
	oldCents []float64 // k*d centroids before the last update (movement)
	sums     []float64 // k*d accumulation buffer for the update step
	cnorm    []float64 // k: ‖c‖² per centroid
	csqrt    []float64 // k: ‖c‖ per centroid (pruning bound)
	sizes    []int     // k
	assign   []int     // n: current assignment
	prev     []int     // n: previous iteration's assignment
	minD     []float64 // n: distance to the assigned centroid
	lb       []float64 // n: lower bound on the second-closest distance
	d2       []float64 // n: k-means++ D² weights
}

func newScratch(n, k, d int) *scratch {
	sc := &scratch{}
	sc.ensure(n, k, d)
	return sc
}

// ensure (re)sizes every buffer for an (n, k, d) run, growing allocations
// only when a previous use was smaller. No buffer carries state between
// runs: each is fully written before it is read (cents by seeding, sums and
// sizes by zeroing loops, assign by the -1 reset, minD/lb by the assignment
// pass, d2 by seeding), so reuse across BestK candidates is safe.
func (sc *scratch) ensure(n, k, d int) {
	sc.cents = growFloat(sc.cents, k*d)
	sc.oldCents = growFloat(sc.oldCents, k*d)
	sc.sums = growFloat(sc.sums, k*d)
	sc.cnorm = growFloat(sc.cnorm, k)
	sc.csqrt = growFloat(sc.csqrt, k)
	if cap(sc.sizes) < k {
		sc.sizes = make([]int, k)
	}
	sc.sizes = sc.sizes[:k]
	if cap(sc.assign) < n {
		sc.assign = make([]int, n)
		sc.prev = make([]int, n)
	}
	sc.assign, sc.prev = sc.assign[:n], sc.prev[:n]
	sc.minD = growFloat(sc.minD, n)
	sc.lb = growFloat(sc.lb, n)
	sc.d2 = growFloat(sc.d2, n)
}

// growFloat reslices b to length n, reallocating only if the capacity is
// insufficient.
func growFloat(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// minParallelOps gates the parallel assignment path: below this many
// multiply-adds per pass the goroutine fan-out costs more than it saves.
const minParallelOps = 1 << 15

// parallelChunks splits [0, n) into contiguous chunks across workers.
// Chunk boundaries affect only which goroutine computes an index, never the
// value computed for it, so results are identical for every worker count.
func parallelChunks(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// assignPoints writes, for every point, the nearest centroid into sc.assign
// and the (clamped non-negative) squared distance into sc.minD. Distances
// use the expanded form ‖x‖² − 2·x·c + ‖c‖²; a centroid whose norm lower
// bound (‖x‖−‖c‖)² cannot beat the best distance so far is pruned without
// touching its coordinates. Ties keep the lowest centroid index.
func assignPoints(m *matrix, sc *scratch, k, workers int) {
	d := m.d
	if workers > 1 && m.n*k*d < minParallelOps {
		workers = 1
	}
	parallelChunks(workers, m.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			px := m.row(i)
			pn, ps := m.norm[i], m.snorm[i]
			best, bestD := 0, math.MaxFloat64
			for c := 0; c < k; c++ {
				if lb := ps - sc.csqrt[c]; lb*lb >= bestD {
					continue
				}
				row := sc.cents[c*d : (c+1)*d]
				var dot float64
				for j, x := range px {
					dot += x * row[j]
				}
				if dist := pn - 2*dot + sc.cnorm[c]; dist < bestD {
					best, bestD = c, dist
				}
			}
			if bestD < 0 {
				bestD = 0 // the expansion can go slightly negative at zero distance
			}
			sc.assign[i] = best
			sc.minD[i] = bestD
		}
	})
}

// refreshCentroidNorms recomputes ‖c‖² and ‖c‖ for the first k centroids.
func refreshCentroidNorms(sc *scratch, k, d int) {
	for c := 0; c < k; c++ {
		row := sc.cents[c*d : (c+1)*d]
		var s float64
		for _, x := range row {
			s += x * x
		}
		sc.cnorm[c] = s
		sc.csqrt[c] = math.Sqrt(s)
	}
}

// Run clusters points into at most k groups. Points must be non-empty and
// share a dimensionality. k is clamped to the point count.
func Run(points [][]float64, k int, cfg Config) (*Result, error) {
	if err := validatePoints(points, k); err != nil {
		return nil, err
	}
	return runFlat(flatten(points), k, cfg, nil, true)
}

// validatePoints checks the shared preconditions of Run and BestK.
func validatePoints(points [][]float64, k int) error {
	if len(points) == 0 {
		return fmt.Errorf("kmeans: no points")
	}
	if k <= 0 {
		return fmt.Errorf("kmeans: k = %d", k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	return nil
}

// runFlat is the clustering engine behind Run and the BestK sweep: it
// operates on an already-flattened matrix so a candidate sweep flattens the
// point set once, and reuses sc (grown as needed) so back-to-back runs do
// not reallocate the Lloyd buffers. sc may be nil. bounded selects the
// triangle-inequality kernel (the default); the plain kernel is kept as the
// bit-identical reference the determinism tests compare against.
func runFlat(m *matrix, k int, cfg Config, sc *scratch, bounded bool) (*Result, error) {
	if k > m.n {
		k = m.n
	}
	cfg = cfg.Normalize()
	workers := sched.Workers(cfg.Workers)
	runCounter.Add(1)

	train := m
	sampled := false
	if cfg.SampleSize > 0 && cfg.SampleSize < m.n {
		train = m.gather(sampleIndices(m.n, cfg.SampleSize, cfg.Seed))
		if k > train.n {
			k = train.n
		}
		sampled = true
	}

	r := rng.New(cfg.Seed ^ 0x6b6d)
	if sc == nil {
		sc = newScratch(train.n, k, train.d)
	} else {
		sc.ensure(train.n, k, train.d)
	}
	var best *Result
	for restart := 0; restart < cfg.Restarts; restart++ {
		restartCounter.Add(1)
		wcss := lloyd(train, k, cfg.MaxIter, workers, &r, sc, bounded)
		if best == nil || wcss < best.WCSS {
			best = materialize(train, sc, k, wcss)
		}
	}

	if sampled {
		// Re-assign the full point set to the trained centroids.
		best = assignMatrix(m, best.Centroids, workers)
	}
	return best, nil
}

// sampleIndices picks n distinct indices from [0, total) deterministically,
// evenly spread with a hashed offset so the sample covers the whole
// execution rather than a prefix.
func sampleIndices(total, n int, seed uint64) []int {
	idx := make([]int, n)
	step := float64(total) / float64(n)
	r := rng.New(seed ^ 0x5a3)
	off := r.Float64() * step
	for i := range idx {
		v := int(off + float64(i)*step)
		if v >= total {
			v = total - 1
		}
		idx[i] = v
	}
	return idx
}

// lloyd runs one k-means++ initialisation followed by Lloyd iterations on
// the flat matrix, leaving the final assignment, sizes and centroids in sc
// and returning the WCSS. The final iteration's assignment pass doubles as
// the result pass — no extra full-distance sweep is needed afterwards.
//
// With bounded set, iterations past the first use the triangle-inequality
// kernel (bounded.go): per point, only the exact distance to the currently
// assigned centroid is recomputed, and the scan over the other k−1
// centroids is skipped whenever the maintained lower bound proves no other
// centroid can win. The safety margin makes the skip decision immune to
// floating-point slop, so both kernels produce bit-identical assignments,
// centroids and WCSS — pinned by TestBoundedMatchesPlain*.
func lloyd(m *matrix, k, maxIter, workers int, r *rng.RNG, sc *scratch, bounded bool) float64 {
	seedPlusPlus(m, k, r, sc)
	for i := range sc.assign {
		sc.assign[i] = -1
	}
	margin := 0.0
	if bounded {
		margin = m.boundsMargin()
	}
	var wcss float64
	for iter := 0; ; iter++ {
		refreshCentroidNorms(sc, k, m.d)
		copy(sc.prev, sc.assign)
		if !bounded {
			assignPoints(m, sc, k, workers)
		} else if iter == 0 {
			assignPointsFull(m, sc, k, workers, margin)
		} else {
			assignPointsBounded(m, sc, k, workers, margin)
		}

		// Serial reduction in index order: sizes, WCSS and the convergence
		// flag are identical for every worker count.
		changed := false
		for c := 0; c < k; c++ {
			sc.sizes[c] = 0
		}
		wcss = 0
		for i := 0; i < m.n; i++ {
			a := sc.assign[i]
			if a != sc.prev[i] {
				changed = true
			}
			sc.sizes[a]++
			wcss += sc.minD[i]
		}
		if (!changed && iter > 0) || iter >= maxIter {
			// The assignment (and WCSS) already reflect the current
			// centroids, so the loop exits with a coherent result in sc.
			iterCounter.Add(int64(iter + 1))
			return wcss
		}
		if bounded {
			copy(sc.oldCents[:k*m.d], sc.cents[:k*m.d])
		}
		updateCentroids(m, sc, k)
		if bounded {
			decayBounds(m, sc, k, margin)
		}
	}
}

// updateCentroids recomputes each centroid as the mean of its points.
// Empty clusters are re-seeded at the point currently farthest from its
// assigned centroid (the standard fix for dead centroids); the point's
// distance is then cleared so successive dead centroids pick distinct
// points.
func updateCentroids(m *matrix, sc *scratch, k int) {
	d := m.d
	for i := range sc.sums[:k*d] {
		sc.sums[i] = 0
	}
	for i := 0; i < m.n; i++ {
		row := m.row(i)
		cent := sc.sums[sc.assign[i]*d : (sc.assign[i]+1)*d]
		for j, x := range row {
			cent[j] += x
		}
	}
	for c := 0; c < k; c++ {
		if sc.sizes[c] == 0 {
			far, farD := 0, -1.0
			for i, dd := range sc.minD {
				if dd > farD {
					far, farD = i, dd
				}
			}
			sc.minD[far] = -1
			copy(sc.cents[c*d:(c+1)*d], m.row(far))
			continue
		}
		inv := 1 / float64(sc.sizes[c])
		for j := 0; j < d; j++ {
			sc.cents[c*d+j] = sc.sums[c*d+j] * inv
		}
	}
}

// materialize builds a Result from the scratch state of a finished Lloyd
// run, compacting away empty clusters. It threads the final iteration's
// assignment and WCSS through instead of re-deriving them with another full
// distance pass.
func materialize(m *matrix, sc *scratch, k int, wcss float64) *Result {
	remap := make([]int, k)
	var kept [][]float64
	var keptSizes []int
	for c := 0; c < k; c++ {
		if sc.sizes[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(kept)
		kept = append(kept, append([]float64(nil), sc.cents[c*m.d:(c+1)*m.d]...))
		keptSizes = append(keptSizes, sc.sizes[c])
	}
	assign := make([]int, m.n)
	for i, a := range sc.assign {
		assign[i] = remap[a]
	}
	return &Result{
		K:         len(kept),
		Assign:    assign,
		Centroids: kept,
		Sizes:     keptSizes,
		WCSS:      wcss,
	}
}

// assignMatrix builds a Result by assigning every row of m to its nearest
// centroid, dropping empty clusters.
func assignMatrix(m *matrix, centroids [][]float64, workers int) *Result {
	k, d := len(centroids), m.d
	sc := &scratch{
		cents:  make([]float64, k*d),
		cnorm:  make([]float64, k),
		csqrt:  make([]float64, k),
		sizes:  make([]int, k),
		assign: make([]int, m.n),
		minD:   make([]float64, m.n),
	}
	for c, cent := range centroids {
		copy(sc.cents[c*d:(c+1)*d], cent)
	}
	refreshCentroidNorms(sc, k, d)
	assignPoints(m, sc, k, workers)
	var wcss float64
	for i := 0; i < m.n; i++ {
		sc.sizes[sc.assign[i]]++
		wcss += sc.minD[i]
	}
	// Compact away empty clusters so K reflects reality.
	remap := make([]int, k)
	var kept [][]float64
	var keptSizes []int
	for c := 0; c < k; c++ {
		if sc.sizes[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(kept)
		kept = append(kept, centroids[c])
		keptSizes = append(keptSizes, sc.sizes[c])
	}
	for i := range sc.assign {
		sc.assign[i] = remap[sc.assign[i]]
	}
	return &Result{
		K:         len(kept),
		Assign:    sc.assign,
		Centroids: kept,
		Sizes:     keptSizes,
		WCSS:      wcss,
	}
}

// assignAll builds a Result by assigning every point to its nearest
// centroid, dropping empty clusters. It is the slice-of-slices entry point
// kept for callers that do not hold a flat matrix (the weighted engine).
func assignAll(points [][]float64, centroids [][]float64) *Result {
	return assignMatrix(flatten(points), centroids, 1)
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting,
// writing them into sc.cents. The RNG consumption order matches the
// original slice-based implementation exactly, so seeding is bit-compatible
// with earlier versions of this package.
func seedPlusPlus(m *matrix, k int, r *rng.RNG, sc *scratch) {
	d := m.d
	first := r.Intn(m.n)
	copy(sc.cents[0:d], m.row(first))

	d2 := sc.d2
	c0 := sc.cents[0:d]
	for i := 0; i < m.n; i++ {
		d2[i] = sqDist(m.row(i), c0)
	}
	for picked := 1; picked < k; picked++ {
		var total float64
		for _, dd := range d2 {
			total += dd
		}
		var idx int
		if total <= 0 {
			// All points coincide with existing centroids; any choice works.
			idx = r.Intn(m.n)
		} else {
			target := r.Float64() * total
			acc := 0.0
			idx = m.n - 1
			for i, dd := range d2 {
				acc += dd
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := sc.cents[picked*d : (picked+1)*d]
		copy(c, m.row(idx))
		for i := 0; i < m.n; i++ {
			if dd := sqDist(m.row(i), c); dd < d2[i] {
				d2[i] = dd
			}
		}
	}
}

// sqDist is the exact squared Euclidean distance (the seeding path keeps
// the direct form so D² sampling is bit-stable; the assignment kernel uses
// the norm expansion instead).
func sqDist(a, b []float64) float64 {
	var sum float64
	for i, x := range a {
		d := x - b[i]
		sum += d * d
	}
	return sum
}

// BIC scores a clustering under the spherical-Gaussian model of Pelleg &
// Moore (x-means), the criterion SimPoint 3.0 uses to pick k. Larger is
// better.
func BIC(points [][]float64, res *Result) float64 {
	r := float64(len(points))
	k := float64(res.K)
	d := float64(len(points[0]))
	if len(points) <= res.K {
		return math.Inf(-1)
	}
	// Pooled variance estimate.
	sigma2 := res.WCSS / (r - k)
	if sigma2 <= 0 {
		sigma2 = 1e-12
	}
	var ll float64
	for _, size := range res.Sizes {
		rn := float64(size)
		if rn == 0 {
			continue
		}
		ll += rn*math.Log(rn) -
			rn*math.Log(r) -
			rn*d/2*math.Log(2*math.Pi*sigma2) -
			(rn-1)/2
	}
	params := k*(d+1) + 1
	return ll - params/2*math.Log(r)
}

// BestK runs clustering for a range of candidate k values up to maxK and
// returns the chosen result following SimPoint's rule: compute BIC for each
// candidate, then pick the smallest k whose BIC reaches at least threshold
// (e.g. 0.9) of the way from the minimum to the maximum BIC observed.
// It also returns the per-candidate results and scores keyed by k.
//
// Candidate runs are independent (each derives its own seed from cfg.Seed
// and k) and execute in parallel across cfg.Workers goroutines; the
// selection scan afterwards walks candidates in ascending order, so the
// choice is identical to a serial sweep.
//
// The sweep flattens the point set once and shares the matrix (with its
// precomputed norms) across every candidate run; Lloyd scratch buffers are
// pooled so concurrent candidates allocate at most one scratch per worker.
// Centre buffers are thereby reused across k — results stay bit-identical
// to per-candidate Run calls because every buffer is fully rewritten before
// use and each candidate still derives its own seed.
func BestK(points [][]float64, maxK int, threshold float64, cfg Config) (*Result, map[int]float64, error) {
	if maxK <= 0 {
		return nil, nil, fmt.Errorf("kmeans: maxK = %d", maxK)
	}
	if err := validatePoints(points, 1); err != nil {
		return nil, nil, err
	}
	m := flatten(points)
	var pool sync.Pool
	run := func(_ [][]float64, k int, sub Config) (*Result, error) {
		sc, _ := pool.Get().(*scratch)
		if sc == nil {
			sc = &scratch{}
		}
		defer pool.Put(sc)
		return runFlat(m, k, sub, sc, true)
	}
	return bestKWith(points, maxK, threshold, cfg, run)
}

// bestKWith is the shared candidate sweep behind BestK and BestKWeighted.
func bestKWith(points [][]float64, maxK int, threshold float64, cfg Config,
	run func([][]float64, int, Config) (*Result, error)) (*Result, map[int]float64, error) {
	if maxK <= 0 {
		return nil, nil, fmt.Errorf("kmeans: maxK = %d", maxK)
	}
	if threshold <= 0 || threshold > 1 {
		threshold = 0.9
	}
	candidates := candidateKs(maxK)
	workers := sched.Workers(cfg.Workers)
	if workers > len(candidates) {
		workers = len(candidates)
	}
	timed := obs.Enabled()

	type cand struct {
		res *Result
		bic float64
		err error
	}
	out := make([]cand, len(candidates))
	runOne := func(i int) {
		k := candidates[i]
		sub := cfg
		sub.Seed = cfg.Seed ^ uint64(k)*0x9e37
		if workers > 1 {
			// The candidate sweep already saturates the worker budget;
			// keep each run's assignment kernel serial to avoid
			// oversubscription. Results do not depend on this choice.
			sub.Workers = 1
		}
		var began time.Time
		if timed {
			//lint:ignore nondet instrumentation-only clock read, gated on obs.Enabled; never flows into results
			began = time.Now()
		}
		res, err := run(points, k, sub)
		if timed {
			//lint:ignore nondet instrumentation-only duration for the candidate-k histogram; never flows into results
			candidateKMS.Observe(float64(time.Since(began).Microseconds()) / 1e3)
		}
		if err != nil {
			out[i].err = err
			return
		}
		out[i] = cand{res: res, bic: BIC(points, res)}
	}
	if workers <= 1 {
		for i := range candidates {
			runOne(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range candidates {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runOne(i)
			}(i)
		}
		wg.Wait()
	}

	results := make(map[int]*Result, len(candidates))
	scores := make(map[int]float64, len(candidates))
	minB, maxB := math.Inf(1), math.Inf(-1)
	for i, k := range candidates {
		if out[i].err != nil {
			return nil, nil, out[i].err
		}
		results[k] = out[i].res
		scores[k] = out[i].bic
		if out[i].bic < minB {
			minB = out[i].bic
		}
		if out[i].bic > maxB {
			maxB = out[i].bic
		}
	}
	span := maxB - minB
	for _, k := range candidates {
		if span == 0 || scores[k] >= minB+threshold*span {
			return results[k], scores, nil
		}
	}
	// Unreachable: the max-scoring k always passes.
	last := candidates[len(candidates)-1]
	return results[last], scores, nil
}

// candidateKs enumerates the k values BestK evaluates: every k up to 10,
// then steps of 2 (to keep the search cheap for large MaxK, in the spirit
// of SimPoint's binary search), always including maxK itself.
func candidateKs(maxK int) []int {
	var ks []int
	for k := 1; k <= maxK && k <= 10; k++ {
		ks = append(ks, k)
	}
	for k := 12; k <= maxK; k += 2 {
		ks = append(ks, k)
	}
	if len(ks) == 0 || ks[len(ks)-1] != maxK {
		ks = append(ks, maxK)
	}
	return ks
}
