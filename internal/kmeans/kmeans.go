// Package kmeans implements the clustering machinery SimPoint 3.0 uses to
// group execution slices: Lloyd's algorithm with k-means++ seeding,
// multiple restarts, and Bayesian Information Criterion (BIC) model
// selection over k (Pelleg & Moore's x-means BIC, as adopted by SimPoint).
package kmeans

import (
	"fmt"
	"math"

	"specsampling/internal/bbv"
	"specsampling/internal/rng"
)

// Config controls a clustering run.
type Config struct {
	// Restarts is the number of independent k-means++ initialisations; the
	// best (lowest within-cluster sum of squares) run wins.
	Restarts int
	// MaxIter bounds Lloyd iterations per restart.
	MaxIter int
	// Seed makes the run deterministic.
	Seed uint64
	// SampleSize, when > 0 and smaller than the point count, clusters on a
	// deterministic subsample and then assigns all points to the resulting
	// centroids. SimPoint supports the same optimisation for very long
	// programs (tens of thousands of slices).
	SampleSize int
}

// DefaultConfig returns the configuration used throughout the reproduction.
func DefaultConfig(seed uint64) Config {
	return Config{Restarts: 3, MaxIter: 40, Seed: seed, SampleSize: 4096}
}

// Result is a clustering of a point set.
type Result struct {
	// K is the number of clusters actually used (clusters may come out
	// empty and are dropped, so K can be below the requested k).
	K int
	// Assign maps each point index to its cluster in [0, K).
	Assign []int
	// Centroids are the cluster centres.
	Centroids [][]float64
	// Sizes counts points per cluster.
	Sizes []int
	// WCSS is the total within-cluster sum of squared distances.
	WCSS float64
}

// Run clusters points into at most k groups. Points must be non-empty and
// share a dimensionality. k is clamped to the point count.
func Run(points [][]float64, k int, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: k = %d", k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k > len(points) {
		k = len(points)
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 40
	}

	train := points
	var sampleIdx []int
	if cfg.SampleSize > 0 && cfg.SampleSize < len(points) {
		sampleIdx = sampleIndices(len(points), cfg.SampleSize, cfg.Seed)
		train = make([][]float64, len(sampleIdx))
		for i, idx := range sampleIdx {
			train[i] = points[idx]
		}
		if k > len(train) {
			k = len(train)
		}
	}

	r := rng.New(cfg.Seed ^ 0x6b6d)
	var best *Result
	for restart := 0; restart < cfg.Restarts; restart++ {
		res := lloyd(train, k, cfg.MaxIter, &r)
		if best == nil || res.WCSS < best.WCSS {
			best = res
		}
	}

	if sampleIdx != nil {
		// Re-assign the full point set to the trained centroids.
		best = assignAll(points, best.Centroids)
	}
	return best, nil
}

// sampleIndices picks n distinct indices from [0, total) deterministically,
// evenly spread with a hashed offset so the sample covers the whole
// execution rather than a prefix.
func sampleIndices(total, n int, seed uint64) []int {
	idx := make([]int, n)
	step := float64(total) / float64(n)
	r := rng.New(seed ^ 0x5a3)
	off := r.Float64() * step
	for i := range idx {
		v := int(off + float64(i)*step)
		if v >= total {
			v = total - 1
		}
		idx[i] = v
	}
	return idx
}

// lloyd runs one k-means++ initialisation followed by Lloyd iterations.
func lloyd(points [][]float64, k int, maxIter int, r *rng.RNG) *Result {
	centroids := seedPlusPlus(points, k, r)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	sizes := make([]int, len(centroids))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			bestC, bestD := 0, math.MaxFloat64
			for c, cent := range centroids {
				d := bbv.SqDist(p, cent)
				if d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
			sizes[bestC]++
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		for c := range centroids {
			for j := range centroids[c] {
				centroids[c][j] = 0
			}
		}
		for i, p := range points {
			cent := centroids[assign[i]]
			for j, x := range p {
				cent[j] += x
			}
		}
		for c := range centroids {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid, the standard fix for dead centroids.
				far, farD := 0, -1.0
				for i, p := range points {
					d := bbv.SqDist(p, centroids[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	return assignAll(points, centroids)
}

// assignAll builds a Result by assigning every point to its nearest
// centroid, dropping empty clusters.
func assignAll(points [][]float64, centroids [][]float64) *Result {
	assign := make([]int, len(points))
	sizes := make([]int, len(centroids))
	var wcss float64
	for i, p := range points {
		bestC, bestD := 0, math.MaxFloat64
		for c, cent := range centroids {
			d := bbv.SqDist(p, cent)
			if d < bestD {
				bestC, bestD = c, d
			}
		}
		assign[i] = bestC
		sizes[bestC]++
		wcss += bestD
	}
	// Compact away empty clusters so K reflects reality.
	remap := make([]int, len(centroids))
	var kept [][]float64
	var keptSizes []int
	for c := range centroids {
		if sizes[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(kept)
		kept = append(kept, centroids[c])
		keptSizes = append(keptSizes, sizes[c])
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return &Result{
		K:         len(kept),
		Assign:    assign,
		Centroids: kept,
		Sizes:     keptSizes,
		WCSS:      wcss,
	}
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, r *rng.RNG) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[r.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = bbv.SqDist(p, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			// All points coincide with existing centroids; any choice works.
			idx = r.Intn(len(points))
		} else {
			target := r.Float64() * total
			acc := 0.0
			idx = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := append([]float64(nil), points[idx]...)
		centroids = append(centroids, c)
		for i, p := range points {
			if d := bbv.SqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// BIC scores a clustering under the spherical-Gaussian model of Pelleg &
// Moore (x-means), the criterion SimPoint 3.0 uses to pick k. Larger is
// better.
func BIC(points [][]float64, res *Result) float64 {
	r := float64(len(points))
	k := float64(res.K)
	d := float64(len(points[0]))
	if len(points) <= res.K {
		return math.Inf(-1)
	}
	// Pooled variance estimate.
	sigma2 := res.WCSS / (r - k)
	if sigma2 <= 0 {
		sigma2 = 1e-12
	}
	var ll float64
	for _, size := range res.Sizes {
		rn := float64(size)
		if rn == 0 {
			continue
		}
		ll += rn*math.Log(rn) -
			rn*math.Log(r) -
			rn*d/2*math.Log(2*math.Pi*sigma2) -
			(rn-1)/2
	}
	params := k*(d+1) + 1
	return ll - params/2*math.Log(r)
}

// BestK runs clustering for a range of candidate k values up to maxK and
// returns the chosen result following SimPoint's rule: compute BIC for each
// candidate, then pick the smallest k whose BIC reaches at least threshold
// (e.g. 0.9) of the way from the minimum to the maximum BIC observed.
// It also returns the per-candidate results and scores keyed by k.
func BestK(points [][]float64, maxK int, threshold float64, cfg Config) (*Result, map[int]float64, error) {
	if maxK <= 0 {
		return nil, nil, fmt.Errorf("kmeans: maxK = %d", maxK)
	}
	if threshold <= 0 || threshold > 1 {
		threshold = 0.9
	}
	candidates := candidateKs(maxK)
	results := make(map[int]*Result, len(candidates))
	scores := make(map[int]float64, len(candidates))
	minB, maxB := math.Inf(1), math.Inf(-1)
	for _, k := range candidates {
		sub := cfg
		sub.Seed = cfg.Seed ^ uint64(k)*0x9e37
		res, err := Run(points, k, sub)
		if err != nil {
			return nil, nil, err
		}
		b := BIC(points, res)
		results[k] = res
		scores[k] = b
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	span := maxB - minB
	for _, k := range candidates {
		if span == 0 || scores[k] >= minB+threshold*span {
			return results[k], scores, nil
		}
	}
	// Unreachable: the max-scoring k always passes.
	last := candidates[len(candidates)-1]
	return results[last], scores, nil
}

// candidateKs enumerates the k values BestK evaluates: every k up to 10,
// then steps of 2 (to keep the search cheap for large MaxK, in the spirit
// of SimPoint's binary search), always including maxK itself.
func candidateKs(maxK int) []int {
	var ks []int
	for k := 1; k <= maxK && k <= 10; k++ {
		ks = append(ks, k)
	}
	for k := 12; k <= maxK; k += 2 {
		ks = append(ks, k)
	}
	if len(ks) == 0 || ks[len(ks)-1] != maxK {
		ks = append(ks, maxK)
	}
	return ks
}
