package kmeans

import (
	"math"
	"strconv"
	"testing"
)

// The parallel kernels must be invisible in the results: same Config (modulo
// Workers) means bitwise-identical Result for any worker count. This is the
// contract that lets the suite pipeline fan out without perturbing a single
// reported number.

// requireIdentical asserts two results are bitwise equal (no tolerance:
// determinism means identical floats, not close ones).
func requireIdentical(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.K != b.K {
		t.Fatalf("%s: K %d != %d", label, a.K, b.K)
	}
	if math.Float64bits(a.WCSS) != math.Float64bits(b.WCSS) {
		t.Fatalf("%s: WCSS %v != %v", label, a.WCSS, b.WCSS)
	}
	if len(a.Assign) != len(b.Assign) {
		t.Fatalf("%s: assign lengths %d != %d", label, len(a.Assign), len(b.Assign))
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("%s: assign[%d] = %d != %d", label, i, a.Assign[i], b.Assign[i])
		}
	}
	if len(a.Centroids) != len(b.Centroids) {
		t.Fatalf("%s: centroid counts %d != %d", label, len(a.Centroids), len(b.Centroids))
	}
	for c := range a.Centroids {
		for j := range a.Centroids[c] {
			if math.Float64bits(a.Centroids[c][j]) != math.Float64bits(b.Centroids[c][j]) {
				t.Fatalf("%s: centroid[%d][%d] %v != %v",
					label, c, j, a.Centroids[c][j], b.Centroids[c][j])
			}
		}
	}
	for c := range a.Sizes {
		if a.Sizes[c] != b.Sizes[c] {
			t.Fatalf("%s: size[%d] %d != %d", label, c, a.Sizes[c], b.Sizes[c])
		}
	}
}

func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	// n*k*d is far above the parallel gate, so Workers>1 actually exercises
	// the chunked assignment kernel.
	points, _ := gaussianClusters(8, 128, 8, 0.4, 7)
	base, err := Run(points, 8, DefaultConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		cfg := DefaultConfig(99)
		cfg.Workers = workers
		res, err := Run(points, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, base, res, "workers="+strconv.Itoa(workers))
	}
}

func TestRunIdenticalAcrossRepeats(t *testing.T) {
	points, _ := gaussianClusters(5, 100, 6, 0.5, 11)
	cfg := DefaultConfig(3)
	cfg.Workers = 4
	first, err := Run(points, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		res, err := Run(points, 5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, first, res, "repeat")
	}
}

func TestBestKIdenticalAcrossWorkerCounts(t *testing.T) {
	points, _ := gaussianClusters(4, 80, 6, 0.3, 13)
	serial := DefaultConfig(21)
	serial.Workers = 1
	baseRes, baseBIC, err := BestK(points, 12, 0.9, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := DefaultConfig(21)
	parallel.Workers = 8
	res, bic, err := BestK(points, 12, 0.9, parallel)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, baseRes, res, "bestk")
	if len(bic) != len(baseBIC) {
		t.Fatalf("BIC map sizes differ: %d != %d", len(bic), len(baseBIC))
	}
	for k, v := range baseBIC {
		if math.Float64bits(bic[k]) != math.Float64bits(v) {
			t.Fatalf("BIC[%d] %v != %v", k, bic[k], v)
		}
	}
}

func TestBestKWeightedIdenticalAcrossWorkerCounts(t *testing.T) {
	points, _ := gaussianClusters(3, 60, 5, 0.4, 17)
	weights := make([]float64, len(points))
	for i := range weights {
		weights[i] = 1 + float64(i%7)
	}
	serial := DefaultConfig(31)
	serial.Workers = 1
	baseRes, _, err := BestKWeighted(points, weights, 8, 0.9, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := DefaultConfig(31)
	parallel.Workers = 8
	res, _, err := BestKWeighted(points, weights, 8, 0.9, parallel)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, baseRes, res, "bestk-weighted")
}
