package kmeans

// Test-only bridges to the plain (pre-bounds) reference kernel. The bounded
// kernel's contract is bit-identity with this path; the TestBoundedMatches*
// tests in this package and the suite-fixture tests in bounded_suite_test.go
// (package kmeans_test) compare the two through these hooks.

// RunPlain clusters with the plain Lloyd kernel (no triangle-inequality
// bounds) — the reference implementation the determinism tests pin the
// bounded default against.
func RunPlain(points [][]float64, k int, cfg Config) (*Result, error) {
	if err := validatePoints(points, k); err != nil {
		return nil, err
	}
	return runFlat(flatten(points), k, cfg, nil, false)
}

// BestKPlain is BestK running every candidate through the plain kernel.
func BestKPlain(points [][]float64, maxK int, threshold float64, cfg Config) (*Result, map[int]float64, error) {
	return bestKWith(points, maxK, threshold, cfg, RunPlain)
}
