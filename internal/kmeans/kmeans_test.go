package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"specsampling/internal/bbv"
	"specsampling/internal/rng"
)

// gaussianClusters generates n points around k well-separated centres.
func gaussianClusters(k, perCluster, dim int, spread float64, seed uint64) ([][]float64, []int) {
	r := rng.New(seed)
	centres := make([][]float64, k)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for j := range centres[c] {
			centres[c][j] = float64(c*10) + r.Float64()
		}
	}
	var points [][]float64
	var truth []int
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for j := range p {
				p[j] = centres[c][j] + r.NormFloat64()*spread
			}
			points = append(points, p)
			truth = append(truth, c)
		}
	}
	return points, truth
}

func TestRunRecoversWellSeparatedClusters(t *testing.T) {
	points, truth := gaussianClusters(4, 50, 8, 0.2, 1)
	res, err := Run(points, 4, DefaultConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	// Every ground-truth cluster must map to exactly one found cluster.
	mapping := map[int]int{}
	for i, c := range res.Assign {
		if prev, ok := mapping[truth[i]]; ok && prev != c {
			t.Fatalf("ground-truth cluster %d split across found clusters %d and %d", truth[i], prev, c)
		}
		mapping[truth[i]] = c
	}
	if len(mapping) != 4 {
		t.Errorf("merged clusters: %v", mapping)
	}
}

func TestRunDeterministic(t *testing.T) {
	points, _ := gaussianClusters(3, 40, 5, 0.5, 2)
	a, err := Run(points, 3, DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(points, 3, DefaultConfig(7))
	if a.WCSS != b.WCSS {
		t.Errorf("same seed, different WCSS: %v vs %v", a.WCSS, b.WCSS)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, 3, DefaultConfig(1)); err == nil {
		t.Error("accepted empty point set")
	}
	if _, err := Run([][]float64{{1}}, 0, DefaultConfig(1)); err == nil {
		t.Error("accepted k = 0")
	}
	if _, err := Run([][]float64{{1}, {1, 2}}, 1, DefaultConfig(1)); err == nil {
		t.Error("accepted ragged points")
	}
}

func TestRunClampsKToPointCount(t *testing.T) {
	points := [][]float64{{0}, {10}}
	res, err := Run(points, 10, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("K = %d with 2 points", res.K)
	}
}

func TestAssignmentsAreNearestCentroid(t *testing.T) {
	points, _ := gaussianClusters(5, 30, 6, 1.0, 4)
	res, err := Run(points, 5, DefaultConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		best, bestD := 0, math.MaxFloat64
		for c, cent := range res.Centroids {
			if d := bbv.SqDist(p, cent); d < bestD {
				best, bestD = c, d
			}
		}
		if res.Assign[i] != best {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, res.Assign[i], best)
		}
	}
}

func TestSizesMatchAssignments(t *testing.T) {
	points, _ := gaussianClusters(3, 25, 4, 0.8, 5)
	res, err := Run(points, 3, DefaultConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, res.K)
	for _, c := range res.Assign {
		counts[c]++
	}
	total := 0
	for c := range counts {
		if counts[c] != res.Sizes[c] {
			t.Errorf("cluster %d: size %d vs counted %d", c, res.Sizes[c], counts[c])
		}
		total += counts[c]
	}
	if total != len(points) {
		t.Errorf("assigned %d of %d points", total, len(points))
	}
}

// Property: WCSS is non-increasing (on average) as k grows.
func TestWCSSDecreasesWithK(t *testing.T) {
	points, _ := gaussianClusters(6, 40, 8, 1.5, 6)
	var prev float64 = math.MaxFloat64
	for k := 1; k <= 8; k++ {
		res, err := Run(points, k, DefaultConfig(13))
		if err != nil {
			t.Fatal(err)
		}
		// Allow small non-monotonicity from restarts/seeding at adjacent k.
		if res.WCSS > prev*1.05 {
			t.Errorf("WCSS at k=%d (%v) grew well above k=%d (%v)", k, res.WCSS, k-1, prev)
		}
		if res.WCSS < prev {
			prev = res.WCSS
		}
	}
}

func TestWCSSIsActualSum(t *testing.T) {
	points, _ := gaussianClusters(2, 20, 3, 0.5, 7)
	res, err := Run(points, 2, DefaultConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, p := range points {
		sum += bbv.SqDist(p, res.Centroids[res.Assign[i]])
	}
	if math.Abs(sum-res.WCSS) > 1e-9*(1+sum) {
		t.Errorf("WCSS %v != recomputed %v", res.WCSS, sum)
	}
}

func TestSubsamplingStillAssignsAllPoints(t *testing.T) {
	points, _ := gaussianClusters(3, 400, 5, 0.3, 8)
	cfg := DefaultConfig(17)
	cfg.SampleSize = 100
	res, err := Run(points, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(points) {
		t.Fatalf("assigned %d of %d", len(res.Assign), len(points))
	}
	if res.K != 3 {
		t.Errorf("K = %d under subsampling", res.K)
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	points, _ := gaussianClusters(4, 60, 6, 0.15, 9)
	bestK, bestBIC := 0, math.Inf(-1)
	for k := 1; k <= 8; k++ {
		res, err := Run(points, k, DefaultConfig(19))
		if err != nil {
			t.Fatal(err)
		}
		b := BIC(points, res)
		if b > bestBIC {
			bestK, bestBIC = res.K, b
		}
	}
	if bestK < 3 || bestK > 5 {
		t.Errorf("BIC chose k=%d for 4 well-separated clusters", bestK)
	}
}

func TestBestKChoosesReasonableK(t *testing.T) {
	points, _ := gaussianClusters(5, 80, 8, 0.2, 10)
	res, scores, err := BestK(points, 20, 0.9, DefaultConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 4 || res.K > 8 {
		t.Errorf("BestK chose %d clusters for 5 ground-truth clusters", res.K)
	}
	if len(scores) == 0 {
		t.Error("no BIC scores returned")
	}
}

func TestBestKSingleCluster(t *testing.T) {
	// One tight blob: BestK should not invent many clusters.
	points, _ := gaussianClusters(1, 150, 6, 0.1, 11)
	res, _, err := BestK(points, 10, 0.9, DefaultConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Errorf("BestK chose %d clusters for a single blob", res.K)
	}
}

func TestBestKValidation(t *testing.T) {
	if _, _, err := BestK([][]float64{{1}}, 0, 0.9, DefaultConfig(1)); err == nil {
		t.Error("accepted maxK = 0")
	}
}

func TestCandidateKs(t *testing.T) {
	ks := candidateKs(35)
	if ks[0] != 1 {
		t.Error("candidates must start at 1")
	}
	if ks[len(ks)-1] != 35 {
		t.Error("candidates must include maxK")
	}
	ks = candidateKs(3)
	if len(ks) != 3 || ks[2] != 3 {
		t.Errorf("candidateKs(3) = %v", ks)
	}
	ks = candidateKs(12)
	if ks[len(ks)-1] != 12 {
		t.Errorf("candidateKs(12) = %v must end at 12", ks)
	}
}

// Property test: for random point clouds, Run returns a structurally valid
// result (total sizes, assignment range, WCSS >= 0).
func TestRunStructuralInvariants(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw)%6 + 1
		points, _ := gaussianClusters(3, 30, 4, 1.0, seed)
		res, err := Run(points, k, DefaultConfig(seed))
		if err != nil {
			return false
		}
		if res.K < 1 || res.K > k {
			return false
		}
		total := 0
		for _, s := range res.Sizes {
			if s <= 0 {
				return false // empty clusters must have been compacted away
			}
			total += s
		}
		if total != len(points) {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= res.K {
				return false
			}
		}
		return res.WCSS >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
