package kmeans

import (
	"math"
	"testing"

	"specsampling/internal/rng"
)

func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestRunWeightedValidation(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := RunWeighted(nil, nil, 2, DefaultConfig(1)); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := RunWeighted(pts, []float64{1}, 2, DefaultConfig(1)); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := RunWeighted(pts, []float64{1, -1}, 2, DefaultConfig(1)); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := RunWeighted(pts, []float64{0, 0}, 2, DefaultConfig(1)); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := RunWeighted(pts, []float64{1, 1}, 0, DefaultConfig(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RunWeighted([][]float64{{1}, {1, 2}}, []float64{1, 1}, 1, DefaultConfig(1)); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestRunWeightedUniformMatchesUnweighted(t *testing.T) {
	points, _ := gaussianClusters(3, 40, 5, 0.2, 21)
	cfg := DefaultConfig(5)
	cfg.SampleSize = 0
	uw, err := RunWeighted(points, uniformWeights(len(points)), 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(points, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uw.K != plain.K {
		t.Errorf("uniform-weight K %d != unweighted K %d", uw.K, plain.K)
	}
	// Same partitions up to label permutation: check via co-assignment of a
	// few pairs.
	for i := 0; i < len(points)-1; i += 7 {
		same1 := uw.Assign[i] == uw.Assign[i+1]
		same2 := plain.Assign[i] == plain.Assign[i+1]
		if same1 != same2 {
			t.Fatalf("partitions differ at pair %d", i)
		}
	}
}

func TestRunWeightedCentroidFollowsMass(t *testing.T) {
	// Two points, one cluster: the centroid must be the weighted mean.
	points := [][]float64{{0}, {10}}
	res, err := RunWeighted(points, []float64{9, 1}, 1, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 {
		t.Errorf("weighted centroid = %v, want 1", res.Centroids[0][0])
	}
}

func TestRunWeightedZeroWeightPointAssigned(t *testing.T) {
	points := [][]float64{{0}, {0.1}, {10}}
	res, err := RunWeighted(points, []float64{1, 0, 1}, 2, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 3 {
		t.Fatal("not all points assigned")
	}
	// The zero-weight point near 0 must share a cluster with point 0.
	if res.Assign[1] != res.Assign[0] {
		t.Error("zero-weight point assigned to the far cluster")
	}
}

func TestRunWeightedHeavyPointDominates(t *testing.T) {
	// A heavy singleton and many light points: with k=2 the heavy point
	// must anchor its own centroid exactly.
	points := [][]float64{{100}}
	weights := []float64{1000}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{float64(i % 5)})
		weights = append(weights, 1)
	}
	res, err := RunWeighted(points, weights, 2, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Assign[0]
	if math.Abs(res.Centroids[c][0]-100) > 1e-6 {
		t.Errorf("heavy point's centroid at %v", res.Centroids[c][0])
	}
}

func TestBestKWeighted(t *testing.T) {
	points, _ := gaussianClusters(4, 50, 6, 0.15, 23)
	res, scores, err := BestKWeighted(points, uniformWeights(len(points)), 10, 0.9, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 || res.K > 6 {
		t.Errorf("BestKWeighted chose %d for 4 clusters", res.K)
	}
	if len(scores) == 0 {
		t.Error("no scores")
	}
	if _, _, err := BestKWeighted(points, uniformWeights(len(points)), 0, 0.9, DefaultConfig(8)); err == nil {
		t.Error("maxK=0 accepted")
	}
}

func TestWeightedPick(t *testing.T) {
	// Deterministic sanity: with one dominant weight, picks concentrate.
	weights := []float64{0.001, 0.001, 10, 0.001}
	counts := make([]int, len(weights))
	r := rng.New(9)
	for i := 0; i < 1000; i++ {
		counts[weightedPick(weights, &r)]++
	}
	if counts[2] < 950 {
		t.Errorf("dominant weight picked only %d/1000 times", counts[2])
	}
}
