package kmeans

import (
	"math"

	"specsampling/internal/obs"
)

// The bounded assignment kernel: Hamerly-style triangle-inequality bounds
// that skip the scan over all k centroids for points provably still closest
// to their assigned centroid.
//
// Per point the kernel maintains lb[i], a lower bound on the distance (not
// squared) from the point to its second-closest centroid. A full scan sets
// lb[i] from the exact second-best distance; after every centroid update
// the bound decays by the largest centroid movement (triangle inequality:
// a centroid that moved by m cannot have come more than m closer). At the
// next iteration the kernel recomputes only the exact distance to the
// assigned centroid — the tightening pass, O(d) instead of O(k·d) — and
// skips the scan whenever
//
//	√d(x, c_assigned) + margin < lb[i],
//
// which proves every other centroid is strictly farther.
//
// Bit-identical results. The skip decision reasons about true distances,
// but the kernels compute floating-point approximations. margin is an
// absolute slack in the distance domain chosen far above the worst-case
// rounding error of the norm-expansion distance (≲ 2·‖x‖max·√((d+3)·ε),
// from the cancellation bound of ‖x‖²−2x·c+‖c‖² followed by √): every
// subtraction that could make a bound optimistic widens it by margin
// instead. Whenever the guarded inequality holds, the plain scan provably
// selects the same centroid AND computes the same minD bits (the distance
// to the assigned centroid is evaluated with the exact same expression),
// and ties — where the plain scan's lowest-index preference matters — can
// never be skipped because a tie forces lb ≤ √d(x, c_assigned) + margin.
// When the inequality fails, the kernel falls back to the plain scan loop
// verbatim. Either way assignments, minD, and therefore centroid updates,
// WCSS and convergence are bit-identical to the plain kernel for every
// worker count — pinned by the TestBoundedMatchesPlain* determinism tests.

// Bounded-kernel metrics: how many point-iterations the bounds skipped vs
// scanned (always-on atomics, added once per chunk).
var (
	boundsSkipCounter = obs.GetCounter("kmeans.bounds_skips")
	boundsScanCounter = obs.GetCounter("kmeans.bounds_scans")
)

// boundsMargin is the floating-point safety margin of the bounded kernel
// for this point set, in the (non-squared) distance domain. The worst-case
// rounding error of one norm-expansion distance is ≲ 2·maxSnorm·√((d+3)·ε);
// the factor 64 covers the handful of additional roundings accumulated by
// bound maintenance with orders of magnitude to spare, while staying far
// below any distance gap the bounds could usefully exploit.
func (m *matrix) boundsMargin() float64 {
	const eps = 0x1p-52
	return 64 * m.maxSnorm * math.Sqrt(float64(m.d+4)*eps)
}

// scanPointFull runs the plain pruned scan for point i — the exact loop of
// assignPoints, so best and bestD are bit-identical to the plain kernel —
// while additionally deriving lb, a margin-deflated lower bound on the
// distance to the second-closest centroid. Computed distances contribute
// their exact second-best; centroids pruned by the norm bound contribute
// |‖x‖−‖c‖| ≤ d(x, c).
func scanPointFull(m *matrix, sc *scratch, i, k int, margin float64) (best int, bestD, lb float64) {
	d := m.d
	px := m.row(i)
	pn, ps := m.norm[i], m.snorm[i]
	best, bestD = 0, math.MaxFloat64
	second := math.MaxFloat64
	prunedMin := math.MaxFloat64
	for c := 0; c < k; c++ {
		if lbc := ps - sc.csqrt[c]; lbc*lbc >= bestD {
			if lbc < 0 {
				lbc = -lbc
			}
			if lbc < prunedMin {
				prunedMin = lbc
			}
			continue
		}
		row := sc.cents[c*d : (c+1)*d]
		var dot float64
		for j, x := range px {
			dot += x * row[j]
		}
		if dist := pn - 2*dot + sc.cnorm[c]; dist < bestD {
			second = bestD
			best, bestD = c, dist
		} else if dist < second {
			second = dist
		}
	}
	if bestD < 0 {
		bestD = 0 // the expansion can go slightly negative at zero distance
	}
	lb = math.Sqrt(second)
	if prunedMin < lb {
		lb = prunedMin
	}
	return best, bestD, lb - margin
}

// assignPointsFull is the bounded kernel's full-scan pass: plain-identical
// assignment plus initial lower bounds. It runs on the first Lloyd
// iteration, when no bounds exist yet.
func assignPointsFull(m *matrix, sc *scratch, k, workers int, margin float64) {
	if workers > 1 && m.n*k*m.d < minParallelOps {
		workers = 1
	}
	parallelChunks(workers, m.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			best, bestD, lb := scanPointFull(m, sc, i, k, margin)
			sc.assign[i] = best
			sc.minD[i] = bestD
			sc.lb[i] = lb
		}
	})
	boundsScanCounter.Add(int64(m.n))
}

// assignPointsBounded is the bounded kernel's steady-state pass: per point
// it recomputes the exact distance to the previously assigned centroid
// (with the same expression as the plain scan, so minD stays bit-exact) and
// skips the scan over the other centroids when the lower bound proves they
// cannot win. Points whose bound fails fall back to the full scan, which
// also refreshes their lb.
func assignPointsBounded(m *matrix, sc *scratch, k, workers int, margin float64) {
	d := m.d
	if workers > 1 && m.n*k*d < minParallelOps {
		workers = 1
	}
	parallelChunks(workers, m.n, func(lo, hi int) {
		var cSkips, cScans int64
		for i := lo; i < hi; i++ {
			a := sc.assign[i]
			px := m.row(i)
			row := sc.cents[a*d : (a+1)*d]
			var dot float64
			for j, x := range px {
				dot += x * row[j]
			}
			da := m.norm[i] - 2*dot + sc.cnorm[a]
			if da < 0 {
				da = 0
			}
			if math.Sqrt(da)+margin < sc.lb[i] {
				// No other centroid can be as close: the plain scan would
				// recompute this exact distance for a and find every rival
				// strictly farther. Keep the assignment, refresh minD.
				sc.minD[i] = da
				cSkips++
				continue
			}
			best, bestD, lb := scanPointFull(m, sc, i, k, margin)
			sc.assign[i] = best
			sc.minD[i] = bestD
			sc.lb[i] = lb
			cScans++
		}
		// One atomic add per chunk, not per point.
		boundsSkipCounter.Add(cSkips)
		boundsScanCounter.Add(cScans)
	})
}

// decayBounds widens every point's lower bound by the largest centroid
// movement of the last update step (plus the safety margin): if the
// farthest-moving centroid travelled maxMove, no centroid can have come
// more than maxMove closer to any point.
func decayBounds(m *matrix, sc *scratch, k int, margin float64) {
	d := m.d
	maxMove := 0.0
	for c := 0; c < k; c++ {
		oldRow := sc.oldCents[c*d : (c+1)*d]
		newRow := sc.cents[c*d : (c+1)*d]
		var s float64
		for j, x := range newRow {
			dd := x - oldRow[j]
			s += dd * dd
		}
		if mv := math.Sqrt(s); mv > maxMove {
			maxMove = mv
		}
	}
	dec := maxMove + margin
	for i := range sc.lb[:m.n] {
		sc.lb[i] -= dec
	}
}
