package kmeans

import (
	"math"
	"strconv"
	"testing"

	"specsampling/internal/rng"
)

// The bounded (triangle-inequality) kernel must be invisible in the
// results: for every input, every seed and every worker count it must
// produce the same bits as the plain kernel it replaces. These tests sweep
// shapes from well-separated Gaussians to degenerate duplicate-heavy sets —
// the cases where a sloppy bound would silently flip a tie.

func TestBoundedMatchesPlainAcrossShapes(t *testing.T) {
	cases := []struct {
		name   string
		points [][]float64
		k      int
	}{
		{"separated", mustPoints(gaussianClusters(6, 60, 12, 0.3, 3)), 6},
		{"overlapping", mustPoints(gaussianClusters(5, 80, 8, 2.5, 5)), 5},
		{"more-k-than-structure", mustPoints(gaussianClusters(3, 40, 6, 0.4, 9)), 11},
		{"single-cluster", mustPoints(gaussianClusters(1, 200, 10, 1.0, 13)), 7},
		{"tiny", mustPoints(gaussianClusters(2, 3, 4, 0.2, 17)), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{1, 42, 99, 12345} {
				cfg := Config{Restarts: 3, MaxIter: 40, Seed: seed}
				plain, err := RunPlain(tc.points, tc.k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				bounded, err := Run(tc.points, tc.k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, plain, bounded, "seed="+strconv.FormatUint(seed, 10))
			}
		})
	}
}

// mustPoints drops gaussianClusters' truth labels.
func mustPoints(points [][]float64, _ []int) [][]float64 { return points }

// TestBoundedMatchesPlainDegenerate covers the tie-heavy inputs where the
// plain scan's lowest-index preference is observable: exact duplicates,
// coincident centroids, k above the distinct-point count, and zero vectors.
func TestBoundedMatchesPlainDegenerate(t *testing.T) {
	dup := make([][]float64, 64)
	for i := range dup {
		// Only 4 distinct points, heavily duplicated, plus exact zeros.
		switch i % 4 {
		case 0:
			dup[i] = []float64{0, 0, 0}
		case 1:
			dup[i] = []float64{1, 0, 0}
		case 2:
			dup[i] = []float64{0, 1, 0}
		default:
			dup[i] = []float64{1, 0, 0} // duplicate of case 1
		}
	}
	mirror := make([][]float64, 40)
	for i := range mirror {
		// Symmetric pairs equidistant from the origin: distance ties
		// between mirrored centroids are exact in floating point.
		v := float64(i/2 + 1)
		if i%2 == 0 {
			mirror[i] = []float64{v, 1}
		} else {
			mirror[i] = []float64{-v, 1}
		}
	}
	cases := []struct {
		name   string
		points [][]float64
		k      int
	}{
		{"duplicates", dup, 8},
		{"all-identical", [][]float64{{2, 2}, {2, 2}, {2, 2}, {2, 2}, {2, 2}}, 3},
		{"mirrored-ties", mirror, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []uint64{0, 7, 1001} {
				cfg := Config{Restarts: 2, MaxIter: 30, Seed: seed}
				plain, err := RunPlain(tc.points, tc.k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				bounded, err := Run(tc.points, tc.k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, plain, bounded, tc.name+"/seed="+strconv.FormatUint(seed, 10))
			}
		})
	}
}

// TestBoundedMatchesPlainAcrossWorkerCounts pins the full cross-product:
// bounded results must equal the plain serial reference for every worker
// count, including through the subsampling path.
func TestBoundedMatchesPlainAcrossWorkerCounts(t *testing.T) {
	points, _ := gaussianClusters(8, 128, 8, 0.4, 7)
	ref := Config{Restarts: 3, MaxIter: 40, Seed: 99, SampleSize: 512, Workers: 1}
	plain, err := RunPlain(points, 8, ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		cfg := ref
		cfg.Workers = workers
		bounded, err := Run(points, 8, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, plain, bounded, "workers="+strconv.Itoa(workers))
	}
}

// TestBestKBoundedMatchesPlain pins the candidate sweep: the shared-matrix,
// scratch-pooled bounded sweep must reproduce the per-candidate plain sweep
// bit for bit — results, BIC scores and the chosen k.
func TestBestKBoundedMatchesPlain(t *testing.T) {
	points, _ := gaussianClusters(4, 80, 6, 0.3, 13)
	for _, workers := range []int{1, 4} {
		cfg := Config{Restarts: 3, MaxIter: 40, Seed: 21, SampleSize: 4096, Workers: workers}
		plainRes, plainBIC, err := BestKPlain(points, 12, 0.9, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, bic, err := BestK(points, 12, 0.9, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, plainRes, res, "bestk/workers="+strconv.Itoa(workers))
		if len(bic) != len(plainBIC) {
			t.Fatalf("BIC map sizes differ: %d != %d", len(bic), len(plainBIC))
		}
		for k, v := range plainBIC {
			if math.Float64bits(bic[k]) != math.Float64bits(v) {
				t.Fatalf("BIC[%d] %v != %v", k, bic[k], v)
			}
		}
	}
}

// TestBoundedSkipsWork asserts the bounds actually fire: on a separated
// point set the steady-state iterations must skip a large share of full
// scans — otherwise the kernel is correct but pointless.
func TestBoundedSkipsWork(t *testing.T) {
	points, _ := gaussianClusters(8, 200, 16, 0.3, 23)
	skip0, scan0 := boundsSkipCounter.Value(), boundsScanCounter.Value()
	if _, err := Run(points, 8, Config{Restarts: 1, MaxIter: 40, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	skips := boundsSkipCounter.Value() - skip0
	scans := boundsScanCounter.Value() - scan0
	if skips == 0 {
		t.Fatalf("bounded kernel never skipped a scan (scans=%d)", scans)
	}
	if skips < scans {
		t.Errorf("bounds too weak: %d skips vs %d full scans on separated clusters", skips, scans)
	}
}

// TestBoundedMatchesPlainRandomized is a randomized cross-check over many
// small instances — cheap fuzzing for the skip decision.
func TestBoundedMatchesPlainRandomized(t *testing.T) {
	r := rng.New(0xb0b)
	for trial := 0; trial < 40; trial++ {
		n := 20 + r.Intn(60)
		d := 1 + r.Intn(6)
		k := 1 + r.Intn(8)
		points := make([][]float64, n)
		for i := range points {
			p := make([]float64, d)
			for j := range p {
				// Quantized coordinates provoke exact distance ties.
				p[j] = float64(r.Intn(5))
			}
			points[i] = p
		}
		cfg := Config{Restarts: 2, MaxIter: 25, Seed: uint64(trial)}
		plain, err := RunPlain(points, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bounded, err := Run(points, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, plain, bounded, "trial="+strconv.Itoa(trial))
	}
}
