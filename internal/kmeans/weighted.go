package kmeans

import (
	"fmt"
	"math"

	"specsampling/internal/bbv"
	"specsampling/internal/rng"
)

// RunWeighted clusters points that carry non-negative weights: centroids
// are weighted means and WCSS is weight-scaled. This is the engine behind
// variable-length-interval SimPoint (Hamerly et al., "SimPoint 3.0",
// discussed in the paper's Section V-B): when execution slices have unequal
// lengths, each slice must influence the clustering in proportion to the
// instructions it represents.
//
// Weights must be non-negative with a positive sum. Zero-weight points are
// still assigned to their nearest centroid but do not attract centroids.
func RunWeighted(points [][]float64, weights []float64, k int, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if len(weights) != len(points) {
		return nil, fmt.Errorf("kmeans: %d weights for %d points", len(weights), len(points))
	}
	var wsum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("kmeans: invalid weight %v at %d", w, i)
		}
		wsum += w
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("kmeans: all weights are zero")
	}
	if k <= 0 {
		return nil, fmt.Errorf("kmeans: k = %d", k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k > len(points) {
		k = len(points)
	}
	cfg = cfg.Normalize()
	runCounter.Add(1)

	r := rng.New(cfg.Seed ^ 0x77656967)
	var best *Result
	for restart := 0; restart < cfg.Restarts; restart++ {
		restartCounter.Add(1)
		res := lloydWeighted(points, weights, k, cfg.MaxIter, &r)
		if best == nil || res.WCSS < best.WCSS {
			best = res
		}
	}
	return best, nil
}

// lloydWeighted runs one weighted k-means++ initialisation plus Lloyd
// iterations with weighted centroid updates.
func lloydWeighted(points [][]float64, weights []float64, k, maxIter int, r *rng.RNG) *Result {
	dim := len(points[0])
	centroids := seedPlusPlusWeighted(points, weights, k, r)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}
	wmass := make([]float64, len(centroids))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for c := range wmass {
			wmass[c] = 0
		}
		for i, p := range points {
			bestC, bestD := 0, math.MaxFloat64
			for c, cent := range centroids {
				if d := bbv.SqDist(p, cent); d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
			wmass[bestC] += weights[i]
		}
		if !changed && iter > 0 {
			break
		}
		next := make([][]float64, len(centroids))
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, p := range points {
			w := weights[i]
			if w == 0 {
				continue
			}
			cent := next[assign[i]]
			for j, x := range p {
				cent[j] += x * w
			}
		}
		for c := range centroids {
			if wmass[c] == 0 {
				// Re-seed dead centroids at the heaviest-cost point.
				far, farD := 0, -1.0
				for i, p := range points {
					d := weights[i] * bbv.SqDist(p, centroids[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1 / wmass[c]
			for j := range next[c] {
				centroids[c][j] = next[c][j] * inv
			}
		}
	}
	res := assignAll(points, centroids)
	// Recompute WCSS with weights so model comparison is weight-aware.
	var wcss float64
	for i, p := range points {
		wcss += weights[i] * bbv.SqDist(p, res.Centroids[res.Assign[i]])
	}
	res.WCSS = wcss
	return res
}

// seedPlusPlusWeighted is k-means++ with weight-scaled D² sampling.
func seedPlusPlusWeighted(points [][]float64, weights []float64, k int, r *rng.RNG) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[weightedPick(weights, r)]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = weights[i] * bbv.SqDist(p, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total <= 0 {
			idx = r.Intn(len(points))
		} else {
			target := r.Float64() * total
			acc := 0.0
			idx = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := append([]float64(nil), points[idx]...)
		centroids = append(centroids, c)
		for i, p := range points {
			if d := weights[i] * bbv.SqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// BestKWeighted is BestK for weighted points: it evaluates the same
// candidate k grid with RunWeighted and scores candidates with BIC over the
// weighted WCSS (an approximation — the point count, not the weight mass,
// enters the complexity penalty — adequate for model selection). Candidate
// runs execute in parallel like BestK's.
func BestKWeighted(points [][]float64, weights []float64, maxK int, threshold float64, cfg Config) (*Result, map[int]float64, error) {
	return bestKWith(points, maxK, threshold, cfg,
		func(pts [][]float64, k int, sub Config) (*Result, error) {
			return RunWeighted(pts, weights, k, sub)
		})
}

// weightedPick samples an index with probability proportional to weight.
func weightedPick(weights []float64, r *rng.RNG) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if acc >= target {
			return i
		}
	}
	return len(weights) - 1
}
