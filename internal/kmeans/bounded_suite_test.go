package kmeans_test

import (
	"math"
	"strconv"
	"testing"

	"specsampling/internal/bbv"
	"specsampling/internal/kmeans"
	"specsampling/internal/simpoint"
	"specsampling/internal/workload"
)

// requireIdenticalResults is the external-package twin of the in-package
// requireIdentical helper: bit-level equality of every Result field.
func requireIdenticalResults(t *testing.T, a, b *kmeans.Result, label string) {
	t.Helper()
	if a.K != b.K {
		t.Fatalf("%s: K %d != %d", label, a.K, b.K)
	}
	if math.Float64bits(a.WCSS) != math.Float64bits(b.WCSS) {
		t.Fatalf("%s: WCSS %v != %v", label, a.WCSS, b.WCSS)
	}
	if len(a.Assign) != len(b.Assign) {
		t.Fatalf("%s: assign lengths %d != %d", label, len(a.Assign), len(b.Assign))
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("%s: assign[%d] %d != %d", label, i, a.Assign[i], b.Assign[i])
		}
	}
	if len(a.Centroids) != len(b.Centroids) {
		t.Fatalf("%s: centroid counts %d != %d", label, len(a.Centroids), len(b.Centroids))
	}
	for c := range a.Centroids {
		for j := range a.Centroids[c] {
			if math.Float64bits(a.Centroids[c][j]) != math.Float64bits(b.Centroids[c][j]) {
				t.Fatalf("%s: centroid[%d][%d] %v != %v", label, c, j, a.Centroids[c][j], b.Centroids[c][j])
			}
		}
	}
	if len(a.Sizes) != len(b.Sizes) {
		t.Fatalf("%s: size counts %d != %d", label, len(a.Sizes), len(b.Sizes))
	}
	for c := range a.Sizes {
		if a.Sizes[c] != b.Sizes[c] {
			t.Fatalf("%s: sizes[%d] %d != %d", label, c, a.Sizes[c], b.Sizes[c])
		}
	}
}

// suiteFixturePoints reproduces simpoint.Cluster's exact input for a real
// suite workload at a reduced scale: profile the program into BBV slices,
// then L1-normalise and randomly project each vector. These are the points
// the production pipeline actually clusters, so pinning bounded-vs-plain
// identity here pins the pipeline, not just synthetic Gaussians.
func suiteFixturePoints(t *testing.T, name string, seed uint64) [][]float64 {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(workload.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	slices, _, err := simpoint.Profile(prog, workload.ScaleSmall.SliceLen)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := bbv.NewProjector(len(slices[0].BBV), bbv.DefaultProjectedDims, seed)
	if err != nil {
		t.Fatal(err)
	}
	points := make([][]float64, len(slices))
	for i, s := range slices {
		v := append([]float64(nil), s.BBV...)
		bbv.NormalizeL1(v)
		points[i] = proj.Project(v)
	}
	return points
}

// TestBoundedMatchesPlainOnSuiteFixtures is the satellite determinism test:
// on real suite BBV fixtures the bounded kernel must produce byte-identical
// assignments, centroids and WCSS to the plain Lloyd path, for both Run and
// the BestK sweep and for every worker count. Runs under -race via the
// Makefile racesmoke target.
func TestBoundedMatchesPlainOnSuiteFixtures(t *testing.T) {
	for _, name := range []string{"perlbench_r", "mcf_r", "lbm_r"} {
		t.Run(name, func(t *testing.T) {
			points := suiteFixturePoints(t, name, simpoint.DefaultSeed)
			cfg := kmeans.DefaultConfig(simpoint.DefaultSeed)
			cfg.Workers = 1
			plain, err := kmeans.RunPlain(points, 8, cfg)
			if err != nil {
				t.Fatal(err)
			}
			plainBest, _, err := kmeans.BestKPlain(points, simpoint.DefaultMaxK, simpoint.DefaultBICThreshold, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4} {
				wcfg := cfg
				wcfg.Workers = workers
				bounded, err := kmeans.Run(points, 8, wcfg)
				if err != nil {
					t.Fatal(err)
				}
				requireIdenticalResults(t, plain, bounded, name+"/run/workers="+strconv.Itoa(workers))
				best, _, err := kmeans.BestK(points, simpoint.DefaultMaxK, simpoint.DefaultBICThreshold, wcfg)
				if err != nil {
					t.Fatal(err)
				}
				requireIdenticalResults(t, plainBest, best, name+"/bestk/workers="+strconv.Itoa(workers))
			}
		})
	}
}
