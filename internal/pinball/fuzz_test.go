package pinball

import (
	"bytes"
	"testing"

	"specsampling/internal/program"
)

// FuzzRead exercises the pinball decoder against arbitrary byte streams: it
// must never panic and must round-trip valid pinballs unchanged.
func FuzzRead(f *testing.F) {
	// Seed with a valid pinball.
	st := program.State{Instrs: 123, Seg: 1, SegDone: 7, BlockPos: 2,
		Phases: []program.PhaseState{{BlockExecs: 5, Accesses: 9}, {BlockExecs: 1, Accesses: 2}}}
	pb := NewRegional("fuzzbench", "small", 3, st, 4096, 0.25)
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PBAL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must re-serialise successfully.
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("accepted pinball fails to re-serialise: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-serialised pinball rejected: %v", err)
		}
		if back.Benchmark != got.Benchmark || back.Len != got.Len || !back.Start.Equal(got.Start) {
			t.Fatal("round trip changed the pinball")
		}
	})
}
