package pinball

import (
	"context"
	"testing"

	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/pintool"
	"specsampling/internal/program"
)

// testProgram2 is a second, distinct benchmark for cross-program suite
// replay tests.
func testProgram2(t testing.TB) *program.Program {
	t.Helper()
	specs := []program.PhaseSpec{
		{Blocks: 4, MinBlockLen: 3, MaxBlockLen: 8, Mix: [4]float64{0.4, 0.4, 0.15, 0.05},
			Pattern: program.MemPattern{Base: 2 << 20, WorkingSetBytes: 128 << 10, Stride: 8,
				SeqPermille: 400, StreamPermille: 0},
			JumpPermille: 60, ShareBlocksWith: -1},
	}
	p, err := program.BuildProgram("pbtest2", 123, specs,
		program.UniformSchedule([]float64{1}, 30000, 2))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// regionals cuts count regional pinballs of roughly length instructions
// along p's execution.
func regionals(t testing.TB, p *program.Program, count int, length uint64) []*Pinball {
	t.Helper()
	var pbs []*Pinball
	e := program.NewExecutor(p)
	for i := 0; i < count; i++ {
		start := e.State()
		n := e.Run(length, program.Hooks{})
		if n == 0 {
			break
		}
		pbs = append(pbs, NewRegional(p.Name, "small", i, start, n, 1.0/float64(count)))
	}
	if len(pbs) == 0 {
		t.Fatal("no pinballs cut")
	}
	return pbs
}

// withWarmupBefore rebuilds pb with a warm-up checkpoint captured roughly
// back instructions before the region start.
func withWarmupBefore(t testing.TB, p *program.Program, pb *Pinball, back uint64) *Pinball {
	t.Helper()
	target := pb.Start.Instrs
	if target < back {
		back = target
	}
	e := program.NewExecutor(p)
	if target > back {
		e.Run(target-back, program.Hooks{})
	}
	warm := e.State()
	return NewRegional(p.Name, pb.Scale, pb.Region, pb.Start, pb.Len, pb.Weight).
		WithWarmup(warm, target-warm.Instrs)
}

// TestReplayerReusedMatchesFresh pins the whole point of the Replayer: one
// long-lived executor/engine pair replaying many pinballs — including
// warm-up-carrying ones, in arbitrary order — must observe exactly what a
// fresh Replay of each pinball observes.
func TestReplayerReusedMatchesFresh(t *testing.T) {
	p := testProgram(t)
	pbs := regionals(t, p, 5, 3000)

	// Give some pinballs warm-up checkpoints so the reused warm engine and
	// warmables buffer are exercised too.
	pbs[2] = withWarmupBefore(t, p, pbs[2], 1500)
	pbs[4] = withWarmupBefore(t, p, pbs[4], 1500)

	r := NewReplayer(p)
	// Deliberately shuffled order: replay state must not leak across calls.
	order := []int{3, 0, 4, 2, 1, 2, 0}
	for _, i := range order {
		got := pintool.NewLdStMix()
		gotN, err := r.Replay(pbs[i], got)
		if err != nil {
			t.Fatalf("reused replay %d: %v", i, err)
		}
		want := pintool.NewLdStMix()
		wantN, err := Replay(p, pbs[i], want)
		if err != nil {
			t.Fatalf("fresh replay %d: %v", i, err)
		}
		if gotN != wantN {
			t.Errorf("pinball %d: reused replayer ran %d instrs, fresh ran %d", i, gotN, wantN)
		}
		if got.Mix != want.Mix {
			t.Errorf("pinball %d: reused replayer mix %+v != fresh %+v", i, got.Mix, want.Mix)
		}
	}
}

// TestReplayerRejectsWrongProgram mirrors the Replay test through the
// reusable path.
func TestReplayerRejectsWrongProgram(t *testing.T) {
	p := testProgram(t)
	other := testProgram2(t)
	pbs := regionals(t, other, 1, 1000)
	r := NewReplayer(p)
	if _, err := r.Replay(pbs[0]); err == nil {
		t.Error("replayer accepted a foreign pinball")
	}
}

// TestReplaySuiteMatchesReplayAll runs two benchmarks' pinballs through one
// flat suite replay and checks every observation against the per-benchmark
// parallel path.
func TestReplaySuiteMatchesReplayAll(t *testing.T) {
	p1, p2 := testProgram(t), testProgram2(t)
	pbs1 := regionals(t, p1, 4, 3000)
	pbs2 := regionals(t, p2, 3, 4000)

	suiteMixes1 := make([]*pintool.LdStMix, len(pbs1))
	suiteMixes2 := make([]*pintool.LdStMix, len(pbs2))
	jobs := []SuiteJob{
		{Program: p1, Pinballs: pbs1, MakeTools: func(i int) []pin.Tool {
			suiteMixes1[i] = pintool.NewLdStMix()
			return []pin.Tool{suiteMixes1[i]}
		}},
		{Program: p2, Pinballs: pbs2, MakeTools: func(i int) []pin.Tool {
			suiteMixes2[i] = pintool.NewLdStMix()
			return []pin.Tool{suiteMixes2[i]}
		}},
	}
	suite := ReplaySuite(context.Background(), jobs, 3)
	if len(suite) != 2 || len(suite[0]) != len(pbs1) || len(suite[1]) != len(pbs2) {
		t.Fatalf("suite result shape [%d][%d,%d], want [2][%d,%d]",
			len(suite), len(suite[0]), len(suite[1]), len(pbs1), len(pbs2))
	}

	for j, want := range [][]*Pinball{pbs1, pbs2} {
		p := []*program.Program{p1, p2}[j]
		mixes := [][]*pintool.LdStMix{suiteMixes1, suiteMixes2}[j]
		refMixes := make([]*pintool.LdStMix, len(want))
		ref := ReplayAll(context.Background(), p, want, 2, func(i int) []pin.Tool {
			refMixes[i] = pintool.NewLdStMix()
			return []pin.Tool{refMixes[i]}
		})
		for i := range want {
			if suite[j][i].Err != nil {
				t.Fatalf("suite job %d pinball %d: %v", j, i, suite[j][i].Err)
			}
			if suite[j][i].Executed != ref[i].Executed {
				t.Errorf("job %d pinball %d: suite executed %d, ReplayAll %d",
					j, i, suite[j][i].Executed, ref[i].Executed)
			}
			if mixes[i].Mix != refMixes[i].Mix {
				t.Errorf("job %d pinball %d: suite mix differs from ReplayAll", j, i)
			}
		}
	}
}

// TestReplaySuiteCancelled checks the not-dispatched slots carry ctx.Err().
func TestReplaySuiteCancelled(t *testing.T) {
	p := testProgram(t)
	pbs := regionals(t, p, 3, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := ReplaySuite(ctx, []SuiteJob{{Program: p, Pinballs: pbs,
		MakeTools: func(int) []pin.Tool { return nil }}}, 2)
	for i, res := range out[0] {
		if res.Err == nil {
			t.Errorf("pinball %d: expected cancellation error", i)
		}
	}
}

// TestReplayerReplayAllocs is the satellite allocation-regression test for
// the replay inner loop: with tracing off and tools reused, a warm Replayer
// performs zero heap allocations per replayed pinball — restore, reset,
// attach and run all work out of long-lived buffers.
func TestReplayerReplayAllocs(t *testing.T) {
	if obs.Enabled() {
		t.Skip("tracing active; allocation counts include tracer work")
	}
	p := testProgram(t)
	pbs := regionals(t, p, 2, 3000)
	r := NewReplayer(p)
	mix := pintool.NewLdStMix()
	tools := []pin.Tool{mix}

	plain := pbs[0]
	if got := testing.AllocsPerRun(50, func() {
		if _, err := r.Replay(plain, tools...); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Replayer.Replay allocates %.1f objects per plain replay, want 0", got)
	}

	// The warm-up path must be allocation-free too (warm engine + warmables
	// buffer reuse).
	warmed := withWarmupBefore(t, p, pbs[1], 1000)
	probe := &warmProbe{}
	warmTools := []pin.Tool{probe}
	if got := testing.AllocsPerRun(50, func() {
		if _, err := r.Replay(warmed, warmTools...); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("Replayer.Replay allocates %.1f objects per warm-up replay, want 0", got)
	}
}
