// Package pinball implements the reproduction's PinPlay analogue: portable,
// self-contained checkpoints of a program execution ("pinballs") that can be
// replayed deterministically, in isolation and in parallel, with arbitrary
// Pintools attached.
//
// A pinball captures the executor's complete architectural state (a
// program.State — a handful of counters, because all dynamic behaviour is a
// pure function of them) plus the region length to execute. A Whole Pinball
// covers an entire benchmark; a Regional Pinball covers one simulation
// point and carries its weight. Regional pinballs may also carry a warm-up
// checkpoint taken a fixed distance before the region, implementing the
// paper's cache-warming mitigation (Section IV-D).
package pinball

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"specsampling/internal/obs"
	"specsampling/internal/program"
)

// loggedCounter counts pinballs serialised by Write (the logger side of the
// PinPlay analogue); the replayer side is counted in ReplayAll.
var loggedCounter = obs.GetCounter("pinball.logged")

// Kind distinguishes whole-execution checkpoints from regional ones.
type Kind uint8

// Pinball kinds.
const (
	Whole Kind = iota
	Regional
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Whole:
		return "whole"
	case Regional:
		return "regional"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Pinball is one checkpoint. The zero value is not valid; construct whole
// pinballs with NewWhole and regional ones with NewRegional.
type Pinball struct {
	// Benchmark is the workload's name.
	Benchmark string
	// Scale records the scale the pinball was captured at ("full", ...).
	Scale string
	// Kind is Whole or Regional.
	Kind Kind
	// Region is the simulation-point index for regional pinballs, -1 for
	// whole ones.
	Region int
	// Start is the captured execution state at the region's first
	// instruction.
	Start program.State
	// Len is the exact number of instructions to execute on replay.
	Len uint64
	// Weight is the simulation point's weight (1 for whole pinballs).
	Weight float64
	// HasWarmup indicates Warmup/WarmupLen are valid.
	HasWarmup bool
	// Warmup is the state WarmupLen instructions before Start, used to warm
	// microarchitectural state before measurement begins.
	Warmup    program.State
	WarmupLen uint64
}

// NewWhole builds the whole-execution pinball of a finalized program:
// its start state is the program entry and its length the nominal
// instruction count (replay stops at program end regardless).
func NewWhole(p *program.Program, scale string) *Pinball {
	exec := program.NewExecutor(p)
	return &Pinball{
		Benchmark: p.Name,
		Scale:     scale,
		Kind:      Whole,
		Region:    -1,
		Start:     exec.State(),
		Len:       p.TotalInstrs(),
		Weight:    1,
	}
}

// NewRegional builds a regional pinball for a simulation point.
func NewRegional(benchmark, scale string, region int, start program.State, length uint64, weight float64) *Pinball {
	return &Pinball{
		Benchmark: benchmark,
		Scale:     scale,
		Kind:      Regional,
		Region:    region,
		Start:     start,
		Len:       length,
		Weight:    weight,
	}
}

// WithWarmup attaches a warm-up checkpoint taken warmupLen instructions
// before the region start.
func (pb *Pinball) WithWarmup(warmup program.State, warmupLen uint64) *Pinball {
	pb.HasWarmup = warmupLen > 0
	pb.Warmup = warmup
	pb.WarmupLen = warmupLen
	return pb
}

// Validate reports structural problems.
func (pb *Pinball) Validate() error {
	if pb.Benchmark == "" {
		return fmt.Errorf("pinball: empty benchmark name")
	}
	if pb.Len == 0 {
		return fmt.Errorf("pinball %s: zero length", pb.Benchmark)
	}
	if pb.Kind == Regional && pb.Region < 0 {
		return fmt.Errorf("pinball %s: regional pinball without region index", pb.Benchmark)
	}
	if pb.Weight < 0 || pb.Weight > 1.0000001 {
		return fmt.Errorf("pinball %s: weight %v out of [0,1]", pb.Benchmark, pb.Weight)
	}
	if pb.HasWarmup && pb.Warmup.Instrs+pb.WarmupLen != pb.Start.Instrs {
		return fmt.Errorf("pinball %s region %d: warm-up state at %d + %d does not reach region start %d",
			pb.Benchmark, pb.Region, pb.Warmup.Instrs, pb.WarmupLen, pb.Start.Instrs)
	}
	return nil
}

// Binary format:
//
//	magic "PBAL" | version u16 | payload | crc32(payload) u32
//
// The payload is little-endian fixed-width fields with length-prefixed
// strings. The CRC detects truncation and corruption.
const (
	magic   = "PBAL"
	version = uint16(1)
)

// Write serialises the pinball.
func (pb *Pinball) Write(w io.Writer) error {
	if err := pb.Validate(); err != nil {
		return err
	}
	var payload []byte
	payload = appendString(payload, pb.Benchmark)
	payload = appendString(payload, pb.Scale)
	payload = append(payload, byte(pb.Kind))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(int64(pb.Region)))
	payload = appendState(payload, pb.Start)
	payload = binary.LittleEndian.AppendUint64(payload, pb.Len)
	payload = binary.LittleEndian.AppendUint64(payload, floatBits(pb.Weight))
	if pb.HasWarmup {
		payload = append(payload, 1)
		payload = appendState(payload, pb.Warmup)
		payload = binary.LittleEndian.AppendUint64(payload, pb.WarmupLen)
	} else {
		payload = append(payload, 0)
	}

	if _, err := w.Write([]byte(magic)); err != nil {
		return fmt.Errorf("pinball: write magic: %w", err)
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], version)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pinball: write version: %w", err)
	}
	var size [8]byte
	binary.LittleEndian.PutUint64(size[:], uint64(len(payload)))
	if _, err := w.Write(size[:]); err != nil {
		return fmt.Errorf("pinball: write size: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("pinball: write payload: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("pinball: write checksum: %w", err)
	}
	loggedCounter.Add(1)
	return nil
}

// Read deserialises a pinball.
func Read(r io.Reader) (*Pinball, error) {
	head := make([]byte, len(magic)+2+8)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("pinball: read header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, fmt.Errorf("pinball: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != version {
		return nil, fmt.Errorf("pinball: unsupported version %d", v)
	}
	size := binary.LittleEndian.Uint64(head[6:14])
	const maxPayload = 64 << 20
	if size > maxPayload {
		return nil, fmt.Errorf("pinball: payload size %d exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("pinball: read payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("pinball: read checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, fmt.Errorf("pinball: checksum mismatch")
	}

	d := &decoder{buf: payload}
	pb := &Pinball{}
	pb.Benchmark = d.string()
	pb.Scale = d.string()
	pb.Kind = Kind(d.byte())
	pb.Region = int(int64(d.uint64()))
	pb.Start = d.state()
	pb.Len = d.uint64()
	pb.Weight = bitsFloat(d.uint64())
	if d.byte() == 1 {
		pb.HasWarmup = true
		pb.Warmup = d.state()
		pb.WarmupLen = d.uint64()
	}
	if d.err != nil {
		return nil, fmt.Errorf("pinball: decode: %w", d.err)
	}
	if err := pb.Validate(); err != nil {
		return nil, err
	}
	return pb, nil
}

// Save writes the pinball to a file.
func (pb *Pinball) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pinball: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := pb.Write(w); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("pinball: flush %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a pinball from a file.
func Load(path string) (*Pinball, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pinball: %w", err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

// --- encoding helpers ---

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendState(b []byte, s program.State) []byte {
	b = binary.LittleEndian.AppendUint64(b, s.Instrs)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.Seg)))
	b = binary.LittleEndian.AppendUint64(b, s.SegDone)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.BlockPos)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Phases)))
	for _, ps := range s.Phases {
		b = binary.LittleEndian.AppendUint64(b, ps.BlockExecs)
		b = binary.LittleEndian.AppendUint64(b, ps.Accesses)
	}
	return b
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("truncated payload (need %d, have %d)", n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) string() string {
	n := d.uint32()
	if n > 1<<20 {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	b := d.take(int(n))
	return string(b)
}

func (d *decoder) state() program.State {
	var s program.State
	s.Instrs = d.uint64()
	s.Seg = int(int64(d.uint64()))
	s.SegDone = d.uint64()
	s.BlockPos = int(int64(d.uint64()))
	n := d.uint32()
	if n > 1<<16 {
		d.err = fmt.Errorf("implausible phase count %d", n)
		return s
	}
	s.Phases = make([]program.PhaseState, n)
	for i := range s.Phases {
		s.Phases[i].BlockExecs = d.uint64()
		s.Phases[i].Accesses = d.uint64()
	}
	return s
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(u uint64) float64 { return math.Float64frombits(u) }
