package pinball

import (
	"context"
	"fmt"

	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/program"
	"specsampling/internal/sched"
)

var replayCounter = obs.GetCounter("pinball.replayed")

// Warmable is implemented by tools whose microarchitectural state can be
// warmed without counting statistics (cache simulators, timing models). If
// a pinball carries a warm-up checkpoint, Replay drives Warmable tools
// through the warm-up region with warm-up mode enabled; tools that are not
// Warmable do not observe the warm-up at all.
type Warmable interface {
	SetWarmup(on bool)
}

// Replayer replays pinballs of one program through reusable machinery: one
// executor and two engines (warm-up and measurement) that live as long as
// the Replayer. Restoring a checkpoint, attaching tools and running all
// reuse the same buffers, so the replay hot loop — Replay called once per
// regional pinball, thousands of times per suite analysis — performs no
// per-replay allocations beyond what the caller's tools do (pinned by
// TestReplayerReplayAllocs). A Replayer is not safe for concurrent use;
// ReplayAll shards one per worker.
type Replayer struct {
	prog      *program.Program
	exec      *program.Executor
	warm      *pin.Engine
	meas      *pin.Engine
	warmables []Warmable
}

// NewReplayer returns a replayer for pinballs captured from p.
func NewReplayer(p *program.Program) *Replayer {
	exec := program.NewExecutor(p)
	return &Replayer{
		prog: p,
		exec: exec,
		warm: pin.NewEngineAt(exec),
		meas: pin.NewEngineAt(exec),
	}
}

// Replay executes one pinball with the given tools attached and returns the
// number of measured (non-warm-up) instructions executed. Tools are stateful
// and belong to this replay; the Replayer's own state is fully re-restored
// from the pinball, so replay order does not affect results.
func (r *Replayer) Replay(pb *Pinball, tools ...pin.Tool) (uint64, error) {
	if err := pb.Validate(); err != nil {
		return 0, err
	}
	if r.prog.Name != pb.Benchmark {
		return 0, fmt.Errorf("pinball: replaying %q checkpoint on program %q", pb.Benchmark, r.prog.Name)
	}

	if pb.HasWarmup {
		if err := r.exec.Restore(pb.Warmup); err != nil {
			return 0, fmt.Errorf("pinball: restore warm-up state: %w", err)
		}
		r.warm.Reset()
		r.warmables = r.warmables[:0]
		for _, t := range tools {
			w, ok := t.(Warmable)
			if !ok {
				continue
			}
			if err := r.warm.Attach(t); err != nil {
				return 0, err
			}
			r.warmables = append(r.warmables, w)
		}
		for _, w := range r.warmables {
			w.SetWarmup(true)
		}
		r.warm.Run(pb.WarmupLen)
		for _, w := range r.warmables {
			w.SetWarmup(false)
		}
		// The warm-up run stops on a block boundary, which may overshoot
		// the region start slightly; restore the exact region state so the
		// measured stream is bit-identical to the captured region.
		// (Microarchitectural warm-up state persists in the tools.)
	}

	if err := r.exec.Restore(pb.Start); err != nil {
		return 0, fmt.Errorf("pinball: restore start state: %w", err)
	}
	r.meas.Reset()
	for _, t := range tools {
		if err := r.meas.Attach(t); err != nil {
			return 0, err
		}
	}
	return r.meas.Run(pb.Len), nil
}

// Replay executes a pinball against its program with the given tools
// attached and returns the number of measured (non-warm-up) instructions
// executed. The program must be the same benchmark (same name and phase
// count) the pinball was captured from. One-shot convenience over Replayer;
// batch callers should hold a Replayer (or use ReplayAll) to amortise the
// executor and engine setup.
func Replay(p *program.Program, pb *Pinball, tools ...pin.Tool) (uint64, error) {
	return NewReplayer(p).Replay(pb, tools...)
}

// ReplayResult pairs a pinball with what a parallel replay observed.
type ReplayResult struct {
	// Pinball is the replayed checkpoint.
	Pinball *Pinball
	// Executed is the measured instruction count.
	Executed uint64
	// Err is the per-pinball failure, if any.
	Err error
}

// ReplayAll replays a set of pinballs in parallel — the paper notes that
// regional pinballs are independent and "are executed in parallel to save
// time". makeTools is called once per pinball to produce that replay's
// private tool set (tools are stateful and must not be shared); it receives
// the pinball's index in pbs. Results preserve input order. workers <= 0
// uses GOMAXPROCS.
//
// Replay state is sharded: each worker owns one long-lived Replayer, so the
// per-pinball cost is restore + run with no executor or engine construction
// in the loop.
//
// If ctx is cancelled mid-run, pinballs not yet dispatched are returned
// with Err set to ctx.Err(); already-running replays complete normally.
func ReplayAll(ctx context.Context, p *program.Program, pbs []*Pinball, workers int, makeTools func(i int) []pin.Tool) []ReplayResult {
	ctx, span := obs.Start(ctx, "replay",
		obs.String("bench", p.Name), obs.Int("pinballs", len(pbs)))
	defer span.End()

	results := make([]ReplayResult, len(pbs))
	ran := make([]bool, len(pbs))
	replayers := make([]*Replayer, sched.Workers(workers))
	err := sched.ForEachSharded(ctx, workers, len(pbs), func(w, i int) error {
		r := replayers[w]
		if r == nil {
			r = NewReplayer(p)
			replayers[w] = r
		}
		tools := makeTools(i)
		n, err := r.Replay(pbs[i], tools...)
		results[i] = ReplayResult{Pinball: pbs[i], Executed: n, Err: err}
		ran[i] = true
		replayCounter.Add(1)
		return nil
	})
	if err != nil {
		// Cancelled: mark the slots that never ran so callers see why.
		for i := range results {
			if !ran[i] {
				results[i] = ReplayResult{Pinball: pbs[i], Err: err}
			}
		}
	}
	return results
}

// SuiteJob is one benchmark's share of a whole-suite replay: its program,
// its regional pinballs, and the per-pinball tool factory (same contract as
// ReplayAll's makeTools).
type SuiteJob struct {
	Program   *program.Program
	Pinballs  []*Pinball
	MakeTools func(i int) []pin.Tool
}

// ReplaySuite replays every job's pinballs across one shared worker pool —
// whole-suite regional replay as a single flat work list, rather than
// per-benchmark fan-out that leaves workers idle at each benchmark's tail.
// Results are indexed [job][pinball], preserving input order. Each worker
// keeps one Replayer per program it encounters, so cross-benchmark
// scheduling still pays no per-pinball setup. workers <= 0 uses GOMAXPROCS.
//
// If ctx is cancelled mid-run, pinballs not yet dispatched carry ctx.Err(),
// exactly as in ReplayAll.
func ReplaySuite(ctx context.Context, jobs []SuiteJob, workers int) [][]ReplayResult {
	total := 0
	for _, j := range jobs {
		total += len(j.Pinballs)
	}
	ctx, span := obs.Start(ctx, "replay.suite",
		obs.Int("jobs", len(jobs)), obs.Int("pinballs", total))
	defer span.End()

	results := make([][]ReplayResult, len(jobs))
	ran := make([][]bool, len(jobs))
	// Flat index -> (job, local pinball index), in input order.
	jobOf := make([]int, 0, total)
	locOf := make([]int, 0, total)
	for j, job := range jobs {
		results[j] = make([]ReplayResult, len(job.Pinballs))
		ran[j] = make([]bool, len(job.Pinballs))
		for i := range job.Pinballs {
			jobOf = append(jobOf, j)
			locOf = append(locOf, i)
		}
	}

	replayers := make([][]*Replayer, sched.Workers(workers))
	err := sched.ForEachSharded(ctx, workers, total, func(w, flat int) error {
		j, i := jobOf[flat], locOf[flat]
		job := &jobs[j]
		if replayers[w] == nil {
			replayers[w] = make([]*Replayer, len(jobs))
		}
		r := replayers[w][j]
		if r == nil {
			r = NewReplayer(job.Program)
			replayers[w][j] = r
		}
		tools := job.MakeTools(i)
		n, err := r.Replay(job.Pinballs[i], tools...)
		results[j][i] = ReplayResult{Pinball: job.Pinballs[i], Executed: n, Err: err}
		ran[j][i] = true
		replayCounter.Add(1)
		return nil
	})
	if err != nil {
		for j := range results {
			for i := range results[j] {
				if !ran[j][i] {
					results[j][i] = ReplayResult{Pinball: jobs[j].Pinballs[i], Err: err}
				}
			}
		}
	}
	return results
}
