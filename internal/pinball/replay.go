package pinball

import (
	"context"
	"fmt"

	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/program"
	"specsampling/internal/sched"
)

var replayCounter = obs.GetCounter("pinball.replayed")

// Warmable is implemented by tools whose microarchitectural state can be
// warmed without counting statistics (cache simulators, timing models). If
// a pinball carries a warm-up checkpoint, Replay drives Warmable tools
// through the warm-up region with warm-up mode enabled; tools that are not
// Warmable do not observe the warm-up at all.
type Warmable interface {
	SetWarmup(on bool)
}

// Replay executes a pinball against its program with the given tools
// attached and returns the number of measured (non-warm-up) instructions
// executed. The program must be the same benchmark (same name and phase
// count) the pinball was captured from.
func Replay(p *program.Program, pb *Pinball, tools ...pin.Tool) (uint64, error) {
	if err := pb.Validate(); err != nil {
		return 0, err
	}
	if p.Name != pb.Benchmark {
		return 0, fmt.Errorf("pinball: replaying %q checkpoint on program %q", pb.Benchmark, p.Name)
	}
	exec := program.NewExecutor(p)

	if pb.HasWarmup {
		if err := exec.Restore(pb.Warmup); err != nil {
			return 0, fmt.Errorf("pinball: restore warm-up state: %w", err)
		}
		warmEngine := pin.NewEngineAt(exec)
		var warmables []Warmable
		for _, t := range tools {
			w, ok := t.(Warmable)
			if !ok {
				continue
			}
			if err := warmEngine.Attach(t); err != nil {
				return 0, err
			}
			warmables = append(warmables, w)
		}
		for _, w := range warmables {
			w.SetWarmup(true)
		}
		warmEngine.Run(pb.WarmupLen)
		for _, w := range warmables {
			w.SetWarmup(false)
		}
		// The warm-up run stops on a block boundary, which may overshoot
		// the region start slightly; restore the exact region state so the
		// measured stream is bit-identical to the captured region.
		// (Microarchitectural warm-up state persists in the tools.)
	}

	if err := exec.Restore(pb.Start); err != nil {
		return 0, fmt.Errorf("pinball: restore start state: %w", err)
	}
	engine := pin.NewEngineAt(exec)
	for _, t := range tools {
		if err := engine.Attach(t); err != nil {
			return 0, err
		}
	}
	return engine.Run(pb.Len), nil
}

// ReplayResult pairs a pinball with what a parallel replay observed.
type ReplayResult struct {
	// Pinball is the replayed checkpoint.
	Pinball *Pinball
	// Executed is the measured instruction count.
	Executed uint64
	// Err is the per-pinball failure, if any.
	Err error
}

// ReplayAll replays a set of pinballs in parallel — the paper notes that
// regional pinballs are independent and "are executed in parallel to save
// time". makeTools is called once per pinball to produce that replay's
// private tool set (tools are stateful and must not be shared); it receives
// the pinball's index in pbs. Results preserve input order. workers <= 0
// uses GOMAXPROCS.
//
// If ctx is cancelled mid-run, pinballs not yet dispatched are returned
// with Err set to ctx.Err(); already-running replays complete normally.
func ReplayAll(ctx context.Context, p *program.Program, pbs []*Pinball, workers int, makeTools func(i int) []pin.Tool) []ReplayResult {
	ctx, span := obs.Start(ctx, "replay",
		obs.String("bench", p.Name), obs.Int("pinballs", len(pbs)))
	defer span.End()

	results := make([]ReplayResult, len(pbs))
	ran := make([]bool, len(pbs))
	err := sched.ForEach(ctx, workers, len(pbs), func(i int) error {
		tools := makeTools(i)
		n, err := Replay(p, pbs[i], tools...)
		results[i] = ReplayResult{Pinball: pbs[i], Executed: n, Err: err}
		ran[i] = true
		replayCounter.Add(1)
		return nil
	})
	if err != nil {
		// Cancelled: mark the slots that never ran so callers see why.
		for i := range results {
			if !ran[i] {
				results[i] = ReplayResult{Pinball: pbs[i], Err: err}
			}
		}
	}
	return results
}
