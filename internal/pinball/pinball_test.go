package pinball

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"specsampling/internal/isa"
	"specsampling/internal/pin"
	"specsampling/internal/pintool"
	"specsampling/internal/program"
)

func testProgram(t testing.TB) *program.Program {
	t.Helper()
	specs := []program.PhaseSpec{
		{Blocks: 5, MinBlockLen: 4, MaxBlockLen: 10, Mix: [4]float64{0.5, 0.3, 0.15, 0.05},
			Pattern: program.MemPattern{Base: 1 << 20, WorkingSetBytes: 64 << 10, Stride: 8,
				SeqPermille: 500, StreamPermille: 0},
			JumpPermille: 40, ShareBlocksWith: -1},
		{Blocks: 6, MinBlockLen: 4, MaxBlockLen: 10, Mix: [4]float64{0.6, 0.3, 0.1, 0},
			Pattern: program.MemPattern{Base: 32 << 20, WorkingSetBytes: 256 << 10, Stride: 16,
				SeqPermille: 300, StreamPermille: 0},
			JumpPermille: 90, ShareBlocksWith: -1},
	}
	p, err := program.BuildProgram("pbtest", 99, specs,
		program.UniformSchedule([]float64{0.6, 0.4}, 40000, 3))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// capture returns the executor state at instruction boundary near n.
func capture(t testing.TB, p *program.Program, n uint64) (program.State, uint64) {
	t.Helper()
	e := program.NewExecutor(p)
	ran := e.Run(n, program.Hooks{})
	return e.State(), ran
}

func TestRoundTrip(t *testing.T) {
	p := testProgram(t)
	st, _ := capture(t, p, 10000)
	pb := NewRegional("pbtest", "small", 3, st, 2048, 0.25)

	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmark != pb.Benchmark || got.Scale != pb.Scale || got.Kind != pb.Kind ||
		got.Region != pb.Region || got.Len != pb.Len || got.Weight != pb.Weight {
		t.Errorf("round trip changed fields: %+v vs %+v", got, pb)
	}
	if !got.Start.Equal(pb.Start) {
		t.Error("round trip changed state")
	}
	if got.HasWarmup {
		t.Error("warm-up appeared from nowhere")
	}
}

func TestRoundTripWithWarmup(t *testing.T) {
	p := testProgram(t)
	warm, ran := capture(t, p, 5000)
	e := program.NewExecutor(p)
	if err := e.Restore(warm); err != nil {
		t.Fatal(err)
	}
	more := e.Run(3000, program.Hooks{})
	start := e.State()

	pb := NewRegional("pbtest", "small", 0, start, 2048, 0.5).WithWarmup(warm, more)
	_ = ran

	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasWarmup || got.WarmupLen != more || !got.Warmup.Equal(warm) {
		t.Error("warm-up fields lost in round trip")
	}
}

func TestCorruptionDetected(t *testing.T) {
	p := testProgram(t)
	st, _ := capture(t, p, 1000)
	pb := NewRegional("pbtest", "small", 0, st, 512, 1)
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a payload byte.
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0xff
	if _, err := Read(bytes.NewReader(corrupted)); err == nil {
		t.Error("corrupted pinball accepted")
	}

	// Truncate.
	if _, err := Read(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("truncated pinball accepted")
	}

	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	p := testProgram(t)
	st, _ := capture(t, p, 2000)
	pb := NewWhole(p, "small")
	_ = st
	path := filepath.Join(t.TempDir(), "whole.pb")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != Whole || got.Region != -1 || got.Benchmark != "pbtest" {
		t.Errorf("loaded pinball = %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.pb")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestValidate(t *testing.T) {
	p := testProgram(t)
	st, _ := capture(t, p, 100)
	cases := []struct {
		name string
		pb   *Pinball
	}{
		{"empty benchmark", &Pinball{Len: 10, Weight: 1}},
		{"zero length", &Pinball{Benchmark: "x", Weight: 1}},
		{"regional without region", &Pinball{Benchmark: "x", Kind: Regional, Region: -1, Len: 10, Weight: 1}},
		{"bad weight", &Pinball{Benchmark: "x", Len: 10, Weight: 2}},
		{"warmup gap", func() *Pinball {
			pb := NewRegional("x", "small", 0, st, 10, 0.5)
			wrong := st.Clone()
			wrong.Instrs = st.Instrs + 5 // warm-up that ends past the start
			return pb.WithWarmup(wrong, 100)
		}()},
	}
	for _, c := range cases {
		if err := c.pb.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestKindString(t *testing.T) {
	if Whole.String() != "whole" || Regional.String() != "regional" {
		t.Error("kind names wrong")
	}
}

// The fundamental pinball property: a regional replay reproduces exactly the
// statistics of the corresponding region of the whole run.
func TestReplayMatchesWholeRunRegion(t *testing.T) {
	p := testProgram(t)

	// Whole run, collecting the mix of region [12000ish, +4096].
	e := program.NewExecutor(p)
	e.Run(12000, program.Hooks{})
	start := e.State()
	refMix := pintool.NewLdStMix()
	engine := pin.NewEngineAt(e)
	if err := engine.Attach(refMix); err != nil {
		t.Fatal(err)
	}
	regionLen := engine.Run(4096)

	pb := NewRegional("pbtest", "small", 0, start, regionLen, 0.3)
	gotMix := pintool.NewLdStMix()
	n, err := Replay(p, pb, gotMix)
	if err != nil {
		t.Fatal(err)
	}
	if n != regionLen {
		t.Errorf("replayed %d instructions, want %d", n, regionLen)
	}
	if gotMix.Mix != refMix.Mix {
		t.Errorf("replay mix %+v != whole-run region mix %+v", gotMix.Mix, refMix.Mix)
	}
}

func TestReplayRejectsWrongProgram(t *testing.T) {
	p := testProgram(t)
	st, _ := capture(t, p, 1000)
	pb := NewRegional("otherbench", "small", 0, st, 512, 1)
	if _, err := Replay(p, pb); err == nil {
		t.Error("replayed a foreign pinball")
	}
}

// warmProbe records how many instructions it saw in warm-up vs measurement.
type warmProbe struct {
	warm         bool
	warmInstrs   uint64
	measedInstrs uint64
}

func (*warmProbe) Name() string { return "warmprobe" }
func (w *warmProbe) OnBlock(b *isa.Block, _ int) {
	if w.warm {
		w.warmInstrs += uint64(b.Len())
	} else {
		w.measedInstrs += uint64(b.Len())
	}
}
func (w *warmProbe) SetWarmup(on bool) { w.warm = on }

// coldProbe is not Warmable and must never see warm-up instructions.
type coldProbe struct{ instrs uint64 }

func (*coldProbe) Name() string { return "coldprobe" }
func (c *coldProbe) OnBlock(b *isa.Block, _ int) {
	c.instrs += uint64(b.Len())
}

func TestReplayWarmupRouting(t *testing.T) {
	p := testProgram(t)
	e := program.NewExecutor(p)
	e.Run(6000, program.Hooks{})
	warm := e.State()
	warmLen := e.Run(2000, program.Hooks{})
	start := e.State()

	pb := NewRegional("pbtest", "small", 0, start, 1024, 0.4).WithWarmup(warm, warmLen)
	wp := &warmProbe{}
	cp := &coldProbe{}
	n, err := Replay(p, pb, wp, cp)
	if err != nil {
		t.Fatal(err)
	}
	if wp.warmInstrs < warmLen {
		t.Errorf("warmable tool saw %d warm-up instructions, want >= %d", wp.warmInstrs, warmLen)
	}
	if wp.measedInstrs != n {
		t.Errorf("warmable tool measured %d, replay reports %d", wp.measedInstrs, n)
	}
	if cp.instrs != n {
		t.Errorf("non-warmable tool saw %d instructions, want exactly the %d measured", cp.instrs, n)
	}
}

func TestReplayAllParallelMatchesSequential(t *testing.T) {
	p := testProgram(t)

	// Build 6 regional pinballs along the execution.
	var pbs []*Pinball
	e := program.NewExecutor(p)
	for i := 0; i < 6; i++ {
		start := e.State()
		n := e.Run(3000, program.Hooks{})
		if n == 0 {
			break
		}
		pbs = append(pbs, NewRegional("pbtest", "small", i, start, n, 1.0/6))
	}

	mixes := make([]*pintool.LdStMix, len(pbs))
	results := ReplayAll(context.Background(), p, pbs, 4, func(i int) []pin.Tool {
		mixes[i] = pintool.NewLdStMix()
		return []pin.Tool{mixes[i]}
	})
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("replay %d: %v", i, res.Err)
		}
		// Sequential reference.
		ref := pintool.NewLdStMix()
		if _, err := Replay(p, pbs[i], ref); err != nil {
			t.Fatal(err)
		}
		if mixes[i].Mix != ref.Mix {
			t.Errorf("parallel replay %d mix differs from sequential", i)
		}
	}
}
