// Package program defines the synthetic program model and its deterministic
// executor. It is the stand-in for "a SPEC CPU2017 binary running under Pin":
// a program is a set of phases, each phase a set of static basic blocks with
// a characteristic instruction mix, memory-access pattern and control-flow
// behaviour, plus a schedule that interleaves the phases over the run.
//
// Design requirements, in order of importance:
//
//  1. Determinism and checkpointability. PinPlay pinballs work because a
//     captured state replays bit-exactly. Every dynamic decision the
//     executor makes (block successor, branch outcome, memory address) is a
//     pure hash of per-phase counters, so the complete execution state is a
//     few integers (State). A snapshot at instruction n, resumed, is
//     indistinguishable from uninterrupted execution — no matter which
//     instrumentation granularity is attached in either run.
//
//  2. Speed. Whole runs are tens of millions of instructions. The executor
//     works at basic-block granularity: tools that only need block events
//     (BBV profiling, instruction mix) never pay a per-instruction cost;
//     per-instruction work (memory-address materialisation) happens only
//     when a memory hook is attached.
//
//  3. Realistic phase structure. SimPoint exploits long recurrent phases;
//     the model must produce them, with tunable weight skew, so that the
//     paper's Table II / Figure 6 shapes are reproducible.
package program

import (
	"fmt"

	"specsampling/internal/isa"
)

// MemPattern describes the memory behaviour of one phase. Accesses are a
// blend of three components, chosen per access by a deterministic hash:
//
//   - sequential: a strided walk through the working set (spatial locality);
//   - random: uniform references within the working set (temporal locality
//     bounded by working-set size — this is the component whose hit rate
//     depends on cache capacity and warm-up);
//   - streaming: a walk through a region far larger than any cache
//     (compulsory misses in steady state, modelling scans of big data).
type MemPattern struct {
	// Base is the first byte address of the phase's working-set region.
	// Distinct phases use distinct regions, so phase changes disturb the
	// caches the way real program phases do.
	Base uint64
	// WorkingSetBytes is the size of the reused region.
	WorkingSetBytes uint64
	// Stride is the byte stride of the sequential component.
	Stride uint64
	// SeqPermille is the per-mille probability that an access is
	// sequential.
	SeqPermille uint32
	// StreamPermille is the per-mille probability that an access streams
	// through the large cold region. The remainder
	// (1000 - SeqPermille - StreamPermille) is random-in-working-set.
	StreamPermille uint32
	// StreamBase and StreamBytes define the streaming region.
	StreamBase  uint64
	StreamBytes uint64
}

// Validate reports configuration errors.
func (p *MemPattern) Validate() error {
	if p.WorkingSetBytes == 0 {
		return fmt.Errorf("program: working set must be non-zero")
	}
	if p.Stride == 0 {
		return fmt.Errorf("program: stride must be non-zero")
	}
	if p.SeqPermille+p.StreamPermille > 1000 {
		return fmt.Errorf("program: component probabilities exceed 1000 permille")
	}
	if p.StreamPermille > 0 && p.StreamBytes == 0 {
		return fmt.Errorf("program: streaming component without a streaming region")
	}
	return nil
}

// Phase is one recurrent behaviour of the program: the set of basic blocks
// its inner loops execute, its memory pattern, and its control-flow
// character. Phases may share Block pointers (common library code), which
// gives their BBVs partial overlap just as real phases overlap.
type Phase struct {
	// ID is the phase index within the program.
	ID int
	// Blocks is the phase's loop body, executed as a cycle with occasional
	// hash-driven jumps.
	Blocks []*isa.Block
	// Pattern is the phase's memory behaviour.
	Pattern MemPattern
	// JumpPermille is the per-mille probability that control transfers to a
	// hash-chosen block instead of the next block in the cycle. Higher
	// values produce more irregular control flow (harder-to-predict
	// branches, noisier BBVs).
	JumpPermille uint32

	// seedCtl and seedMem are derived per-phase seeds for the control-flow
	// and address hashes; set by Program.Finalize.
	seedCtl uint64
	seedMem uint64
}

// Segment is one schedule entry: run phase Phase for Instrs instructions
// (rounded up to a block boundary during execution).
type Segment struct {
	Phase  int
	Instrs uint64
}

// Program is a complete synthetic program.
type Program struct {
	// Name identifies the program (benchmark name).
	Name string
	// Seed drives every hash in the program's execution.
	Seed uint64
	// Blocks is the global static block list; Block.ID indexes it. BBVs are
	// vectors over this list.
	Blocks []*isa.Block
	// Phases are the program's behaviours.
	Phases []*Phase
	// Schedule interleaves the phases; its lengths sum to the nominal
	// dynamic instruction count.
	Schedule []Segment

	total uint64
}

// TotalInstrs is the nominal dynamic instruction count (the sum of schedule
// segment lengths). Actual executed counts exceed it by at most one basic
// block per segment, because segment boundaries round up to block
// boundaries.
func (p *Program) TotalInstrs() uint64 { return p.total }

// NumBlocks is the static basic-block count (the BBV dimensionality).
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// Finalize validates the program, computes derived per-block and per-phase
// fields, and must be called once after construction, before any executor
// is created.
func (p *Program) Finalize() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("program %q: no phases", p.Name)
	}
	if len(p.Schedule) == 0 {
		return fmt.Errorf("program %q: empty schedule", p.Name)
	}
	for i, b := range p.Blocks {
		if b.ID != i {
			return fmt.Errorf("program %q: block %d has ID %d", p.Name, i, b.ID)
		}
		if b.Len() == 0 {
			return fmt.Errorf("program %q: block %d is empty", p.Name, i)
		}
		b.Finalize()
	}
	for i, ph := range p.Phases {
		if ph.ID != i {
			return fmt.Errorf("program %q: phase %d has ID %d", p.Name, i, ph.ID)
		}
		if len(ph.Blocks) == 0 {
			return fmt.Errorf("program %q: phase %d has no blocks", p.Name, i)
		}
		if err := ph.Pattern.Validate(); err != nil {
			return fmt.Errorf("program %q phase %d: %w", p.Name, i, err)
		}
		ph.seedCtl = mix(p.Seed ^ uint64(i)*0x9e3779b97f4a7c15 ^ 0xC71)
		ph.seedMem = mix(p.Seed ^ uint64(i)*0x9e3779b97f4a7c15 ^ 0x3E3)
	}
	p.total = 0
	for i, seg := range p.Schedule {
		if seg.Phase < 0 || seg.Phase >= len(p.Phases) {
			return fmt.Errorf("program %q: schedule segment %d references phase %d", p.Name, i, seg.Phase)
		}
		if seg.Instrs == 0 {
			return fmt.Errorf("program %q: schedule segment %d is empty", p.Name, i)
		}
		p.total += seg.Instrs
	}
	return nil
}

// PhaseWeights returns each phase's share of the nominal instruction count,
// the ground-truth weights that SimPoint clustering should approximately
// recover.
func (p *Program) PhaseWeights() []float64 {
	w := make([]float64, len(p.Phases))
	for _, seg := range p.Schedule {
		w[seg.Phase] += float64(seg.Instrs)
	}
	for i := range w {
		w[i] /= float64(p.total)
	}
	return w
}

// mix is the SplitMix64 finalizer: a high-quality 64-bit mixing function
// used as the deterministic "randomness" source for all dynamic decisions.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
