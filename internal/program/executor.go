package program

import (
	"fmt"

	"specsampling/internal/isa"
)

// PhaseState is the dynamic state of one phase: how many blocks it has
// executed and how many memory accesses it has issued, since the start of
// the program. Both are inputs to the pure hash functions that decide
// control flow and addresses, so capturing them captures the phase's entire
// future behaviour.
type PhaseState struct {
	BlockExecs uint64
	Accesses   uint64
}

// State is a complete, restorable snapshot of an execution. It is the
// payload of a pinball: resuming from a State reproduces the original
// execution exactly.
type State struct {
	// Instrs is the global dynamic instruction count.
	Instrs uint64
	// Seg is the index of the current schedule segment.
	Seg int
	// SegDone is the instruction count completed inside the current segment.
	SegDone uint64
	// BlockPos is the position in the current phase's block cycle.
	BlockPos int
	// Phases holds per-phase counters, indexed by phase ID.
	Phases []PhaseState
}

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	out := s
	out.Phases = append([]PhaseState(nil), s.Phases...)
	return out
}

// Equal reports whether two states are identical.
func (s State) Equal(o State) bool {
	if s.Instrs != o.Instrs || s.Seg != o.Seg || s.SegDone != o.SegDone ||
		s.BlockPos != o.BlockPos || len(s.Phases) != len(o.Phases) {
		return false
	}
	for i := range s.Phases {
		if s.Phases[i] != o.Phases[i] {
			return false
		}
	}
	return true
}

// Hooks are the executor's observation points — the analogue of Pin's
// instrumentation callbacks. Any hook may be nil; the executor materialises
// only the events that attached hooks need. Crucially, the execution's state
// evolution is identical whichever hooks are attached.
type Hooks struct {
	// Block fires once per dynamic basic-block execution.
	Block func(b *isa.Block, phase int)
	// Mem fires once per dynamic memory access, in program order within the
	// block. Attaching it switches the executor to per-instruction mode.
	Mem func(ref isa.MemRef)
	// Branch fires once per block terminator with the resolved direction.
	Branch func(ev isa.BranchEvent)
}

// Executor runs a Program deterministically. It is not safe for concurrent
// use; run independent Executors (e.g. one per regional pinball) for
// parallelism.
type Executor struct {
	prog *Program
	st   State
}

// NewExecutor returns an executor positioned at the start of the program.
// The program must have been finalized.
func NewExecutor(p *Program) *Executor {
	return &Executor{
		prog: p,
		st: State{
			Phases: make([]PhaseState, len(p.Phases)),
		},
	}
}

// Program returns the program being executed.
func (e *Executor) Program() *Program { return e.prog }

// State returns a deep copy of the current execution state.
func (e *Executor) State() State { return e.st.Clone() }

// Restore rewinds or fast-forwards the executor to a previously captured
// state. The state must come from the same program. The snapshot is copied,
// never aliased, and the copy reuses the executor's existing phase buffer —
// Restore allocates nothing once the executor exists, which is what lets a
// replay worker restore thousands of pinballs through one executor without
// garbage (pinned by TestReplayerReplayAllocs).
func (e *Executor) Restore(s State) error {
	if len(s.Phases) != len(e.prog.Phases) {
		return fmt.Errorf("program: state has %d phases, program has %d", len(s.Phases), len(e.prog.Phases))
	}
	if s.Seg > len(e.prog.Schedule) {
		return fmt.Errorf("program: state segment %d out of range", s.Seg)
	}
	phases := e.st.Phases
	if cap(phases) < len(s.Phases) {
		phases = make([]PhaseState, len(s.Phases))
	} else {
		phases = phases[:len(s.Phases)]
	}
	copy(phases, s.Phases)
	e.st = s
	e.st.Phases = phases
	return nil
}

// Done reports whether the program has run to completion.
func (e *Executor) Done() bool { return e.st.Seg >= len(e.prog.Schedule) }

// Instrs returns the global dynamic instruction count so far.
func (e *Executor) Instrs() uint64 { return e.st.Instrs }

// Run executes until at least limit further instructions have completed or
// the program ends, whichever is first, and returns the number executed.
// Execution always stops on a basic-block boundary, so the return value may
// exceed limit by at most one block. Replaying from the same State with the
// same limit always stops at the same boundary.
func (e *Executor) Run(limit uint64, h Hooks) uint64 {
	var executed uint64
	st := &e.st
	sched := e.prog.Schedule
	for executed < limit && st.Seg < len(sched) {
		seg := &sched[st.Seg]
		ph := e.prog.Phases[seg.Phase]
		b := ph.Blocks[st.BlockPos]
		ps := &st.Phases[seg.Phase]

		if h.Mem != nil {
			e.runBlockInstrs(ph, ps, b, h.Mem)
		} else {
			ps.Accesses += uint64(b.MemOps)
		}
		ps.BlockExecs++

		n := uint64(b.Len())
		executed += n
		st.Instrs += n
		st.SegDone += n

		if h.Block != nil {
			h.Block(b, seg.Phase)
		}

		next, taken := successor(ph, st.BlockPos, ps.BlockExecs)
		if h.Branch != nil {
			h.Branch(isa.BranchEvent{PC: b.PC + uint64(b.Len()-1)*4, Taken: taken})
		}
		st.BlockPos = next

		if st.SegDone >= seg.Instrs {
			st.Seg++
			st.SegDone = 0
			st.BlockPos = 0
		}
	}
	return executed
}

// RunToEnd executes the remainder of the program and returns the number of
// instructions executed.
func (e *Executor) RunToEnd(h Hooks) uint64 {
	var executed uint64
	for !e.Done() {
		// Chunked so limit arithmetic cannot overflow on huge programs.
		executed += e.Run(1<<40, h)
	}
	return executed
}

// runBlockInstrs is the per-instruction path: it walks the block body and
// materialises an address for every memory operand. The address function is
// a pure function of (phase seed, access index), so the executor state
// evolution matches the block-granular fast path exactly.
func (e *Executor) runBlockInstrs(ph *Phase, ps *PhaseState, b *isa.Block, memHook func(isa.MemRef)) {
	pat := &ph.Pattern
	for _, in := range b.Instrs {
		switch in.Kind {
		case isa.MemR:
			memHook(isa.MemRef{Addr: address(ph.seedMem, pat, ps.Accesses), Size: in.Size, Write: false})
			ps.Accesses++
		case isa.MemW:
			memHook(isa.MemRef{Addr: address(ph.seedMem, pat, ps.Accesses), Size: in.Size, Write: true})
			ps.Accesses++
		case isa.MemRW:
			// A memory-to-memory instruction issues a read and a write but
			// counts as a single access-generating instruction; the write
			// lands one line-offset away so it exercises a distinct word.
			a := address(ph.seedMem, pat, ps.Accesses)
			memHook(isa.MemRef{Addr: a, Size: in.Size, Write: false})
			memHook(isa.MemRef{Addr: a + 8, Size: in.Size, Write: true})
			ps.Accesses++
		}
	}
}

// address computes the i-th memory address of a phase. The component
// (sequential / streaming / random) is chosen by hashing the access index,
// then the address is derived from the index within the component's region,
// giving each component its characteristic locality.
func address(seed uint64, pat *MemPattern, i uint64) uint64 {
	h := mix(seed ^ i)
	sel := uint32(h % 1000)
	switch {
	case sel < pat.SeqPermille:
		// Strided walk: position advances with the access index so runs of
		// sequential accesses touch consecutive (strided) addresses.
		pos := (i * pat.Stride) % pat.WorkingSetBytes
		return pat.Base + pos
	case sel < pat.SeqPermille+pat.StreamPermille:
		// Streaming: line-granular walk through a region much larger than
		// the cache hierarchy. The position is scaled by the component's
		// own rate so consecutive stream draws touch consecutive lines
		// (one line per stream access), as a real stencil sweep does.
		pos := (i * uint64(pat.StreamPermille) / 1000 * 64) % pat.StreamBytes
		return pat.StreamBase + pos
	default:
		// Random within the working set, 8-byte aligned. Real programs'
		// "random" references are Zipf-like, not uniform: most touch a hot
		// subset. Thirteen of every sixteen random accesses hit a 1/64
		// slice of the working set, the rest range over all of it — keeping
		// L1 hit rates realistic while preserving capacity-dependent reuse.
		r := mix(h)
		if r&0xf < 13 {
			hot := pat.WorkingSetBytes / 64
			if hot < 512 {
				hot = pat.WorkingSetBytes
			}
			return pat.Base + (r>>8)%hot&^7
		}
		return pat.Base + (r>>8)%pat.WorkingSetBytes&^7
	}
}

// successor decides the next block in the phase's cycle and whether the
// terminating branch was taken. The common case is the fall-through cycle
// (next block, not taken) with a wrap-around loop branch (taken); with
// probability JumpPermille the control transfers to a hash-chosen block
// (taken). Everything is a pure function of the phase's block-execution
// counter.
func successor(ph *Phase, pos int, execs uint64) (next int, taken bool) {
	n := len(ph.Blocks)
	if n == 1 {
		return 0, true
	}
	h := mix(ph.seedCtl ^ execs)
	if uint32(h%1000) < ph.JumpPermille {
		j := int((h >> 32) % uint64(n))
		return j, true
	}
	if pos+1 == n {
		return 0, true // loop back-edge
	}
	return pos + 1, false
}
