package program

import (
	"fmt"

	"specsampling/internal/isa"
	"specsampling/internal/rng"
)

// PhaseSpec is a declarative description of one phase, consumed by
// BuildProgram. The workload suite describes each SPEC CPU2017 stand-in
// benchmark as a list of these.
type PhaseSpec struct {
	// Blocks is the number of basic blocks in the phase's loop body.
	Blocks int
	// MinBlockLen and MaxBlockLen bound the generated block sizes
	// (instructions per block, inclusive).
	MinBlockLen int
	MaxBlockLen int
	// Mix is the target instruction distribution in ldstmix order
	// (NO_MEM, MEM_R, MEM_W, MEM_RW). It need not sum exactly to 1; it is
	// normalised. Every block's final instruction is a Branch terminator
	// (accounted as NO_MEM), so the realised NO_MEM share is slightly
	// above target for short blocks.
	Mix [4]float64
	// Pattern is the phase's memory behaviour.
	Pattern MemPattern
	// JumpPermille is the phase's irregular-control-flow probability.
	JumpPermille uint32
	// ShareBlocksWith, when >= 0, names an earlier phase whose first
	// ShareCount blocks are also included in this phase's body — modelling
	// common code (library routines) shared between program phases.
	ShareBlocksWith int
	// ShareCount is how many blocks to borrow from ShareBlocksWith.
	ShareCount int
}

// BuildProgram constructs and finalizes a Program from per-phase specs and a
// schedule. Construction is deterministic in (name, seed, specs, schedule).
func BuildProgram(name string, seed uint64, specs []PhaseSpec, schedule []Segment) (*Program, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("program %q: no phase specs", name)
	}
	p := &Program{
		Name:     name,
		Seed:     seed,
		Schedule: schedule,
	}
	r := rng.New(seed ^ 0xb10c5)
	for i, spec := range specs {
		if spec.Blocks <= 0 {
			return nil, fmt.Errorf("program %q phase %d: no blocks", name, i)
		}
		if spec.MinBlockLen < 2 {
			return nil, fmt.Errorf("program %q phase %d: blocks need >= 2 instructions (body + terminator)", name, i)
		}
		if spec.MaxBlockLen < spec.MinBlockLen {
			return nil, fmt.Errorf("program %q phase %d: max block length below min", name, i)
		}
		ph := &Phase{
			ID:           i,
			Pattern:      spec.Pattern,
			JumpPermille: spec.JumpPermille,
		}
		if spec.ShareBlocksWith >= 0 && spec.ShareCount > 0 {
			if spec.ShareBlocksWith >= i {
				return nil, fmt.Errorf("program %q phase %d: can only share blocks with an earlier phase", name, i)
			}
			donor := p.Phases[spec.ShareBlocksWith]
			n := spec.ShareCount
			if n > len(donor.Blocks) {
				n = len(donor.Blocks)
			}
			ph.Blocks = append(ph.Blocks, donor.Blocks[:n]...)
		}
		for j := 0; j < spec.Blocks; j++ {
			b := genBlock(&r, len(p.Blocks), spec)
			p.Blocks = append(p.Blocks, b)
			ph.Blocks = append(ph.Blocks, b)
		}
		p.Phases = append(p.Phases, ph)
	}
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// genBlock generates one static block whose body approximates the target
// instruction mix.
func genBlock(r *rng.RNG, id int, spec PhaseSpec) *isa.Block {
	length := spec.MinBlockLen
	if spec.MaxBlockLen > spec.MinBlockLen {
		length += r.Intn(spec.MaxBlockLen - spec.MinBlockLen + 1)
	}
	b := &isa.Block{
		ID: id,
		// Blocks get well-separated PC ranges so branch-predictor index
		// bits differ across blocks, as they would for real code.
		PC:     0x400000 + uint64(id)*0x100,
		Instrs: make([]isa.StaticInstr, 0, length),
	}
	// Normalise the mix into cumulative thresholds.
	total := spec.Mix[0] + spec.Mix[1] + spec.Mix[2] + spec.Mix[3]
	if total <= 0 {
		total = 1
		spec.Mix = [4]float64{1, 0, 0, 0}
	}
	var cum [4]float64
	acc := 0.0
	for k := 0; k < 4; k++ {
		acc += spec.Mix[k] / total
		cum[k] = acc
	}
	for j := 0; j < length-1; j++ {
		v := r.Float64()
		var kind isa.Kind
		switch {
		case v < cum[0]:
			kind = isa.NoMem
		case v < cum[1]:
			kind = isa.MemR
		case v < cum[2]:
			kind = isa.MemW
		default:
			kind = isa.MemRW
		}
		size := uint8(4)
		if kind.AccessesMemory() {
			size = 8
		}
		b.Instrs = append(b.Instrs, isa.StaticInstr{Kind: kind, Size: size})
	}
	b.Instrs = append(b.Instrs, isa.StaticInstr{Kind: isa.Branch, Size: 2})
	b.Finalize()
	return b
}

// UniformSchedule builds a schedule that cycles through phases in a
// round-robin of segment lengths proportional to weights, using segsPerPhase
// visits per phase. It is a convenience for tests and synthetic workloads;
// the workload package builds more structured schedules.
func UniformSchedule(weights []float64, total uint64, segsPerPhase int) []Segment {
	if segsPerPhase < 1 {
		segsPerPhase = 1
	}
	norm := make([]float64, len(weights))
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		if sum > 0 {
			norm[i] = w / sum
		} else {
			norm[i] = 1 / float64(len(weights))
		}
	}
	var sched []Segment
	for s := 0; s < segsPerPhase; s++ {
		for ph, w := range norm {
			n := uint64(float64(total) * w / float64(segsPerPhase))
			if n == 0 {
				continue
			}
			sched = append(sched, Segment{Phase: ph, Instrs: n})
		}
	}
	return sched
}
