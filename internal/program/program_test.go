package program

import (
	"testing"
	"testing/quick"

	"specsampling/internal/isa"
)

// testProgram builds a small 3-phase program for the tests.
func testProgram(t testing.TB, seed uint64, total uint64) *Program {
	t.Helper()
	pattern := func(base uint64, ws uint64) MemPattern {
		return MemPattern{
			Base:            base,
			WorkingSetBytes: ws,
			Stride:          8,
			SeqPermille:     400,
			StreamPermille:  100,
			StreamBase:      1 << 36,
			StreamBytes:     1 << 28,
		}
	}
	specs := []PhaseSpec{
		{Blocks: 6, MinBlockLen: 4, MaxBlockLen: 12, Mix: [4]float64{0.5, 0.35, 0.12, 0.03},
			Pattern: pattern(1<<20, 64<<10), JumpPermille: 30, ShareBlocksWith: -1},
		{Blocks: 8, MinBlockLen: 4, MaxBlockLen: 10, Mix: [4]float64{0.6, 0.25, 0.15, 0},
			Pattern: pattern(16<<20, 512<<10), JumpPermille: 80, ShareBlocksWith: -1},
		{Blocks: 4, MinBlockLen: 6, MaxBlockLen: 14, Mix: [4]float64{0.4, 0.45, 0.15, 0},
			Pattern: pattern(64<<20, 2<<20), JumpPermille: 10, ShareBlocksWith: 0, ShareCount: 2},
	}
	sched := UniformSchedule([]float64{0.5, 0.3, 0.2}, total, 4)
	p, err := BuildProgram("testprog", seed, specs, sched)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	return p
}

func TestBuildProgramBasics(t *testing.T) {
	p := testProgram(t, 1, 100000)
	if p.NumBlocks() != 6+8+4 {
		t.Errorf("NumBlocks = %d, want 18", p.NumBlocks())
	}
	if len(p.Phases) != 3 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	// Phase 2 shares 2 blocks with phase 0.
	if len(p.Phases[2].Blocks) != 6 {
		t.Errorf("phase 2 has %d blocks, want 4 own + 2 shared", len(p.Phases[2].Blocks))
	}
	if p.Phases[2].Blocks[0] != p.Phases[0].Blocks[0] {
		t.Error("shared block pointers differ")
	}
	if p.TotalInstrs() == 0 {
		t.Error("zero total instructions")
	}
}

func TestPhaseWeightsSumToOne(t *testing.T) {
	p := testProgram(t, 2, 100000)
	w := p.PhaseWeights()
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("phase weights sum to %v", sum)
	}
	// Schedule weights were 0.5/0.3/0.2.
	if w[0] < 0.45 || w[0] > 0.55 {
		t.Errorf("phase 0 weight = %v, want ~0.5", w[0])
	}
}

func TestRunToEndExecutesNominalCount(t *testing.T) {
	p := testProgram(t, 3, 50000)
	e := NewExecutor(p)
	n := e.RunToEnd(Hooks{})
	if n < p.TotalInstrs() {
		t.Errorf("executed %d < nominal %d", n, p.TotalInstrs())
	}
	// Overshoot is bounded by one block per segment.
	maxOver := uint64(len(p.Schedule)) * 16
	if n > p.TotalInstrs()+maxOver {
		t.Errorf("executed %d overshoots nominal %d by more than %d", n, p.TotalInstrs(), maxOver)
	}
	if !e.Done() {
		t.Error("executor not done after RunToEnd")
	}
	if e.Run(100, Hooks{}) != 0 {
		t.Error("Run after completion should execute nothing")
	}
}

func TestRunLimitStopsAtBlockBoundary(t *testing.T) {
	p := testProgram(t, 4, 50000)
	e := NewExecutor(p)
	n := e.Run(1000, Hooks{})
	if n < 1000 {
		t.Errorf("Run(1000) executed only %d", n)
	}
	if n > 1000+16 {
		t.Errorf("Run(1000) overshot to %d", n)
	}
	if e.Instrs() != n {
		t.Errorf("Instrs() = %d, want %d", e.Instrs(), n)
	}
}

// TestSnapshotResumeEquivalence is the core pinball property: running N then
// M instructions with a snapshot/restore in between equals running N+M
// uninterrupted.
func TestSnapshotResumeEquivalence(t *testing.T) {
	p := testProgram(t, 5, 50000)

	// Uninterrupted reference run, recording the block trace.
	ref := NewExecutor(p)
	var refTrace []int
	ref.Run(20000, Hooks{Block: func(b *isa.Block, _ int) { refTrace = append(refTrace, b.ID) }})

	// Interrupted run: snapshot at ~7000, restore into a fresh executor.
	a := NewExecutor(p)
	var trace []int
	hook := Hooks{Block: func(b *isa.Block, _ int) { trace = append(trace, b.ID) }}
	ran := a.Run(7000, hook)
	snap := a.State()

	b := NewExecutor(p)
	if err := b.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	b.Run(20000-ran, hook)

	if len(trace) != len(refTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trace), len(refTrace))
	}
	for i := range trace {
		if trace[i] != refTrace[i] {
			t.Fatalf("block traces diverge at %d: %d vs %d", i, trace[i], refTrace[i])
		}
	}
}

// TestModeIndependentStateEvolution verifies the property that makes cheap
// block-granular profiling sound: the state after running N instructions is
// identical whether or not a memory hook was attached.
func TestModeIndependentStateEvolution(t *testing.T) {
	p := testProgram(t, 6, 50000)

	fast := NewExecutor(p)
	fast.Run(12345, Hooks{})

	slow := NewExecutor(p)
	slow.Run(12345, Hooks{Mem: func(isa.MemRef) {}})

	if !fast.State().Equal(slow.State()) {
		t.Fatalf("state diverged between block mode and instruction mode:\nfast: %+v\nslow: %+v",
			fast.State(), slow.State())
	}
}

// TestAddressReplayDeterminism: replaying a region from its snapshot yields
// the identical address stream as the same region inside a longer run.
func TestAddressReplayDeterminism(t *testing.T) {
	p := testProgram(t, 7, 50000)

	// Whole run: record addresses in region [start, start+len).
	whole := NewExecutor(p)
	whole.Run(9000, Hooks{})
	snap := whole.State()
	start := whole.Instrs()
	var wholeAddrs []uint64
	whole.Run(4000, Hooks{Mem: func(r isa.MemRef) { wholeAddrs = append(wholeAddrs, r.Addr) }})
	regionLen := whole.Instrs() - start

	// Regional replay from snapshot.
	replay := NewExecutor(p)
	if err := replay.Restore(snap); err != nil {
		t.Fatal(err)
	}
	var replayAddrs []uint64
	replay.Run(regionLen, Hooks{Mem: func(r isa.MemRef) { replayAddrs = append(replayAddrs, r.Addr) }})

	if len(wholeAddrs) != len(replayAddrs) {
		t.Fatalf("address counts differ: %d vs %d", len(wholeAddrs), len(replayAddrs))
	}
	for i := range wholeAddrs {
		if wholeAddrs[i] != replayAddrs[i] {
			t.Fatalf("addresses diverge at %d: %#x vs %#x", i, wholeAddrs[i], replayAddrs[i])
		}
	}
}

func TestBranchEventsDeterministic(t *testing.T) {
	p := testProgram(t, 8, 20000)
	run := func() []bool {
		e := NewExecutor(p)
		var outcomes []bool
		e.Run(5000, Hooks{Branch: func(ev isa.BranchEvent) { outcomes = append(outcomes, ev.Taken) }})
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("branch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("branch outcomes diverge at %d", i)
		}
	}
	// Branches should not be all-taken or all-not-taken.
	taken := 0
	for _, v := range a {
		if v {
			taken++
		}
	}
	if taken == 0 || taken == len(a) {
		t.Errorf("degenerate branch behaviour: %d/%d taken", taken, len(a))
	}
}

func TestMemRefsMatchBlockMemOps(t *testing.T) {
	p := testProgram(t, 9, 30000)
	e := NewExecutor(p)
	var memInstrs uint64
	var refs uint64
	var rw uint64
	e.Run(10000, Hooks{
		Block: func(b *isa.Block, _ int) {
			memInstrs += uint64(b.MemOps)
			rw += b.Mix.MemRW
		},
		Mem: func(isa.MemRef) { refs++ },
	})
	// MemRW instructions issue two refs each.
	if refs != memInstrs+rw {
		t.Errorf("refs = %d, want memInstrs %d + rw %d", refs, memInstrs, rw)
	}
}

func TestAddressesWithinRegions(t *testing.T) {
	p := testProgram(t, 10, 30000)
	e := NewExecutor(p)
	e.Run(20000, Hooks{Mem: func(r isa.MemRef) {
		inWS := false
		for _, ph := range p.Phases {
			pat := ph.Pattern
			if r.Addr >= pat.Base && r.Addr < pat.Base+pat.WorkingSetBytes+16 {
				inWS = true
			}
			if pat.StreamBytes > 0 && r.Addr >= pat.StreamBase && r.Addr < pat.StreamBase+pat.StreamBytes+16 {
				inWS = true
			}
		}
		if !inWS {
			t.Fatalf("address %#x outside all declared regions", r.Addr)
		}
	}})
}

func TestStateCloneIsDeep(t *testing.T) {
	s := State{Instrs: 5, Phases: []PhaseState{{BlockExecs: 1}}}
	c := s.Clone()
	c.Phases[0].BlockExecs = 99
	if s.Phases[0].BlockExecs != 1 {
		t.Error("Clone shares the phase slice")
	}
}

func TestRestoreRejectsForeignState(t *testing.T) {
	p := testProgram(t, 11, 10000)
	e := NewExecutor(p)
	if err := e.Restore(State{Phases: make([]PhaseState, 99)}); err == nil {
		t.Error("Restore accepted a state with the wrong phase count")
	}
	if err := e.Restore(State{Seg: 1000, Phases: make([]PhaseState, len(p.Phases))}); err == nil {
		t.Error("Restore accepted an out-of-range segment")
	}
}

func TestFinalizeValidation(t *testing.T) {
	base := func() *Program {
		blk := &isa.Block{ID: 0, Instrs: []isa.StaticInstr{{Kind: isa.NoMem, Size: 4}, {Kind: isa.Branch, Size: 2}}}
		return &Program{
			Name:   "bad",
			Blocks: []*isa.Block{blk},
			Phases: []*Phase{{ID: 0, Blocks: []*isa.Block{blk},
				Pattern: MemPattern{Base: 0, WorkingSetBytes: 1024, Stride: 8}}},
			Schedule: []Segment{{Phase: 0, Instrs: 100}},
		}
	}
	if err := base().Finalize(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	p := base()
	p.Phases = nil
	if err := p.Finalize(); err == nil {
		t.Error("accepted program with no phases")
	}

	p = base()
	p.Schedule = nil
	if err := p.Finalize(); err == nil {
		t.Error("accepted program with no schedule")
	}

	p = base()
	p.Schedule = []Segment{{Phase: 5, Instrs: 10}}
	if err := p.Finalize(); err == nil {
		t.Error("accepted schedule referencing unknown phase")
	}

	p = base()
	p.Schedule = []Segment{{Phase: 0, Instrs: 0}}
	if err := p.Finalize(); err == nil {
		t.Error("accepted empty segment")
	}

	p = base()
	p.Phases[0].Pattern.Stride = 0
	if err := p.Finalize(); err == nil {
		t.Error("accepted zero stride")
	}
}

func TestMemPatternValidate(t *testing.T) {
	good := MemPattern{Base: 0, WorkingSetBytes: 1024, Stride: 8,
		SeqPermille: 500, StreamPermille: 100, StreamBase: 1 << 30, StreamBytes: 1 << 20}
	if err := good.Validate(); err != nil {
		t.Errorf("valid pattern rejected: %v", err)
	}
	bad := good
	bad.SeqPermille = 950
	bad.StreamPermille = 100
	if err := bad.Validate(); err == nil {
		t.Error("accepted probabilities > 1000 permille")
	}
	bad = good
	bad.WorkingSetBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero working set")
	}
	bad = good
	bad.StreamBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted streaming without region")
	}
}

// Property: snapshot/resume equivalence holds at arbitrary cut points.
func TestSnapshotResumeProperty(t *testing.T) {
	p := testProgram(t, 12, 40000)
	f := func(cutRaw uint16) bool {
		cut := uint64(cutRaw)%30000 + 10
		ref := NewExecutor(p)
		ref.Run(cut, Hooks{})
		ref.Run(500, Hooks{})
		refState := ref.State()

		x := NewExecutor(p)
		x.Run(cut, Hooks{})
		snap := x.State()
		y := NewExecutor(p)
		if err := y.Restore(snap); err != nil {
			return false
		}
		y.Run(500, Hooks{})
		return y.State().Equal(refState)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUniformScheduleWeights(t *testing.T) {
	sched := UniformSchedule([]float64{1, 1, 2}, 40000, 2)
	totals := map[int]uint64{}
	for _, s := range sched {
		totals[s.Phase] += s.Instrs
	}
	if totals[2] != 2*totals[0] {
		t.Errorf("phase 2 should have twice phase 0's instructions: %v", totals)
	}
}

func BenchmarkExecutorBlockMode(b *testing.B) {
	p := testProgram(b, 13, 1<<62)
	e := NewExecutor(p)
	b.ResetTimer()
	e.Run(uint64(b.N), Hooks{})
	b.ReportMetric(float64(b.N), "instrs")
}

func BenchmarkExecutorMemMode(b *testing.B) {
	p := testProgram(b, 14, 1<<62)
	e := NewExecutor(p)
	var sink uint64
	b.ResetTimer()
	e.Run(uint64(b.N), Hooks{Mem: func(r isa.MemRef) { sink += r.Addr }})
	_ = sink
}
