package experiments

import (
	"bytes"
	"strings"
	"testing"

	"specsampling/internal/selector"
	"specsampling/internal/workload"
)

// TestShootoutShape runs the cross-selector harness on a small sub-suite
// and checks the result grid: every registered backend appears with a cell
// per benchmark plus a suite summary, errors are finite and non-negative,
// and the repeated-subsampling count feeds the CIs.
func TestShootoutShape(t *testing.T) {
	var out bytes.Buffer
	r, err := New(Options{
		Scale:           workload.ScaleSmall,
		Benchmarks:      []string{"505.mcf_r", "503.bwaves_r"},
		Out:             &out,
		ShootoutRepeats: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Shootout(tctx)
	if err != nil {
		t.Fatal(err)
	}
	names := selector.Names()
	if len(res.Selectors) != len(names) {
		t.Fatalf("Selectors = %v, want %v", res.Selectors, names)
	}
	if res.Repeats != 2 {
		t.Errorf("Repeats = %d, want 2", res.Repeats)
	}
	if len(res.Rows) != 2 || len(res.Suite) != len(names) {
		t.Fatalf("grid is %d rows x %d suite cells", len(res.Rows), len(res.Suite))
	}
	for _, row := range res.Rows {
		if len(row.Cells) != len(names) {
			t.Fatalf("%s: %d cells, want %d", row.Benchmark, len(row.Cells), len(names))
		}
		for s, cell := range row.Cells {
			if cell.Selector != names[s] {
				t.Errorf("%s: cell %d is %q, want %q", row.Benchmark, s, cell.Selector, names[s])
			}
			if cell.Points.Mean <= 0 {
				t.Errorf("%s/%s: no points", row.Benchmark, cell.Selector)
			}
			if cell.SampledPct.Mean <= 0 || cell.SampledPct.Mean > 100 {
				t.Errorf("%s/%s: sampled %% = %v", row.Benchmark, cell.Selector, cell.SampledPct.Mean)
			}
			for what, est := range map[string]ShootoutEstimate{
				"cpi": cell.CPIErrPct, "l1d": cell.L1DErrPP, "l2": cell.L2ErrPP,
				"l3": cell.L3ErrPP, "mix": cell.MixErrPP,
			} {
				if est.Mean < 0 || est.CI95 < 0 {
					t.Errorf("%s/%s: negative %s estimate %+v", row.Benchmark, cell.Selector, what, est)
				}
			}
		}
	}
	text := out.String()
	for _, want := range append([]string{"Selector shoot-out", "CPI err %"}, names...) {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunnerRejectsUnknownSelector pins the fail-fast contract: a bad
// -selector value must error at construction, before any work.
func TestRunnerRejectsUnknownSelector(t *testing.T) {
	if _, err := New(Options{Selector: "nope"}); err == nil {
		t.Fatal("unknown selector accepted")
	}
}

// TestRunnerSelectorPropagates checks the runner threads Options.Selector
// into the analysis configuration (and so into every cache key).
func TestRunnerSelectorPropagates(t *testing.T) {
	r, err := New(Options{Selector: "stratified"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Config().Selector; got != "stratified" {
		t.Fatalf("Config().Selector = %q", got)
	}
	k := r.Config().ClusterKey("505.mcf_r")
	found := false
	for _, p := range k.Parts {
		if p == "selector=stratified" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ClusterKey parts %v missing selector part", k.Parts)
	}
}
