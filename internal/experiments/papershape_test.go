package experiments

import (
	"io"
	"math"
	"testing"

	"specsampling/internal/workload"
)

// TestPaperShapesMedium is the reproduction's acceptance test: at medium
// scale over a 8-benchmark cross-section, the headline shapes of the
// paper's evaluation must hold with meaningful margins. It is the slowest
// test in the repository (~1 min) and is skipped in -short mode.
func TestPaperShapesMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale acceptance test skipped in -short mode")
	}
	r, err := New(Options{
		Scale: workload.ScaleMedium,
		Benchmarks: []string{
			"520.omnetpp_r", "505.mcf_r", "541.leela_r", "557.xz_r",
			"631.deepsjeng_s", "503.bwaves_r", "519.lbm_r", "511.povray_r",
		},
		Out: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Table II: average point counts in the paper's neighbourhood.
	t2, err := r.TableII(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t2.AvgPoints-t2.PaperAvgPoints) > 6 {
		t.Errorf("avg points %v vs paper %v", t2.AvgPoints, t2.PaperAvgPoints)
	}
	if math.Abs(t2.AvgPoints90-t2.PaperAvgPoints90) > 5 {
		t.Errorf("avg 90pct points %v vs paper %v", t2.AvgPoints90, t2.PaperAvgPoints90)
	}

	// Figure 5: large reductions, Reduced beyond Regional by roughly the
	// paper's 1.7x.
	f5, err := r.Fig5(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if f5.SuiteInstrReductionRegional < 100 {
		t.Errorf("regional instruction reduction only %vx at medium scale",
			f5.SuiteInstrReductionRegional)
	}
	ratio := f5.SuiteInstrReductionReduced / f5.SuiteInstrReductionRegional
	if ratio < 1.2 || ratio > 2.6 {
		t.Errorf("reduced/regional reduction ratio %v, paper ~1.74", ratio)
	}

	// Figure 7: sub-1% mix errors, Reduced worse than Regional.
	f7, err := r.Fig7(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if f7.AvgAbsErrRegional > 1 {
		t.Errorf("regional mix error %v pp, paper <1%%", f7.AvgAbsErrRegional)
	}
	if f7.AvgAbsErrReduced > 1 {
		t.Errorf("reduced mix error %v pp, paper <1%%", f7.AvgAbsErrReduced)
	}
	if f7.AvgAbsErrReduced < f7.AvgAbsErrRegional {
		t.Error("reduced runs should not beat regional runs on mix accuracy")
	}

	// Figure 8: error gradient L1D < L2 <= L3 and warm-up collapse.
	f8, err := r.Fig8(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if !(f8.RegionalDiff[0] < f8.RegionalDiff[1] && f8.RegionalDiff[1] <= f8.RegionalDiff[2]+5) {
		t.Errorf("error gradient broken: L1D %+.2f, L2 %+.2f, L3 %+.2f pp",
			f8.RegionalDiff[0], f8.RegionalDiff[1], f8.RegionalDiff[2])
	}
	if f8.WarmupDiff[2] > f8.RegionalDiff[2]/1.5 {
		t.Errorf("warm-up did not collapse L3 error: %+.2f -> %+.2f pp",
			f8.RegionalDiff[2], f8.WarmupDiff[2])
	}

	// Figure 12: CPI error in single digits with high correlation.
	f12, err := r.Fig12(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if f12.AvgCPIErrRegionalPct > 9 {
		t.Errorf("regional CPI error %v%%, paper 2.59%%", f12.AvgCPIErrRegionalPct)
	}
	if f12.Correlation < 0.95 {
		t.Errorf("CPI correlation %v", f12.Correlation)
	}
}
