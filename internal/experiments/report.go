package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"specsampling/internal/obs"
)

// Report accumulates the structured results of the experiments a Runner has
// executed, for machine-readable export (cmd/experiments -json). Keys are
// the experiment ids of IDs().
type Report struct {
	mu      sync.Mutex
	results map[string]interface{}
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{results: map[string]interface{}{}}
}

// Record stores one experiment's result under its id, replacing any
// previous entry.
func (r *Report) Record(id string, result interface{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results[id] = result
}

// Len returns the number of recorded experiments.
func (r *Report) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.results)
}

// WriteJSON emits the recorded results as indented JSON, keyed by
// experiment id, with a metadata envelope.
func (r *Report) WriteJSON(w io.Writer, scale string, benchmarks []string) error {
	// Snapshot the map under the lock and encode outside it: w may be a
	// slow client and Encode serialises arbitrary result payloads, so
	// holding r.mu across it would stall every concurrent Record.
	r.mu.Lock()
	results := make(map[string]interface{}, len(r.results))
	//lint:ignore detmap map-to-map copy is order-independent; the encoder sorts keys on output
	for id, res := range r.results {
		results[id] = res
	}
	r.mu.Unlock()
	envelope := struct {
		Paper      string                 `json:"paper"`
		Scale      string                 `json:"scale"`
		Benchmarks []string               `json:"benchmarks"`
		Results    map[string]interface{} `json:"results"`
	}{
		Paper:      "Efficacy of Statistical Sampling on Contemporary Workloads: The Case of SPEC CPU2017 (IISWC 2019)",
		Scale:      scale,
		Benchmarks: benchmarks,
		Results:    results,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(envelope); err != nil {
		return fmt.Errorf("experiments: encode report: %w", err)
	}
	return nil
}

// RunRecorded executes one experiment (or "all") like Run, additionally
// recording each structured result into the report.
func (r *Runner) RunRecorded(ctx context.Context, id string, report *Report) error {
	obs.HeaderfCtx(ctx, "%s", r.Describe())
	run := func(id string) error {
		ctx, span := obs.Start(ctx, "experiment", obs.String("id", id))
		defer span.End()
		switch id {
		case "tableI":
			r.TableI()
			return nil
		case "tableIII":
			r.TableIII()
			return nil
		case "tableII":
			res, err := r.TableII(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig3a":
			res, err := r.Fig3a(ctx, fig3Benchmark, nil)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig3b":
			res, err := r.Fig3b(ctx, fig3Benchmark, nil)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig4":
			res, err := r.Fig4(ctx, nil)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig5":
			res, err := r.Fig5(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig6":
			res, err := r.Fig6(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig7":
			res, err := r.Fig7(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig8":
			res, err := r.Fig8(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig9":
			res, err := r.Fig9(ctx, nil)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig10":
			res, err := r.Fig10(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "fig12":
			res, err := r.Fig12(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		case "shootout":
			res, err := r.Shootout(ctx)
			if err == nil {
				report.Record(id, res)
			}
			return err
		default:
			return fmt.Errorf("experiments: unknown experiment %q (want one of %v or all)", id, IDs())
		}
	}
	if id == "all" {
		if err := r.Prewarm(ctx, "all"); err != nil {
			return err
		}
		for i, each := range IDs() {
			obs.ProgressCtx(ctx, "experiment", i+1, len(IDs()), each)
			if err := run(each); err != nil {
				return err
			}
		}
		return nil
	}
	return run(id)
}
