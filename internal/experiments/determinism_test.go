package experiments

import (
	"encoding/json"
	"testing"

	"specsampling/internal/workload"
)

// The suite pipeline's contract: every deterministic reported value is
// byte-identical for any worker count and across repeated runs. Wall-clock
// measurements (Fig5 run times, Fig9 replay times) are excluded — they are
// the only fields parallelism is allowed to change.

// figureSnapshot runs the deterministic figures on a fresh runner and
// returns a canonical JSON rendition with the wall-clock fields zeroed.
func figureSnapshot(t *testing.T, workers int) string {
	t.Helper()
	r, err := New(Options{
		Scale:           workload.ScaleSmall,
		Benchmarks:      []string{"520.omnetpp_r", "505.mcf_r", "503.bwaves_r"},
		Workers:         workers,
		ShootoutRepeats: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Prewarm(tctx, "all"); err != nil {
		t.Fatal(err)
	}

	tableII, err := r.TableII(tctx)
	if err != nil {
		t.Fatal(err)
	}
	fig5, err := r.Fig5(tctx)
	if err != nil {
		t.Fatal(err)
	}
	// Replay times are measurements; blank them before comparing.
	fig5 = &Fig5Result{
		Rows:                        append([]Fig5Row(nil), fig5.Rows...),
		SuiteInstrReductionRegional: fig5.SuiteInstrReductionRegional,
		SuiteInstrReductionReduced:  fig5.SuiteInstrReductionReduced,
	}
	for i := range fig5.Rows {
		fig5.Rows[i].Comparison.WholeTime = 0
		fig5.Rows[i].Comparison.RegionalTime = 0
		fig5.Rows[i].Comparison.ReducedTime = 0
	}
	fig6, err := r.Fig6(tctx)
	if err != nil {
		t.Fatal(err)
	}
	fig7, err := r.Fig7(tctx)
	if err != nil {
		t.Fatal(err)
	}
	fig8, err := r.Fig8(tctx)
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := r.Fig9(tctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	fig9 = append([]Fig9Point(nil), fig9...)
	for i := range fig9 {
		fig9[i].ReplayTime = 0
	}
	fig12, err := r.Fig12(tctx)
	if err != nil {
		t.Fatal(err)
	}
	shootout, err := r.Shootout(tctx)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := json.Marshal(map[string]interface{}{
		"tableII":  tableII,
		"fig5":     fig5,
		"fig6":     fig6,
		"fig7":     fig7,
		"fig8":     fig8,
		"fig9":     fig9,
		"fig12":    fig12,
		"shootout": shootout,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func TestFiguresIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	serial := figureSnapshot(t, 1)
	parallel := figureSnapshot(t, 8)
	if serial != parallel {
		t.Fatalf("figures differ between Workers=1 and Workers=8:\nserial:   %.400s\nparallel: %.400s",
			serial, parallel)
	}
	repeat := figureSnapshot(t, 8)
	if parallel != repeat {
		t.Fatal("figures differ across repeated Workers=8 runs")
	}
}
