package experiments

import (
	"context"
	"fmt"

	"specsampling/internal/core"
	"specsampling/internal/selector"
	"specsampling/internal/stats"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

// The cross-selector shoot-out: every registered region-selection backend
// scored against the Whole-pinball ground truth on the same profiled
// slices. Each benchmark is profiled once (the analysis cache); each
// selector then re-selects ShootoutRepeats times under shifted seeds, its
// regions are replayed, and the sampled CPI / cache miss rates /
// instruction mix are compared to the whole run. The repeat spread becomes
// a Student-t 95 % confidence interval per cell — the repeated-subsampling
// methodology of the ranked-set paper applied uniformly, so deterministic
// backends (simpoint is seed-stable in practice at the paper's defaults)
// simply show near-zero intervals.

// ShootoutEstimate is one repeated-measurement statistic: the mean across
// repeats and the 95 % confidence half-width around it.
type ShootoutEstimate struct {
	Mean float64
	CI95 float64
}

func (e ShootoutEstimate) String() string {
	return fmt.Sprintf("%.3f ±%.3f", e.Mean, e.CI95)
}

// estimate folds per-repeat observations into a ShootoutEstimate.
func estimate(obs []float64) ShootoutEstimate {
	return ShootoutEstimate{Mean: stats.Mean(obs), CI95: stats.CI95(obs)}
}

// ShootoutCell is one selector's score on one benchmark.
type ShootoutCell struct {
	// Selector is the backend name.
	Selector string
	// Points and SampledPct describe the selection cost: simulation-point
	// count and replayed fraction of the whole run (percent), averaged
	// across repeats.
	Points     ShootoutEstimate
	SampledPct ShootoutEstimate
	// CPIErrPct is the relative CPI error vs the whole run, in percent.
	CPIErrPct ShootoutEstimate
	// L1DErrPP, L2ErrPP, L3ErrPP are absolute miss-rate errors in
	// percentage points.
	L1DErrPP ShootoutEstimate
	L2ErrPP  ShootoutEstimate
	L3ErrPP  ShootoutEstimate
	// MixErrPP is the mean absolute instruction-mix error across the four
	// categories, in percentage points.
	MixErrPP ShootoutEstimate
}

// ShootoutRow is one benchmark's scores across all selectors (cells in
// selector.Names() order).
type ShootoutRow struct {
	Benchmark string
	Cells     []ShootoutCell
}

// ShootoutResult is the cross-selector comparison: per-benchmark rows plus
// the suite-level summary (each suite cell averages the per-repeat suite
// means, so its CI reflects repeat-to-repeat spread, not benchmark spread).
type ShootoutResult struct {
	// Selectors are the compared backends, in report order.
	Selectors []string
	// Repeats is the repeated-subsampling count behind every CI.
	Repeats int
	// Rows hold per-benchmark scores in suite order.
	Rows []ShootoutRow
	// Suite holds the suite-level summary cells, one per selector.
	Suite []ShootoutCell
}

// shootoutObs is one (benchmark, selector, repeat) observation.
type shootoutObs struct {
	points     float64
	sampledPct float64
	cpiErrPct  float64
	l1dErrPP   float64
	l2ErrPP    float64
	l3ErrPP    float64
	mixErrPP   float64
}

// shootoutMeasure replays one repeat's selection and scores it against the
// whole-run ground truth.
func (r *Runner) shootoutMeasure(ctx context.Context, an *core.Analysis, cfg core.Config,
	whole struct {
		mix core.MixProfile
		ch  core.CacheProfile
		cpi core.CPIProfile
	}) (shootoutObs, error) {
	var o shootoutObs
	res, err := an.SelectWith(ctx, cfg)
	if err != nil {
		return o, err
	}
	pbs, err := an.Pinballs(res, 0)
	if err != nil {
		return o, err
	}
	mix, err := an.SampledMix(ctx, pbs)
	if err != nil {
		return o, err
	}
	ch, err := an.SampledCache(ctx, pbs, r.CacheConfig())
	if err != nil {
		return o, err
	}
	cpi, err := an.SampledCPI(ctx, pbs, r.TimingConfig())
	if err != nil {
		return o, err
	}
	o.points = float64(res.NumPoints())
	o.sampledPct = 100 * float64(res.SampledInstrs()) / float64(an.TotalInstrs)
	o.cpiErrPct = stats.RelErrorPct(cpi.CPI, whole.cpi.CPI)
	o.l1dErrPP = 100 * stats.AbsError(ch.L1D, whole.ch.L1D)
	o.l2ErrPP = 100 * stats.AbsError(ch.L2, whole.ch.L2)
	o.l3ErrPP = 100 * stats.AbsError(ch.L3, whole.ch.L3)
	for c := 0; c < 4; c++ {
		o.mixErrPP += 100 * stats.AbsError(mix.Fractions[c], whole.mix.Fractions[c]) / 4
	}
	return o, nil
}

// Shootout runs the cross-selector comparison. The per-benchmark passes fan
// out across the worker budget (each writes an index-addressed row);
// repeats run serially inside a pass so the seed schedule — base seed for
// repeat 0, base+i for repeat i — is identical for any worker count.
func (r *Runner) Shootout(ctx context.Context) (*ShootoutResult, error) {
	names := selector.Names()
	repeats := r.opts.ShootoutRepeats
	res := &ShootoutResult{
		Selectors: names,
		Repeats:   repeats,
		Rows:      make([]ShootoutRow, len(r.specs)),
	}
	// obsGrid[bench][selector][repeat] — index-addressed so the parallel
	// fan-out is schedule-independent.
	obsGrid := make([][][]shootoutObs, len(r.specs))

	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		var whole struct {
			mix core.MixProfile
			ch  core.CacheProfile
			cpi core.CPIProfile
		}
		whole.mix = r.wholeMix(ctx, an)
		if whole.ch, err = r.wholeCache(ctx, an); err != nil {
			return err
		}
		if whole.cpi, err = r.wholeCPI(ctx, an); err != nil {
			return err
		}
		grid := make([][]shootoutObs, len(names))
		for s, name := range names {
			grid[s] = make([]shootoutObs, repeats)
			for rep := 0; rep < repeats; rep++ {
				cfg := r.cfg
				cfg.Selector = name
				cfg.Seed = r.cfg.Seed + uint64(rep)
				grid[s][rep], err = r.shootoutMeasure(ctx, an, cfg, whole)
				if err != nil {
					return fmt.Errorf("experiments: shootout %s/%s repeat %d: %w",
						spec.Name, name, rep, err)
				}
			}
		}
		obsGrid[i] = grid
		return nil
	}); err != nil {
		return nil, err
	}

	for i, spec := range r.specs {
		row := ShootoutRow{Benchmark: spec.Name, Cells: make([]ShootoutCell, len(names))}
		for s, name := range names {
			row.Cells[s] = foldCells(name, obsGrid[i][s])
		}
		res.Rows[i] = row
	}

	// Suite summary: average each repeat across benchmarks first, then fold
	// the per-repeat suite means — the CI measures sampling (seed) spread.
	res.Suite = make([]ShootoutCell, len(names))
	for s, name := range names {
		suiteReps := make([]shootoutObs, repeats)
		for rep := 0; rep < repeats; rep++ {
			var acc shootoutObs
			for i := range r.specs {
				o := obsGrid[i][s][rep]
				acc.points += o.points
				acc.sampledPct += o.sampledPct
				acc.cpiErrPct += o.cpiErrPct
				acc.l1dErrPP += o.l1dErrPP
				acc.l2ErrPP += o.l2ErrPP
				acc.l3ErrPP += o.l3ErrPP
				acc.mixErrPP += o.mixErrPP
			}
			n := float64(len(r.specs))
			acc.points /= n
			acc.sampledPct /= n
			acc.cpiErrPct /= n
			acc.l1dErrPP /= n
			acc.l2ErrPP /= n
			acc.l3ErrPP /= n
			acc.mixErrPP /= n
			suiteReps[rep] = acc
		}
		res.Suite[s] = foldCells(name, suiteReps)
	}

	r.printShootout(res)
	return res, nil
}

// foldCells turns one (selector, benchmark-or-suite) repeat series into a
// cell of mean ± CI estimates.
func foldCells(name string, reps []shootoutObs) ShootoutCell {
	col := func(f func(shootoutObs) float64) ShootoutEstimate {
		vals := make([]float64, len(reps))
		for i, o := range reps {
			vals[i] = f(o)
		}
		return estimate(vals)
	}
	return ShootoutCell{
		Selector:   name,
		Points:     col(func(o shootoutObs) float64 { return o.points }),
		SampledPct: col(func(o shootoutObs) float64 { return o.sampledPct }),
		CPIErrPct:  col(func(o shootoutObs) float64 { return o.cpiErrPct }),
		L1DErrPP:   col(func(o shootoutObs) float64 { return o.l1dErrPP }),
		L2ErrPP:    col(func(o shootoutObs) float64 { return o.l2ErrPP }),
		L3ErrPP:    col(func(o shootoutObs) float64 { return o.l3ErrPP }),
		MixErrPP:   col(func(o shootoutObs) float64 { return o.mixErrPP }),
	}
}

// printShootout renders the suite summary plus the per-benchmark CPI-error
// table (the headline metric; the full grid is in the JSON report).
func (r *Runner) printShootout(res *ShootoutResult) {
	t := textplot.NewTable("Selector", "Points", "Sampled %",
		"CPI err %", "L1D err pp", "L2 err pp", "L3 err pp", "Mix err pp")
	for _, c := range res.Suite {
		t.AddRow(c.Selector, fmt.Sprintf("%.1f", c.Points.Mean),
			fmt.Sprintf("%.2f", c.SampledPct.Mean),
			c.CPIErrPct.String(), c.L1DErrPP.String(),
			c.L2ErrPP.String(), c.L3ErrPP.String(), c.MixErrPP.String())
	}
	r.printf("\n== Selector shoot-out: suite means ± 95%% CI over %d repeats ==\n%s",
		res.Repeats, t.String())

	bt := textplot.NewTable(append([]string{"Benchmark"}, res.Selectors...)...)
	for _, row := range res.Rows {
		cells := make([]string, 0, len(row.Cells)+1)
		cells = append(cells, row.Benchmark)
		for _, c := range row.Cells {
			cells = append(cells, c.CPIErrPct.String())
		}
		bt.AddRow(cells...)
	}
	r.printf("\n== Selector shoot-out: CPI error %% per benchmark ==\n%s", bt.String())
}
