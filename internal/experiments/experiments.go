// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a typed result (so tests and benchmarks
// can assert the paper's shape) and a text rendition (so cmd/experiments
// prints the same rows the paper reports). A Runner caches the expensive
// per-benchmark analyses so the figures that share them (5-10, 12) pay the
// profiling cost once.
//
// The suite pipeline is parallel at two layers: per-benchmark passes inside
// each figure fan out across Options.Workers goroutines (results are
// collected into index-addressed slices, so output order and every reported
// aggregate are identical for any worker count), and the underlying
// analysis/whole-profile caches are singleflight groups, so concurrent
// figures never duplicate an expensive core.Analyze pass.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"

	"specsampling/internal/cache"
	"specsampling/internal/core"
	"specsampling/internal/obs"
	"specsampling/internal/sched"
	"specsampling/internal/selector"
	"specsampling/internal/store"
	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

// fig3Benchmark is the subject of the paper's Figure 3 sensitivity studies.
const fig3Benchmark = "623.xalancbmk_s"

// Options configures a Runner. The zero value is safe: Normalize resolves
// the scale to ScaleMedium, the benchmark list to the full suite, and the
// analysis defaults to the paper's configuration.
type Options struct {
	// Scale selects the workload scale; the zero value means ScaleMedium.
	Scale workload.Scale
	// Benchmarks restricts the suite (full names); empty means all 29.
	Benchmarks []string
	// Workers bounds the suite-level fan-out (per-benchmark analyses and
	// figure loops) and the parallel replay within each analysis; <= 0 uses
	// GOMAXPROCS (via sched.Workers). All results are identical for every
	// worker count.
	Workers int
	// Out receives the text renditions; nil discards them.
	Out io.Writer
	// Store is the persistent artifact cache backing the in-memory
	// singleflight caches (memory → disk → compute); nil disables
	// persistence. Artifacts served from disk yield byte-identical results,
	// so a Store only changes wall-clock time — and makes interrupted runs
	// resumable.
	Store *store.Store
	// Selector names the region-selection backend every experiment runs
	// with; empty means selector.DefaultName ("simpoint"). The shoot-out
	// experiment ignores this and runs every registered backend.
	Selector string
	// ShootoutRepeats is the number of repeated-subsampling runs (shifted
	// seeds) behind the shoot-out's confidence intervals; <= 0 uses
	// DefaultShootoutRepeats, and values below 2 are raised to 2 (a CI
	// needs at least two observations).
	ShootoutRepeats int
}

// DefaultShootoutRepeats is the shoot-out's repeated-subsampling count.
const DefaultShootoutRepeats = 5

// Normalize resolves zero values to their documented defaults. Idempotent;
// New calls it, so sparse literals are safe.
func (o Options) Normalize() Options {
	if o.Scale.Name == "" {
		o.Scale = workload.ScaleMedium
	}
	if o.ShootoutRepeats <= 0 {
		o.ShootoutRepeats = DefaultShootoutRepeats
	}
	if o.ShootoutRepeats < 2 {
		o.ShootoutRepeats = 2
	}
	return o
}

// Runner executes experiments with shared, cached analyses.
type Runner struct {
	opts  Options
	specs []workload.Spec
	// cfg is the single analysis configuration every experiment derives
	// from: core defaults at the runner's scale plus the worker budget.
	// Figures that override a knob (Fig3b's slice length) copy it.
	cfg core.Config

	// analyzed counts completed per-benchmark analyses for progress events.
	analyzed atomic.Int64

	// store is the optional persistent layer under the singleflight caches.
	store *store.Store

	// Singleflight caches: concurrent figures requesting the same
	// benchmark share one computation instead of duplicating it.
	analyses sched.Group[string, *core.Analysis]
	wholeC   sched.Group[string, core.CacheProfile]
	wholeM   sched.Group[string, core.MixProfile]
	wholeP   sched.Group[string, core.CPIProfile]
	fig8     sched.Group[struct{}, *Fig8Result]
}

// New builds a runner. Unknown benchmark names are reported immediately.
func New(opts Options) (*Runner, error) {
	opts = opts.Normalize()
	var specs []workload.Spec
	if len(opts.Benchmarks) == 0 {
		specs = workload.Suite()
	} else {
		for _, name := range opts.Benchmarks {
			s, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	cfg := core.DefaultConfig(opts.Scale)
	cfg.Workers = opts.Workers
	cfg.Selector = opts.Selector
	cfg = cfg.Normalize()
	// Resolve the selector now so an unknown name fails at construction,
	// not deep inside the first analysis.
	if _, err := selector.ByName(cfg.Selector); err != nil {
		return nil, err
	}
	return &Runner{opts: opts, specs: specs, cfg: cfg, store: opts.Store}, nil
}

// Config returns the unified analysis configuration the runner hands to
// core.Analyze (scale, selector, seed, worker budget).
func (r *Runner) Config() core.Config { return r.cfg }

// Describe summarises the run configuration in one line — the header the
// paper-scale tools print before starting work.
func (r *Runner) Describe() string {
	return fmt.Sprintf("scale=%s slice=%d selector=%s maxk=%d seed=%d workers=%d benchmarks=%d",
		r.opts.Scale.Name, r.opts.Scale.SliceLen, r.cfg.Selector, r.cfg.SimPoint.MaxK,
		r.cfg.Seed, r.workers(), len(r.specs))
}

// Scale returns the runner's workload scale.
func (r *Runner) Scale() workload.Scale { return r.opts.Scale }

// Benchmarks returns the selected benchmark specs.
func (r *Runner) Benchmarks() []workload.Spec { return r.specs }

// CacheConfig is the scaled Table I hierarchy used by all cache
// experiments.
func (r *Runner) CacheConfig() cache.HierarchyConfig {
	return cache.ScaledHierarchy(cache.TableIConfig(), r.opts.Scale.CacheDivs)
}

// TimingConfig is the scaled Table III machine used by the CPI experiments.
func (r *Runner) TimingConfig() timing.Config {
	return timing.ScaledConfig(timing.TableIIIConfig(), r.opts.Scale.CacheDivs)
}

// workers resolves the runner's worker budget.
func (r *Runner) workers() int { return sched.Workers(r.opts.Workers) }

// forEachSpec fans fn out over the selected benchmarks across the worker
// budget. fn receives the benchmark's suite index so it can write results
// into index-addressed slots, keeping output order schedule-independent.
func (r *Runner) forEachSpec(ctx context.Context, fn func(i int, spec workload.Spec) error) error {
	return sched.ForEach(ctx, r.workers(), len(r.specs), func(i int) error {
		return fn(i, r.specs[i])
	})
}

// analysis returns (and caches) the benchmark's SimPoint analysis. The
// compute is wrapped in a per-key singleflight, so two figures racing for
// the same benchmark run core.Analyze once and share the result; the
// persistent store (when configured) sits under the singleflight, so the
// lookup order is memory cache → disk store → compute. Completed analyses
// emit one progress event each, so a live run shows per-benchmark
// advancement through the dominant pipeline stage.
func (r *Runner) analysis(ctx context.Context, spec workload.Spec) (*core.Analysis, error) {
	return r.analyses.Do(ctx, spec.Name, func() (*core.Analysis, error) {
		an, err := core.AnalyzeStored(ctx, spec, r.cfg, r.store)
		if err != nil {
			return nil, fmt.Errorf("experiments: analyze %s: %w", spec.Name, err)
		}
		obs.ProgressCtx(ctx, "analyze", int(r.analyzed.Add(1)), len(r.specs), spec.Name)
		return an, nil
	})
}

// wholeKey is the store key of a whole-run replay profile. The profile is a
// function of the built program alone (benchmark + scale) plus the
// scale-derived cache hierarchy, so the scale identifies it completely.
func (r *Runner) wholeKey(kind, bench string) store.Key {
	return store.Key{Kind: kind, Bench: bench, Parts: []string{
		"scale=" + r.opts.Scale.Name,
		fmt.Sprintf("div=%d", r.opts.Scale.Div),
	}}
}

// wholeCache returns (and caches) the benchmark's whole-run cache profile.
func (r *Runner) wholeCache(ctx context.Context, an *core.Analysis) (core.CacheProfile, error) {
	return r.wholeC.Do(ctx, an.Spec.Name, func() (core.CacheProfile, error) {
		key := r.wholeKey("whole_cache", an.Spec.Name)
		var p core.CacheProfile
		if r.store.Get(ctx, key, &p) {
			return p, nil
		}
		p, err := an.WholeCache(ctx, r.CacheConfig())
		if err != nil {
			return p, err
		}
		_ = r.store.Put(ctx, key, p) // cache write failure must not fail the run
		return p, nil
	})
}

// wholeMix returns (and caches) the benchmark's whole-run instruction mix.
func (r *Runner) wholeMix(ctx context.Context, an *core.Analysis) core.MixProfile {
	mp, _ := r.wholeM.Do(ctx, an.Spec.Name, func() (core.MixProfile, error) {
		key := r.wholeKey("whole_mix", an.Spec.Name)
		var p core.MixProfile
		if r.store.Get(ctx, key, &p) {
			return p, nil
		}
		p = an.WholeMix(ctx)
		_ = r.store.Put(ctx, key, p) // cache write failure must not fail the run
		return p, nil
	})
	return mp
}

// wholeCPI returns (and caches) the benchmark's whole-run CPI — the
// ground truth the shoot-out scores every selector against.
func (r *Runner) wholeCPI(ctx context.Context, an *core.Analysis) (core.CPIProfile, error) {
	return r.wholeP.Do(ctx, an.Spec.Name, func() (core.CPIProfile, error) {
		key := r.wholeKey("whole_cpi", an.Spec.Name)
		var p core.CPIProfile
		if r.store.Get(ctx, key, &p) {
			return p, nil
		}
		p, err := an.WholeCPI(ctx, r.TimingConfig())
		if err != nil {
			return p, err
		}
		_ = r.store.Put(ctx, key, p) // cache write failure must not fail the run
		return p, nil
	})
}

// printf writes to the configured output.
func (r *Runner) printf(format string, args ...interface{}) {
	if r.opts.Out == nil {
		return
	}
	fmt.Fprintf(r.opts.Out, format, args...)
}

// IDs enumerates the experiment identifiers Run accepts, in paper order.
func IDs() []string {
	return []string{
		"tableI", "tableII", "tableIII",
		"fig3a", "fig3b", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig12",
		"shootout",
	}
}

// prewarmNeeds describes what one benchmark needs before the requested
// experiments can run without recomputing anything.
type prewarmNeeds struct {
	spec            workload.Spec
	mix, cache, cpi bool
}

// Prewarm precomputes, in parallel across the worker budget, every
// per-benchmark analysis and whole-run profile the given experiment ids
// will need ("all" expands to every experiment). Figures executed
// afterwards find their inputs cached and only pay their own incremental
// replay cost. Calling Prewarm is never required — the figure loops are
// parallel and the caches are singleflight either way — but it front-loads
// the dominant cost into one suite-wide fan-out.
func (r *Runner) Prewarm(ctx context.Context, ids ...string) error {
	var suite, suiteMix, suiteCache, suiteCPI, fig3 bool
	for _, id := range ids {
		switch id {
		case "all":
			suite, suiteMix, suiteCache, suiteCPI, fig3 = true, true, true, true, true
		case "tableII", "fig4", "fig5", "fig6", "fig12":
			suite = true
		case "fig7":
			suite, suiteMix = true, true
		case "fig8", "fig10":
			suite, suiteCache = true, true
		case "fig9":
			suite, suiteMix, suiteCache = true, true, true
		case "shootout":
			suite, suiteMix, suiteCache, suiteCPI = true, true, true, true
		case "fig3a", "fig3b":
			fig3 = true
		case "tableI", "tableIII":
			// Pure configuration prints; nothing to warm.
		default:
			return fmt.Errorf("experiments: unknown experiment %q (want one of %v or all)", id, IDs())
		}
	}

	var jobs []prewarmNeeds
	if suite {
		for _, spec := range r.specs {
			jobs = append(jobs, prewarmNeeds{spec: spec, mix: suiteMix, cache: suiteCache, cpi: suiteCPI})
		}
	}
	if fig3 {
		spec, err := workload.ByName(fig3Benchmark)
		if err != nil {
			return err
		}
		found := false
		for i := range jobs {
			if jobs[i].spec.Name == spec.Name {
				jobs[i].mix, jobs[i].cache = true, true
				found = true
			}
		}
		if !found {
			jobs = append(jobs, prewarmNeeds{spec: spec, mix: true, cache: true})
		}
	}
	return sched.ForEach(ctx, r.workers(), len(jobs), func(i int) error {
		job := jobs[i]
		an, err := r.analysis(ctx, job.spec)
		if err != nil {
			return err
		}
		if job.mix {
			r.wholeMix(ctx, an)
		}
		if job.cache {
			if _, err := r.wholeCache(ctx, an); err != nil {
				return err
			}
		}
		if job.cpi {
			if _, err := r.wholeCPI(ctx, an); err != nil {
				return err
			}
		}
		return nil
	})
}

// Run executes one experiment by id ("all" prewarms the shared analyses in
// parallel, then runs every experiment in paper order). The run announces
// its configuration through the progress sink on entry; ctx cancellation
// aborts between (and inside) stages.
func (r *Runner) Run(ctx context.Context, id string) error {
	obs.HeaderfCtx(ctx, "%s", r.Describe())
	run := func(id string) error {
		ctx, span := obs.Start(ctx, "experiment", obs.String("id", id))
		defer span.End()
		switch id {
		case "tableI":
			r.TableI()
			return nil
		case "tableII":
			_, err := r.TableII(ctx)
			return err
		case "tableIII":
			r.TableIII()
			return nil
		case "fig3a":
			_, err := r.Fig3a(ctx, fig3Benchmark, nil)
			return err
		case "fig3b":
			_, err := r.Fig3b(ctx, fig3Benchmark, nil)
			return err
		case "fig4":
			_, err := r.Fig4(ctx, nil)
			return err
		case "fig5":
			_, err := r.Fig5(ctx)
			return err
		case "fig6":
			_, err := r.Fig6(ctx)
			return err
		case "fig7":
			_, err := r.Fig7(ctx)
			return err
		case "fig8":
			_, err := r.Fig8(ctx)
			return err
		case "fig9":
			_, err := r.Fig9(ctx, nil)
			return err
		case "fig10":
			_, err := r.Fig10(ctx)
			return err
		case "fig12":
			_, err := r.Fig12(ctx)
			return err
		case "shootout":
			_, err := r.Shootout(ctx)
			return err
		default:
			return fmt.Errorf("experiments: unknown experiment %q (want one of %v or all)", id, IDs())
		}
	}
	if id == "all" {
		if err := r.Prewarm(ctx, "all"); err != nil {
			return err
		}
		for i, each := range IDs() {
			obs.ProgressCtx(ctx, "experiment", i+1, len(IDs()), each)
			if err := run(each); err != nil {
				return err
			}
		}
		return nil
	}
	return run(id)
}
