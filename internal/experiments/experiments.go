// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a typed result (so tests and benchmarks
// can assert the paper's shape) and a text rendition (so cmd/experiments
// prints the same rows the paper reports). A Runner caches the expensive
// per-benchmark analyses so the figures that share them (5-10, 12) pay the
// profiling cost once.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"specsampling/internal/cache"
	"specsampling/internal/core"
	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

// Options configures a Runner.
type Options struct {
	// Scale selects the workload scale; the zero value means ScaleMedium.
	Scale workload.Scale
	// Benchmarks restricts the suite (full names); empty means all 29.
	Benchmarks []string
	// Workers bounds parallel replay per analysis.
	Workers int
	// Out receives the text renditions; nil discards them.
	Out io.Writer
}

// Runner executes experiments with shared, cached analyses.
type Runner struct {
	opts  Options
	specs []workload.Spec

	mu       sync.Mutex
	analyses map[string]*core.Analysis
	wholeC   map[string]core.CacheProfile
	wholeM   map[string]core.MixProfile
	fig8     *Fig8Result
}

// New builds a runner. Unknown benchmark names are reported immediately.
func New(opts Options) (*Runner, error) {
	if opts.Scale.Name == "" {
		opts.Scale = workload.ScaleMedium
	}
	var specs []workload.Spec
	if len(opts.Benchmarks) == 0 {
		specs = workload.Suite()
	} else {
		for _, name := range opts.Benchmarks {
			s, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	return &Runner{
		opts:     opts,
		specs:    specs,
		analyses: map[string]*core.Analysis{},
		wholeC:   map[string]core.CacheProfile{},
		wholeM:   map[string]core.MixProfile{},
	}, nil
}

// Scale returns the runner's workload scale.
func (r *Runner) Scale() workload.Scale { return r.opts.Scale }

// Benchmarks returns the selected benchmark specs.
func (r *Runner) Benchmarks() []workload.Spec { return r.specs }

// CacheConfig is the scaled Table I hierarchy used by all cache
// experiments.
func (r *Runner) CacheConfig() cache.HierarchyConfig {
	return cache.ScaledHierarchy(cache.TableIConfig(), r.opts.Scale.CacheDivs)
}

// TimingConfig is the scaled Table III machine used by the CPI experiments.
func (r *Runner) TimingConfig() timing.Config {
	return timing.ScaledConfig(timing.TableIIIConfig(), r.opts.Scale.CacheDivs)
}

// analysis returns (and caches) the benchmark's SimPoint analysis.
func (r *Runner) analysis(spec workload.Spec) (*core.Analysis, error) {
	r.mu.Lock()
	an, ok := r.analyses[spec.Name]
	r.mu.Unlock()
	if ok {
		return an, nil
	}
	cfg := core.DefaultConfig(r.opts.Scale)
	cfg.Workers = r.opts.Workers
	an, err := core.Analyze(spec, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: analyze %s: %w", spec.Name, err)
	}
	r.mu.Lock()
	r.analyses[spec.Name] = an
	r.mu.Unlock()
	return an, nil
}

// wholeCache returns (and caches) the benchmark's whole-run cache profile.
func (r *Runner) wholeCache(an *core.Analysis) (core.CacheProfile, error) {
	r.mu.Lock()
	cp, ok := r.wholeC[an.Spec.Name]
	r.mu.Unlock()
	if ok {
		return cp, nil
	}
	cp, err := an.WholeCache(r.CacheConfig())
	if err != nil {
		return core.CacheProfile{}, err
	}
	r.mu.Lock()
	r.wholeC[an.Spec.Name] = cp
	r.mu.Unlock()
	return cp, nil
}

// wholeMix returns (and caches) the benchmark's whole-run instruction mix.
func (r *Runner) wholeMix(an *core.Analysis) core.MixProfile {
	r.mu.Lock()
	mp, ok := r.wholeM[an.Spec.Name]
	r.mu.Unlock()
	if ok {
		return mp
	}
	mp = an.WholeMix()
	r.mu.Lock()
	r.wholeM[an.Spec.Name] = mp
	r.mu.Unlock()
	return mp
}

// printf writes to the configured output.
func (r *Runner) printf(format string, args ...interface{}) {
	if r.opts.Out == nil {
		return
	}
	fmt.Fprintf(r.opts.Out, format, args...)
}

// IDs enumerates the experiment identifiers Run accepts, in paper order.
func IDs() []string {
	return []string{
		"tableI", "tableII", "tableIII",
		"fig3a", "fig3b", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig12",
	}
}

// Run executes one experiment by id ("all" runs every one in paper order).
func (r *Runner) Run(id string) error {
	run := func(id string) error {
		switch id {
		case "tableI":
			r.TableI()
			return nil
		case "tableII":
			_, err := r.TableII()
			return err
		case "tableIII":
			r.TableIII()
			return nil
		case "fig3a":
			_, err := r.Fig3a("623.xalancbmk_s", nil)
			return err
		case "fig3b":
			_, err := r.Fig3b("623.xalancbmk_s", nil)
			return err
		case "fig4":
			_, err := r.Fig4(nil)
			return err
		case "fig5":
			_, err := r.Fig5()
			return err
		case "fig6":
			_, err := r.Fig6()
			return err
		case "fig7":
			_, err := r.Fig7()
			return err
		case "fig8":
			_, err := r.Fig8()
			return err
		case "fig9":
			_, err := r.Fig9(nil)
			return err
		case "fig10":
			_, err := r.Fig10()
			return err
		case "fig12":
			_, err := r.Fig12()
			return err
		default:
			return fmt.Errorf("experiments: unknown experiment %q (want one of %v or all)", id, IDs())
		}
	}
	if id == "all" {
		for _, each := range IDs() {
			if err := run(each); err != nil {
				return err
			}
		}
		return nil
	}
	return run(id)
}
