package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"specsampling/internal/obs"
	"specsampling/internal/store"
	"specsampling/internal/workload"
)

// The persistent store's pipeline-level contract: an interrupted suite run
// resumes from the completed stages on restart and produces reports
// byte-identical to an uninterrupted cold run, and corrupt cache entries
// degrade to recompute — never to failure, never to different numbers.

var resumeBenches = []string{"520.omnetpp_r", "505.mcf_r", "503.bwaves_r"}

// resumeSnapshot runs the store-covered experiments (TableII: analyses;
// Fig7: whole mixes; Fig8: whole caches) on a fresh runner and returns a
// canonical JSON rendition. All three are wall-clock-free, so snapshots
// must be byte-identical across runs, stores and interruption patterns.
func resumeSnapshot(t *testing.T, benches []string, st *store.Store) string {
	t.Helper()
	r, err := New(Options{
		Scale:      workload.ScaleSmall,
		Benchmarks: benches,
		Workers:    1,
		Store:      st,
	})
	if err != nil {
		t.Fatal(err)
	}
	tableII, err := r.TableII(tctx)
	if err != nil {
		t.Fatal(err)
	}
	fig7, err := r.Fig7(tctx)
	if err != nil {
		t.Fatal(err)
	}
	fig8, err := r.Fig8(tctx)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(map[string]interface{}{
		"tableII": tableII, "fig7": fig7, "fig8": fig8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// cancelSink cancels a context as soon as the n-th per-benchmark analysis
// completes — the deterministic stand-in for a user hitting Ctrl-C
// mid-suite.
type cancelSink struct {
	mu     sync.Mutex
	seen   int
	after  int
	cancel context.CancelFunc
}

func (s *cancelSink) SpanEnd(*obs.SpanData) {}
func (s *cancelSink) Close() error          { return nil }
func (s *cancelSink) Progress(ev obs.ProgressEvent) {
	if ev.Stage != "analyze" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	if s.seen == s.after {
		s.cancel()
	}
}

func TestResumeAfterCancelledRun(t *testing.T) {
	cold := resumeSnapshot(t, resumeBenches, nil)

	st, err := store.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}

	// Pass 1: prewarm the suite with one worker and kill the run (ctx
	// cancel) once the second benchmark's analysis lands. With workers=1
	// the schedule is sequential, so exactly benchmarks 1-2 reach the
	// store: bench 1 fully (profile, cluster, whole mix, whole cache),
	// bench 2 through clustering.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs.Enable(&cancelSink{after: 2, cancel: cancel})
	r1, err := New(Options{
		Scale:      workload.ScaleSmall,
		Benchmarks: resumeBenches,
		Workers:    1,
		Store:      st,
	})
	if err != nil {
		obs.Disable()
		t.Fatal(err)
	}
	err = r1.Prewarm(ctx, "all")
	obs.Disable()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted prewarm returned %v, want context.Canceled", err)
	}
	if st.Len() == 0 {
		t.Fatal("interrupted run persisted no artifacts")
	}

	// Pass 2: a fresh process image (new runner, fresh context) against the
	// same cache directory completes the suite; completed stages come from
	// disk, the rest recompute, and the reports are byte-identical.
	obs.ResetMetrics()
	warm := resumeSnapshot(t, resumeBenches, st)
	if warm != cold {
		t.Error("resumed run is not byte-identical to the cold run")
	}
	hits := obs.GetCounter("store.hit").Value()
	misses := obs.GetCounter("store.miss").Value()
	if hits == 0 || hits < misses {
		t.Errorf("resumed run served %d stages from disk vs %d recomputed; want >= 50%% from the store", hits, misses)
	}
	if got := obs.GetCounter("store.corrupt").Value(); got != 0 {
		t.Errorf("store.corrupt = %d after clean interrupt, want 0", got)
	}

	// Pass 3: fully warm — every stage must now come from disk.
	obs.ResetMetrics()
	rewarm := resumeSnapshot(t, resumeBenches, st)
	if rewarm != cold {
		t.Error("fully-warm run is not byte-identical to the cold run")
	}
	if misses := obs.GetCounter("store.miss").Value(); misses != 0 {
		t.Errorf("fully-warm run still missed %d times, want 0", misses)
	}
}

// corruptArtifacts damages every stored entry, alternating between a
// payload bit-flip and a truncation — the two failure shapes a torn write
// or bit rot produces.
func corruptArtifacts(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".art") {
			return err
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if n%2 == 0 {
			blob[len(blob)-1] ^= 0xff // flip a payload byte
		} else {
			blob = blob[:len(blob)/2] // truncate
		}
		n++
		return os.WriteFile(path, blob, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCorruptCacheEntriesDegradeToRecompute(t *testing.T) {
	benches := resumeBenches[:1]
	cold := resumeSnapshot(t, benches, nil)

	dir := filepath.Join(t.TempDir(), "cache")
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumeSnapshot(t, benches, st); got != cold {
		t.Fatal("cached cold run differs from storeless run")
	}
	stored := st.Len()
	if stored == 0 {
		t.Fatal("no artifacts stored")
	}

	damaged := corruptArtifacts(t, dir)
	if damaged != stored {
		t.Fatalf("corrupted %d of %d artifacts", damaged, stored)
	}

	obs.ResetMetrics()
	if got := resumeSnapshot(t, benches, st); got != cold {
		t.Error("run over a corrupt cache is not byte-identical to the cold run")
	}
	if got := obs.GetCounter("store.corrupt").Value(); got != int64(damaged) {
		t.Errorf("store.corrupt = %d, want %d", got, damaged)
	}
	if got := obs.GetCounter("store.hit").Value(); got != 0 {
		t.Errorf("store.hit = %d over a fully corrupt cache, want 0", got)
	}
	if q := st.Quarantined(); len(q) != damaged {
		t.Errorf("quarantined %d entries, want %d", len(q), damaged)
	}
	// The bad entries were replaced: a further run is fully warm again.
	if got := st.Len(); got != stored {
		t.Errorf("store repopulated %d artifacts, want %d", got, stored)
	}
	obs.ResetMetrics()
	if got := resumeSnapshot(t, benches, st); got != cold {
		t.Error("re-warmed run differs from cold run")
	}
	if misses := obs.GetCounter("store.miss").Value(); misses != 0 {
		t.Errorf("re-warmed run missed %d times, want 0", misses)
	}
}
