package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"specsampling/internal/workload"
)

// tctx is the background context the package's tests thread through Runner.
var tctx = context.Background()

// testRunner uses a 4-benchmark subset at small scale so the whole
// experiment suite stays fast; the selected benchmarks cover the paper's
// behavioural extremes (few-phase, dominant-phase, uniform, pointer-chasing).
func testRunner(t testing.TB, out *bytes.Buffer) *Runner {
	t.Helper()
	var w io.Writer = io.Discard
	if out != nil {
		w = out
	}
	r, err := New(Options{
		Scale:      workload.ScaleSmall,
		Benchmarks: []string{"520.omnetpp_r", "505.mcf_r", "541.leela_r", "503.bwaves_r"},
		Out:        w,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Benchmarks()) != 29 {
		t.Errorf("default suite has %d benchmarks", len(r.Benchmarks()))
	}
	if r.Scale().Name != "medium" {
		t.Errorf("default scale %q", r.Scale().Name)
	}
}

func TestRunUnknownID(t *testing.T) {
	r := testRunner(t, nil)
	if err := r.Run(tctx, "fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestIDsCoverEveryExperiment(t *testing.T) {
	ids := IDs()
	want := []string{"tableI", "tableII", "tableIII", "fig3a", "fig3b", "fig4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig12", "shootout"}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestTablesPrint(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	r.TableI()
	r.TableIII()
	text := out.String()
	for _, want := range []string{
		"Table I", "32kB 32-way", "2MB direct-mapped", "16MB direct-mapped",
		"Table III", "3.4 GHz", "168", "8MB 16-way",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in tables output", want)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.TableII(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Points <= 0 || row.Points90 <= 0 {
			t.Errorf("%s: degenerate counts %+v", row.Benchmark, row)
		}
		if row.Points90 > row.Points {
			t.Errorf("%s: 90th-percentile points exceed total", row.Benchmark)
		}
		// Measured counts should be in the neighbourhood of the paper's.
		if row.Points < row.PaperPoints/2-2 || row.Points > row.PaperPoints*2+4 {
			t.Errorf("%s: %d points vs paper %d — out of neighbourhood",
				row.Benchmark, row.Points, row.PaperPoints)
		}
	}
	if res.AvgPoints90 >= res.AvgPoints {
		t.Error("90th-percentile average should be below the full average")
	}
}

func TestFig3aShape(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.Fig3a(tctx, "505.mcf_r", []int{3, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d sweep points", len(res.Points))
	}
	// A tiny MaxK forces fewer points and (typically) worse mix accuracy.
	small, large := res.Points[0], res.Points[1]
	if small.NumPoints > 3 {
		t.Errorf("MaxK=3 produced %d points", small.NumPoints)
	}
	if large.NumPoints <= small.NumPoints {
		t.Errorf("MaxK=20 (%d points) should find more than MaxK=3 (%d)",
			large.NumPoints, small.NumPoints)
	}
	errSmall := mixAbsErrPct(small.Mix, res.Whole.Mix)
	errLarge := mixAbsErrPct(large.Mix, res.Whole.Mix)
	if errLarge > errSmall+0.5 {
		t.Errorf("larger MaxK degraded mix error: %v vs %v", errLarge, errSmall)
	}
}

func TestFig3bShape(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.Fig3b(tctx, "505.mcf_r", []uint64{15_000_000, 30_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d sweep points", len(res.Points))
	}
	if res.Points[0].Label != "slice=15M" || res.Points[1].Label != "slice=30M" {
		t.Errorf("labels: %q %q", res.Points[0].Label, res.Points[1].Label)
	}
	// Larger slices reduce cold-start L3 inflation (Section IV-A): the L3
	// rate at slice=30M must not exceed the slice=15M rate.
	if res.Points[1].Cache.L3 > res.Points[0].Cache.L3+0.02 {
		t.Errorf("L3 miss rate grew with slice size: %v -> %v",
			res.Points[0].Cache.L3, res.Points[1].Cache.L3)
	}
}

func TestFig4VarianceDecreases(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.Fig4(tctx, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	for bench, vs := range res.Variance {
		if vs[20] > vs[5] {
			t.Errorf("%s: variance grew with clusters: k=5 %v, k=20 %v", bench, vs[5], vs[20])
		}
	}
}

func TestFig5Reductions(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.Fig5(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The paper's headline: sampling reduces instructions dramatically and
	// reduction deepens for the 90th-percentile runs.
	if res.SuiteInstrReductionRegional < 20 {
		t.Errorf("regional instruction reduction only %vx", res.SuiteInstrReductionRegional)
	}
	if res.SuiteInstrReductionReduced <= res.SuiteInstrReductionRegional {
		t.Error("reduced runs should reduce instructions further")
	}
	if res.SuiteTimeReductionRegional <= 1 {
		t.Errorf("time reduction %vx", res.SuiteTimeReductionRegional)
	}
}

func TestFig6WeightShapes(t *testing.T) {
	r := testRunner(t, nil)
	rows, err := r.Fig6(tctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig6Row{}
	for _, row := range rows {
		byName[row.Benchmark] = row
		var sum float64
		for i, w := range row.Weights {
			if w <= 0 {
				t.Errorf("%s: weight %d is %v", row.Benchmark, i, w)
			}
			if i > 0 && w > row.Weights[i-1]+1e-9 {
				t.Errorf("%s: weights not descending", row.Benchmark)
			}
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: weights sum to %v", row.Benchmark, sum)
		}
		if row.Count90 > len(row.Weights) {
			t.Errorf("%s: count90 %d > points %d", row.Benchmark, row.Count90, len(row.Weights))
		}
	}
	// bwaves must be far more weight-skewed than leela (Fig. 6's story).
	bw, le := byName["503.bwaves_r"], byName["541.leela_r"]
	if bw.Weights[0] <= le.Weights[0] {
		t.Errorf("bwaves top weight %v should exceed leela's %v", bw.Weights[0], le.Weights[0])
	}
}

func TestFig7ErrorsSmall(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.Fig7(tctx)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: <1% error. Allow slack at small scale.
	if res.AvgAbsErrRegional > 1.5 {
		t.Errorf("regional mix error %v pp", res.AvgAbsErrRegional)
	}
	if res.AvgAbsErrReduced > 3 {
		t.Errorf("reduced mix error %v pp", res.AvgAbsErrReduced)
	}
	// Suite mix should be near the paper's 49.1/36.7/12.9 split.
	if res.SuiteWholeMix[0] < 0.40 || res.SuiteWholeMix[0] > 0.62 {
		t.Errorf("suite NO_MEM share %v", res.SuiteWholeMix[0])
	}
	if res.SuiteWholeMix[1] < 0.25 || res.SuiteWholeMix[1] > 0.48 {
		t.Errorf("suite MEM_R share %v", res.SuiteWholeMix[1])
	}
}

func TestFig8GradientAndWarmup(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.Fig8(tctx)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's two key claims: (1) sampling error grows for caches
	// further from the CPU; (2) warm-up collapses the LLC error.
	if res.RegionalDiff[0] >= res.RegionalDiff[2] {
		t.Errorf("L1D error %v should be far below L3 error %v",
			res.RegionalDiff[0], res.RegionalDiff[2])
	}
	if res.WarmupDiff[2] >= res.RegionalDiff[2] {
		t.Errorf("warm-up did not reduce L3 error: %v vs %v",
			res.WarmupDiff[2], res.RegionalDiff[2])
	}
	// L1D error must be small in absolute terms (paper: +0.18%).
	if abs := absFinite(res.RegionalDiff[0]); abs > 40 {
		t.Errorf("L1D regional diff %v%% too large", res.RegionalDiff[0])
	}
	// Fig8 result is cached.
	again, err := r.Fig8(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if again != res {
		t.Error("Fig8 not cached")
	}
}

func TestFig9ErrorRisesAsPercentileDrops(t *testing.T) {
	r := testRunner(t, nil)
	pts, err := r.Fig9(tctx, []float64{1.0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[1].Points >= pts[0].Points {
		t.Error("lower percentile should keep fewer points")
	}
	if pts[1].MixErrPct < pts[0].MixErrPct {
		t.Error("mix error should rise as the percentile drops")
	}
}

func TestFig10AccessesShrink(t *testing.T) {
	r := testRunner(t, nil)
	rows, err := r.Fig10(tctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Regional >= row.Whole {
			t.Errorf("%s: regional L3 accesses %d not below whole %d",
				row.Benchmark, row.Regional, row.Whole)
		}
		if row.Reduced > row.Regional {
			t.Errorf("%s: reduced L3 accesses exceed regional", row.Benchmark)
		}
	}
}

func TestFig12CPICorrelation(t *testing.T) {
	r := testRunner(t, nil)
	res, err := r.Fig12(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.NativeCPI <= 0 || row.RegionalCPI <= 0 || row.ReducedCPI <= 0 {
			t.Errorf("%s: degenerate CPIs %+v", row.Benchmark, row)
		}
	}
	// Paper: 2.59% average error, strong correlation. Allow slack at small
	// scale.
	if res.AvgCPIErrRegionalPct > 15 {
		t.Errorf("regional CPI error %v%%", res.AvgCPIErrRegionalPct)
	}
	if res.Correlation < 0.9 {
		t.Errorf("native/sampled CPI correlation %v", res.Correlation)
	}
}

func TestRunAllOnSingleBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	var out bytes.Buffer
	r, err := New(Options{
		Scale:      workload.ScaleSmall,
		Benchmarks: []string{"623.xalancbmk_s"},
		Out:        &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(tctx, "all"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "Table II", "Table III",
		"Figure 3(a)", "Figure 3(b)", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 12"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in run-all output", want)
		}
	}
}

func TestRunRecordedCollectsResults(t *testing.T) {
	r := testRunner(t, nil)
	report := NewReport()
	for _, id := range []string{"fig6", "tableII", "fig5"} {
		if err := r.RunRecorded(tctx, id, report); err != nil {
			t.Fatal(err)
		}
	}
	if report.Len() != 3 {
		t.Errorf("recorded %d results", report.Len())
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, "small", []string{"x"}); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	results, ok := decoded["results"].(map[string]interface{})
	if !ok || len(results) != 3 {
		t.Errorf("JSON results = %v", decoded["results"])
	}
	if err := r.RunRecorded(tctx, "fig99", report); err == nil {
		t.Error("unknown id accepted")
	}
	// tableI runs but records nothing (pure config print).
	if err := r.RunRecorded(tctx, "tableI", report); err != nil {
		t.Fatal(err)
	}
	if report.Len() != 3 {
		t.Error("tableI should not add a result")
	}
}
