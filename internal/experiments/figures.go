package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"specsampling/internal/core"
	"specsampling/internal/native"
	"specsampling/internal/stats"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

// DefaultWarmupSlices is the warm-up length (in slices) of the Warmup
// Regional Run — the scaled counterpart of the paper's 500 M warm-up cycles
// before each 30 M-instruction simulation point (~16 slices' worth of
// execution).
const DefaultWarmupSlices = 16

// ---------------------------------------------------------------- Fig 3 --

// SweepResult is the Figure 3 sensitivity study: the whole-run reference
// plus one sampled measurement per swept configuration.
type SweepResult struct {
	Benchmark string
	Whole     struct {
		Mix   core.MixProfile
		Cache core.CacheProfile
	}
	Points []core.SweepPoint
}

// Fig3a sweeps MaxK for one benchmark (the paper shows xalancbmk_s) at
// values 15..35 and compares instruction mix and cache miss rates against
// the full run. Passing nil maxKs uses the paper's {15, 20, 25, 30, 35}.
func (r *Runner) Fig3a(ctx context.Context, bench string, maxKs []int) (*SweepResult, error) {
	if maxKs == nil {
		maxKs = []int{15, 20, 25, 30, 35}
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	an, err := r.analysis(ctx, spec)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Benchmark: spec.Name}
	res.Whole.Mix = r.wholeMix(ctx, an)
	if res.Whole.Cache, err = r.wholeCache(ctx, an); err != nil {
		return nil, err
	}
	if res.Points, err = an.SweepMaxK(ctx, maxKs, r.CacheConfig()); err != nil {
		return nil, err
	}
	r.printSweep("Figure 3(a): MaxK sensitivity, "+spec.Name, res)
	return res, nil
}

// Fig3b sweeps the slice size for one benchmark at MaxK 35, with the
// paper's {15, 25, 30, 50, 100} M-instruction slice sizes mapped through
// the runner's scale.
func (r *Runner) Fig3b(ctx context.Context, bench string, paperSizes []uint64) (*SweepResult, error) {
	if paperSizes == nil {
		paperSizes = []uint64{15_000_000, 25_000_000, 30_000_000, 50_000_000, 100_000_000}
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	an, err := r.analysis(ctx, spec)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Benchmark: spec.Name}
	res.Whole.Mix = r.wholeMix(ctx, an)
	if res.Whole.Cache, err = r.wholeCache(ctx, an); err != nil {
		return nil, err
	}
	if res.Points, err = core.SweepSliceSize(ctx, spec, r.cfg, paperSizes, r.CacheConfig()); err != nil {
		return nil, err
	}
	r.printSweep("Figure 3(b): slice-size sensitivity, "+spec.Name, res)
	return res, nil
}

func (r *Runner) printSweep(title string, res *SweepResult) {
	t := textplot.NewTable("Config", "Points",
		"NO_MEM", "MEM_R", "MEM_W", "MEM_RW",
		"L1D miss", "L2 miss", "L3 miss")
	addRow := func(label string, points int, mix core.MixProfile, cp core.CacheProfile) {
		t.AddRow(label, itoa(points),
			pct(mix.Fractions[0]), pct(mix.Fractions[1]), pct(mix.Fractions[2]), pct(mix.Fractions[3]),
			pct(cp.L1D), pct(cp.L2), pct(cp.L3))
	}
	addRow("Full run", 0, res.Whole.Mix, res.Whole.Cache)
	for _, p := range res.Points {
		addRow(p.Label, p.NumPoints, p.Mix, p.Cache)
	}
	r.printf("\n== %s ==\n%s", title, t.String())
}

// ----------------------------------------------------------------- Fig 4 --

// Fig4Result maps benchmark -> cluster count -> average within-cluster
// variance.
type Fig4Result struct {
	Ks       []int
	Variance map[string]map[int]float64
}

// Fig4 measures, for every selected benchmark, the average variance in
// phase similarity per cluster as the available cluster count shrinks.
// Passing nil ks uses {5, 10, 15, 20, 25, 30, 35}.
func (r *Runner) Fig4(ctx context.Context, ks []int) (*Fig4Result, error) {
	if ks == nil {
		ks = []int{5, 10, 15, 20, 25, 30, 35}
	}
	res := &Fig4Result{Ks: ks, Variance: map[string]map[int]float64{}}
	sweeps := make([]map[int]float64, len(r.specs))
	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		sweeps[i], err = an.VarianceSweep(ctx, ks)
		return err
	}); err != nil {
		return nil, err
	}
	for i, spec := range r.specs {
		res.Variance[spec.Name] = sweeps[i]
	}
	header := []string{"Benchmark"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	t := textplot.NewTable(header...)
	for _, spec := range r.specs {
		row := []string{spec.Name}
		for _, k := range ks {
			row = append(row, fmt.Sprintf("%.3g", res.Variance[spec.Name][k]))
		}
		t.AddRow(row...)
	}
	r.printf("\n== Figure 4: average within-cluster variance vs cluster count ==\n%s", t.String())
	return res, nil
}

// ----------------------------------------------------------------- Fig 5 --

// Fig5Row is one benchmark's whole/regional/reduced comparison.
type Fig5Row struct {
	Benchmark  string
	Comparison core.RunComparison
}

// Fig5Result is the Figure 5 measurement with suite-level reductions.
type Fig5Result struct {
	Rows []Fig5Row
	// SuiteInstrReductionRegional is Σwhole/Σregional instructions (the
	// paper's ~650x); Reduced is Σwhole/Σreduced (~1225x).
	SuiteInstrReductionRegional float64
	SuiteInstrReductionReduced  float64
	// SuiteTimeReductionRegional / Reduced are the same ratios on measured
	// serial replay times (the paper's ~750x and ~1297x).
	SuiteTimeReductionRegional float64
	SuiteTimeReductionReduced  float64
}

// Fig5 compares dynamic instruction counts and execution times of Whole,
// Regional, and Reduced Regional runs for every selected benchmark.
func (r *Runner) Fig5(ctx context.Context) (*Fig5Result, error) {
	res := &Fig5Result{Rows: make([]Fig5Row, len(r.specs))}
	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		rc, err := an.CompareRuns(ctx, 0.9)
		if err != nil {
			return err
		}
		res.Rows[i] = Fig5Row{Benchmark: spec.Name, Comparison: rc}
		return nil
	}); err != nil {
		return nil, err
	}
	var wi, ri, di uint64
	var wt, rt, dt time.Duration
	for _, row := range res.Rows {
		rc := row.Comparison
		wi += rc.WholeInstrs
		ri += rc.RegionalInstrs
		di += rc.ReducedInstrs
		wt += rc.WholeTime
		rt += rc.RegionalTime
		dt += rc.ReducedTime
	}
	if ri > 0 {
		res.SuiteInstrReductionRegional = float64(wi) / float64(ri)
	}
	if di > 0 {
		res.SuiteInstrReductionReduced = float64(wi) / float64(di)
	}
	if rt > 0 {
		res.SuiteTimeReductionRegional = float64(wt) / float64(rt)
	}
	if dt > 0 {
		res.SuiteTimeReductionReduced = float64(wt) / float64(dt)
	}

	t := textplot.NewTable("Benchmark", "Whole instrs", "Regional", "Reduced",
		"Whole time", "Regional", "Reduced")
	for _, row := range res.Rows {
		rc := row.Comparison
		t.AddRow(row.Benchmark,
			itoa64(rc.WholeInstrs), itoa64(rc.RegionalInstrs), itoa64(rc.ReducedInstrs),
			rc.WholeTime.Round(time.Microsecond).String(),
			rc.RegionalTime.Round(time.Microsecond).String(),
			rc.ReducedTime.Round(time.Microsecond).String())
	}
	r.printf("\n== Figure 5: Whole vs Regional vs Reduced Regional runs ==\n%s", t.String())
	r.printf("suite instruction reduction: regional %.0fx, reduced %.0fx (paper: ~650x, ~1225x)\n",
		res.SuiteInstrReductionRegional, res.SuiteInstrReductionReduced)
	r.printf("suite time reduction:        regional %.0fx, reduced %.0fx (paper: ~750x, ~1297x)\n",
		res.SuiteTimeReductionRegional, res.SuiteTimeReductionReduced)
	return res, nil
}

// ----------------------------------------------------------------- Fig 6 --

// Fig6Row is one benchmark's simulation-point weight distribution,
// descending.
type Fig6Row struct {
	Benchmark string
	Weights   []float64
	// Count90 is the number of heaviest points reaching 0.9 cumulative
	// weight (the dashed line of Figure 6).
	Count90 int
}

// Fig6 reports the weight of each simulation point per benchmark.
func (r *Runner) Fig6(ctx context.Context) ([]Fig6Row, error) {
	rows := make([]Fig6Row, len(r.specs))
	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		weights := make([]float64, 0, an.Result.NumPoints())
		for _, pt := range an.Result.Points {
			weights = append(weights, pt.Weight)
		}
		sortDesc(weights)
		count90 := 0
		acc := 0.0
		for _, w := range weights {
			count90++
			acc += w
			if acc >= 0.9-1e-12 {
				break
			}
		}
		rows[i] = Fig6Row{Benchmark: spec.Name, Weights: weights, Count90: count90}
		return nil
	}); err != nil {
		return nil, err
	}
	t := textplot.NewTable("Benchmark", "Points", "90pct", "Top-1", "Top-3", "Weights (stacked)")
	for _, row := range rows {
		top1 := row.Weights[0]
		top3 := 0.0
		for i, w := range row.Weights {
			if i >= 3 {
				break
			}
			top3 += w
		}
		t.AddRow(row.Benchmark, itoa(len(row.Weights)), itoa(row.Count90),
			pct(top1), pct(top3), textplot.StackedBar(row.Weights, 40))
	}
	r.printf("\n== Figure 6: simulation-point weights ==\n%s", t.String())
	return rows, nil
}

// ----------------------------------------------------------------- Fig 7 --

// Fig7Row is one benchmark's instruction-distribution comparison.
type Fig7Row struct {
	Benchmark string
	Whole     core.MixProfile
	Regional  core.MixProfile
	Reduced   core.MixProfile
}

// Fig7Result adds the suite-average absolute errors (the paper reports
// <1 % for both sampled runs).
type Fig7Result struct {
	Rows []Fig7Row
	// AvgAbsErrRegional / Reduced are suite averages of the mean absolute
	// per-category difference, in percentage points.
	AvgAbsErrRegional float64
	AvgAbsErrReduced  float64
	// SuiteWholeMix is the instruction-weighted suite average whole-run mix
	// (the paper: 49.1 % NO_MEM, 36.7 % MEM_R, 12.9 % MEM_W).
	SuiteWholeMix [4]float64
}

// Fig7 compares instruction distributions of Whole, Regional and Reduced
// Regional runs for every selected benchmark.
func (r *Runner) Fig7(ctx context.Context) (*Fig7Result, error) {
	res := &Fig7Result{Rows: make([]Fig7Row, len(r.specs))}
	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		row := Fig7Row{Benchmark: spec.Name, Whole: r.wholeMix(ctx, an)}
		pbs, err := an.Pinballs(an.Result, 0)
		if err != nil {
			return err
		}
		if row.Regional, err = an.SampledMix(ctx, pbs); err != nil {
			return err
		}
		reduced, err := an.Result.Reduce(0.9)
		if err != nil {
			return err
		}
		rpbs, err := an.Pinballs(reduced, 0)
		if err != nil {
			return err
		}
		if row.Reduced, err = an.SampledMix(ctx, rpbs); err != nil {
			return err
		}
		res.Rows[i] = row
		return nil
	}); err != nil {
		return nil, err
	}
	// Suite aggregation runs serially in suite order so the floating-point
	// sums are identical for every worker count.
	var regErr, redErr float64
	var suiteMix [4]float64
	var suiteInstrs float64
	for _, row := range res.Rows {
		regErr += mixAbsErrPct(row.Regional, row.Whole)
		redErr += mixAbsErrPct(row.Reduced, row.Whole)
		w := float64(row.Whole.Instrs)
		for c := 0; c < 4; c++ {
			suiteMix[c] += row.Whole.Fractions[c] * w
		}
		suiteInstrs += w
	}
	n := float64(len(res.Rows))
	res.AvgAbsErrRegional = regErr / n
	res.AvgAbsErrReduced = redErr / n
	if suiteInstrs > 0 {
		for c := 0; c < 4; c++ {
			res.SuiteWholeMix[c] = suiteMix[c] / suiteInstrs
		}
	}

	t := textplot.NewTable("Benchmark",
		"W NO_MEM", "W MEM_R", "W MEM_W",
		"R NO_MEM", "R MEM_R", "R MEM_W",
		"90 NO_MEM", "90 MEM_R", "90 MEM_W")
	for _, row := range res.Rows {
		t.AddRow(row.Benchmark,
			pct(row.Whole.Fractions[0]), pct(row.Whole.Fractions[1]), pct(row.Whole.Fractions[2]),
			pct(row.Regional.Fractions[0]), pct(row.Regional.Fractions[1]), pct(row.Regional.Fractions[2]),
			pct(row.Reduced.Fractions[0]), pct(row.Reduced.Fractions[1]), pct(row.Reduced.Fractions[2]))
	}
	r.printf("\n== Figure 7: instruction distribution, Whole vs Regional vs Reduced ==\n%s", t.String())
	r.printf("suite whole mix: NO_MEM %s, MEM_R %s, MEM_W %s (paper: 49.1%%, 36.7%%, 12.9%%)\n",
		pct(res.SuiteWholeMix[0]), pct(res.SuiteWholeMix[1]), pct(res.SuiteWholeMix[2]))
	r.printf("avg abs mix error: regional %.3f pp, reduced %.3f pp (paper: <1%%)\n",
		res.AvgAbsErrRegional, res.AvgAbsErrReduced)
	return res, nil
}

// mixAbsErrPct is the mean absolute difference across the four categories,
// in percentage points.
func mixAbsErrPct(a, b core.MixProfile) float64 {
	var sum float64
	for c := 0; c < 4; c++ {
		d := a.Fractions[c] - b.Fractions[c]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / 4 * 100
}

// ------------------------------------------------------------- Fig 8/10 --

// Fig8Row is one benchmark's cache-miss-rate comparison across the four run
// types of Figure 8 (plus the L3 access counts of Figure 10).
type Fig8Row struct {
	Benchmark string
	Whole     core.CacheProfile
	Regional  core.CacheProfile
	Reduced   core.CacheProfile
	Warmup    core.CacheProfile
}

// Fig8Result adds the suite-average signed miss-rate differences the paper
// quotes (L1D +0.18 %, L2 +0.10 %, L3 +25.16 % for Regional; L3 +9.08 %
// after warm-up).
type Fig8Result struct {
	Rows []Fig8Row
	// Diffs are suite-mean signed miss-rate differences vs Whole, in
	// percentage points, keyed by run type and level.
	RegionalDiff [3]float64 // L1D, L2, L3
	ReducedDiff  [3]float64
	WarmupDiff   [3]float64
}

// Fig8 measures L1D/L2/L3 miss rates for Whole, Regional, Reduced Regional
// and Warmup Regional runs of every selected benchmark. The result is
// cached; Fig10 shares it.
func (r *Runner) Fig8(ctx context.Context) (*Fig8Result, error) {
	computed := false
	res, err := r.fig8.Do(ctx, struct{}{}, func() (*Fig8Result, error) {
		computed = true
		res := &Fig8Result{Rows: make([]Fig8Row, len(r.specs))}
		hier := r.CacheConfig()
		if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
			an, err := r.analysis(ctx, spec)
			if err != nil {
				return err
			}
			row := Fig8Row{Benchmark: spec.Name}
			if row.Whole, err = r.wholeCache(ctx, an); err != nil {
				return err
			}
			pbs, err := an.Pinballs(an.Result, 0)
			if err != nil {
				return err
			}
			if row.Regional, err = an.SampledCache(ctx, pbs, hier); err != nil {
				return err
			}
			reduced, err := an.Result.Reduce(0.9)
			if err != nil {
				return err
			}
			rpbs, err := an.Pinballs(reduced, 0)
			if err != nil {
				return err
			}
			if row.Reduced, err = an.SampledCache(ctx, rpbs, hier); err != nil {
				return err
			}
			wpbs, err := an.Pinballs(an.Result, DefaultWarmupSlices)
			if err != nil {
				return err
			}
			if row.Warmup, err = an.SampledCache(ctx, wpbs, hier); err != nil {
				return err
			}
			res.Rows[i] = row
			return nil
		}); err != nil {
			return nil, err
		}
		// Suite means accumulate serially in suite order so the reported
		// diffs are identical for every worker count.
		var regD, redD, warmD [3][]float64
		for _, row := range res.Rows {
			collect := func(dst *[3][]float64, cp core.CacheProfile) {
				// Signed miss-rate differences in percentage points: relative
				// differences explode when the whole-run rate is near zero.
				dst[0] = append(dst[0], (cp.L1D-row.Whole.L1D)*100)
				dst[1] = append(dst[1], (cp.L2-row.Whole.L2)*100)
				dst[2] = append(dst[2], (cp.L3-row.Whole.L3)*100)
			}
			collect(&regD, row.Regional)
			collect(&redD, row.Reduced)
			collect(&warmD, row.Warmup)
		}
		for i := 0; i < 3; i++ {
			res.RegionalDiff[i] = stats.Mean(finite(regD[i]))
			res.ReducedDiff[i] = stats.Mean(finite(redD[i]))
			res.WarmupDiff[i] = stats.Mean(finite(warmD[i]))
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	// Print only on the computing call: cached hits (e.g. Fig10 reusing the
	// measurements) stay silent, as before.
	if computed {
		r.printFig8(res)
	}
	return res, nil
}

func (r *Runner) printFig8(res *Fig8Result) {
	t := textplot.NewTable("Benchmark",
		"W L1D", "W L2", "W L3",
		"R L1D", "R L2", "R L3",
		"90 L3", "Warm L3")
	for _, row := range res.Rows {
		t.AddRow(row.Benchmark,
			pct(row.Whole.L1D), pct(row.Whole.L2), pct(row.Whole.L3),
			pct(row.Regional.L1D), pct(row.Regional.L2), pct(row.Regional.L3),
			pct(row.Reduced.L3), pct(row.Warmup.L3))
	}
	r.printf("\n== Figure 8: cache miss rates, Whole vs Regional vs Reduced vs Warmup ==\n%s", t.String())
	r.printf("avg miss-rate diff vs Whole (L1D/L2/L3): regional %+.2f/%+.2f/%+.2f pp (paper: +0.18/+0.10/+25.16)\n",
		res.RegionalDiff[0], res.RegionalDiff[1], res.RegionalDiff[2])
	r.printf("                                         reduced  %+.2f/%+.2f/%+.2f pp (paper: +2.23/+0.33/+25.53)\n",
		res.ReducedDiff[0], res.ReducedDiff[1], res.ReducedDiff[2])
	r.printf("                                         warmup   %+.2f/%+.2f/%+.2f pp (paper L3: +9.08)\n",
		res.WarmupDiff[0], res.WarmupDiff[1], res.WarmupDiff[2])
}

// Fig10Row is one benchmark's L3 access counts (Figure 10).
type Fig10Row struct {
	Benchmark string
	Whole     uint64
	Regional  uint64
	Reduced   uint64
}

// Fig10 reports the number of L3 accesses by Whole, Regional and Reduced
// Regional runs. It shares measurements with Fig8.
func (r *Runner) Fig10(ctx context.Context) ([]Fig10Row, error) {
	f8, err := r.Fig8(ctx)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	t := textplot.NewTable("Benchmark", "Whole L3 accesses", "Regional", "Reduced")
	for _, row := range f8.Rows {
		r10 := Fig10Row{
			Benchmark: row.Benchmark,
			Whole:     row.Whole.L3Accesses,
			Regional:  row.Regional.L3Accesses,
			Reduced:   row.Reduced.L3Accesses,
		}
		rows = append(rows, r10)
		t.AddRow(r10.Benchmark, itoa64(r10.Whole), itoa64(r10.Regional), itoa64(r10.Reduced))
	}
	r.printf("\n== Figure 10: L3 cache accesses ==\n%s", t.String())
	return rows, nil
}

// ----------------------------------------------------------------- Fig 9 --

// Fig9Point is the suite-averaged error/time at one simulation-point
// percentile.
type Fig9Point struct {
	Percentile float64
	// MixErrPct is the suite-mean absolute instruction-mix error
	// (percentage points).
	MixErrPct float64
	// CacheErrPct are suite-mean absolute miss-rate errors vs Whole for
	// L1D/L2/L3, in percentage points.
	CacheErrPct [3]float64
	// ReplayTime is the total replay wall-clock across the suite.
	ReplayTime time.Duration
	// Points is the total simulation-point count across the suite.
	Points int
}

// Fig9 sweeps the percentile of simulation points considered for execution
// and reports suite-averaged error rates and execution time. Passing nil
// uses the paper's 100..30 range in steps of 10.
func (r *Runner) Fig9(ctx context.Context, percentiles []float64) ([]Fig9Point, error) {
	if percentiles == nil {
		percentiles = []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3}
	}
	hier := r.CacheConfig()
	out := make([]Fig9Point, len(percentiles))
	for i, pct := range percentiles {
		out[i].Percentile = pct
	}
	// Per-benchmark sweeps run in parallel; each contributes one Fig9Point
	// row per percentile, accumulated serially below in suite order.
	type specSweep struct {
		whole      core.MixProfile
		wholeCache core.CacheProfile
		pts        []core.PercentilePoint
	}
	sweeps := make([]specSweep, len(r.specs))
	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		sweeps[i].whole = r.wholeMix(ctx, an)
		if sweeps[i].wholeCache, err = r.wholeCache(ctx, an); err != nil {
			return err
		}
		sweeps[i].pts, err = an.PercentileSweep(ctx, percentiles, hier)
		return err
	}); err != nil {
		return nil, err
	}
	for _, sw := range sweeps {
		for i, p := range sw.pts {
			out[i].MixErrPct += mixAbsErrPct(p.Mix, sw.whole)
			out[i].CacheErrPct[0] += absFinite((p.Cache.L1D - sw.wholeCache.L1D) * 100)
			out[i].CacheErrPct[1] += absFinite((p.Cache.L2 - sw.wholeCache.L2) * 100)
			out[i].CacheErrPct[2] += absFinite((p.Cache.L3 - sw.wholeCache.L3) * 100)
			out[i].ReplayTime += p.ReplayTime
			out[i].Points += p.NumPoints
		}
	}
	n := float64(len(r.specs))
	for i := range out {
		out[i].MixErrPct /= n
		for c := 0; c < 3; c++ {
			out[i].CacheErrPct[c] /= n
		}
	}
	t := textplot.NewTable("Percentile", "Points", "Mix err (pp)",
		"L1D err pp", "L2 err pp", "L3 err pp", "Replay time")
	for _, p := range out {
		t.AddRow(fmt.Sprintf("%.0f", p.Percentile*100), itoa(p.Points),
			fmt.Sprintf("%.3f", p.MixErrPct),
			fmt.Sprintf("%.2f", p.CacheErrPct[0]),
			fmt.Sprintf("%.2f", p.CacheErrPct[1]),
			fmt.Sprintf("%.2f", p.CacheErrPct[2]),
			p.ReplayTime.Round(time.Millisecond).String())
	}
	r.printf("\n== Figure 9: error and execution time vs simulation-point percentile ==\n%s", t.String())
	return out, nil
}

// ---------------------------------------------------------------- Fig 12 --

// Fig12Row is one benchmark's native-vs-Sniper CPI comparison.
type Fig12Row struct {
	Benchmark   string
	NativeCPI   float64
	RegionalCPI float64
	ReducedCPI  float64
}

// Fig12Result adds the suite averages (the paper: 2.59 % average CPI error
// for Regional, 13.9 % average deviation for Reduced).
type Fig12Result struct {
	Rows []Fig12Row
	// AvgCPIErrRegionalPct is |mean CPI difference| between native and
	// Sniper-with-Regional-points, averaged over the suite, in percent.
	AvgCPIErrRegionalPct float64
	// AvgCPIErrReducedPct is the same for Reduced Regional points.
	AvgCPIErrReducedPct float64
	// Correlation is the Pearson correlation between native and regional
	// CPIs across benchmarks.
	Correlation float64
}

// Fig12 compares whole-program native execution (perf counters) against
// Sniper running Regional and Reduced Regional pinballs, on CPI.
func (r *Runner) Fig12(ctx context.Context) (*Fig12Result, error) {
	res := &Fig12Result{Rows: make([]Fig12Row, len(r.specs))}
	cfg := r.TimingConfig()
	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		nat, err := native.PerfStat(an.Prog, r.opts.Scale.CacheDivs, 0)
		if err != nil {
			return err
		}
		pbs, err := an.Pinballs(an.Result, DefaultWarmupSlices)
		if err != nil {
			return err
		}
		reg, err := an.SampledCPI(ctx, pbs, cfg)
		if err != nil {
			return err
		}
		reduced, err := an.Result.Reduce(0.9)
		if err != nil {
			return err
		}
		rpbs, err := an.Pinballs(reduced, DefaultWarmupSlices)
		if err != nil {
			return err
		}
		red, err := an.SampledCPI(ctx, rpbs, cfg)
		if err != nil {
			return err
		}
		res.Rows[i] = Fig12Row{
			Benchmark:   spec.Name,
			NativeCPI:   nat.CPI(),
			RegionalCPI: reg.CPI,
			ReducedCPI:  red.CPI,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Suite averages and the correlation accumulate serially in suite order.
	var natCPIs, regCPIs []float64
	for _, row := range res.Rows {
		natCPIs = append(natCPIs, row.NativeCPI)
		regCPIs = append(regCPIs, row.RegionalCPI)
		res.AvgCPIErrRegionalPct += stats.RelErrorPct(row.RegionalCPI, row.NativeCPI)
		res.AvgCPIErrReducedPct += stats.RelErrorPct(row.ReducedCPI, row.NativeCPI)
	}
	n := float64(len(res.Rows))
	res.AvgCPIErrRegionalPct /= n
	res.AvgCPIErrReducedPct /= n
	res.Correlation = stats.Pearson(natCPIs, regCPIs)

	t := textplot.NewTable("Benchmark", "Native CPI", "Sniper Regional", "Sniper Reduced")
	for _, row := range res.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%.3f", row.NativeCPI),
			fmt.Sprintf("%.3f", row.RegionalCPI),
			fmt.Sprintf("%.3f", row.ReducedCPI))
	}
	r.printf("\n== Figure 12: CPI, native vs Sniper with simulation points ==\n%s", t.String())
	r.printf("avg CPI error: regional %.2f%% (paper: 2.59%%), reduced %.2f%% (paper: 13.9%%); corr %.3f\n",
		res.AvgCPIErrRegionalPct, res.AvgCPIErrReducedPct, res.Correlation)
	return res, nil
}

// ---------------------------------------------------------------- helpers --

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

func itoa64(v uint64) string { return fmt.Sprintf("%d", v) }

func sortDesc(v []float64) {
	sort.Sort(sort.Reverse(sort.Float64Slice(v)))
}

// finite drops non-finite values (zero-reference diffs).
func finite(vs []float64) []float64 {
	out := vs[:0]
	for _, v := range vs {
		if v == v && v < 1e308 && v > -1e308 {
			out = append(out, v)
		}
	}
	return out
}

func absFinite(v float64) float64 {
	if v != v || v > 1e308 || v < -1e308 {
		return 0
	}
	if v < 0 {
		return -v
	}
	return v
}
