package experiments

import (
	"context"
	"fmt"
	"strconv"

	"specsampling/internal/cache"
	"specsampling/internal/textplot"
	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

// TableI prints the paper's Table I (allcache configuration) together with
// the scaled configuration actually simulated at this runner's scale.
func (r *Runner) TableI() {
	paper := cache.TableIConfig()
	scaled := r.CacheConfig()
	t := textplot.NewTable("Level", "Paper (Table I)", "Scaled ("+r.opts.Scale.Name+")")
	row := func(name string, p, s cache.Config) {
		t.AddRow(name, describeCache(p), describeCache(s))
	}
	row("L1i", paper.L1I, scaled.L1I)
	row("L1d", paper.L1D, scaled.L1D)
	row("L2", paper.L2, scaled.L2)
	row("L3", paper.L3, scaled.L3)
	r.printf("\n== Table I: allcache simulator configuration ==\n%s", t.String())
}

func describeCache(c cache.Config) string {
	assoc := "direct-mapped"
	if c.Ways > 1 {
		assoc = itoa(c.Ways) + "-way"
	}
	return byteSize(c.SizeBytes) + " " + assoc + ", " + byteSize(c.LineBytes) + " linesize"
}

// TableIIRow is one benchmark's simulation-point counts — measured by this
// reproduction and as reported in the paper.
type TableIIRow struct {
	Benchmark string
	// Points and Points90 are measured by running the pipeline.
	Points   int
	Points90 int
	// PaperPoints and PaperPoints90 are the paper's Table II values.
	PaperPoints   int
	PaperPoints90 int
}

// TableIIResult is the measured Table II with its averages.
type TableIIResult struct {
	Rows []TableIIRow
	// AvgPoints / AvgPoints90 are the measured averages (paper: 19.75 and
	// 11.31).
	AvgPoints   float64
	AvgPoints90 float64
	// PaperAvgPoints / PaperAvgPoints90 average the paper columns over the
	// selected benchmarks.
	PaperAvgPoints   float64
	PaperAvgPoints90 float64
}

// TableII runs the SimPoint pipeline for every selected benchmark and
// tabulates the number of simulation points and 90th-percentile simulation
// points (the paper's Table II).
func (r *Runner) TableII(ctx context.Context) (*TableIIResult, error) {
	res := &TableIIResult{Rows: make([]TableIIRow, len(r.specs))}
	if err := r.forEachSpec(ctx, func(i int, spec workload.Spec) error {
		an, err := r.analysis(ctx, spec)
		if err != nil {
			return err
		}
		reduced, err := an.Result.Reduce(0.9)
		if err != nil {
			return err
		}
		res.Rows[i] = TableIIRow{
			Benchmark:     spec.Name,
			Points:        an.Result.NumPoints(),
			Points90:      reduced.NumPoints(),
			PaperPoints:   spec.Phases,
			PaperPoints90: spec.Phases90,
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, row := range res.Rows {
		res.AvgPoints += float64(row.Points)
		res.AvgPoints90 += float64(row.Points90)
		res.PaperAvgPoints += float64(row.PaperPoints)
		res.PaperAvgPoints90 += float64(row.PaperPoints90)
	}
	n := float64(len(res.Rows))
	res.AvgPoints /= n
	res.AvgPoints90 /= n
	res.PaperAvgPoints /= n
	res.PaperAvgPoints90 /= n

	t := textplot.NewTable("Benchmark", "SimPoints", "90pct SimPoints", "paper", "paper 90pct")
	for _, row := range res.Rows {
		t.AddRowf(row.Benchmark, row.Points, row.Points90, row.PaperPoints, row.PaperPoints90)
	}
	t.AddRowf("Average", res.AvgPoints, res.AvgPoints90, res.PaperAvgPoints, res.PaperAvgPoints90)
	r.printf("\n== Table II: SPEC CPU2017 simulation points ==\n%s", t.String())
	return res, nil
}

// TableIII prints the paper's Table III (Sniper system configuration) and
// the scaled machine used at this runner's scale.
func (r *Runner) TableIII() {
	paper := timing.TableIIIConfig()
	scaled := r.TimingConfig()
	t := textplot.NewTable("Parameter", "Paper (Table III)", "Scaled ("+r.opts.Scale.Name+")")
	t.AddRow("Model", "8-core Intel i7-3770", "1 core modelled")
	t.AddRowf("CPU Frequency", fmt.Sprintf("%.1f GHz", paper.FrequencyGHz), fmt.Sprintf("%.1f GHz", scaled.FrequencyGHz))
	t.AddRowf("Dispatch width", paper.DispatchWidth, scaled.DispatchWidth)
	t.AddRowf("Reorder buffer", paper.ROBEntries, scaled.ROBEntries)
	t.AddRowf("Branch miss penalty", paper.BranchMissPenalty, scaled.BranchMissPenalty)
	t.AddRow("L1-I cache", describeCache(paper.Caches.L1I), describeCache(scaled.Caches.L1I))
	t.AddRow("L1-D cache", describeCache(paper.Caches.L1D), describeCache(scaled.Caches.L1D))
	t.AddRow("L2 cache", describeCache(paper.Caches.L2), describeCache(scaled.Caches.L2))
	t.AddRow("L3 cache", describeCache(paper.Caches.L3), describeCache(scaled.Caches.L3))
	t.AddRowf("L2/L3/Mem latency", fmtLat(paper), fmtLat(scaled))
	r.printf("\n== Table III: system configuration ==\n%s", t.String())
}

func fmtLat(c timing.Config) string {
	return itoa(int(c.L2Latency)) + "/" + itoa(int(c.L3Latency)) + "/" + itoa(int(c.MemLatency)) + " cycles"
}

func itoa(v int) string { return strconv.Itoa(v) }

func byteSize(b uint64) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return itoa(int(b>>20)) + "MB"
	case b >= 1<<10 && b%(1<<10) == 0:
		return itoa(int(b>>10)) + "kB"
	default:
		return itoa(int(b)) + "B"
	}
}
