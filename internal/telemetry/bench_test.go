package telemetry

import (
	"fmt"
	"io"
	"testing"

	"specsampling/internal/obs"
)

// BenchmarkMetricsExposition is the scrape cost: snapshot the registry and
// render the full Prometheus text exposition. Populated with a realistic
// daemon registry shape — a few dozen counters/gauges plus labelled
// per-route histograms — so the recorded number tracks what a 1 Hz (or a
// misbehaving 100 Hz) scraper costs the serving process.
func BenchmarkMetricsExposition(b *testing.B) {
	for i := 0; i < 24; i++ {
		obs.GetCounter(fmt.Sprintf("benchexpo.counter_%02d", i)).Add(int64(i) * 17)
	}
	for i := 0; i < 8; i++ {
		obs.GetGauge(fmt.Sprintf("benchexpo.gauge_%02d", i)).Set(int64(i) * 3)
	}
	for r := 0; r < 8; r++ {
		h := obs.GetHistogram(fmt.Sprintf("benchexpo.seconds{route=\"/route/%d\"}", r))
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i%250) * 0.0004)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WritePrometheus(io.Discard, obs.Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}
