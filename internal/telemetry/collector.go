package telemetry

import (
	"runtime"
	"sync"
	"time"

	"specsampling/internal/obs"
)

// Probe publishes one subsystem's gauges; the collector calls every probe
// once per sampling tick, immediately before it captures the snapshot.
// Probes must be safe for concurrent use with the subsystem they observe
// (they read atomics or take short locks — never block).
type Probe func()

// Snapshot is one timestamped sample of the whole metric registry,
// flattened for dashboards: counters and gauges by name, histograms as
// name-suffixed count/sum and derived p50/p99. JSON object keys come out
// sorted (encoding/json sorts map keys), so serialized history is
// deterministic for fixed metric state.
type Snapshot struct {
	// TimeMs is the sample wall-clock time in Unix milliseconds.
	TimeMs int64 `json:"t_ms"`
	// Metrics maps flattened metric names to values.
	Metrics map[string]float64 `json:"metrics"`
}

// Collector is the runtime self-monitoring loop: a goroutine that samples
// every interval, runs the registered probes (queue depth, cache hit
// ratio, runtime heap/goroutine gauges), and retains the last N snapshots
// in a ring buffer for GET /v1/stats/history.
type Collector struct {
	interval time.Duration
	probes   []Probe

	mu   sync.Mutex
	ring []Snapshot
	next int
	full bool

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewCollector builds a collector sampling every interval (default 1s)
// keeping history snapshots (default 600 — ten minutes at the default
// interval).
func NewCollector(interval time.Duration, history int, probes ...Probe) *Collector {
	if interval <= 0 {
		interval = time.Second
	}
	if history <= 0 {
		history = 600
	}
	return &Collector{
		interval: interval,
		probes:   probes,
		ring:     make([]Snapshot, history),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the sampling goroutine (idempotent). The first sample is
// taken immediately, so History is never empty once Start has returned.
func (c *Collector) Start() {
	c.startOnce.Do(func() {
		c.sample()
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.interval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					c.sample()
				}
			}
		}()
	})
}

// Close stops the sampling goroutine and waits for it to exit. Safe to
// call more than once, and before Start (the collector then never runs).
func (c *Collector) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) }) // never started: nothing to wait for
	<-c.done
}

// sample runs the probes and appends one snapshot to the ring.
func (c *Collector) sample() {
	for _, p := range c.probes {
		p()
	}
	snap := Snapshot{TimeMs: time.Now().UnixMilli(), Metrics: Flatten(obs.Snapshot())}
	c.mu.Lock()
	c.ring[c.next] = snap
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.full = true
	}
	c.mu.Unlock()
}

// History returns the retained snapshots, oldest first.
func (c *Collector) History() []Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.full {
		return append([]Snapshot(nil), c.ring[:c.next]...)
	}
	out := make([]Snapshot, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	return append(out, c.ring[:c.next]...)
}

// Flatten turns a registry snapshot into the dashboard-friendly flat map:
// counters and gauges keep their name; a histogram h contributes h.count,
// h.sum, h.p50 and h.p99.
func Flatten(snap []obs.MetricValue) map[string]float64 {
	out := make(map[string]float64, len(snap))
	for _, mv := range snap {
		switch mv.Kind {
		case "histogram":
			out[mv.Name+".count"] = float64(mv.Count)
			out[mv.Name+".sum"] = mv.Sum
			out[mv.Name+".p50"] = mv.Quantile(0.50)
			out[mv.Name+".p99"] = mv.Quantile(0.99)
		default:
			out[mv.Name] = float64(mv.Value)
		}
	}
	return out
}

// Runtime self-monitoring gauges, published by RuntimeProbe.
var (
	goroutinesGauge  = obs.GetGauge("runtime.goroutines")
	heapAllocGauge   = obs.GetGauge("runtime.heap_alloc_bytes")
	heapSysGauge     = obs.GetGauge("runtime.heap_sys_bytes")
	heapObjectsGauge = obs.GetGauge("runtime.heap_objects")
	gcCyclesGauge    = obs.GetGauge("runtime.gc_cycles")
	gcPauseGauge     = obs.GetGauge("runtime.gc_pause_total_ms")
	nextGCGauge      = obs.GetGauge("runtime.next_gc_bytes")
)

// RuntimeProbe publishes the Go runtime's health gauges: goroutine count
// and the heap/GC figures from runtime.ReadMemStats. ReadMemStats
// stop-the-worlds briefly; at the collector's 1 Hz default that is noise.
func RuntimeProbe() {
	goroutinesGauge.Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapAllocGauge.Set(int64(ms.HeapAlloc))
	heapSysGauge.Set(int64(ms.HeapSys))
	heapObjectsGauge.Set(int64(ms.HeapObjects))
	gcCyclesGauge.Set(int64(ms.NumGC))
	gcPauseGauge.Set(int64(ms.PauseTotalNs / 1e6))
	nextGCGauge.Set(int64(ms.NextGC))
}
