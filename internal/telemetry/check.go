package telemetry

import (
	"strconv"
	"strings"
)

// CheckExposition sanity-checks a Prometheus text exposition: every line
// parses, every histogram family's buckets are monotone non-decreasing in
// bound order, the +Inf bucket equals the _count, and counter/gauge values
// are integers. It returns one message per violation; the serve load smoke
// reuses it against live concurrent scrapes.
func CheckExposition(text string) []string {
	var errs []string
	type histState struct {
		lastCum  int64
		infCum   int64
		count    int64
		hasCount bool
	}
	hists := map[string]*histState{} // per labelled series
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			errs = append(errs, "blank line inside exposition")
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				errs = append(errs, "malformed TYPE line: "+line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			errs = append(errs, "no value on line: "+line)
			continue
		}
		name, val := line[:sp], line[sp+1:]
		fval, err := strconv.ParseFloat(val, 64)
		if err != nil {
			errs = append(errs, "unparseable value on line: "+line)
			continue
		}
		switch {
		case strings.Contains(name, "_bucket{"):
			base := name[:strings.Index(name, "_bucket{")]
			rest := name[strings.Index(name, "_bucket{")+len("_bucket{") : len(name)-1]
			// Split off the trailing le label (always last — the writer
			// appends it).
			leIdx := strings.LastIndex(rest, `le="`)
			if leIdx < 0 || !strings.HasSuffix(line[:sp], `"}`) {
				errs = append(errs, "bucket line without le label: "+line)
				continue
			}
			seriesKey := base + "{" + strings.TrimSuffix(rest[:leIdx], ",") + "}"
			st := hists[seriesKey]
			if st == nil {
				st = &histState{}
				hists[seriesKey] = st
			}
			cum := int64(fval)
			le := strings.TrimSuffix(rest[leIdx+len(`le="`):], `"`)
			if le == "+Inf" {
				st.infCum = cum
			} else {
				if cum < st.lastCum {
					errs = append(errs, "non-monotone buckets in "+seriesKey+": "+line)
				}
				st.lastCum = cum
			}
		case strings.Contains(name, "_count"):
			base := strings.Replace(name, "_count", "", 1)
			st := hists[base]
			if st == nil && !strings.Contains(name, "{") {
				st = hists[base+"{}"]
			}
			if st != nil {
				st.count = int64(fval)
				st.hasCount = true
			}
		}
	}
	for key, st := range hists {
		if st.infCum < st.lastCum {
			errs = append(errs, key+": +Inf bucket below a finite bucket")
		}
		if st.hasCount && st.infCum != st.count {
			errs = append(errs, key+": +Inf bucket != count")
		}
	}
	return errs
}
