// Package telemetry is the production monitoring layer over internal/obs:
// Prometheus text exposition for the metric registry (GET /metrics), and a
// sampling collector that publishes runtime self-monitoring gauges and
// keeps a ring buffer of timestamped snapshots for dashboards
// (GET /v1/stats/history). Pure stdlib, like everything else in the tree.
//
// Metric names in the obs registry follow the lowercase-dotted
// subsystem.noun[.verb] convention (enforced by the speclint metricname
// analyzer); the exposition maps dots to underscores, so "store.hit"
// scrapes as store_hit. A registry name may carry a Prometheus-style label
// suffix — `serve.http.requests{route="/v1/jobs",code="2xx"}` — in which
// case every series of the same family is grouped under one # TYPE line.
// Exposition output is deterministic: families sorted by name, series
// sorted by label set, histogram buckets in ascending bound order.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"specsampling/internal/obs"
)

// series is one exposition time series: a family name plus its raw label
// content (the text between the braces, without them; empty for unlabelled
// metrics).
type series struct {
	labels string
	mv     obs.MetricValue
}

// family is one exposition metric family: every series sharing a name and
// kind.
type family struct {
	name   string // sanitized exposition name
	kind   string // counter | gauge | histogram
	series []series
}

// splitSeries splits a registry name into its family and raw label content.
// "serve.http.requests{route=\"/v1/jobs\"}" → ("serve.http.requests",
// "route=\"/v1/jobs\""); names without a well-formed suffix are all family.
func splitSeries(name string) (string, string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// sanitizeName maps a dotted registry name onto the Prometheus exposition
// charset: dots become underscores, anything outside [a-zA-Z0-9_:] is
// replaced with an underscore, and a leading digit gets a prefix.
func sanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a float the same way everywhere in the exposition.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the snapshot in Prometheus text exposition format
// (version 0.0.4): one # TYPE line per family, series sorted, histogram
// families as cumulative _bucket/_sum/_count with le labels. The output is
// a pure function of the snapshot — byte-identical for identical metric
// state — so scrapes are diffable and the exposition tests can assert
// exact shapes.
func WritePrometheus(w io.Writer, snap []obs.MetricValue) error {
	byName := map[string]*family{}
	var order []string
	for _, mv := range snap {
		rawFamily, labels := splitSeries(mv.Name)
		name := sanitizeName(rawFamily)
		groupKey := name + "\x00" + mv.Kind
		fam := byName[groupKey]
		if fam == nil {
			fam = &family{name: name, kind: mv.Kind}
			byName[groupKey] = fam
			order = append(order, groupKey)
		}
		fam.series = append(fam.series, series{labels: labels, mv: mv})
	}
	sort.Strings(order)
	bounds := obs.BucketBounds()
	for _, key := range order {
		fam := byName[key]
		sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].labels < fam.series[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.series {
			var err error
			switch fam.kind {
			case "histogram":
				err = writeHistogramSeries(w, fam.name, s, bounds)
			default:
				err = writeScalarSeries(w, fam.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeScalarSeries renders one counter or gauge sample line.
func writeScalarSeries(w io.Writer, name string, s series) error {
	labels := ""
	if s.labels != "" {
		labels = "{" + s.labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, strconv.FormatInt(s.mv.Value, 10))
	return err
}

// writeHistogramSeries renders one histogram series: cumulative buckets
// with le labels (the +Inf bucket always equals the count), then sum and
// count.
func writeHistogramSeries(w io.Writer, name string, s series, bounds []float64) error {
	withLE := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return "{" + s.labels + `,le="` + le + `"}`
	}
	var cum int64
	for i, bound := range bounds {
		if i < len(s.mv.Buckets) {
			cum += s.mv.Buckets[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE("+Inf"), s.mv.Count); err != nil {
		return err
	}
	labels := ""
	if s.labels != "" {
		labels = "{" + s.labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(s.mv.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.mv.Count)
	return err
}

// MetricsHandler serves the live obs registry as Prometheus text
// exposition — the GET /metrics endpoint.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The registry snapshot cannot fail; a write error means the scraper
		// went away, which is its problem, not ours.
		_ = WritePrometheus(w, obs.Snapshot())
	})
}
