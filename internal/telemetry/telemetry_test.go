package telemetry

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specsampling/internal/obs"
)

// fakeSnap builds a registry-shaped snapshot without touching the global
// registry, so the exposition tests are hermetic.
func fakeSnap() []obs.MetricValue {
	bounds := obs.BucketBounds()
	buckets := make([]int64, len(bounds)+1)
	// 3 observations: two in the bucket for 0.3 (le 0.5), one overflow.
	for i, b := range bounds {
		if b >= 0.3 {
			buckets[i] = 2
			break
		}
	}
	buckets[len(buckets)-1] = 1
	return []obs.MetricValue{
		{Name: "serve.http.requests{route=\"/v1/jobs\",code=\"2xx\"}", Kind: "counter", Value: 7},
		{Name: "serve.http.requests{route=\"/healthz\",code=\"2xx\"}", Kind: "counter", Value: 2},
		{Name: "store.hit", Kind: "counter", Value: 41},
		{Name: "sched.queue.depth", Kind: "gauge", Value: 3},
		{Name: "serve.http.request_seconds{route=\"/v1/jobs\"}", Kind: "histogram",
			Count: 3, Sum: 100.6, Min: 0.3, Max: 100, Buckets: buckets},
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, fakeSnap()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, fakeSnap()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two expositions of the same snapshot differ")
	}
	out := a.String()

	// One # TYPE line per family, families sorted, dots mapped to
	// underscores.
	var typeLines []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typeLines = append(typeLines, line)
		}
	}
	want := []string{
		"# TYPE sched_queue_depth gauge",
		"# TYPE serve_http_request_seconds histogram",
		"# TYPE serve_http_requests counter",
		"# TYPE store_hit counter",
	}
	if len(typeLines) != len(want) {
		t.Fatalf("TYPE lines = %v, want %v", typeLines, want)
	}
	for i := range want {
		if typeLines[i] != want[i] {
			t.Errorf("TYPE line %d = %q, want %q", i, typeLines[i], want[i])
		}
	}

	// Labelled series grouped under one family, sorted by label set.
	hIdx := strings.Index(out, `serve_http_requests{route="/healthz",code="2xx"} 2`)
	jIdx := strings.Index(out, `serve_http_requests{route="/v1/jobs",code="2xx"} 7`)
	if hIdx < 0 || jIdx < 0 || hIdx > jIdx {
		t.Errorf("labelled counter series missing or out of order (healthz@%d jobs@%d):\n%s", hIdx, jIdx, out)
	}

	// Histogram exposition: cumulative buckets, +Inf equals count, sum and
	// count present with the series labels.
	if !strings.Contains(out, `serve_http_request_seconds_bucket{route="/v1/jobs",le="0.5"} 2`) {
		t.Errorf("missing cumulative le=0.5 bucket:\n%s", out)
	}
	if !strings.Contains(out, `serve_http_request_seconds_bucket{route="/v1/jobs",le="+Inf"} 3`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `serve_http_request_seconds_sum{route="/v1/jobs"} 100.6`) {
		t.Errorf("missing histogram sum:\n%s", out)
	}
	if !strings.Contains(out, `serve_http_request_seconds_count{route="/v1/jobs"} 3`) {
		t.Errorf("missing histogram count:\n%s", out)
	}
}

// TestExpositionParsesAndIsCoherent runs the same consistency checks the
// load smoke applies to live scrapes, against the hermetic snapshot.
func TestExpositionParsesAndIsCoherent(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fakeSnap()); err != nil {
		t.Fatal(err)
	}
	if errs := CheckExposition(buf.String()); len(errs) > 0 {
		t.Fatalf("exposition incoherent: %v", errs)
	}
}

func TestSplitSeriesAndSanitize(t *testing.T) {
	cases := []struct{ in, fam, labels string }{
		{"store.hit", "store.hit", ""},
		{`serve.http.requests{route="/v1/jobs"}`, "serve.http.requests", `route="/v1/jobs"`},
		{"odd{unclosed", "odd{unclosed", ""},
	}
	for _, c := range cases {
		fam, labels := splitSeries(c.in)
		if fam != c.fam || labels != c.labels {
			t.Errorf("splitSeries(%q) = (%q, %q), want (%q, %q)", c.in, fam, labels, c.fam, c.labels)
		}
	}
	if got := sanitizeName("serve.http.request_seconds"); got != "serve_http_request_seconds" {
		t.Errorf("sanitizeName = %q", got)
	}
	if got := sanitizeName("9weird-name"); got != "_9weird_name" {
		t.Errorf("sanitizeName(9weird-name) = %q", got)
	}
}

func TestCollectorRingAndProbes(t *testing.T) {
	var probed atomic.Int64 // written by the collector goroutine, read here
	g := obs.GetGauge("telemetrytest.probe_value")
	c := NewCollector(time.Millisecond, 4, func() {
		g.Set(probed.Add(1))
	})
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.History()) == 4 && probed.Load() >= 6 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	c.Close() // idempotent

	hist := c.History()
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want the full ring of 4", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].TimeMs < hist[i-1].TimeMs {
			t.Fatalf("history out of order at %d: %d then %d", i, hist[i-1].TimeMs, hist[i].TimeMs)
		}
	}
	// The ring keeps the newest samples: the probe gauge must be strictly
	// increasing across retained snapshots and reflect the probe runs.
	last := hist[len(hist)-1].Metrics["telemetrytest.probe_value"]
	if last < 4 {
		t.Errorf("last retained probe value = %g, want >= 4 (ring dropped oldest, kept newest)", last)
	}
	if n := probed.Load(); n < 5 {
		t.Errorf("probe ran %d times, want >= 5", n)
	}
}

func TestRuntimeProbe(t *testing.T) {
	RuntimeProbe()
	flat := Flatten(obs.Snapshot())
	if flat["runtime.goroutines"] < 1 {
		t.Errorf("runtime.goroutines = %g, want >= 1", flat["runtime.goroutines"])
	}
	if flat["runtime.heap_alloc_bytes"] <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %g, want > 0", flat["runtime.heap_alloc_bytes"])
	}
}

func TestFlattenHistogramQuantiles(t *testing.T) {
	h := obs.GetHistogram("telemetrytest.flatten_hist")
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}
	flat := Flatten(obs.Snapshot())
	if flat["telemetrytest.flatten_hist.count"] != 100 {
		t.Errorf("flattened count = %g, want 100", flat["telemetrytest.flatten_hist.count"])
	}
	if p50 := flat["telemetrytest.flatten_hist.p50"]; p50 != 0.002 {
		t.Errorf("flattened p50 = %g, want exactly 0.002 (single-valued clamp)", p50)
	}
	if p99 := flat["telemetrytest.flatten_hist.p99"]; p99 != 0.002 {
		t.Errorf("flattened p99 = %g, want exactly 0.002", p99)
	}
}
