// Package pin is the reproduction's dynamic instrumentation framework — the
// analogue of Intel Pin in the original study. Tools register for the
// observation granularities they need (basic blocks, memory accesses,
// branches) and an Engine drives a program.Executor, fanning events out to
// the attached tools.
//
// As with real Pin, finer granularity costs more: the engine only
// materialises memory addresses when at least one memory tool is attached,
// so block-level tools (instruction counting, instruction mix, BBV
// profiling) run at block speed. Attaching tools never perturbs the
// program's execution — the executor's state evolution is
// instrumentation-independent, which is what makes checkpoints taken under
// one tool set replayable under another.
package pin

import (
	"fmt"

	"specsampling/internal/isa"
	"specsampling/internal/obs"
	"specsampling/internal/program"
)

// instrCounter totals instructions executed under instrumentation across
// every engine; one atomic add per Run call, never per instruction.
var instrCounter = obs.GetCounter("sim.instrs")

// Tool is the base interface all Pintools implement. A tool additionally
// implements one or more of BlockTool, MemTool and BranchTool to receive
// events.
type Tool interface {
	// Name identifies the tool in reports and errors.
	Name() string
}

// BlockTool receives one event per dynamic basic-block execution, tagged
// with the phase the block ran in.
type BlockTool interface {
	Tool
	OnBlock(b *isa.Block, phase int)
}

// MemTool receives one event per dynamic memory access in program order.
// Attaching a MemTool switches the engine to per-instruction execution.
type MemTool interface {
	Tool
	OnMem(ref isa.MemRef)
}

// BranchTool receives one event per block terminator with its resolved
// direction.
type BranchTool interface {
	Tool
	OnBranch(ev isa.BranchEvent)
}

// FetchTool receives one event per dynamic basic-block execution carrying
// the block's instruction-fetch footprint (start PC and byte length); cache
// tools use it to model L1I traffic.
type FetchTool interface {
	Tool
	OnFetch(pc uint64, bytes uint64)
}

// Engine drives a program under instrumentation.
type Engine struct {
	exec  *program.Executor
	tools []Tool

	blockTools  []BlockTool
	memTools    []MemTool
	branchTools []BranchTool
	fetchTools  []FetchTool

	// Cached hook closures, built at most once per engine. Each closure
	// reads the engine's tool slices at call time, so it stays valid across
	// Reset/Attach cycles — a reused replay engine allocates no closures
	// after its first run.
	blockHook  func(b *isa.Block, phase int)
	memHook    func(ref isa.MemRef)
	branchHook func(ev isa.BranchEvent)
}

// NewEngine wraps a finalized program in a fresh engine.
func NewEngine(p *program.Program) *Engine {
	return &Engine{exec: program.NewExecutor(p)}
}

// NewEngineAt wraps an executor that may already be positioned mid-program
// (e.g. restored from a pinball).
func NewEngineAt(exec *program.Executor) *Engine {
	return &Engine{exec: exec}
}

// Executor exposes the underlying executor (for checkpointing).
func (e *Engine) Executor() *program.Executor { return e.exec }

// Attach registers a tool. It returns an error if the tool implements none
// of the event interfaces — almost certainly a bug in the tool.
func (e *Engine) Attach(t Tool) error {
	any := false
	if bt, ok := t.(BlockTool); ok {
		e.blockTools = append(e.blockTools, bt)
		any = true
	}
	if mt, ok := t.(MemTool); ok {
		e.memTools = append(e.memTools, mt)
		any = true
	}
	if brt, ok := t.(BranchTool); ok {
		e.branchTools = append(e.branchTools, brt)
		any = true
	}
	if ft, ok := t.(FetchTool); ok {
		e.fetchTools = append(e.fetchTools, ft)
		any = true
	}
	if !any {
		return fmt.Errorf("pin: tool %q implements no event interface", t.Name())
	}
	e.tools = append(e.tools, t)
	return nil
}

// Tools returns the attached tools in attachment order.
func (e *Engine) Tools() []Tool { return e.tools }

// Reset detaches every tool while keeping the engine (and its underlying
// executor) alive. The tool slices keep their backing arrays and the hook
// closures stay cached, so a Reset/Attach/Run cycle on a long-lived engine
// — the pattern of a replay worker driving one pinball after another —
// performs no per-replay allocations.
func (e *Engine) Reset() {
	e.tools = e.tools[:0]
	e.blockTools = e.blockTools[:0]
	e.memTools = e.memTools[:0]
	e.branchTools = e.branchTools[:0]
	e.fetchTools = e.fetchTools[:0]
}

// hooks assembles the executor hook set for the current tool population.
// Hooks are present only for event kinds with at least one attached tool —
// in particular Mem stays nil without memory tools, keeping the executor on
// the block-granular fast path. The closures themselves are built lazily
// once and dispatch over the live tool slices, so hooks() allocates nothing
// on engines that have run before.
func (e *Engine) hooks() program.Hooks {
	var h program.Hooks
	if len(e.blockTools) > 0 || len(e.fetchTools) > 0 {
		if e.blockHook == nil {
			e.blockHook = func(b *isa.Block, phase int) {
				for _, t := range e.blockTools {
					t.OnBlock(b, phase)
				}
				if len(e.fetchTools) > 0 {
					var bytes uint64
					for _, in := range b.Instrs {
						bytes += uint64(in.Size)
					}
					for _, t := range e.fetchTools {
						t.OnFetch(b.PC, bytes)
					}
				}
			}
		}
		h.Block = e.blockHook
	}
	if len(e.memTools) > 0 {
		if e.memHook == nil {
			e.memHook = func(ref isa.MemRef) {
				for _, t := range e.memTools {
					t.OnMem(ref)
				}
			}
		}
		h.Mem = e.memHook
	}
	if len(e.branchTools) > 0 {
		if e.branchHook == nil {
			e.branchHook = func(ev isa.BranchEvent) {
				for _, t := range e.branchTools {
					t.OnBranch(ev)
				}
			}
		}
		h.Branch = e.branchHook
	}
	return h
}

// Run executes at least limit instructions (stopping on a block boundary)
// and returns the count executed.
func (e *Engine) Run(limit uint64) uint64 {
	n := e.exec.Run(limit, e.hooks())
	instrCounter.Add(int64(n))
	return n
}

// RunToEnd executes the rest of the program.
func (e *Engine) RunToEnd() uint64 {
	n := e.exec.RunToEnd(e.hooks())
	instrCounter.Add(int64(n))
	return n
}

// Done reports whether the program has completed.
func (e *Engine) Done() bool { return e.exec.Done() }
