package pin

import (
	"testing"

	"specsampling/internal/isa"
	"specsampling/internal/program"
)

func testProgram(t testing.TB) *program.Program {
	t.Helper()
	specs := []program.PhaseSpec{
		{Blocks: 4, MinBlockLen: 4, MaxBlockLen: 8, Mix: [4]float64{0.5, 0.3, 0.2, 0},
			Pattern: program.MemPattern{Base: 1 << 20, WorkingSetBytes: 32 << 10, Stride: 8,
				SeqPermille: 500, StreamPermille: 0},
			JumpPermille: 50, ShareBlocksWith: -1},
		{Blocks: 4, MinBlockLen: 4, MaxBlockLen: 8, Mix: [4]float64{0.6, 0.2, 0.2, 0},
			Pattern: program.MemPattern{Base: 8 << 20, WorkingSetBytes: 64 << 10, Stride: 16,
				SeqPermille: 300, StreamPermille: 0},
			JumpPermille: 20, ShareBlocksWith: -1},
	}
	p, err := program.BuildProgram("pintest", 42, specs,
		program.UniformSchedule([]float64{0.6, 0.4}, 20000, 2))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

type countingTool struct {
	blocks   int
	mems     int
	branches int
	fetches  int
}

func (*countingTool) Name() string                   { return "counting" }
func (c *countingTool) OnBlock(*isa.Block, int)      { c.blocks++ }
func (c *countingTool) OnMem(isa.MemRef)             { c.mems++ }
func (c *countingTool) OnBranch(isa.BranchEvent)     { c.branches++ }
func (c *countingTool) OnFetch(pc uint64, by uint64) { c.fetches++ }

type blockOnlyTool struct{ blocks int }

func (*blockOnlyTool) Name() string              { return "blockonly" }
func (b *blockOnlyTool) OnBlock(*isa.Block, int) { b.blocks++ }

type eventlessTool struct{}

func (eventlessTool) Name() string { return "eventless" }

func TestAttachRejectsEventlessTool(t *testing.T) {
	e := NewEngine(testProgram(t))
	if err := e.Attach(eventlessTool{}); err == nil {
		t.Error("attached a tool with no event interfaces")
	}
	if len(e.Tools()) != 0 {
		t.Error("rejected tool was registered anyway")
	}
}

func TestEventsDelivered(t *testing.T) {
	e := NewEngine(testProgram(t))
	c := &countingTool{}
	if err := e.Attach(c); err != nil {
		t.Fatal(err)
	}
	n := e.Run(5000)
	if n < 5000 {
		t.Fatalf("ran only %d instructions", n)
	}
	if c.blocks == 0 || c.mems == 0 || c.branches == 0 || c.fetches == 0 {
		t.Errorf("missing events: %+v", c)
	}
	// One branch and one fetch per block.
	if c.branches != c.blocks || c.fetches != c.blocks {
		t.Errorf("blocks=%d branches=%d fetches=%d; want equal", c.blocks, c.branches, c.fetches)
	}
}

func TestMultipleToolsAllReceive(t *testing.T) {
	e := NewEngine(testProgram(t))
	a, b := &blockOnlyTool{}, &blockOnlyTool{}
	if err := e.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(b); err != nil {
		t.Fatal(err)
	}
	e.Run(3000)
	if a.blocks == 0 || a.blocks != b.blocks {
		t.Errorf("tools disagree: %d vs %d", a.blocks, b.blocks)
	}
	if len(e.Tools()) != 2 {
		t.Errorf("Tools() = %d", len(e.Tools()))
	}
}

// Instrumentation independence: the executor lands in the same state no
// matter which tools observe the run.
func TestToolsDoNotPerturbExecution(t *testing.T) {
	p := testProgram(t)

	bare := NewEngine(p)
	bare.Run(8000)

	instrumented := NewEngine(p)
	if err := instrumented.Attach(&countingTool{}); err != nil {
		t.Fatal(err)
	}
	instrumented.Run(8000)

	if !bare.Executor().State().Equal(instrumented.Executor().State()) {
		t.Error("instrumentation changed execution state")
	}
}

func TestRunToEndAndDone(t *testing.T) {
	e := NewEngine(testProgram(t))
	c := &countingTool{}
	if err := e.Attach(c); err != nil {
		t.Fatal(err)
	}
	n := e.RunToEnd()
	if !e.Done() {
		t.Error("not done after RunToEnd")
	}
	if n == 0 || e.Executor().Instrs() != n {
		t.Errorf("executed %d, executor reports %d", n, e.Executor().Instrs())
	}
}

func TestNewEngineAtResumesMidProgram(t *testing.T) {
	p := testProgram(t)
	first := NewEngine(p)
	first.Run(6000)
	snap := first.Executor().State()

	exec := program.NewExecutor(p)
	if err := exec.Restore(snap); err != nil {
		t.Fatal(err)
	}
	resumed := NewEngineAt(exec)
	c := &countingTool{}
	if err := resumed.Attach(c); err != nil {
		t.Fatal(err)
	}
	resumed.Run(1000)
	if c.blocks == 0 {
		t.Error("resumed engine delivered no events")
	}
	if resumed.Executor().Instrs() <= snap.Instrs {
		t.Error("resumed engine did not advance")
	}
}
