package perf

// Target is one benchmark set cmd/specbench knows how to run — the single
// source of truth for which benchmarks exist. The Makefile's benchsmoke and
// benchdiff both route through this table, so adding a benchmark here is
// all it takes for the smoke pass and (if Record is set) the perf gate to
// pick it up.
type Target struct {
	// Name labels the set in specbench output.
	Name string
	// Pkg is the package pattern to run (relative to the repository root).
	Pkg string
	// Pattern is the -bench regexp.
	Pattern string
	// Record marks sets whose numbers go into BENCH_*.json snapshots.
	// Smoke-only sets (Record false) are run once to catch bit-rot but are
	// too small or too incidental to gate on.
	Record bool
	// Benchtime overrides the specbench -benchtime flag for this set.
	// Fast benchmarks need a duration ("100ms") so the sample is large
	// enough to be stable; an iteration count ("2x") only suits sets whose
	// every benchmark runs long enough to self-average.
	Benchtime string
}

// Targets returns the benchmark sets in run order.
func Targets() []Target {
	return []Target{
		// The paper-facing macro benchmarks: the analysis kernels
		// (BenchmarkKMeansRun, BenchmarkProfile, BenchmarkSuiteAnalyze) and
		// every Table/Fig reproduction bench. These are the perf
		// trajectory. The set spans microseconds (the table formatters) to
		// seconds (the full-suite figures), so it uses a duration benchtime:
		// the µs-scale benches get thousands of iterations (an iteration
		// count like "2x" leaves them at scheduler-noise mercy) while the
		// seconds-scale ones still complete a full iteration.
		{
			Name:      "paper",
			Pkg:       ".",
			Pattern:   "^(BenchmarkKMeansRun|BenchmarkProfile|BenchmarkSuiteAnalyze|BenchmarkTable|BenchmarkFig)",
			Record:    true,
			Benchtime: "300ms",
		},
		// Everything else at the repository root (ablation benches):
		// smoke-only.
		{
			Name:    "root-other",
			Pkg:     ".",
			Pattern: "^BenchmarkAblation",
			Record:  false,
		},
		// The region-selection backends (internal/selector): the stratified
		// and ranked-set Select kernels sit on the clustering stage's hot
		// path for every shoot-out repeat, so their numbers join the
		// recorded baseline.
		{
			Name:    "selector",
			Pkg:     "./internal/selector",
			Pattern: "^Benchmark(Stratified|RankedSet)Select$",
			Record:  true,
		},
		// The telemetry hot paths: bucketed-histogram Observe is on every
		// instrumented request, and the full-registry Prometheus exposition
		// is what a scraper pays per poll. Both join the recorded baseline
		// so a regression in either fails benchdiff.
		{
			Name:      "obs-histogram",
			Pkg:       "./internal/obs",
			Pattern:   "^BenchmarkHistogramObserve$",
			Record:    true,
			Benchtime: "100ms",
		},
		{
			Name:      "telemetry",
			Pkg:       "./internal/telemetry",
			Pattern:   "^BenchmarkMetricsExposition$",
			Record:    true,
			Benchtime: "100ms",
		},
		// Micro benchmarks inside internal packages, including the
		// BenchmarkObsOverhead disabled-path guard: smoke-only.
		{
			Name:    "internal",
			Pkg:     "./internal/...",
			Pattern: ".",
			Record:  false,
		},
	}
}
