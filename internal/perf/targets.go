package perf

// Target is one benchmark set cmd/specbench knows how to run — the single
// source of truth for which benchmarks exist. The Makefile's benchsmoke and
// benchdiff both route through this table, so adding a benchmark here is
// all it takes for the smoke pass and (if Record is set) the perf gate to
// pick it up.
type Target struct {
	// Name labels the set in specbench output.
	Name string
	// Pkg is the package pattern to run (relative to the repository root).
	Pkg string
	// Pattern is the -bench regexp.
	Pattern string
	// Record marks sets whose numbers go into BENCH_*.json snapshots.
	// Smoke-only sets (Record false) are run once to catch bit-rot but are
	// too small or too incidental to gate on.
	Record bool
}

// Targets returns the benchmark sets in run order.
func Targets() []Target {
	return []Target{
		// The paper-facing macro benchmarks: the analysis kernels
		// (BenchmarkKMeansRun, BenchmarkProfile, BenchmarkSuiteAnalyze) and
		// every Table/Fig reproduction bench. These are the perf
		// trajectory.
		{
			Name:    "paper",
			Pkg:     ".",
			Pattern: "^(BenchmarkKMeansRun|BenchmarkProfile|BenchmarkSuiteAnalyze|BenchmarkTable|BenchmarkFig)",
			Record:  true,
		},
		// Everything else at the repository root (ablation benches):
		// smoke-only.
		{
			Name:    "root-other",
			Pkg:     ".",
			Pattern: "^BenchmarkAblation",
			Record:  false,
		},
		// The region-selection backends (internal/selector): the stratified
		// and ranked-set Select kernels sit on the clustering stage's hot
		// path for every shoot-out repeat, so their numbers join the
		// recorded baseline.
		{
			Name:    "selector",
			Pkg:     "./internal/selector",
			Pattern: "^Benchmark(Stratified|RankedSet)Select$",
			Record:  true,
		},
		// Micro benchmarks inside internal packages, including the
		// BenchmarkObsOverhead disabled-path guard: smoke-only.
		{
			Name:    "internal",
			Pkg:     "./internal/...",
			Pattern: ".",
			Record:  false,
		},
	}
}
