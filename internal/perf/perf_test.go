package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: specsampling
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkKMeansRun/serial-4         	       3	  76539177 ns/op	 1398448 B/op	     145 allocs/op
BenchmarkKMeansRun/parallel-4       	       3	  75359424 ns/op	 1398448 B/op	     145 allocs/op
BenchmarkFig8-4                     	       2	 123456789 ns/op
BenchmarkProfile-4                  	       5	   9876543 ns/op	    1024 B/op	      12 allocs/op
PASS
ok  	specsampling	0.627s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Metrics{
		"BenchmarkKMeansRun/serial":   {NsPerOp: 76539177, BytesPerOp: 1398448, AllocsPerOp: 145, Iters: 3},
		"BenchmarkKMeansRun/parallel": {NsPerOp: 75359424, BytesPerOp: 1398448, AllocsPerOp: 145, Iters: 3},
		"BenchmarkFig8":               {NsPerOp: 123456789, Iters: 2},
		"BenchmarkProfile":            {NsPerOp: 9876543, BytesPerOp: 1024, AllocsPerOp: 12, Iters: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: got %+v, want %+v", name, got[name], w)
		}
	}
}

func TestParseBenchFastestRunWins(t *testing.T) {
	out := `BenchmarkX-8   10   200 ns/op   8 B/op   1 allocs/op
BenchmarkX-8   12   150 ns/op   8 B/op   1 allocs/op
BenchmarkX-8   11   180 ns/op   8 B/op   1 allocs/op
`
	got, err := ParseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if m := got["BenchmarkX"]; m.NsPerOp != 150 || m.Iters != 12 {
		t.Errorf("kept %+v, want the 150 ns/op run", m)
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":          "BenchmarkX",
		"BenchmarkX":            "BenchmarkX",
		"BenchmarkX/sub-case-4": "BenchmarkX/sub-case",
		"BenchmarkX/sub-case":   "BenchmarkX/sub-case",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.Benchmarks["BenchmarkX"] = Metrics{NsPerOp: 100, BytesPerOp: 8, AllocsPerOp: 1, Iters: 10}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.HostClass != HostClass() {
		t.Errorf("round trip lost identity: %+v", got)
	}
	if got.Benchmarks["BenchmarkX"] != s.Benchmarks["BenchmarkX"] {
		t.Errorf("round trip lost metrics: %+v", got.Benchmarks)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99, "benchmarks": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("loaded a snapshot with an unknown schema version")
	}
}

func TestCompareThresholds(t *testing.T) {
	th := Thresholds{NsFrac: 0.35, BytesFrac: 0.15, AllocSlack: 0}
	base := New()
	base.Benchmarks["B"] = Metrics{NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10}

	cases := []struct {
		name    string
		cur     Metrics
		wantReg []string // metrics expected to regress
	}{
		{"within-noise", Metrics{NsPerOp: 1300, BytesPerOp: 110, AllocsPerOp: 10}, nil},
		{"time-regression", Metrics{NsPerOp: 1400, BytesPerOp: 100, AllocsPerOp: 10}, []string{"ns/op"}},
		{"alloc-regression", Metrics{NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 11}, []string{"allocs/op"}},
		{"bytes-regression", Metrics{NsPerOp: 1000, BytesPerOp: 120, AllocsPerOp: 10}, []string{"B/op"}},
		{"improvement", Metrics{NsPerOp: 500, BytesPerOp: 50, AllocsPerOp: 5}, nil},
	}
	for _, tc := range cases {
		cur := New()
		cur.Benchmarks["B"] = tc.cur
		regs := Regressions(Compare(base, cur, th))
		var got []string
		for _, d := range regs {
			got = append(got, d.Metric)
		}
		if len(got) != len(tc.wantReg) {
			t.Errorf("%s: regressions %v, want %v", tc.name, got, tc.wantReg)
			continue
		}
		for i := range got {
			if got[i] != tc.wantReg[i] {
				t.Errorf("%s: regressions %v, want %v", tc.name, got, tc.wantReg)
			}
		}
	}
}

func TestCompareSkipsUnmatchedBenchmarks(t *testing.T) {
	base, cur := New(), New()
	base.Benchmarks["OnlyBase"] = Metrics{NsPerOp: 1}
	cur.Benchmarks["OnlyCur"] = Metrics{NsPerOp: 1}
	if ds := Compare(base, cur, DefaultThresholds()); len(ds) != 0 {
		t.Errorf("unmatched benchmarks produced %d deltas", len(ds))
	}
}

func TestTargetsHaveRecordSet(t *testing.T) {
	var record int
	for _, tg := range Targets() {
		if tg.Name == "" || tg.Pkg == "" || tg.Pattern == "" {
			t.Errorf("incomplete target %+v", tg)
		}
		if tg.Record {
			record++
		}
	}
	if record == 0 {
		t.Error("no Record-marked targets: the perf gate would never measure anything")
	}
}
