// Package perf is the repository's performance-trajectory ledger: a
// schema-versioned snapshot format for `go test -bench` results, a parser
// for the benchmark output, and a noise-tolerant comparator — speclint-style
// enforcement, but for speed. cmd/specbench records snapshots into
// BENCH_<host-class>.json files at the repository root and diffs fresh runs
// against the committed baseline; `make benchdiff` fails on regression.
//
// Snapshots are keyed by host class (GOOS, GOARCH, CPU count), so a
// baseline recorded on one machine is never compared against numbers from a
// different one — on a host with no committed baseline the diff is a no-op
// by design (the Makefile's skip-if-no-baseline guard). See DESIGN.md §10
// for the workflow, including how to refresh a baseline intentionally.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the snapshot layout. Bump it when the JSON shape
// changes; Load rejects snapshots from other versions so a stale baseline
// fails loudly instead of diffing garbage.
const SchemaVersion = 1

// Metrics are one benchmark's recorded costs.
type Metrics struct {
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per operation (from -benchmem).
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per operation (from -benchmem).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Iters is the b.N the numbers were measured over.
	Iters int64 `json:"iters"`
}

// Snapshot is one recorded performance trajectory point.
type Snapshot struct {
	// Schema is the snapshot layout version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// HostClass names the machine class the numbers belong to.
	HostClass string `json:"host_class"`
	// GoVersion is the toolchain that produced the numbers.
	GoVersion string `json:"go_version"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// recorded metrics.
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// HostClass identifies the machine class snapshots are keyed by. Two hosts
// with the same OS, architecture and logical CPU count share a baseline;
// anything else is too different to compare nanoseconds across.
func HostClass() string {
	return fmt.Sprintf("%s_%s_cpu%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

// Filename is the committed snapshot file for this host class.
func Filename() string { return "BENCH_" + HostClass() + ".json" }

// New returns an empty snapshot stamped for this host and toolchain.
func New() *Snapshot {
	return &Snapshot{
		Schema:     SchemaVersion,
		HostClass:  HostClass(),
		GoVersion:  runtime.Version(),
		Benchmarks: map[string]Metrics{},
	}
}

// Load reads and validates a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: snapshot schema %d, this tool speaks %d (re-record the baseline)",
			path, s.Schema, SchemaVersion)
	}
	if s.Benchmarks == nil {
		return nil, fmt.Errorf("perf: %s: no benchmarks recorded", path)
	}
	return &s, nil
}

// Save writes the snapshot as stable, human-diffable JSON (sorted keys,
// trailing newline).
func (s *Snapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseBench extracts per-benchmark metrics from `go test -bench -benchmem`
// output. Benchmark names have their trailing -GOMAXPROCS suffix stripped
// (the host class already pins the CPU count). When the output contains
// several lines for one benchmark (e.g. -count > 1), the fastest run wins:
// minimum ns/op is the standard noise-robust reduction, and its alloc
// numbers ride along.
func ParseBench(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		name, m, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || m.NsPerOp < prev.NsPerOp {
			out[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseBenchLine parses one `BenchmarkX-8   10   123 ns/op   4 B/op   1
// allocs/op` line. Lines without the Benchmark prefix or a ns/op field are
// not benchmark results.
func parseBenchLine(line string) (string, Metrics, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Metrics{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", Metrics{}, false
	}
	name := stripProcs(f[0])
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", Metrics{}, false
	}
	m := Metrics{Iters: iters}
	ok := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			m.NsPerOp = v
			ok = true
		case "B/op":
			m.BytesPerOp = int64(v)
		case "allocs/op":
			m.AllocsPerOp = int64(v)
		}
	}
	return name, m, ok
}

// stripProcs removes the trailing -<GOMAXPROCS> that `go test` appends to
// benchmark names.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Thresholds are the noise tolerances of Compare. Time is noisy (schedulers,
// thermal state, cache pressure from concurrent work) and gets a generous
// fractional band; allocation counts are nearly deterministic — only
// goroutine scheduling around sync.Pool and map growth moves them by a
// handful on the macro benchmarks — so allocs/op gets a tight band that
// still catches the real failure mode (a new allocation inside a hot loop
// multiplies allocs/op, far beyond any band).
type Thresholds struct {
	// NsFrac is the allowed fractional ns/op increase (0.40 = +40 %).
	NsFrac float64
	// BytesFrac is the allowed fractional bytes/op increase.
	BytesFrac float64
	// AllocFrac is the allowed fractional allocs/op increase.
	AllocFrac float64
	// AllocSlack is the allowed absolute allocs/op increase; the effective
	// band is max(AllocSlack, base*AllocFrac).
	AllocSlack int64
}

// allocBand is the allowed absolute allocs/op increase for a baseline value.
func (th Thresholds) allocBand(base int64) int64 {
	if b := int64(float64(base) * th.AllocFrac); b > th.AllocSlack {
		return b
	}
	return th.AllocSlack
}

// DefaultThresholds is the `make benchdiff` gate, calibrated for
// fastest-of-N runs on an otherwise busy machine.
func DefaultThresholds() Thresholds {
	return Thresholds{NsFrac: 0.40, BytesFrac: 0.15, AllocFrac: 0.02, AllocSlack: 2}
}

// Delta is one benchmark-metric comparison between a baseline and a fresh
// run.
type Delta struct {
	// Benchmark is the benchmark name.
	Benchmark string
	// Metric is "ns/op", "B/op" or "allocs/op".
	Metric string
	// Base and Cur are the baseline and fresh values.
	Base, Cur float64
	// Frac is the fractional change, (Cur-Base)/Base (0 when Base is 0 and
	// Cur is 0; +Inf when only Base is 0).
	Frac float64
	// Regression reports whether the change exceeds the threshold.
	Regression bool
}

// Compare diffs a fresh run against a baseline, returning one Delta per
// (benchmark, metric) in sorted benchmark order. Benchmarks present on only
// one side are skipped: new benchmarks have no history to regress against,
// and removed ones are the ledger's business at re-record time, not the
// gate's.
func Compare(base, cur *Snapshot, th Thresholds) []Delta {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []Delta
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		out = append(out,
			Delta{Benchmark: name, Metric: "ns/op", Base: b.NsPerOp, Cur: c.NsPerOp,
				Frac:       frac(b.NsPerOp, c.NsPerOp),
				Regression: c.NsPerOp > b.NsPerOp*(1+th.NsFrac)},
			Delta{Benchmark: name, Metric: "B/op", Base: float64(b.BytesPerOp), Cur: float64(c.BytesPerOp),
				Frac:       frac(float64(b.BytesPerOp), float64(c.BytesPerOp)),
				Regression: float64(c.BytesPerOp) > float64(b.BytesPerOp)*(1+th.BytesFrac)},
			Delta{Benchmark: name, Metric: "allocs/op", Base: float64(b.AllocsPerOp), Cur: float64(c.AllocsPerOp),
				Frac:       frac(float64(b.AllocsPerOp), float64(c.AllocsPerOp)),
				Regression: c.AllocsPerOp > b.AllocsPerOp+th.allocBand(b.AllocsPerOp)},
		)
	}
	return out
}

// Regressions filters a Compare result down to the failing deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

func frac(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base
}
