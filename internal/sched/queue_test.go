package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestQueueRunsEverythingAndDrains(t *testing.T) {
	q := NewQueue(context.Background(), 4, 64)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if err := q.Submit(func(context.Context) { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	q.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d jobs, want 50", got)
	}
	if err := q.Submit(func(context.Context) {}); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("submit after close = %v, want ErrQueueClosed", err)
	}
}

// TestQueueShedsLoadWhenFull: with one busy worker and a bounded buffer,
// the overflow submission is rejected immediately rather than blocking.
func TestQueueShedsLoadWhenFull(t *testing.T) {
	q := NewQueue(context.Background(), 1, 1)
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	if err := q.Submit(func(context.Context) { defer wg.Done(); <-block }); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the first job up, then fill the buffer.
	for q.Depth() > 0 {
		runtime.Gosched()
	}
	wg.Add(1)
	if err := q.Submit(func(context.Context) { wg.Done() }); err != nil {
		t.Fatalf("buffered submit: %v", err)
	}
	if err := q.Submit(func(context.Context) { t.Error("overflow job ran") }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v, want ErrQueueFull", err)
	}
	if got := q.Depth(); got != 1 {
		t.Errorf("Depth = %d, want 1", got)
	}
	close(block)
	wg.Wait()
	q.Close()
}

// TestQueueJobsReceiveRuntimeContext: jobs see the queue's context, so the
// owner's hard-abort cancels them, not any submitter's.
func TestQueueJobsReceiveRuntimeContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	q := NewQueue(ctx, 1, 1)
	got := make(chan error, 1)
	if err := q.Submit(func(jctx context.Context) { cancel(); got <- jctx.Err() }); err != nil {
		t.Fatal(err)
	}
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("job ctx err = %v, want Canceled after owner abort", err)
	}
	q.Close()
}

func TestQueueCloseIdempotent(t *testing.T) {
	q := NewQueue(context.Background(), 2, 2)
	q.Close()
	q.Close()
}
