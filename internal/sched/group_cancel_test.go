package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupDoCancelledComputerDoesNotPoisonWaiters is the regression test
// for the co-waiter poisoning bug: when the *computing* caller's context is
// cancelled mid-fn, the blocked waiters used to receive that caller's
// ctx.Err() as the shared result even though their own contexts were live.
// Now the cancelled attempt is private — a live waiter takes over and every
// waiter gets the real value.
func TestGroupDoCancelledComputerDoesNotPoisonWaiters(t *testing.T) {
	var g Group[string, int]

	computerCtx, cancelComputer := context.WithCancel(context.Background())
	defer cancelComputer()
	computing := make(chan struct{})

	// The computer: its fn parks until its context is cancelled, then
	// reports that cancellation — the shape of a client disconnect mid-job.
	computerErr := make(chan error, 1)
	go func() {
		_, err := g.Do(computerCtx, "k", func() (int, error) {
			close(computing)
			<-computerCtx.Done()
			return 0, computerCtx.Err()
		})
		computerErr <- err
	}()
	<-computing

	// Two waiters with live contexts join the in-flight call. Their fn is
	// the takeover path; count how many times it actually runs.
	var recomputes atomic.Int64
	var wg sync.WaitGroup
	results := make([]int, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.Do(context.Background(), "k", func() (int, error) {
				recomputes.Add(1)
				return 42, nil
			})
		}(i)
	}
	// Give the waiters time to block on the in-flight call, then cancel
	// the computer out from under them.
	time.Sleep(10 * time.Millisecond)
	cancelComputer()

	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Errorf("waiter %d inherited the computer's cancellation: %v", i, errs[i])
		}
		if results[i] != 42 {
			t.Errorf("waiter %d = %d, want 42", i, results[i])
		}
	}
	if got := recomputes.Load(); got != 1 {
		t.Errorf("takeover ran fn %d times, want exactly 1", got)
	}
	// The cancelled computer still sees its own ctx.Err().
	if err := <-computerErr; !errors.Is(err, context.Canceled) {
		t.Errorf("computer error = %v, want context.Canceled", err)
	}
	// The recovered value is cached like any success.
	v, err := g.Do(context.Background(), "k", func() (int, error) {
		t.Error("cached value recomputed")
		return 0, nil
	})
	if err != nil || v != 42 {
		t.Errorf("cached Do = %d, %v; want 42, nil", v, err)
	}
}

// TestGroupDoGenuineFailureStillShared: a non-cancellation failure remains
// a shared outcome — waiters see it, and a later call retries.
func TestGroupDoGenuineFailureStillShared(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	computing := make(chan struct{})
	release := make(chan struct{})

	computerDone := make(chan error, 1)
	go func() {
		_, err := g.Do(context.Background(), "k", func() (int, error) {
			close(computing)
			<-release
			return 0, boom
		})
		computerDone <- err
	}()
	<-computing

	waiterDone := make(chan error, 1)
	go func() {
		_, err := g.Do(context.Background(), "k", func() (int, error) {
			t.Error("waiter recomputed a shared failure")
			return 0, nil
		})
		waiterDone <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)

	if err := <-computerDone; !errors.Is(err, boom) {
		t.Errorf("computer error = %v, want boom", err)
	}
	if err := <-waiterDone; !errors.Is(err, boom) {
		t.Errorf("waiter error = %v, want the shared boom", err)
	}
	// Failed calls are not cached: the next Do retries.
	v, err := g.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("retry Do = %d, %v; want 7, nil", v, err)
	}
}

// TestGroupDoCancelledComputerNoWaiters: with nobody waiting, the
// cancelled attempt simply evaporates and the next caller recomputes.
func TestGroupDoCancelledComputerNoWaiters(t *testing.T) {
	var g Group[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.Do(ctx, "k", func() (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	v, err := g.Do(context.Background(), "k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Errorf("Do after cancelled attempt = %d, %v; want 9, nil", v, err)
	}
}
