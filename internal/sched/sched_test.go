package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		hits := make([]int32, n)
		if err := ForEach(context.Background(), workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndError(t *testing.T) {
	ctx := context.Background()
	if err := ForEach(ctx, 4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	wantErr := func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	}
	// The lowest failing index wins deterministically, for any worker count.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(ctx, workers, 10, wantErr)
		if err == nil || err.Error() != "fail-3" {
			t.Errorf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
}

func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, workers, 10, func(i int) error {
			atomic.AddInt32(&ran, 1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if ran != 0 {
		t.Errorf("%d indices ran under a pre-cancelled context", ran)
	}
}

// TestForEachCancelDrainsPool cancels mid-run and checks that (a) the
// returned error is deterministically ctx.Err(), even if an fn error
// occurred first, and (b) not every index is dispatched.
func TestForEachCancelDrainsPool(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 10_000
		var ran int32
		err := ForEach(ctx, workers, n, func(i int) error {
			if atomic.AddInt32(&ran, 1) == 5 {
				cancel()
				return fmt.Errorf("fn-error-at-%d", i)
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := atomic.LoadInt32(&ran); got >= n {
			t.Errorf("workers=%d: pool did not drain, all %d indices ran", workers, got)
		}
	}
}

func TestGroupDeduplicatesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var computed int32
	var wg sync.WaitGroup
	vals := make([]int, 32)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do(context.Background(), "key", func() (int, error) {
				atomic.AddInt32(&computed, 1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if computed != 1 {
		t.Errorf("fn computed %d times for one key", computed)
	}
	for _, v := range vals {
		if v != 42 {
			t.Errorf("got %d, want 42", v)
		}
	}
	if g.Len() != 1 {
		t.Errorf("Len() = %d", g.Len())
	}
}

func TestGroupCachesPerKey(t *testing.T) {
	var g Group[int, string]
	ctx := context.Background()
	calls := 0
	for i := 0; i < 3; i++ {
		v, _ := g.Do(ctx, 7, func() (string, error) { calls++; return "seven", nil })
		if v != "seven" {
			t.Fatalf("got %q", v)
		}
	}
	if calls != 1 {
		t.Errorf("repeated Do recomputed: %d calls", calls)
	}
	v, _ := g.Do(ctx, 8, func() (string, error) { return "eight", nil })
	if v != "eight" {
		t.Errorf("distinct key returned %q", v)
	}
}

func TestGroupRetriesAfterError(t *testing.T) {
	var g Group[string, int]
	ctx := context.Background()
	boom := errors.New("boom")
	if _, err := g.Do(ctx, "k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if g.Len() != 0 {
		t.Errorf("failed call cached: Len() = %d", g.Len())
	}
	v, err := g.Do(ctx, "k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Errorf("retry got (%d, %v)", v, err)
	}
}

// TestGroupErrorNeverCachedUnderConcurrency hammers one key with failing
// then succeeding computations: concurrent waiters of a failed flight all
// observe the error, the error is never cached, and the next caller
// recomputes successfully.
func TestGroupErrorNeverCachedUnderConcurrency(t *testing.T) {
	var g Group[string, int]
	ctx := context.Background()
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.Do(ctx, "k", func() (int, error) {
				<-release
				return 0, boom
			})
			if !errors.Is(err, boom) {
				t.Errorf("waiter got %v, want boom", err)
			}
		}()
	}
	// Let the flight start, then fail it under all waiters at once.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if g.Len() != 0 {
		t.Fatalf("error cached: Len() = %d", g.Len())
	}
	v, err := g.Do(ctx, "k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry after concurrent failure got (%d, %v)", v, err)
	}
}

func TestGroupWaiterCancellation(t *testing.T) {
	var g Group[string, int]
	bg := context.Background()
	release := make(chan struct{})
	started := make(chan struct{})
	var flight sync.WaitGroup
	flight.Add(1)
	go func() {
		defer flight.Done()
		g.Do(bg, "k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started

	// A waiter with a cancelled context abandons the wait with ctx.Err();
	// the flight itself is untouched.
	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := g.Do(ctx, "k", func() (int, error) { return 0, nil })
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}

	close(release)
	flight.Wait()
	// The flight completed and cached its value despite the cancelled waiter.
	v, err := g.Do(bg, "k", func() (int, error) { return 0, errors.New("must not recompute") })
	if err != nil || v != 42 {
		t.Fatalf("after cancel, got (%d, %v), want (42, nil)", v, err)
	}
}

// TestGroupCancelVsCompleteRace races waiter cancellation against flight
// completion (run under -race). Every waiter must observe exactly one of
// the two legal outcomes: the computed value or its own ctx.Err().
func TestGroupCancelVsCompleteRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		var g Group[int, int]
		bg := context.Background()
		release := make(chan struct{})
		started := make(chan struct{})
		go g.Do(bg, 1, func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		<-started

		ctx, cancel := context.WithCancel(bg)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := g.Do(ctx, 1, func() (int, error) { return 0, errors.New("never computes") })
				if err == nil && v != 7 {
					t.Errorf("waiter got value %d", v)
				}
				if err != nil && !errors.Is(err, context.Canceled) {
					t.Errorf("waiter got error %v", err)
				}
			}()
		}
		// Fire completion and cancellation as close together as possible.
		go close(release)
		go cancel()
		wg.Wait()
		cancel()
	}
}

// TestGroupPreCancelledComputerDoesNotRun: a would-be computing caller with
// an already-cancelled context must not start fn or poison the key.
func TestGroupPreCancelledComputerDoesNotRun(t *testing.T) {
	var g Group[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Do(ctx, "k", func() (int, error) {
		t.Error("fn ran under a cancelled context")
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	v, err := g.Do(context.Background(), "k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 {
		t.Fatalf("key poisoned: got (%d, %v)", v, err)
	}
}
