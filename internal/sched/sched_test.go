package sched

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		hits := make([]int32, n)
		if err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndError(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	wantErr := func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	}
	// The lowest failing index wins deterministically, for any worker count.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 10, wantErr)
		if err == nil || err.Error() != "fail-3" {
			t.Errorf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
}

func TestGroupDeduplicatesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var computed int32
	var wg sync.WaitGroup
	vals := make([]int, 32)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do("key", func() (int, error) {
				atomic.AddInt32(&computed, 1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	wg.Wait()
	if computed != 1 {
		t.Errorf("fn computed %d times for one key", computed)
	}
	for _, v := range vals {
		if v != 42 {
			t.Errorf("got %d, want 42", v)
		}
	}
	if g.Len() != 1 {
		t.Errorf("Len() = %d", g.Len())
	}
}

func TestGroupCachesPerKey(t *testing.T) {
	var g Group[int, string]
	calls := 0
	for i := 0; i < 3; i++ {
		v, _ := g.Do(7, func() (string, error) { calls++; return "seven", nil })
		if v != "seven" {
			t.Fatalf("got %q", v)
		}
	}
	if calls != 1 {
		t.Errorf("repeated Do recomputed: %d calls", calls)
	}
	v, _ := g.Do(8, func() (string, error) { return "eight", nil })
	if v != "eight" {
		t.Errorf("distinct key returned %q", v)
	}
}

func TestGroupRetriesAfterError(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	if _, err := g.Do("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if g.Len() != 0 {
		t.Errorf("failed call cached: Len() = %d", g.Len())
	}
	v, err := g.Do("k", func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Errorf("retry got (%d, %v)", v, err)
	}
}
