package sched

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestForEachShardedCoversAllIndices mirrors the ForEach coverage test and
// additionally checks every reported worker id is in range.
func TestForEachShardedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		seen := make([]atomic.Int32, n)
		maxW := workers
		if maxW > n {
			maxW = n
		}
		err := ForEachSharded(context.Background(), workers, n, func(w, i int) error {
			if w < 0 || w >= maxW {
				t.Errorf("worker id %d out of range [0,%d)", w, maxW)
			}
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

// TestForEachShardedWorkerExclusive pins the contract per-worker scratch
// state depends on: two invocations with the same worker id never run
// concurrently.
func TestForEachShardedWorkerExclusive(t *testing.T) {
	const workers, n = 8, 400
	busy := make([]atomic.Bool, workers)
	var violations atomic.Int32
	err := ForEachSharded(context.Background(), workers, n, func(w, _ int) error {
		if !busy[w].CompareAndSwap(false, true) {
			violations.Add(1)
			return nil
		}
		// A tiny bit of work to give an overlapping invocation a window.
		for i := 0; i < 100; i++ {
			_ = i * i
		}
		busy[w].Store(false)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Errorf("%d concurrent invocations shared a worker id", v)
	}
}

// TestForEachShardedSerialUsesWorkerZero pins the degenerate path.
func TestForEachShardedSerialUsesWorkerZero(t *testing.T) {
	err := ForEachSharded(context.Background(), 1, 10, func(w, _ int) error {
		if w != 0 {
			t.Errorf("serial path reported worker %d, want 0", w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
