package sched

import (
	"context"
	"errors"
	"sync"

	"specsampling/internal/obs"
)

// Queue errors. ErrQueueFull is the backpressure signal — the serving layer
// maps it to 503 + Retry-After; ErrQueueClosed means the queue is draining
// for shutdown and accepts nothing new.
var (
	ErrQueueFull   = errors.New("sched: queue full")
	ErrQueueClosed = errors.New("sched: queue closed")
)

// Queue metrics: accepted/rejected submissions, completed jobs, and the
// live waiting-depth gauge the telemetry collector samples. The gauge is
// refreshed on both edges (enqueue and dequeue) so it tracks the channel
// occupancy without a polling goroutine of its own.
var (
	queueAccepted = obs.GetCounter("sched.queue.accepted")
	queueRejected = obs.GetCounter("sched.queue.rejected")
	queueDone     = obs.GetCounter("sched.queue.done")
	queueDepth    = obs.GetGauge("sched.queue.depth")
)

// Queue is a bounded FIFO work queue drained by a fixed worker pool — the
// admission-controlled execution stage behind the specsimd daemon. Unlike
// ForEach (a bounded fan-out over work known up front), a Queue accepts
// work over time and sheds load instead of buffering without limit: Submit
// never blocks, and a full queue is an explicit, caller-visible rejection.
//
// Every job runs with the context the queue was started with (the daemon's
// job-runtime context), not a submitter's request context — a client
// disconnecting must not cancel a computation other clients may be waiting
// on. Close drains: no new work is accepted, queued and in-flight jobs run
// to completion, and Close returns when the pool is idle. Hard-aborting the
// drain is the owner's move: cancel the runtime context and the jobs
// (which must honour ctx like every pipeline stage) unwind.
type Queue struct {
	ctx  context.Context
	jobs chan func(context.Context)
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewQueue starts a queue of the given depth drained by workers goroutines
// (workers <= 0 uses GOMAXPROCS; depth < 0 is treated as 0, meaning a job
// is accepted only when a worker is free to take it immediately). ctx is
// the runtime context every job receives.
func NewQueue(ctx context.Context, workers, depth int) *Queue {
	if depth < 0 {
		depth = 0
	}
	q := &Queue{ctx: ctx, jobs: make(chan func(context.Context), depth)}
	for w := 0; w < Workers(workers); w++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for fn := range q.jobs {
				queueDepth.Set(int64(len(q.jobs)))
				fn(q.ctx)
				queueDone.Add(1)
			}
		}()
	}
	return q
}

// Submit enqueues fn without blocking. It returns ErrQueueFull when the
// queue is at depth (the caller should shed load and invite a retry) and
// ErrQueueClosed once Close has begun.
func (q *Queue) Submit(fn func(context.Context)) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		queueRejected.Add(1)
		return ErrQueueClosed
	}
	select {
	case q.jobs <- fn:
		queueAccepted.Add(1)
		queueDepth.Set(int64(len(q.jobs)))
		return nil
	default:
		queueRejected.Add(1)
		return ErrQueueFull
	}
}

// Depth reports how many accepted jobs are waiting for a worker.
func (q *Queue) Depth() int { return len(q.jobs) }

// Close stops accepting work and waits for every queued and in-flight job
// to finish. Idempotent; concurrent Submits fail cleanly with
// ErrQueueClosed rather than racing the shutdown.
func (q *Queue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.mu.Unlock()
	q.wg.Wait()
}
