// Package sched provides the suite-level scheduling primitives of the
// reproduction: a bounded parallel-for for fanning independent
// per-benchmark work across workers, and a generic singleflight group that
// deduplicates concurrent computations of the same cached value.
//
// Both primitives are designed so that callers stay deterministic: ForEach
// addresses results by index (the caller writes into pre-sized slots, so
// output order never depends on goroutine scheduling) and Group guarantees
// an expensive function runs at most once per key no matter how many
// figures request it concurrently.
//
// Both accept a context.Context. Cancellation drains the pool — no new
// index is dispatched once ctx is done, in-flight calls run to completion —
// and the outcome is deterministic: a cancelled ForEach always returns
// ctx.Err(), never a schedule-dependent partial failure, and an uncancelled
// one reports the failure with the lowest index exactly as before.
package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"specsampling/internal/obs"
)

// Workers resolves a worker-count option: n when positive, otherwise
// GOMAXPROCS. This is the one place the repository's "<= 0 means all
// available parallelism" convention is implemented; every Workers field
// (core.Config, experiments.Options, kmeans.Config) resolves through it.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Scheduler metrics: task counts and queue-wait vs run time, observed only
// when a tracer is installed (the histograms need a clock).
var (
	taskCounter = obs.GetCounter("sched.tasks")
	taskWaitMS  = obs.GetHistogram("sched.task_wait_ms")
	taskRunMS   = obs.GetHistogram("sched.task_run_ms")
	groupHits   = obs.GetCounter("sched.group.hits")
	groupMisses = obs.GetCounter("sched.group.misses")
)

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 uses GOMAXPROCS). fn must write its result into
// an index-addressed slot so that the outcome is independent of scheduling.
//
// All indices run even if some fail; the returned error is the failure with
// the lowest index, which makes the reported error deterministic regardless
// of goroutine interleaving. If ctx is cancelled, remaining indices are not
// started and ForEach returns ctx.Err().
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	return ForEachSharded(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// ForEachSharded is ForEach for callers that keep per-worker scratch state:
// fn additionally receives the stable id of the worker goroutine running it,
// in [0, min(Workers(workers), n)). Two invocations with the same worker id
// never run concurrently, so fn may freely reuse a scratch structure (an
// executor, an engine, a buffer pool) indexed by that id without locking —
// the sharding pattern the parallel pinball replay is built on. Everything
// else (index-addressed results, lowest-index error, cancellation draining)
// matches ForEach.
func ForEachSharded(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	traced := obs.Enabled()
	var begin time.Time
	if traced {
		begin = time.Now()
		taskCounter.Add(int64(n))
	}
	run := func(w, i int) error {
		if !traced {
			return fn(w, i)
		}
		start := time.Now()
		taskWaitMS.Observe(float64(start.Sub(begin).Microseconds()) / 1e3)
		err := fn(w, i)
		taskRunMS.Observe(float64(time.Since(start).Microseconds()) / 1e3)
		return err
	}

	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(0, i); err != nil && first == nil {
				first = err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = run(w, i)
			}
		}(w)
	}
	wg.Wait()
	// A cancelled run reports ctx.Err() unconditionally: which indices got
	// to run (and thus which fn errors exist) depends on scheduling, so the
	// per-index errors are not a deterministic signal once cancelled.
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// call is one in-flight or completed computation. abandoned marks a call
// whose computing caller was cancelled mid-fn: its result is that caller's
// private ctx.Err(), not a shared outcome, so waiters retry instead of
// inheriting it.
type call[V any] struct {
	done      chan struct{}
	val       V
	err       error
	abandoned bool
}

// Group is a per-key singleflight cache. The first caller of Do for a key
// computes the value while concurrent callers for the same key block and
// share the result; successful results are cached for the lifetime of the
// Group. Failed computations are not cached — a later Do retries — matching
// the retry semantics the experiment caches had when they were plain maps.
//
// The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// Do returns the value for key, computing it with fn if no successful or
// in-flight computation exists. fn is never invoked twice concurrently for
// the same key.
//
// ctx governs only this caller's wait: a waiter whose context is cancelled
// stops waiting and returns ctx.Err(), while the in-flight computation (and
// other waiters) proceed untouched. The computing caller itself checks ctx
// before starting; fn should capture ctx if the computation is to be
// cancellable mid-flight.
//
// Cancellation of the computing caller is private to it: when fn fails
// because that caller's ctx was cancelled, the failure is not published to
// waiters — one live waiter takes over the computation (the rest keep
// waiting on it) and the cancelled caller alone sees its ctx.Err(). Without
// this, one client disconnecting would poison every concurrent request for
// the same key with a "context canceled" that none of their contexts
// produced.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	for {
		v, err, retry := g.do(ctx, key, fn)
		if !retry {
			return v, err
		}
	}
}

// do is one attempt: join an existing call or compute. retry reports that
// the joined call was abandoned by a cancelled computer and the caller
// should re-enter (taking over the computation if it gets there first).
func (g *Group[K, V]) do(ctx context.Context, key K, fn func() (V, error)) (v V, err error, retry bool) {
	var zero V
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		groupHits.Add(1)
		// Completed results win over simultaneous cancellation, so a
		// cancelled-and-done race prefers the deterministic value.
		select {
		case <-c.done:
			return c.val, c.err, c.abandoned
		default:
		}
		select {
		case <-c.done:
			return c.val, c.err, c.abandoned
		case <-ctx.Done():
			return zero, ctx.Err(), false
		}
	}
	if err := ctx.Err(); err != nil {
		g.mu.Unlock()
		return zero, err, false
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	groupMisses.Add(1)

	c.val, c.err = fn()
	if c.err != nil {
		// Drop failed calls so a later caller can retry; waiters still
		// observe this call's error through the captured pointer — unless
		// the failure is this caller's own cancellation, which is marked
		// abandoned so waiters with live contexts retry instead.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		if ctx.Err() != nil {
			c.abandoned = true
		}
	}
	close(c.done)
	return c.val, c.err, false
}

// Len reports how many successful results the group currently caches.
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.calls {
		select {
		case <-c.done:
			n++
		default:
		}
	}
	return n
}
