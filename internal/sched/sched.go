// Package sched provides the suite-level scheduling primitives of the
// reproduction: a bounded parallel-for for fanning independent
// per-benchmark work across workers, and a generic singleflight group that
// deduplicates concurrent computations of the same cached value.
//
// Both primitives are designed so that callers stay deterministic: ForEach
// addresses results by index (the caller writes into pre-sized slots, so
// output order never depends on goroutine scheduling) and Group guarantees
// an expensive function runs at most once per key no matter how many
// figures request it concurrently.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n when positive, otherwise
// GOMAXPROCS. This is the convention every Workers field in the repository
// follows (<= 0 means "use all available parallelism").
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (workers <= 0 uses GOMAXPROCS). fn must write its result into
// an index-addressed slot so that the outcome is independent of scheduling.
//
// All indices run even if some fail; the returned error is the failure with
// the lowest index, which makes the reported error deterministic regardless
// of goroutine interleaving.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// call is one in-flight or completed computation.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Group is a per-key singleflight cache. The first caller of Do for a key
// computes the value while concurrent callers for the same key block and
// share the result; successful results are cached for the lifetime of the
// Group. Failed computations are not cached — a later Do retries — matching
// the retry semantics the experiment caches had when they were plain maps.
//
// The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// Do returns the value for key, computing it with fn if no successful or
// in-flight computation exists. fn is never invoked twice concurrently for
// the same key.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	if c.err != nil {
		// Drop failed calls so a later caller can retry; waiters still
		// observe this call's error through the captured pointer.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}
	close(c.done)
	return c.val, c.err
}

// Len reports how many successful results the group currently caches.
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.calls {
		select {
		case <-c.done:
			n++
		default:
		}
	}
	return n
}
