package core

import (
	"math"
	"reflect"
	"testing"

	"specsampling/internal/selector"
	"specsampling/internal/workload"
)

// TestSelectWithBackends re-selects one profiled benchmark with every
// registered backend and checks the shared contract end to end through the
// core API: points exist, weights sum to 1, and the regions cut into valid
// pinballs.
func TestSelectWithBackends(t *testing.T) {
	an := analyzeBench(t, "505.mcf_r")
	for _, name := range selector.Names() {
		cfg := an.Config
		cfg.Selector = name
		res, err := an.SelectWith(tctx, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.NumPoints() == 0 {
			t.Fatalf("%s: no points", name)
		}
		if math.Abs(res.WeightTotal()-1) > 1e-9 {
			t.Errorf("%s: weights sum to %v", name, res.WeightTotal())
		}
		if res.SampledInstrs() > an.TotalInstrs {
			t.Errorf("%s: sampled %d > total %d", name, res.SampledInstrs(), an.TotalInstrs)
		}
		if _, err := an.Pinballs(res, 0); err != nil {
			t.Errorf("%s: pinballs: %v", name, err)
		}
	}
}

// TestSelectWithSimpointMatchesAnalyze pins the refactor's bit-identity:
// re-selecting with the analysis's own (simpoint) configuration reproduces
// Analyze's stored Result exactly.
func TestSelectWithSimpointMatchesAnalyze(t *testing.T) {
	an := analyzeBench(t, "520.omnetpp_r")
	res, err := an.SelectWith(tctx, an.Config)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, an.Result) {
		t.Fatalf("SelectWith differs from Analyze result:\n got: %+v\nwant: %+v", res, an.Result)
	}
}

// TestClusterKeySelectorNamespacing checks the redesigned ClusterKey: the
// version salt is present, and distinct backends or backend knobs always
// derive distinct keys (no silent cache aliasing).
func TestClusterKeySelectorNamespacing(t *testing.T) {
	base := DefaultConfig(workload.ScaleSmall)
	keys := map[string]string{}
	add := func(label string, cfg Config) {
		k := cfg.ClusterKey("505.mcf_r")
		id := k.Kind + "|" + k.Bench
		for _, p := range k.Parts {
			id += "|" + p
		}
		if prev, dup := keys[id]; dup {
			t.Errorf("%s aliases %s: %s", label, prev, id)
		}
		keys[id] = label
	}
	add("simpoint", base)
	for _, mut := range []struct {
		label string
		f     func(*Config)
	}{
		{"stratified", func(c *Config) { c.Selector = "stratified" }},
		{"rankedset", func(c *Config) { c.Selector = "rankedset" }},
		{"simpoint maxk", func(c *Config) { c.SimPoint.MaxK = 7 }},
		{"stratified budget", func(c *Config) { c.Selector = "stratified"; c.Stratified.Budget = 11 }},
		{"rankedset cycles", func(c *Config) { c.Selector = "rankedset"; c.RankedSet.Cycles = 9 }},
		{"seed", func(c *Config) { c.Seed = 99 }},
	} {
		cfg := base
		mut.f(&cfg)
		add(mut.label, cfg)
	}
	k := base.ClusterKey("505.mcf_r")
	foundSalt := false
	for _, p := range k.Parts {
		if p == "ckv=2" {
			foundSalt = true
		}
	}
	if !foundSalt {
		t.Errorf("ClusterKey parts %v missing ckv=2 version salt", k.Parts)
	}
}

// TestAnalyzeUnknownSelector pins the fail-fast error path.
func TestAnalyzeUnknownSelector(t *testing.T) {
	spec, err := workload.ByName("505.mcf_r")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(workload.ScaleSmall)
	cfg.Selector = "nope"
	if _, err := Analyze(tctx, spec, cfg); err == nil {
		t.Fatal("unknown selector accepted")
	}
}
