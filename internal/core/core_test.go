package core

import (
	"context"
	"math"
	"testing"

	"specsampling/internal/cache"
	"specsampling/internal/native"
	"specsampling/internal/workload"
)

// tctx is the background context every test threads through the API.
var tctx = context.Background()

// analyzeBench runs the pipeline for a named benchmark at small scale.
func analyzeBench(t testing.TB, name string) *Analysis {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(workload.ScaleSmall)
	an, err := Analyze(tctx, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestAnalyzeBasics(t *testing.T) {
	an := analyzeBench(t, "520.omnetpp_r")
	if an.Result.NumPoints() == 0 {
		t.Fatal("no simulation points")
	}
	if math.Abs(an.Result.WeightTotal()-1) > 1e-9 {
		t.Errorf("weights sum to %v", an.Result.WeightTotal())
	}
	if an.TotalInstrs == 0 || len(an.Slices) == 0 {
		t.Error("missing profile data")
	}
	var sliceSum uint64
	for _, s := range an.Slices {
		sliceSum += s.Len
	}
	if sliceSum != an.TotalInstrs {
		t.Errorf("slices sum to %d, total %d", sliceSum, an.TotalInstrs)
	}
}

func TestPinballsMatchPoints(t *testing.T) {
	an := analyzeBench(t, "557.xz_r")
	pbs, err := an.Pinballs(an.Result, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pbs) != an.Result.NumPoints() {
		t.Fatalf("%d pinballs for %d points", len(pbs), an.Result.NumPoints())
	}
	for i, pb := range pbs {
		pt := an.Result.Points[i]
		if pb.Len != pt.Len || pb.Weight != pt.Weight {
			t.Errorf("pinball %d diverges from its point", i)
		}
		if pb.HasWarmup {
			t.Errorf("pinball %d has unexpected warm-up", i)
		}
	}
}

func TestPinballsWithWarmup(t *testing.T) {
	an := analyzeBench(t, "557.xz_r")
	pbs, err := an.Pinballs(an.Result, 4)
	if err != nil {
		t.Fatal(err)
	}
	warmed := 0
	for _, pb := range pbs {
		if !pb.HasWarmup {
			// Only points within the first warmupSlices slices may lack
			// warm-up.
			if pb.Start.Instrs > 4*an.Config.Scale.SliceLen+64 {
				t.Errorf("region at %d lacks warm-up", pb.Start.Instrs)
			}
			continue
		}
		warmed++
		if pb.Warmup.Instrs+pb.WarmupLen != pb.Start.Instrs {
			t.Error("warm-up does not abut the region")
		}
	}
	if warmed == 0 {
		t.Error("no pinball carries warm-up")
	}
}

// The pipeline's central accuracy claim: the weighted sampled instruction
// mix matches the whole-run mix to within ~1-2%.
func TestSampledMixTracksWholeMix(t *testing.T) {
	an := analyzeBench(t, "541.leela_r")
	whole := an.WholeMix(tctx)
	pbs, err := an.Pinballs(an.Result, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := an.SampledMix(tctx, pbs)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if d := math.Abs(sampled.Fractions[c] - whole.Fractions[c]); d > 0.03 {
			t.Errorf("category %d: sampled %v vs whole %v (abs diff %v)",
				c, sampled.Fractions[c], whole.Fractions[c], d)
		}
	}
	if sampled.Instrs >= whole.Instrs {
		t.Error("sampling did not reduce instructions")
	}
}

func TestSampledCacheGradient(t *testing.T) {
	an := analyzeBench(t, "505.mcf_r")
	hier := an.CacheConfig()
	whole, err := an.WholeCache(tctx, hier)
	if err != nil {
		t.Fatal(err)
	}
	pbs, err := an.Pinballs(an.Result, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := an.SampledCache(tctx, pbs, hier)
	if err != nil {
		t.Fatal(err)
	}
	// Regional L3 accesses must be far fewer than whole (Figure 10).
	if sampled.L3Accesses >= whole.L3Accesses {
		t.Errorf("regional L3 accesses %d >= whole %d", sampled.L3Accesses, whole.L3Accesses)
	}
	// Cold-start inflation: sampled L3 miss rate should be >= whole's.
	if sampled.L3 < whole.L3-0.02 {
		t.Errorf("sampled L3 miss rate %v unexpectedly below whole %v", sampled.L3, whole.L3)
	}
	for _, v := range []float64{sampled.L1D, sampled.L2, sampled.L3, whole.L1D, whole.L2, whole.L3} {
		if v < 0 || v > 1 {
			t.Errorf("miss rate %v out of range", v)
		}
	}
}

func TestWarmupReducesL3Error(t *testing.T) {
	an := analyzeBench(t, "505.mcf_r")
	hier := an.CacheConfig()
	whole, err := an.WholeCache(tctx, hier)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := an.Pinballs(an.Result, 0)
	if err != nil {
		t.Fatal(err)
	}
	coldProf, err := an.SampledCache(tctx, cold, hier)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := an.Pinballs(an.Result, 8)
	if err != nil {
		t.Fatal(err)
	}
	warmProf, err := an.SampledCache(tctx, warm, hier)
	if err != nil {
		t.Fatal(err)
	}
	coldErr := math.Abs(coldProf.L3 - whole.L3)
	warmErr := math.Abs(warmProf.L3 - whole.L3)
	if warmErr > coldErr+0.01 {
		t.Errorf("warm-up increased L3 error: cold %v, warm %v", coldErr, warmErr)
	}
}

func TestSampledCPITracksWholeCPI(t *testing.T) {
	an := analyzeBench(t, "541.leela_r")
	cfg := an.TimingConfig()
	whole, err := an.WholeCPI(tctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pbs, err := an.Pinballs(an.Result, 4)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := an.SampledCPI(tctx, pbs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if whole.CPI <= 0 || sampled.CPI <= 0 {
		t.Fatalf("degenerate CPIs: whole %v sampled %v", whole.CPI, sampled.CPI)
	}
	if rel := math.Abs(sampled.CPI-whole.CPI) / whole.CPI; rel > 0.25 {
		t.Errorf("sampled CPI %v vs whole %v (rel err %v)", sampled.CPI, whole.CPI, rel)
	}
}

func TestNativeVsSniperSampled(t *testing.T) {
	an := analyzeBench(t, "541.leela_r")
	nat, err := native.PerfStat(an.Prog, an.Config.Scale.CacheDivs, 0)
	if err != nil {
		t.Fatal(err)
	}
	pbs, err := an.Pinballs(an.Result, 4)
	if err != nil {
		t.Fatal(err)
	}
	sniper, err := an.SampledCPI(tctx, pbs, an.TimingConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sniper.CPI-nat.CPI()) / nat.CPI(); rel > 0.30 {
		t.Errorf("sniper-sampled CPI %v vs native %v (rel err %v)", sniper.CPI, nat.CPI(), rel)
	}
}

func TestCompareRuns(t *testing.T) {
	an := analyzeBench(t, "520.omnetpp_r")
	rc, err := an.CompareRuns(tctx, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if rc.WholeInstrs == 0 || rc.RegionalInstrs == 0 || rc.ReducedInstrs == 0 {
		t.Fatalf("zero instruction counts: %+v", rc)
	}
	if rc.RegionalInstrs >= rc.WholeInstrs {
		t.Error("regional run not smaller than whole")
	}
	if rc.ReducedInstrs > rc.RegionalInstrs {
		t.Error("reduced run larger than regional")
	}
	if rc.NumPoints90 > rc.NumPoints {
		t.Error("reduction added points")
	}
	regional, reduced := rc.InstrReduction()
	if regional <= 1 || reduced < regional {
		t.Errorf("instruction reductions: regional %v, reduced %v", regional, reduced)
	}
	tr, trr := rc.TimeReduction()
	if tr <= 0 || trr <= 0 {
		t.Errorf("time reductions: %v %v", tr, trr)
	}
}

func TestSweepMaxK(t *testing.T) {
	an := analyzeBench(t, "520.omnetpp_r")
	pts, err := an.SweepMaxK(tctx, []int{3, 10}, an.CacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d sweep points", len(pts))
	}
	if pts[0].NumPoints > 3 {
		t.Errorf("MaxK=3 produced %d points", pts[0].NumPoints)
	}
	if pts[0].Label != "MaxK=3" || pts[1].Label != "MaxK=10" {
		t.Errorf("labels: %q %q", pts[0].Label, pts[1].Label)
	}
}

func TestSweepSliceSize(t *testing.T) {
	spec, err := workload.ByName("520.omnetpp_r")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(workload.ScaleSmall)
	hier := cache.ScaledHierarchy(cache.TableIConfig(), workload.ScaleSmall.CacheDivs)
	pts, err := SweepSliceSize(tctx, spec, cfg, []uint64{15_000_000, 30_000_000}, hier)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d sweep points", len(pts))
	}
	if pts[0].Label != "slice=15M" {
		t.Errorf("label %q", pts[0].Label)
	}
}

func TestPercentileSweep(t *testing.T) {
	an := analyzeBench(t, "557.xz_r")
	pts, err := an.PercentileSweep(tctx, []float64{1.0, 0.9, 0.5}, an.CacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Fewer points and fewer instructions as the percentile drops.
	for i := 1; i < len(pts); i++ {
		if pts[i].NumPoints > pts[i-1].NumPoints {
			t.Errorf("points grew as percentile dropped: %d -> %d",
				pts[i-1].NumPoints, pts[i].NumPoints)
		}
		if pts[i].Mix.Instrs > pts[i-1].Mix.Instrs {
			t.Error("instructions grew as percentile dropped")
		}
	}
}

func TestErrorPaths(t *testing.T) {
	an := analyzeBench(t, "520.omnetpp_r")
	if _, err := an.Pinballs(nil, 0); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := an.SampledMix(tctx, nil); err == nil {
		t.Error("empty pinball set accepted for mix")
	}
	if _, err := an.SampledCache(tctx, nil, an.CacheConfig()); err == nil {
		t.Error("empty pinball set accepted for cache")
	}
	if _, err := an.SampledCPI(tctx, nil, an.TimingConfig()); err == nil {
		t.Error("empty pinball set accepted for CPI")
	}
	if _, err := an.WholeCache(tctx, cache.HierarchyConfig{}); err == nil {
		t.Error("invalid hierarchy accepted")
	}
}

func TestRepeatedReplayReducesL3Error(t *testing.T) {
	an := analyzeBench(t, "505.mcf_r")
	hier := an.CacheConfig()
	whole, err := an.WholeCache(tctx, hier)
	if err != nil {
		t.Fatal(err)
	}
	pbs, err := an.Pinballs(an.Result, 0)
	if err != nil {
		t.Fatal(err)
	}
	once, err := an.SampledCacheRepeated(tctx, pbs, hier, 1)
	if err != nil {
		t.Fatal(err)
	}
	// rounds=1 must agree with the plain path.
	plain, err := an.SampledCache(tctx, pbs, hier)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(once.L3-plain.L3) > 1e-9 {
		t.Errorf("rounds=1 L3 %v != plain %v", once.L3, plain.L3)
	}
	thrice, err := an.SampledCacheRepeated(tctx, pbs, hier, 3)
	if err != nil {
		t.Fatal(err)
	}
	errOnce := math.Abs(once.L3 - whole.L3)
	errThrice := math.Abs(thrice.L3 - whole.L3)
	if errThrice > errOnce+0.01 {
		t.Errorf("repeated replay increased L3 error: %v -> %v", errOnce, errThrice)
	}
	if _, err := an.SampledCacheRepeated(tctx, pbs, hier, 0); err == nil {
		t.Error("rounds=0 accepted")
	}
	if _, err := an.SampledCacheRepeated(tctx, nil, hier, 2); err == nil {
		t.Error("empty pinballs accepted")
	}
}

func TestSplitWarmingReducesL3Error(t *testing.T) {
	an := analyzeBench(t, "505.mcf_r")
	hier := an.CacheConfig()
	whole, err := an.WholeCache(tctx, hier)
	if err != nil {
		t.Fatal(err)
	}
	pbs, err := an.Pinballs(an.Result, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := an.SampledCache(tctx, pbs, hier)
	if err != nil {
		t.Fatal(err)
	}
	split, err := an.SampledCacheSplit(tctx, pbs, hier, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	coldErr := math.Abs(cold.L3 - whole.L3)
	splitErr := math.Abs(split.L3 - whole.L3)
	if splitErr > coldErr {
		t.Errorf("split warming increased L3 error: %v -> %v", coldErr, splitErr)
	}
	// Measured instructions shrink by roughly the warm fraction.
	if split.Instrs >= cold.Instrs {
		t.Error("split warming should measure fewer instructions")
	}
	// Zero warm fraction must equal the plain path.
	zero, err := an.SampledCacheSplit(tctx, pbs, hier, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero.L3-cold.L3) > 1e-9 {
		t.Errorf("warmFrac=0 L3 %v != plain %v", zero.L3, cold.L3)
	}
	if _, err := an.SampledCacheSplit(tctx, pbs, hier, 1.0); err == nil {
		t.Error("warmFrac=1 accepted")
	}
	if _, err := an.SampledCacheSplit(tctx, nil, hier, 0.5); err == nil {
		t.Error("empty pinballs accepted")
	}
}
