package core

import (
	"context"
	"fmt"
	"time"

	"specsampling/internal/cache"
	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/pinball"
	"specsampling/internal/pintool"
	"specsampling/internal/simpoint"
	"specsampling/internal/workload"
)

// SweepPoint is one configuration of a sensitivity sweep (Figure 3) with
// its sampled measurements.
type SweepPoint struct {
	// Label names the configuration ("MaxK=15", "slice=25M").
	Label string
	// NumPoints is the simulation-point count the configuration produced.
	NumPoints int
	// Mix and Cache are the sampled measurements to compare against the
	// whole run.
	Mix   MixProfile
	Cache CacheProfile
}

// SweepMaxK re-clusters the analysis at each MaxK and measures instruction
// mix and cache miss rates through the resulting simulation points — the
// paper's Figure 3(a) sensitivity study.
func (a *Analysis) SweepMaxK(ctx context.Context, maxKs []int, hier cache.HierarchyConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(maxKs))
	for _, k := range maxKs {
		res, err := a.Recluster(ctx, k)
		if err != nil {
			return nil, fmt.Errorf("core: MaxK=%d: %w", k, err)
		}
		pt, err := a.measure(ctx, res, fmt.Sprintf("MaxK=%d", k), hier)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// SweepSliceSize re-profiles the benchmark at each slice length and
// measures mix and miss rates through the resulting simulation points —
// the paper's Figure 3(b) study. Slice lengths are given in paper-scale
// instructions (15 M, 25 M, ...) and converted through the analysis scale.
func SweepSliceSize(ctx context.Context, spec workload.Spec, cfg Config, paperSizes []uint64, hier cache.HierarchyConfig) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(paperSizes))
	for _, paper := range paperSizes {
		sub := cfg
		sub.SliceLen = cfg.Scale.SliceLenForPaperSize(paper)
		an, err := Analyze(ctx, spec, sub)
		if err != nil {
			return nil, fmt.Errorf("core: slice %dM: %w", paper/1_000_000, err)
		}
		pt, err := an.measure(ctx, an.Result, fmt.Sprintf("slice=%dM", paper/1_000_000), hier)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// measure cuts pinballs for a result and collects mix + cache profiles.
func (a *Analysis) measure(ctx context.Context, res *simpoint.Result, label string, hier cache.HierarchyConfig) (SweepPoint, error) {
	pbs, err := a.Pinballs(res, 0)
	if err != nil {
		return SweepPoint{}, err
	}
	mix, err := a.SampledMix(ctx, pbs)
	if err != nil {
		return SweepPoint{}, err
	}
	cp, err := a.SampledCache(ctx, pbs, hier)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{Label: label, NumPoints: res.NumPoints(), Mix: mix, Cache: cp}, nil
}

// RunComparison is the Figure 5 measurement: dynamic instruction counts and
// execution times of Whole, Regional and Reduced Regional runs. Times are
// serial replay wall-clock (the paper's per-benchmark execution times; it
// notes pinballs *can* run in parallel, but reports aggregate time).
type RunComparison struct {
	WholeInstrs    uint64
	RegionalInstrs uint64
	ReducedInstrs  uint64

	WholeTime    time.Duration
	RegionalTime time.Duration
	ReducedTime  time.Duration

	NumPoints   int
	NumPoints90 int
}

// InstrReduction returns whole/regional and whole/reduced instruction
// ratios (the paper's ~650x and ~1225x).
func (rc RunComparison) InstrReduction() (regional, reduced float64) {
	if rc.RegionalInstrs > 0 {
		regional = float64(rc.WholeInstrs) / float64(rc.RegionalInstrs)
	}
	if rc.ReducedInstrs > 0 {
		reduced = float64(rc.WholeInstrs) / float64(rc.ReducedInstrs)
	}
	return regional, reduced
}

// TimeReduction returns whole/regional and whole/reduced time ratios (the
// paper's ~750x and ~1297x).
func (rc RunComparison) TimeReduction() (regional, reduced float64) {
	if rc.RegionalTime > 0 {
		regional = float64(rc.WholeTime) / float64(rc.RegionalTime)
	}
	if rc.ReducedTime > 0 {
		reduced = float64(rc.WholeTime) / float64(rc.ReducedTime)
	}
	return regional, reduced
}

// CompareRuns executes whole, regional and reduced-regional runs with the
// inscount Pintool and measures instructions and serial wall-clock time.
func (a *Analysis) CompareRuns(ctx context.Context, percentile float64) (RunComparison, error) {
	_, span := obs.Start(ctx, "compare_runs",
		obs.String("bench", a.Prog.Name), obs.Float("percentile", percentile))
	defer span.End()
	var rc RunComparison
	rc.NumPoints = a.Result.NumPoints()

	reduced, err := a.Result.Reduce(percentile)
	if err != nil {
		return rc, err
	}
	rc.NumPoints90 = reduced.NumPoints()

	// Whole run.
	start := time.Now()
	engine := pin.NewEngine(a.Prog)
	ic := pintool.NewInsCount()
	if err := engine.Attach(ic); err != nil {
		return rc, err
	}
	rc.WholeInstrs = engine.RunToEnd()
	rc.WholeTime = time.Since(start)

	replaySerial := func(res *simpoint.Result) (uint64, time.Duration, error) {
		pbs, err := a.Pinballs(res, 0)
		if err != nil {
			return 0, 0, err
		}
		var instrs uint64
		begin := time.Now()
		for _, pb := range pbs {
			if err := ctx.Err(); err != nil {
				return 0, 0, err
			}
			n, err := pinball.Replay(a.Prog, pb, pintool.NewInsCount())
			if err != nil {
				return 0, 0, err
			}
			instrs += n
		}
		return instrs, time.Since(begin), nil
	}

	if rc.RegionalInstrs, rc.RegionalTime, err = replaySerial(a.Result); err != nil {
		return rc, err
	}
	if rc.ReducedInstrs, rc.ReducedTime, err = replaySerial(reduced); err != nil {
		return rc, err
	}
	return rc, nil
}

// PercentilePoint is one entry of the Figure 9 sweep.
type PercentilePoint struct {
	// Percentile is the cumulative-weight cutoff (1.0 = Regional Run,
	// 0.9 = Reduced Regional Run, ...).
	Percentile float64
	// NumPoints is the surviving simulation-point count.
	NumPoints int
	// Mix and Cache are the sampled measurements.
	Mix   MixProfile
	Cache CacheProfile
	// ReplayTime is the serial replay wall-clock.
	ReplayTime time.Duration
}

// PercentileSweep reduces the analysis result at each percentile and
// measures mix, miss rates and replay time — the paper's Figure 9
// accuracy-vs-runtime trade-off.
func (a *Analysis) PercentileSweep(ctx context.Context, percentiles []float64, hier cache.HierarchyConfig) ([]PercentilePoint, error) {
	out := make([]PercentilePoint, 0, len(percentiles))
	for _, pct := range percentiles {
		res, err := a.Result.Reduce(pct)
		if err != nil {
			return nil, err
		}
		pbs, err := a.Pinballs(res, 0)
		if err != nil {
			return nil, err
		}
		begin := time.Now()
		mix, err := a.SampledMix(ctx, pbs)
		if err != nil {
			return nil, err
		}
		cp, err := a.SampledCache(ctx, pbs, hier)
		if err != nil {
			return nil, err
		}
		out = append(out, PercentilePoint{
			Percentile: pct,
			NumPoints:  res.NumPoints(),
			Mix:        mix,
			Cache:      cp,
			ReplayTime: time.Since(begin),
		})
	}
	return out, nil
}
