package core

import (
	"context"
	"fmt"

	"specsampling/internal/cache"
	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/pinball"
	"specsampling/internal/pintool"
	"specsampling/internal/program"
	"specsampling/internal/stats"
	"specsampling/internal/timing"
)

// cacheAccessCounter totals cache-hierarchy accesses observed by the
// measurement paths, batched per hierarchy where stats are already read.
var cacheAccessCounter = obs.GetCounter("cache.accesses")

// countHierarchy adds one hierarchy's access totals to the global counter.
func countHierarchy(h *cache.Hierarchy) {
	s := h.L1D.Stats().Accesses + h.L1I.Stats().Accesses +
		h.L2.Stats().Accesses + h.L3.Stats().Accesses
	cacheAccessCounter.Add(int64(s))
}

// MixProfile is an instruction-distribution measurement in ldstmix order
// (NO_MEM, MEM_R, MEM_W, MEM_RW).
type MixProfile struct {
	// Fractions are the per-category shares (sum to 1).
	Fractions [4]float64
	// Instrs is the measured instruction count (the raw, unweighted total
	// for sampled runs — the quantity of Figure 5(a)).
	Instrs uint64
}

// CacheProfile is a cache-hierarchy measurement at the Table I
// configuration (or any hierarchy the caller passes).
type CacheProfile struct {
	// L1D, L2, L3 and L1I are the per-level miss rates. Sampled runs report
	// the weighted average of per-region rates, following the paper's
	// methodology (Section IV-D: weighted averages of
	// instruction-normalised statistics).
	L1D, L2, L3, L1I float64
	// L3Accesses is the raw number of L3 accesses (unweighted total) — the
	// quantity of Figure 10, which shrinks with sampling.
	L3Accesses uint64
	// Instrs is the measured instruction count.
	Instrs uint64
}

// CPIProfile is a timing measurement.
type CPIProfile struct {
	// CPI is cycles per instruction (weight-averaged for sampled runs; the
	// paper notes CPI may be weight-averaged, IPC may not).
	CPI float64
	// Cycles and Instrs are raw totals.
	Cycles float64
	Instrs uint64
}

// WholeMix replays the whole program with ldstmix attached.
func (a *Analysis) WholeMix(ctx context.Context) MixProfile {
	_, span := obs.Start(ctx, "whole_mix", obs.String("bench", a.Prog.Name))
	defer span.End()
	mix := pintool.NewLdStMix()
	engine := pin.NewEngine(a.Prog)
	// Attach cannot fail for a tool with event interfaces.
	if err := engine.Attach(mix); err != nil {
		panic(err)
	}
	n := engine.RunToEnd()
	return MixProfile{Fractions: mix.Fractions(), Instrs: n}
}

// WholeCache replays the whole program through a cache hierarchy.
func (a *Analysis) WholeCache(ctx context.Context, cfg cache.HierarchyConfig) (CacheProfile, error) {
	_, span := obs.Start(ctx, "whole_cache", obs.String("bench", a.Prog.Name))
	defer span.End()
	h, err := cache.NewHierarchy(cfg)
	if err != nil {
		return CacheProfile{}, err
	}
	engine := pin.NewEngine(a.Prog)
	if err := engine.Attach(pintool.NewAllCache(h)); err != nil {
		return CacheProfile{}, err
	}
	n := engine.RunToEnd()
	countHierarchy(h)
	l1d, l2, l3 := h.MissRates()
	return CacheProfile{
		L1D: l1d, L2: l2, L3: l3, L1I: h.L1I.Stats().MissRate(),
		L3Accesses: h.L3.Stats().Accesses,
		Instrs:     n,
	}, nil
}

// WholeCPI runs the whole program on the given timing machine.
func (a *Analysis) WholeCPI(ctx context.Context, cfg timing.Config) (CPIProfile, error) {
	_, span := obs.Start(ctx, "whole_cpi", obs.String("bench", a.Prog.Name))
	defer span.End()
	core, err := timing.NewCore(cfg)
	if err != nil {
		return CPIProfile{}, err
	}
	engine := pin.NewEngine(a.Prog)
	if err := engine.Attach(core); err != nil {
		return CPIProfile{}, err
	}
	engine.RunToEnd()
	c := core.Counters()
	return CPIProfile{CPI: c.CPI(), Cycles: c.Cycles, Instrs: c.Instructions}, nil
}

// SampledMix replays regional pinballs (in parallel) with ldstmix attached
// and weight-averages the category fractions.
func (a *Analysis) SampledMix(ctx context.Context, pbs []*pinball.Pinball) (MixProfile, error) {
	if len(pbs) == 0 {
		return MixProfile{}, fmt.Errorf("core: no pinballs")
	}
	mixes := make([]*pintool.LdStMix, len(pbs))
	results := pinball.ReplayAll(ctx, a.Prog, pbs, a.Config.Workers, func(i int) []pin.Tool {
		mixes[i] = pintool.NewLdStMix()
		return []pin.Tool{mixes[i]}
	})
	weights := make([]float64, len(pbs))
	perCat := make([][]float64, 4)
	for c := range perCat {
		perCat[c] = make([]float64, len(pbs))
	}
	var totalInstrs uint64
	for i, r := range results {
		if r.Err != nil {
			return MixProfile{}, fmt.Errorf("core: replay %d: %w", i, r.Err)
		}
		weights[i] = pbs[i].Weight
		fr := mixes[i].Fractions()
		for c := 0; c < 4; c++ {
			perCat[c][i] = fr[c]
		}
		totalInstrs += r.Executed
	}
	var out MixProfile
	for c := 0; c < 4; c++ {
		out.Fractions[c] = stats.WeightedMean(perCat[c], weights)
	}
	out.Instrs = totalInstrs
	return out, nil
}

// SampledCache replays regional pinballs through private cache hierarchies
// and weight-averages the per-region miss rates. Pinballs carrying warm-up
// checkpoints get their hierarchies warmed first (the "Warmup Regional Run"
// of Figure 8).
func (a *Analysis) SampledCache(ctx context.Context, pbs []*pinball.Pinball, cfg cache.HierarchyConfig) (CacheProfile, error) {
	if len(pbs) == 0 {
		return CacheProfile{}, fmt.Errorf("core: no pinballs")
	}
	caches := make([]*cache.Hierarchy, len(pbs))
	results := pinball.ReplayAll(ctx, a.Prog, pbs, a.Config.Workers, func(i int) []pin.Tool {
		h, err := cache.NewHierarchy(cfg)
		if err != nil {
			panic(err) // config was validated by the first construction
		}
		caches[i] = h
		return []pin.Tool{pintool.NewAllCache(h)}
	})
	weights := make([]float64, len(pbs))
	l1d := make([]float64, len(pbs))
	l2 := make([]float64, len(pbs))
	l3 := make([]float64, len(pbs))
	l1i := make([]float64, len(pbs))
	var l3Acc, instrs uint64
	for i, r := range results {
		if r.Err != nil {
			return CacheProfile{}, fmt.Errorf("core: replay %d: %w", i, r.Err)
		}
		weights[i] = pbs[i].Weight
		h := caches[i]
		countHierarchy(h)
		l1d[i], l2[i], l3[i] = h.MissRates()
		l1i[i] = h.L1I.Stats().MissRate()
		l3Acc += h.L3.Stats().Accesses
		instrs += r.Executed
	}
	return CacheProfile{
		L1D: stats.WeightedMean(l1d, weights),
		L2:  stats.WeightedMean(l2, weights),
		L3:  stats.WeightedMean(l3, weights),
		L1I: stats.WeightedMean(l1i, weights),

		L3Accesses: l3Acc,
		Instrs:     instrs,
	}, nil
}

// SampledCacheRepeated implements the paper's other cold-cache mitigation
// (Section IV-D): each regional pinball is replayed `rounds` times against
// the same hierarchy, exercising the LLC, and only the final replay is
// measured. rounds = 1 equals SampledCache.
func (a *Analysis) SampledCacheRepeated(ctx context.Context, pbs []*pinball.Pinball, cfg cache.HierarchyConfig, rounds int) (CacheProfile, error) {
	if len(pbs) == 0 {
		return CacheProfile{}, fmt.Errorf("core: no pinballs")
	}
	if rounds < 1 {
		return CacheProfile{}, fmt.Errorf("core: rounds = %d", rounds)
	}
	caches := make([]*cache.Hierarchy, len(pbs))
	warmRounds := rounds - 1
	results := pinball.ReplayAll(ctx, a.Prog, pbs, a.Config.Workers, func(i int) []pin.Tool {
		h, err := cache.NewHierarchy(cfg)
		if err != nil {
			panic(err)
		}
		caches[i] = h
		tool := pintool.NewAllCache(h)
		// Pre-warm: replay the region warmRounds times with statistics
		// suppressed before the measured replay that ReplayAll performs.
		for r := 0; r < warmRounds; r++ {
			h.SetWarmup(true)
			if _, err := pinball.Replay(a.Prog, stripWarmup(pbs[i]), tool); err != nil {
				panic(err)
			}
			h.SetWarmup(false)
		}
		return []pin.Tool{tool}
	})
	weights := make([]float64, len(pbs))
	l1d := make([]float64, len(pbs))
	l2 := make([]float64, len(pbs))
	l3 := make([]float64, len(pbs))
	l1i := make([]float64, len(pbs))
	var l3Acc, instrs uint64
	for i, r := range results {
		if r.Err != nil {
			return CacheProfile{}, fmt.Errorf("core: replay %d: %w", i, r.Err)
		}
		weights[i] = pbs[i].Weight
		h := caches[i]
		countHierarchy(h)
		l1d[i], l2[i], l3[i] = h.MissRates()
		l1i[i] = h.L1I.Stats().MissRate()
		l3Acc += h.L3.Stats().Accesses
		instrs += r.Executed
	}
	return CacheProfile{
		L1D: stats.WeightedMean(l1d, weights),
		L2:  stats.WeightedMean(l2, weights),
		L3:  stats.WeightedMean(l3, weights),
		L1I: stats.WeightedMean(l1i, weights),

		L3Accesses: l3Acc,
		Instrs:     instrs,
	}, nil
}

// SampledCacheSplit implements functional warming *within* each region, in
// the spirit of SimFlex's warming discussion (Section V-B): the first
// warmFrac of every simulation point's instructions update the caches
// without being counted, and only the remainder is measured. Unlike the
// warm-up-checkpoint mitigation this needs no state prior to the region —
// useful when only the regional pinballs themselves are available — at the
// cost of measuring a shorter sample.
func (a *Analysis) SampledCacheSplit(ctx context.Context, pbs []*pinball.Pinball, cfg cache.HierarchyConfig, warmFrac float64) (CacheProfile, error) {
	if len(pbs) == 0 {
		return CacheProfile{}, fmt.Errorf("core: no pinballs")
	}
	if warmFrac < 0 || warmFrac >= 1 {
		return CacheProfile{}, fmt.Errorf("core: warm fraction %v out of [0,1)", warmFrac)
	}
	_, span := obs.Start(ctx, "replay_split",
		obs.String("bench", a.Prog.Name), obs.Int("pinballs", len(pbs)))
	defer span.End()
	weights := make([]float64, len(pbs))
	l1d := make([]float64, len(pbs))
	l2 := make([]float64, len(pbs))
	l3 := make([]float64, len(pbs))
	l1i := make([]float64, len(pbs))
	var l3Acc, instrs uint64
	for i, pb := range pbs {
		if err := ctx.Err(); err != nil {
			return CacheProfile{}, err
		}
		h, err := cache.NewHierarchy(cfg)
		if err != nil {
			return CacheProfile{}, err
		}
		exec := program.NewExecutor(a.Prog)
		if err := exec.Restore(pb.Start); err != nil {
			return CacheProfile{}, fmt.Errorf("core: restore region %d: %w", i, err)
		}
		engine := pin.NewEngineAt(exec)
		tool := pintool.NewAllCache(h)
		if err := engine.Attach(tool); err != nil {
			return CacheProfile{}, err
		}
		warmLen := uint64(float64(pb.Len) * warmFrac)
		var ran uint64
		if warmLen > 0 {
			h.SetWarmup(true)
			ran = engine.Run(warmLen)
			h.SetWarmup(false)
		}
		if ran < pb.Len {
			instrs += engine.Run(pb.Len - ran)
		}
		weights[i] = pb.Weight
		countHierarchy(h)
		l1d[i], l2[i], l3[i] = h.MissRates()
		l1i[i] = h.L1I.Stats().MissRate()
		l3Acc += h.L3.Stats().Accesses
	}
	return CacheProfile{
		L1D: stats.WeightedMean(l1d, weights),
		L2:  stats.WeightedMean(l2, weights),
		L3:  stats.WeightedMean(l3, weights),
		L1I: stats.WeightedMean(l1i, weights),

		L3Accesses: l3Acc,
		Instrs:     instrs,
	}, nil
}

// stripWarmup returns a copy of the pinball without its warm-up checkpoint,
// so pre-warm replays cover exactly the region.
func stripWarmup(pb *pinball.Pinball) *pinball.Pinball {
	out := *pb
	out.HasWarmup = false
	out.WarmupLen = 0
	return &out
}

// SampledCPI replays regional pinballs on private timing cores and
// weight-averages their CPIs.
func (a *Analysis) SampledCPI(ctx context.Context, pbs []*pinball.Pinball, cfg timing.Config) (CPIProfile, error) {
	if len(pbs) == 0 {
		return CPIProfile{}, fmt.Errorf("core: no pinballs")
	}
	cores := make([]*timing.Core, len(pbs))
	results := pinball.ReplayAll(ctx, a.Prog, pbs, a.Config.Workers, func(i int) []pin.Tool {
		core, err := timing.NewCore(cfg)
		if err != nil {
			panic(err)
		}
		cores[i] = core
		return []pin.Tool{core}
	})
	weights := make([]float64, len(pbs))
	cpis := make([]float64, len(pbs))
	var cycles float64
	var instrs uint64
	for i, r := range results {
		if r.Err != nil {
			return CPIProfile{}, fmt.Errorf("core: replay %d: %w", i, r.Err)
		}
		weights[i] = pbs[i].Weight
		c := cores[i].Counters()
		cpis[i] = c.CPI()
		cycles += c.Cycles
		instrs += c.Instructions
	}
	return CPIProfile{
		CPI:    stats.WeightedMean(cpis, weights),
		Cycles: cycles,
		Instrs: instrs,
	}, nil
}
