// Package core is the reproduction's top-level API — the PinPoints flow of
// the paper (Figure 2) end to end:
//
//	benchmark ──(logger)──> whole pinball ──(BBV profile + SimPoint)──>
//	simulation points ──(checkpointing)──> regional pinballs ──(replay with
//	Pintools / Sniper)──> weighted statistics
//
// An Analysis holds the profiled slices of one benchmark so that the
// expensive whole-run profiling pass happens once; clustering sweeps
// (MaxK, slice size, percentile) and replay measurements reuse it.
package core

import (
	"context"
	"fmt"

	"specsampling/internal/cache"
	"specsampling/internal/kmeans"
	"specsampling/internal/obs"
	"specsampling/internal/pinball"
	"specsampling/internal/program"
	"specsampling/internal/simpoint"
	"specsampling/internal/store"
	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

// Config parameterises an analysis. The zero value (plus a Scale) is safe:
// Normalize resolves every unset knob to the paper's defaults, so
//
//	Config{Scale: workload.ScaleSmall}
//
// is equivalent to DefaultConfig(workload.ScaleSmall).
type Config struct {
	// Scale selects the workload scale (see workload.Scale).
	Scale workload.Scale
	// SliceLen overrides the scale's slice length when non-zero.
	SliceLen uint64
	// MaxK is the cluster ceiling; <= 0 uses simpoint.DefaultMaxK (the
	// paper settles on 35).
	MaxK int
	// BICThreshold is the SimPoint BIC fraction; <= 0 uses
	// simpoint.DefaultBICThreshold (0.9).
	BICThreshold float64
	// Seed drives projection/clustering; 0 uses simpoint.DefaultSeed.
	Seed uint64
	// Workers bounds parallel pinball replay and clustering; <= 0 uses
	// GOMAXPROCS (resolved at the point of use via sched.Workers, so a
	// Config is portable across machines).
	Workers int
}

// DefaultConfig returns the paper's configuration at the given scale:
// MaxK 35 with the scale's 30 M-equivalent slice length.
func DefaultConfig(scale workload.Scale) Config {
	return Config{Scale: scale}.Normalize()
}

// Normalize resolves zero values to the pipeline defaults declared in
// package simpoint. It is idempotent, and every entry point calls it, so
// callers may pass sparse configs. SliceLen stays zero here — it is a
// per-call override of the scale's slice length, resolved by sliceLen().
func (c Config) Normalize() Config {
	if c.MaxK <= 0 {
		c.MaxK = simpoint.DefaultMaxK
	}
	if c.BICThreshold <= 0 {
		c.BICThreshold = simpoint.DefaultBICThreshold
	}
	if c.Seed == 0 {
		c.Seed = simpoint.DefaultSeed
	}
	return c
}

func (c Config) sliceLen() uint64 {
	if c.SliceLen != 0 {
		return c.SliceLen
	}
	return c.Scale.SliceLen
}

func (c Config) simpointConfig() simpoint.Config {
	c = c.Normalize()
	sp := simpoint.DefaultConfig(c.sliceLen())
	sp.MaxK = c.MaxK
	sp.BICThreshold = c.BICThreshold
	sp.Seed = c.Seed
	// Hand the worker budget to the clustering engine. The explicit config
	// matches what simpoint would default to, plus Workers; k-means results
	// are identical for every worker count.
	sp.KMeans = kmeans.DefaultConfig(sp.Seed)
	sp.KMeans.Workers = c.Workers
	return sp
}

// profileArtifact is the persisted form of the profile stage: the slices
// (with their per-slice checkpoints) and the whole-run instruction count.
type profileArtifact struct {
	Slices      []simpoint.Slice
	TotalInstrs uint64
}

// ProfileKey is the store key of the benchmark's profile stage at this
// configuration. It covers exactly the inputs the profile depends on —
// benchmark, scale (name and division) and resolved slice length — and
// deliberately excludes the worker budget and clustering knobs: profiles
// are identical for any parallelism and are shared by every clustering
// configuration.
func (c Config) ProfileKey(bench string) store.Key {
	c = c.Normalize()
	return store.Key{Kind: "profile", Bench: bench, Parts: []string{
		"scale=" + c.Scale.Name,
		fmt.Sprintf("div=%d", c.Scale.Div),
		fmt.Sprintf("slice=%d", c.sliceLen()),
	}}
}

// ClusterKey is the store key of the benchmark's clustering stage. It
// extends ProfileKey (a clustering is a function of the profile) with every
// knob the SimPoint pipeline reads: MaxK, BIC threshold, projection
// dimensionality, seed, and the k-means engine parameters. Workers is
// excluded — clustering results are byte-identical for any worker count.
func (c Config) ClusterKey(bench string) store.Key {
	sp := c.simpointConfig()
	k := c.ProfileKey(bench)
	k.Kind = "cluster"
	k.Parts = append(k.Parts,
		fmt.Sprintf("maxk=%d", sp.MaxK),
		fmt.Sprintf("bic=%g", sp.BICThreshold),
		fmt.Sprintf("dims=%d", sp.ProjectDims),
		fmt.Sprintf("seed=%d", sp.Seed),
		fmt.Sprintf("restarts=%d", sp.KMeans.Restarts),
		fmt.Sprintf("maxiter=%d", sp.KMeans.MaxIter),
		fmt.Sprintf("sample=%d", sp.KMeans.SampleSize),
	)
	return k
}

// Analysis is one benchmark's profiled execution plus its SimPoint result.
type Analysis struct {
	// Spec is the benchmark.
	Spec workload.Spec
	// Prog is the built program.
	Prog *program.Program
	// Config echoes the analysis configuration.
	Config Config
	// Slices are the profiled slices (with per-slice checkpoints).
	Slices []simpoint.Slice
	// TotalInstrs is the measured whole-run instruction count.
	TotalInstrs uint64
	// Result is the SimPoint clustering at the configured MaxK.
	Result *simpoint.Result
}

// Analyze builds the benchmark at the configured scale, profiles it, and
// clusters it. This is the expensive pass; everything downstream reuses it.
// ctx carries the tracing span tree and cancellation.
func Analyze(ctx context.Context, spec workload.Spec, cfg Config) (*Analysis, error) {
	return AnalyzeStored(ctx, spec, cfg, nil)
}

// AnalyzeStored is Analyze backed by a persistent artifact store: the
// profile and clustering stages are looked up in st before being computed,
// and computed results are persisted for the next process. A nil store
// degrades to plain Analyze. Stage results served from disk are
// byte-identical to recomputation (gob round-trips float64s exactly), so a
// resumed run reports the same numbers as a cold one.
func AnalyzeStored(ctx context.Context, spec workload.Spec, cfg Config, st *store.Store) (*Analysis, error) {
	cfg = cfg.Normalize()
	ctx, span := obs.Start(ctx, "analyze",
		obs.String("bench", spec.Name), obs.String("scale", cfg.Scale.Name))
	defer span.End()

	_, bspan := obs.Start(ctx, "build")
	prog, err := spec.Build(cfg.Scale)
	bspan.End()
	if err != nil {
		return nil, err
	}
	return analyzeProgram(ctx, spec, prog, cfg, st)
}

// AnalyzeProgram profiles and clusters an already-built program (callers
// that sweep slice sizes rebuild programs themselves).
func AnalyzeProgram(ctx context.Context, spec workload.Spec, prog *program.Program, cfg Config) (*Analysis, error) {
	cfg = cfg.Normalize()
	ctx, span := obs.Start(ctx, "analyze",
		obs.String("bench", spec.Name), obs.String("scale", cfg.Scale.Name))
	defer span.End()
	return analyzeProgram(ctx, spec, prog, cfg, nil)
}

// analyzeProgram is the shared profile+cluster pass under an "analyze" span.
// Each stage goes disk store → compute (the in-memory singleflight layer is
// the caller's, e.g. experiments.Runner); computed stages are persisted even
// when the run is being cancelled, so an interrupted suite resumes from the
// last completed stage rather than the last completed benchmark.
func analyzeProgram(ctx context.Context, spec workload.Spec, prog *program.Program, cfg Config, st *store.Store) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	spCfg := cfg.simpointConfig()

	var slices []simpoint.Slice
	var total uint64
	pkey := cfg.ProfileKey(spec.Name)
	var prof profileArtifact
	if st.Get(ctx, pkey, &prof) {
		slices, total = prof.Slices, prof.TotalInstrs
	} else {
		pctx, pspan := obs.Start(ctx, "profile", obs.Uint64("slice_len", spCfg.SliceLen))
		var err error
		slices, total, err = simpoint.Profile(prog, spCfg.SliceLen)
		if err != nil {
			pspan.End()
			return nil, fmt.Errorf("core: profile %s: %w", spec.Name, err)
		}
		pspan.Annotate(obs.Int("slices", len(slices)), obs.Uint64("instrs", total))
		pspan.End()
		// Persist before honouring cancellation: a failed cache write must
		// not fail the pipeline, and a completed stage should survive an
		// interrupt that arrives while it is being written.
		_ = st.Put(ctx, pkey, profileArtifact{Slices: slices, TotalInstrs: total})
		if err := pctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var res *simpoint.Result
	ckey := cfg.ClusterKey(spec.Name)
	var stored simpoint.Result
	if st.Get(ctx, ckey, &stored) {
		// The stored config echoes whatever run wrote the artifact; restate
		// this call's config (the only field that may differ is the
		// non-semantic worker budget, which is excluded from the key).
		stored.Config = spCfg
		res = &stored
	} else {
		_, cspan := obs.Start(ctx, "cluster", obs.Int("max_k", spCfg.MaxK))
		var err error
		res, err = simpoint.Cluster(prog.Name, slices, total, spCfg)
		if err != nil {
			cspan.End()
			return nil, fmt.Errorf("core: cluster %s: %w", spec.Name, err)
		}
		cspan.Annotate(obs.Int("k", res.NumPoints()))
		cspan.End()
		_ = st.Put(ctx, ckey, res)
	}

	return &Analysis{
		Spec:        spec,
		Prog:        prog,
		Config:      cfg,
		Slices:      slices,
		TotalInstrs: total,
		Result:      res,
	}, nil
}

// CacheConfig returns the paper's Table I allcache hierarchy scaled to this
// analysis's workload scale.
func (a *Analysis) CacheConfig() cache.HierarchyConfig {
	return cache.ScaledHierarchy(cache.TableIConfig(), a.Config.Scale.CacheDivs)
}

// TimingConfig returns the paper's Table III Sniper machine scaled to this
// analysis's workload scale.
func (a *Analysis) TimingConfig() timing.Config {
	return timing.ScaledConfig(timing.TableIIIConfig(), a.Config.Scale.CacheDivs)
}

// Recluster re-runs the clustering step of an existing analysis with a
// different MaxK (the Figure 3(a) sweep) without re-profiling.
func (a *Analysis) Recluster(ctx context.Context, maxK int) (*simpoint.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := obs.Start(ctx, "cluster",
		obs.String("bench", a.Prog.Name), obs.Int("max_k", maxK))
	defer span.End()
	cfg := a.Config
	cfg.MaxK = maxK
	return simpoint.Cluster(a.Prog.Name, a.Slices, a.TotalInstrs, cfg.simpointConfig())
}

// VarianceSweep re-clusters the profiled slices at fixed k values and
// returns the average within-cluster variance per k (Figure 4).
func (a *Analysis) VarianceSweep(ctx context.Context, ks []int) (map[int]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := obs.Start(ctx, "variance_sweep",
		obs.String("bench", a.Prog.Name), obs.Int("ks", len(ks)))
	defer span.End()
	return simpoint.VarianceSweep(a.Slices, ks, a.Config.simpointConfig())
}

// WholePinball returns the whole-execution checkpoint.
func (a *Analysis) WholePinball() *pinball.Pinball {
	return pinball.NewWhole(a.Prog, a.Config.Scale.Name)
}

// Pinballs cuts regional pinballs for the given SimPoint result (either
// a.Result or a reduced/re-clustered variant). warmupSlices > 0 attaches a
// warm-up checkpoint that many slices before each region — the paper's
// cache-warming mitigation. Warm-up never crosses the program start.
func (a *Analysis) Pinballs(res *simpoint.Result, warmupSlices int) ([]*pinball.Pinball, error) {
	if res == nil {
		return nil, fmt.Errorf("core: nil simpoint result")
	}
	pbs := make([]*pinball.Pinball, 0, len(res.Points))
	for i, pt := range res.Points {
		pb := pinball.NewRegional(a.Prog.Name, a.Config.Scale.Name, i, pt.Start, pt.Len, pt.Weight)
		if warmupSlices > 0 {
			j := pt.SliceIndex - warmupSlices
			if j < 0 {
				j = 0
			}
			if j < pt.SliceIndex {
				warmStart := a.Slices[j].Start
				pb.WithWarmup(warmStart, pt.Start.Instrs-warmStart.Instrs)
			}
		}
		if err := pb.Validate(); err != nil {
			return nil, fmt.Errorf("core: point %d: %w", i, err)
		}
		pbs = append(pbs, pb)
	}
	return pbs, nil
}
