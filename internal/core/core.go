// Package core is the reproduction's top-level API — the PinPoints flow of
// the paper (Figure 2) end to end:
//
//	benchmark ──(logger)──> whole pinball ──(BBV profile + SimPoint)──>
//	simulation points ──(checkpointing)──> regional pinballs ──(replay with
//	Pintools / Sniper)──> weighted statistics
//
// An Analysis holds the profiled slices of one benchmark so that the
// expensive whole-run profiling pass happens once; clustering sweeps
// (MaxK, slice size, percentile) and replay measurements reuse it.
package core

import (
	"context"
	"fmt"

	"specsampling/internal/cache"
	"specsampling/internal/obs"
	"specsampling/internal/pinball"
	"specsampling/internal/program"
	"specsampling/internal/selector"
	"specsampling/internal/simpoint"
	"specsampling/internal/store"
	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

// Config parameterises an analysis. The zero value (plus a Scale) is safe:
// Normalize resolves every unset knob to the paper's defaults, so
//
//	Config{Scale: workload.ScaleSmall}
//
// is equivalent to DefaultConfig(workload.ScaleSmall).
//
// Region selection is pluggable (see internal/selector): Selector names the
// backend, and each backend's knobs live in its own zero-value-safe block
// rather than as flat fields here, so adding a backend never disturbs the
// others' configuration.
type Config struct {
	// Scale selects the workload scale (see workload.Scale).
	Scale workload.Scale
	// SliceLen overrides the scale's slice length when non-zero.
	SliceLen uint64
	// Selector names the region-selection backend; empty uses
	// selector.DefaultName ("simpoint", the paper's pipeline).
	Selector string
	// Seed drives projection/clustering/sampling; 0 uses
	// simpoint.DefaultSeed.
	Seed uint64
	// Workers bounds parallel pinball replay and clustering; <= 0 uses
	// GOMAXPROCS (resolved at the point of use via sched.Workers, so a
	// Config is portable across machines).
	Workers int
	// SimPoint configures the "simpoint" backend (MaxK, BIC threshold).
	SimPoint selector.SimPointConfig
	// Stratified configures the "stratified" backend.
	Stratified selector.StratifiedConfig
	// RankedSet configures the "rankedset" backend.
	RankedSet selector.RankedSetConfig
}

// DefaultConfig returns the paper's configuration at the given scale:
// SimPoint selection at MaxK 35 with the scale's 30 M-equivalent slice
// length.
func DefaultConfig(scale workload.Scale) Config {
	return Config{Scale: scale}.Normalize()
}

// Normalize resolves zero values to the pipeline defaults declared in
// packages simpoint and selector. It is idempotent, and every entry point
// calls it, so callers may pass sparse configs. SliceLen stays zero here —
// it is a per-call override of the scale's slice length, resolved by
// sliceLen().
func (c Config) Normalize() Config {
	if c.Selector == "" {
		c.Selector = selector.DefaultName
	}
	if c.Seed == 0 {
		c.Seed = simpoint.DefaultSeed
	}
	c.SimPoint = c.SimPoint.Normalize()
	c.Stratified = c.Stratified.Normalize()
	c.RankedSet = c.RankedSet.Normalize()
	return c
}

func (c Config) sliceLen() uint64 {
	if c.SliceLen != 0 {
		return c.SliceLen
	}
	return c.Scale.SliceLen
}

// selectorConfig lowers this Config to the backend-independent selection
// config handed to the Selector interface.
func (c Config) selectorConfig() selector.Config {
	c = c.Normalize()
	return selector.Config{
		SliceLen:   c.sliceLen(),
		Seed:       c.Seed,
		Workers:    c.Workers,
		SimPoint:   c.SimPoint,
		Stratified: c.Stratified,
		RankedSet:  c.RankedSet,
	}.Normalize()
}

// selectorFor resolves the configured backend.
func (c Config) selectorFor() (selector.Selector, error) {
	return selector.ByName(c.Normalize().Selector)
}

// profileArtifact is the persisted form of the profile stage: the slices
// (with their per-slice checkpoints) and the whole-run instruction count.
type profileArtifact struct {
	Slices      []simpoint.Slice
	TotalInstrs uint64
}

// ProfileKey is the store key of the benchmark's profile stage at this
// configuration. It covers exactly the inputs the profile depends on —
// benchmark, scale (name and division) and resolved slice length — and
// deliberately excludes the worker budget and clustering knobs: profiles
// are identical for any parallelism and are shared by every clustering
// configuration.
func (c Config) ProfileKey(bench string) store.Key {
	c = c.Normalize()
	return store.Key{Kind: "profile", Bench: bench, Parts: []string{
		"scale=" + c.Scale.Name,
		fmt.Sprintf("div=%d", c.Scale.Div),
		fmt.Sprintf("slice=%d", c.sliceLen()),
	}}
}

// clusterKeyVersion salts ClusterKey. Bumped to 2 with the RegionSelector
// redesign: selection artifacts are now namespaced by backend name plus the
// backend's own KeyParts, so pre-redesign entries (which assumed the
// SimPoint knob set) can never alias the new layout.
const clusterKeyVersion = 2

// ClusterKey is the store key of the benchmark's selection stage. It
// extends ProfileKey (a selection is a function of the profile) with the
// key version salt, the backend name, and the backend's KeyParts — every
// knob that backend's Select reads. Workers is excluded — selection
// results are byte-identical for any worker count.
func (c Config) ClusterKey(bench string) store.Key {
	c = c.Normalize()
	k := c.ProfileKey(bench)
	k.Kind = "cluster"
	k.Parts = append(k.Parts,
		fmt.Sprintf("ckv=%d", clusterKeyVersion),
		"selector="+c.Selector,
	)
	// An unknown selector name still yields a well-formed (if partial) key;
	// Analyze fails fast on the same resolution error before any store use.
	if sel, err := c.selectorFor(); err == nil {
		k.Parts = append(k.Parts, sel.KeyParts(c.selectorConfig())...)
	}
	return k
}

// Analysis is one benchmark's profiled execution plus its SimPoint result.
type Analysis struct {
	// Spec is the benchmark.
	Spec workload.Spec
	// Prog is the built program.
	Prog *program.Program
	// Config echoes the analysis configuration.
	Config Config
	// Slices are the profiled slices (with per-slice checkpoints).
	Slices []simpoint.Slice
	// TotalInstrs is the measured whole-run instruction count.
	TotalInstrs uint64
	// Result is the configured selector's region selection.
	Result *simpoint.Result
}

// Analyze builds the benchmark at the configured scale, profiles it, and
// clusters it. This is the expensive pass; everything downstream reuses it.
// ctx carries the tracing span tree and cancellation.
func Analyze(ctx context.Context, spec workload.Spec, cfg Config) (*Analysis, error) {
	return AnalyzeStored(ctx, spec, cfg, nil)
}

// AnalyzeStored is Analyze backed by a persistent artifact store: the
// profile and clustering stages are looked up in st before being computed,
// and computed results are persisted for the next process. A nil store
// degrades to plain Analyze. Stage results served from disk are
// byte-identical to recomputation (gob round-trips float64s exactly), so a
// resumed run reports the same numbers as a cold one.
func AnalyzeStored(ctx context.Context, spec workload.Spec, cfg Config, st *store.Store) (*Analysis, error) {
	cfg = cfg.Normalize()
	ctx, span := obs.Start(ctx, "analyze",
		obs.String("bench", spec.Name), obs.String("scale", cfg.Scale.Name))
	defer span.End()

	_, bspan := obs.Start(ctx, "build")
	prog, err := spec.Build(cfg.Scale)
	bspan.End()
	if err != nil {
		return nil, err
	}
	return analyzeProgram(ctx, spec, prog, cfg, st)
}

// AnalyzeProgram profiles and clusters an already-built program (callers
// that sweep slice sizes rebuild programs themselves).
func AnalyzeProgram(ctx context.Context, spec workload.Spec, prog *program.Program, cfg Config) (*Analysis, error) {
	cfg = cfg.Normalize()
	ctx, span := obs.Start(ctx, "analyze",
		obs.String("bench", spec.Name), obs.String("scale", cfg.Scale.Name))
	defer span.End()
	return analyzeProgram(ctx, spec, prog, cfg, nil)
}

// analyzeProgram is the shared profile+cluster pass under an "analyze" span.
// Each stage goes disk store → compute (the in-memory singleflight layer is
// the caller's, e.g. experiments.Runner); computed stages are persisted even
// when the run is being cancelled, so an interrupted suite resumes from the
// last completed stage rather than the last completed benchmark.
func analyzeProgram(ctx context.Context, spec workload.Spec, prog *program.Program, cfg Config, st *store.Store) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sel, err := cfg.selectorFor()
	if err != nil {
		return nil, err
	}
	scfg := cfg.selectorConfig()

	var slices []simpoint.Slice
	var total uint64
	pkey := cfg.ProfileKey(spec.Name)
	var prof profileArtifact
	if st.Get(ctx, pkey, &prof) {
		slices, total = prof.Slices, prof.TotalInstrs
	} else {
		pctx, pspan := obs.Start(ctx, "profile", obs.Uint64("slice_len", scfg.SliceLen))
		var err error
		slices, total, err = simpoint.Profile(prog, scfg.SliceLen)
		if err != nil {
			pspan.End()
			return nil, fmt.Errorf("core: profile %s: %w", spec.Name, err)
		}
		pspan.Annotate(obs.Int("slices", len(slices)), obs.Uint64("instrs", total))
		pspan.End()
		// Persist before honouring cancellation: a failed cache write must
		// not fail the pipeline, and a completed stage should survive an
		// interrupt that arrives while it is being written.
		_ = st.Put(ctx, pkey, profileArtifact{Slices: slices, TotalInstrs: total})
		if err := pctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var res *simpoint.Result
	ckey := cfg.ClusterKey(spec.Name)
	var stored simpoint.Result
	if st.Get(ctx, ckey, &stored) {
		// The stored config echoes whatever run wrote the artifact; restate
		// this call's config (the only field that may differ is the
		// non-semantic worker budget, which is excluded from the key).
		stored.Config = sel.EchoConfig(scfg)
		res = &stored
	} else {
		cctx, cspan := obs.Start(ctx, "cluster", obs.String("selector", sel.Name()))
		res, err = sel.Select(cctx, prog.Name, slices, total, scfg)
		if err != nil {
			cspan.End()
			return nil, fmt.Errorf("core: select %s: %w", spec.Name, err)
		}
		cspan.Annotate(obs.Int("k", res.NumPoints()))
		cspan.End()
		_ = st.Put(ctx, ckey, res)
	}

	return &Analysis{
		Spec:        spec,
		Prog:        prog,
		Config:      cfg,
		Slices:      slices,
		TotalInstrs: total,
		Result:      res,
	}, nil
}

// CacheConfig returns the paper's Table I allcache hierarchy scaled to this
// analysis's workload scale.
func (a *Analysis) CacheConfig() cache.HierarchyConfig {
	return cache.ScaledHierarchy(cache.TableIConfig(), a.Config.Scale.CacheDivs)
}

// TimingConfig returns the paper's Table III Sniper machine scaled to this
// analysis's workload scale.
func (a *Analysis) TimingConfig() timing.Config {
	return timing.ScaledConfig(timing.TableIIIConfig(), a.Config.Scale.CacheDivs)
}

// SelectWith re-runs region selection on the profiled slices under a
// different configuration — another backend, seed, or knob block — without
// re-profiling. The shoot-out harness leans on this: one profile, every
// selector.
func (a *Analysis) SelectWith(ctx context.Context, cfg Config) (*simpoint.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	sel, err := cfg.selectorFor()
	if err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "cluster",
		obs.String("bench", a.Prog.Name), obs.String("selector", sel.Name()))
	defer span.End()
	return sel.Select(ctx, a.Prog.Name, a.Slices, a.TotalInstrs, cfg.selectorConfig())
}

// Recluster re-runs the selection step of an existing analysis with a
// different MaxK (the Figure 3(a) sweep) without re-profiling. The MaxK
// knob belongs to the SimPoint block; other backends re-run unchanged.
func (a *Analysis) Recluster(ctx context.Context, maxK int) (*simpoint.Result, error) {
	cfg := a.Config
	cfg.SimPoint.MaxK = maxK
	return a.SelectWith(ctx, cfg)
}

// VarianceSweep re-clusters the profiled slices at fixed k values and
// returns the average within-cluster variance per k (Figure 4). The sweep
// is a k-means property, so it always runs the SimPoint parameterisation
// regardless of the configured selector.
func (a *Analysis) VarianceSweep(ctx context.Context, ks []int) (map[int]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := obs.Start(ctx, "variance_sweep",
		obs.String("bench", a.Prog.Name), obs.Int("ks", len(ks)))
	defer span.End()
	return simpoint.VarianceSweep(a.Slices, ks, selector.SimPointParams(a.Config.selectorConfig()))
}

// WholePinball returns the whole-execution checkpoint.
func (a *Analysis) WholePinball() *pinball.Pinball {
	return pinball.NewWhole(a.Prog, a.Config.Scale.Name)
}

// Pinballs cuts regional pinballs for the given SimPoint result (either
// a.Result or a reduced/re-clustered variant). warmupSlices > 0 attaches a
// warm-up checkpoint that many slices before each region — the paper's
// cache-warming mitigation. Warm-up never crosses the program start.
func (a *Analysis) Pinballs(res *simpoint.Result, warmupSlices int) ([]*pinball.Pinball, error) {
	if res == nil {
		return nil, fmt.Errorf("core: nil simpoint result")
	}
	pbs := make([]*pinball.Pinball, 0, len(res.Points))
	for i, pt := range res.Points {
		pb := pinball.NewRegional(a.Prog.Name, a.Config.Scale.Name, i, pt.Start, pt.Len, pt.Weight)
		if warmupSlices > 0 {
			j := pt.SliceIndex - warmupSlices
			if j < 0 {
				j = 0
			}
			if j < pt.SliceIndex {
				warmStart := a.Slices[j].Start
				pb.WithWarmup(warmStart, pt.Start.Instrs-warmStart.Instrs)
			}
		}
		if err := pb.Validate(); err != nil {
			return nil, fmt.Errorf("core: point %d: %w", i, err)
		}
		pbs = append(pbs, pb)
	}
	return pbs, nil
}
