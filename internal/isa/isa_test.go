package isa

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		NoMem:  "NO_MEM",
		MemR:   "MEM_R",
		MemW:   "MEM_W",
		MemRW:  "MEM_RW",
		Branch: "BRANCH",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindPredicates(t *testing.T) {
	tests := []struct {
		k                  Kind
		reads, writes, mem bool
	}{
		{NoMem, false, false, false},
		{MemR, true, false, true},
		{MemW, false, true, true},
		{MemRW, true, true, true},
		{Branch, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.k.ReadsMemory(); got != tt.reads {
			t.Errorf("%v.ReadsMemory() = %v", tt.k, got)
		}
		if got := tt.k.WritesMemory(); got != tt.writes {
			t.Errorf("%v.WritesMemory() = %v", tt.k, got)
		}
		if got := tt.k.AccessesMemory(); got != tt.mem {
			t.Errorf("%v.AccessesMemory() = %v", tt.k, got)
		}
	}
}

func TestMixKindFoldsBranch(t *testing.T) {
	if Branch.MixKind() != NoMem {
		t.Error("Branch should fold to NoMem for mix accounting")
	}
	for _, k := range []Kind{NoMem, MemR, MemW, MemRW} {
		if k.MixKind() != k {
			t.Errorf("%v.MixKind() changed the kind", k)
		}
	}
}

func TestMixAddKindAndTotal(t *testing.T) {
	var m Mix
	m.AddKind(NoMem, 10)
	m.AddKind(MemR, 5)
	m.AddKind(MemW, 3)
	m.AddKind(MemRW, 2)
	m.AddKind(Branch, 4) // folds into NoMem

	if m.NoMem != 14 || m.MemR != 5 || m.MemW != 3 || m.MemRW != 2 {
		t.Fatalf("unexpected mix: %+v", m)
	}
	if m.Total() != 24 {
		t.Errorf("Total() = %d, want 24", m.Total())
	}
	if m.MemOps() != 10 {
		t.Errorf("MemOps() = %d, want 10", m.MemOps())
	}
}

func TestMixAdd(t *testing.T) {
	a := Mix{NoMem: 1, MemR: 2, MemW: 3, MemRW: 4}
	b := Mix{NoMem: 10, MemR: 20, MemW: 30, MemRW: 40}
	a.Add(b)
	want := Mix{NoMem: 11, MemR: 22, MemW: 33, MemRW: 44}
	if a != want {
		t.Errorf("Add: got %+v, want %+v", a, want)
	}
}

func TestMixFractionsSumToOne(t *testing.T) {
	f := func(noMem, memR, memW, memRW uint16) bool {
		m := Mix{NoMem: uint64(noMem), MemR: uint64(memR), MemW: uint64(memW), MemRW: uint64(memRW)}
		fr := m.Fractions()
		sum := fr[0] + fr[1] + fr[2] + fr[3]
		if m.Total() == 0 {
			return sum == 0
		}
		return sum > 0.999999 && sum < 1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixFractionsZero(t *testing.T) {
	var m Mix
	if fr := m.Fractions(); fr != [4]float64{} {
		t.Errorf("zero mix fractions = %v", fr)
	}
}

func TestMixScale(t *testing.T) {
	m := Mix{NoMem: 100, MemR: 50, MemW: 25, MemRW: 10}
	half := m.Scale(0.5)
	want := Mix{NoMem: 50, MemR: 25, MemW: 13, MemRW: 5}
	if half != want {
		t.Errorf("Scale(0.5) = %+v, want %+v", half, want)
	}
	if m.Scale(1.0) != m {
		t.Error("Scale(1.0) should be identity")
	}
}

func TestBlockFinalize(t *testing.T) {
	b := &Block{
		ID: 0,
		PC: 0x1000,
		Instrs: []StaticInstr{
			{Kind: NoMem, Size: 4},
			{Kind: MemR, Size: 4},
			{Kind: MemW, Size: 4},
			{Kind: MemRW, Size: 4},
			{Kind: Branch, Size: 2},
		},
	}
	b.Finalize()
	if b.Len() != 5 {
		t.Errorf("Len() = %d, want 5", b.Len())
	}
	if b.MemOps != 3 {
		t.Errorf("MemOps = %d, want 3", b.MemOps)
	}
	wantMix := Mix{NoMem: 2, MemR: 1, MemW: 1, MemRW: 1}
	if b.Mix != wantMix {
		t.Errorf("Mix = %+v, want %+v", b.Mix, wantMix)
	}
	if b.Mix.Total() != uint64(b.Len()) {
		t.Error("mix total should equal block length")
	}
}

func TestBlockFinalizeIdempotent(t *testing.T) {
	b := &Block{Instrs: []StaticInstr{{Kind: MemR, Size: 4}, {Kind: NoMem, Size: 4}}}
	b.Finalize()
	first := b.Mix
	b.Finalize()
	if b.Mix != first {
		t.Error("Finalize is not idempotent")
	}
}
