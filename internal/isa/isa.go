// Package isa defines the synthetic instruction set used throughout the
// reproduction. It stands in for the x86-64 ISA that Pin observes in the
// original study: the SimPoint methodology is ISA-independent (it consumes
// the dynamic basic-block stream), so the only properties the ISA must model
// are the ones the paper measures — the memory-operand category of each
// instruction (the ldstmix breakdown), the memory address it touches, and
// control flow between basic blocks.
package isa

import "fmt"

// Kind is the memory-operand category of an instruction. The categories
// mirror the paper's ldstmix breakdown (Section IV-D): NO_MEM instructions
// reference no memory operands, MEM_R instructions have at least one memory
// source, MEM_W have a memory destination, and MEM_RW have both (e.g. x86
// movs memory-to-memory instructions, per footnote 1 of the paper).
type Kind uint8

const (
	// NoMem is a compute-only instruction (register/immediate operands).
	NoMem Kind = iota
	// MemR reads one memory source operand.
	MemR
	// MemW writes one memory destination operand.
	MemW
	// MemRW both reads and writes memory (memory-to-memory move).
	MemRW
	// Branch is a control-flow instruction ending a basic block. It is a
	// NO_MEM instruction for mix-accounting purposes but is distinguished so
	// branch predictors and BBV collection can observe it.
	Branch

	// NumKinds is the number of instruction kinds.
	NumKinds = int(Branch) + 1
)

// String returns the ldstmix-style name of the kind.
func (k Kind) String() string {
	switch k {
	case NoMem:
		return "NO_MEM"
	case MemR:
		return "MEM_R"
	case MemW:
		return "MEM_W"
	case MemRW:
		return "MEM_RW"
	case Branch:
		return "BRANCH"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MixKind folds a kind onto the four ldstmix accounting categories: branches
// count as NO_MEM, exactly as in the paper's instruction-distribution plots.
func (k Kind) MixKind() Kind {
	if k == Branch {
		return NoMem
	}
	return k
}

// ReadsMemory reports whether an instruction of this kind has a memory
// source operand.
func (k Kind) ReadsMemory() bool { return k == MemR || k == MemRW }

// WritesMemory reports whether an instruction of this kind has a memory
// destination operand.
func (k Kind) WritesMemory() bool { return k == MemW || k == MemRW }

// AccessesMemory reports whether the instruction touches memory at all.
func (k Kind) AccessesMemory() bool { return k == MemR || k == MemW || k == MemRW }

// StaticInstr is one instruction of a static basic block. Its address
// operands are produced dynamically by the executing program's memory
// pattern generators; the static form carries only the kind and encoded
// size (used to advance the PC, as in a real ISA).
type StaticInstr struct {
	Kind Kind
	// Size is the encoded instruction length in bytes (1-15 on x86; we use
	// a fixed small range). It only matters for PC arithmetic.
	Size uint8
}

// Mix is a count of instructions per ldstmix category. Branches are folded
// into NoMem (see Kind.MixKind).
type Mix struct {
	NoMem uint64
	MemR  uint64
	MemW  uint64
	MemRW uint64
}

// Add accumulates other into m.
func (m *Mix) Add(other Mix) {
	m.NoMem += other.NoMem
	m.MemR += other.MemR
	m.MemW += other.MemW
	m.MemRW += other.MemRW
}

// AddKind counts n instructions of kind k.
func (m *Mix) AddKind(k Kind, n uint64) {
	switch k.MixKind() {
	case NoMem:
		m.NoMem += n
	case MemR:
		m.MemR += n
	case MemW:
		m.MemW += n
	case MemRW:
		m.MemRW += n
	}
}

// Total is the total instruction count in the mix.
func (m Mix) Total() uint64 { return m.NoMem + m.MemR + m.MemW + m.MemRW }

// MemOps is the number of instructions that access memory.
func (m Mix) MemOps() uint64 { return m.MemR + m.MemW + m.MemRW }

// Fractions returns the per-category shares in ldstmix order
// (NO_MEM, MEM_R, MEM_W, MEM_RW). A zero mix returns all zeros.
func (m Mix) Fractions() [4]float64 {
	t := float64(m.Total())
	if t == 0 {
		return [4]float64{}
	}
	return [4]float64{
		float64(m.NoMem) / t,
		float64(m.MemR) / t,
		float64(m.MemW) / t,
		float64(m.MemRW) / t,
	}
}

// Scale returns the mix with every category multiplied by f (used to build
// weighted suite averages). Counts are rounded to nearest.
func (m Mix) Scale(f float64) Mix {
	round := func(v uint64) uint64 { return uint64(float64(v)*f + 0.5) }
	return Mix{
		NoMem: round(m.NoMem),
		MemR:  round(m.MemR),
		MemW:  round(m.MemW),
		MemRW: round(m.MemRW),
	}
}

// Block is a static basic block: a straight-line sequence of instructions
// ending (implicitly) with the block's terminator. Blocks are the unit of
// BBV accounting, exactly as in SimPoint: the BBV entry for a block is
// incremented by the block's instruction count each time the block executes.
type Block struct {
	// ID is the block's global index within its program (dense, 0-based).
	ID int
	// PC is the block's starting program counter.
	PC uint64
	// Instrs is the block body. The final instruction is the terminator
	// (Branch kind) for blocks with conditional successors.
	Instrs []StaticInstr
	// Mix is the precomputed per-category instruction count of the body,
	// letting block-granular tools account a whole block in O(1).
	Mix Mix
	// MemOps is the number of memory-accessing instructions in the body.
	MemOps int
}

// Len is the number of instructions in the block.
func (b *Block) Len() int { return len(b.Instrs) }

// Finalize computes the derived fields (Mix, MemOps, PCs). It must be
// called after Instrs is populated and before the block is executed.
func (b *Block) Finalize() {
	b.Mix = Mix{}
	b.MemOps = 0
	for _, in := range b.Instrs {
		b.Mix.AddKind(in.Kind, 1)
		if in.Kind.AccessesMemory() {
			b.MemOps++
		}
	}
}

// MemRef is a dynamic memory reference produced by an executing instruction.
type MemRef struct {
	// Addr is the byte address of the access.
	Addr uint64
	// Size is the access size in bytes.
	Size uint8
	// Write reports whether the access is a store.
	Write bool
}

// BranchEvent is a dynamic conditional-branch outcome, consumed by branch
// predictors in the timing models.
type BranchEvent struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Taken is the resolved direction.
	Taken bool
}
