// Package rng provides the deterministic, checkpointable pseudo-random
// number generator used by every component of the reproduction.
//
// Determinism is load-bearing here: PinPlay's pinballs work because replaying
// a checkpoint reproduces the original execution exactly. Our executor state
// machine achieves the same property only if every "random" decision it makes
// (block successor choice, memory address draws) comes from a generator whose
// entire state can be captured in a snapshot and restored bit-exactly.
// math/rand's global functions and sources are not snapshot-friendly, so we
// implement a small SplitMix64/xorshift-star hybrid whose state is a single
// uint64.
package rng

import "math"

// RNG is a deterministic generator with a single-word state. The zero value
// is usable but every stream should normally be constructed with New so that
// distinct seeds yield well-separated streams.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Seeds are pre-mixed so that
// consecutive small integers produce uncorrelated streams.
func New(seed uint64) RNG {
	r := RNG{state: seed}
	// One mixing round separates trivially related seeds (0, 1, 2, ...).
	r.Next()
	return r
}

// State returns the raw generator state for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// Restore resets the generator to a previously captured state.
func (r *RNG) Restore(state uint64) { r.state = state }

// Next returns the next 64 uniformly distributed bits (SplitMix64).
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Multiply-shift reduction (Lemire). The slight modulo bias of the
	// plain approach is irrelevant at our n but multiply-shift is also
	// faster than division.
	hi, _ := mul64(r.Next(), n)
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal sample using the polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Split derives an independent generator from the current one. The parent
// advances; the child is seeded from the drawn value so parent and child
// streams do not overlap in practice.
func (r *RNG) Split() RNG {
	return New(r.Next())
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}
