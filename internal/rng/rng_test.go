package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestStateRestore(t *testing.T) {
	r := New(7)
	for i := 0; i < 10; i++ {
		r.Next()
	}
	saved := r.State()
	want := make([]uint64, 20)
	for i := range want {
		want[i] = r.Next()
	}
	r.Restore(saved)
	for i := range want {
		if got := r.Next(); got != want[i] {
			t.Fatalf("draw %d after restore = %d, want %d", i, got, want[i])
		}
	}
}

func TestUint64nRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := uint64(nRaw)%1000 + 1
		r := New(seed)
		for i := 0; i < 100; i++ {
			if v := r.Uint64n(n); v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n == 0")
		}
	}()
	r := New(1)
	r.Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n <= 0")
		}
	}()
	r := New(1)
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := New(5)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(8)
	child := parent.Split()
	// Child and parent must not emit the same stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Next() == child.Next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws between parent and child", same)
	}
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(7)] = true
	}
	for v := 0; v < 7; v++ {
		if !seen[v] {
			t.Errorf("Intn(7) never produced %d", v)
		}
	}
}
