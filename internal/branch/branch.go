// Package branch implements the branch predictor used by the timing models
// (Sniper-like and native): a gshare/bimodal hybrid with 2-bit saturating
// counters, adequate to give realistic phase-dependent misprediction rates.
package branch

import "fmt"

// Config sizes the predictor.
type Config struct {
	// HistoryBits is the global-history length (gshare index width).
	HistoryBits int
	// TableBits is the log2 size of each counter table.
	TableBits int
}

// DefaultConfig is a 12-bit gshare with 4K-entry tables, roughly the class
// of predictor in the i7-class core of Table III.
func DefaultConfig() Config { return Config{HistoryBits: 12, TableBits: 12} }

// Predictor is a gshare/bimodal tournament predictor. Not safe for
// concurrent use.
type Predictor struct {
	cfg     Config
	history uint64
	histMax uint64
	mask    uint64
	gshare  []uint8 // 2-bit counters
	bimodal []uint8
	chooser []uint8 // 2-bit: >=2 prefers gshare

	stats Stats
}

// Stats counts predictor traffic.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
}

// Rate returns the misprediction rate, or 0 with no branches.
func (s Stats) Rate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// MPKI returns mispredictions per kilo-instruction given the instruction
// count of the measured window.
func (s Stats) MPKI(instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(instrs) * 1000
}

// New builds a predictor.
func New(cfg Config) (*Predictor, error) {
	if cfg.HistoryBits <= 0 || cfg.HistoryBits > 30 || cfg.TableBits <= 0 || cfg.TableBits > 24 {
		return nil, fmt.Errorf("branch: invalid config %+v", cfg)
	}
	size := 1 << cfg.TableBits
	p := &Predictor{
		cfg:     cfg,
		histMax: 1<<cfg.HistoryBits - 1,
		mask:    uint64(size - 1),
		gshare:  make([]uint8, size),
		bimodal: make([]uint8, size),
		chooser: make([]uint8, size),
	}
	// Weakly-taken initial state converges fastest for loop-heavy code.
	for i := range p.gshare {
		p.gshare[i] = 2
		p.bimodal[i] = 2
		p.chooser[i] = 2
	}
	return p, nil
}

// Stats returns the counters.
func (p *Predictor) Stats() Stats { return p.stats }

// ResetStats zeroes counters without forgetting learned state.
func (p *Predictor) ResetStats() { p.stats = Stats{} }

// Predict returns the current prediction for the branch at pc without
// updating any state.
func (p *Predictor) Predict(pc uint64) bool {
	gi := (pc ^ p.history) & p.mask
	bi := pc & p.mask
	if p.chooser[bi] >= 2 {
		return p.gshare[gi] >= 2
	}
	return p.bimodal[bi] >= 2
}

// Access predicts the branch at pc, trains on the resolved direction, and
// reports whether the prediction was wrong.
func (p *Predictor) Access(pc uint64, taken bool) (mispredicted bool) {
	gi := (pc ^ p.history) & p.mask
	bi := pc & p.mask
	gPred := p.gshare[gi] >= 2
	bPred := p.bimodal[bi] >= 2
	pred := bPred
	if p.chooser[bi] >= 2 {
		pred = gPred
	}

	// Train the chooser toward whichever component was right.
	if gPred != bPred {
		if gPred == taken {
			p.chooser[bi] = satInc(p.chooser[bi])
		} else {
			p.chooser[bi] = satDec(p.chooser[bi])
		}
	}
	if taken {
		p.gshare[gi] = satInc(p.gshare[gi])
		p.bimodal[bi] = satInc(p.bimodal[bi])
	} else {
		p.gshare[gi] = satDec(p.gshare[gi])
		p.bimodal[bi] = satDec(p.bimodal[bi])
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.histMax

	p.stats.Branches++
	if pred != taken {
		p.stats.Mispredicts++
		return true
	}
	return false
}

func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return c
}

func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
