package branch

import (
	"testing"
	"testing/quick"

	"specsampling/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{HistoryBits: 0, TableBits: 10}); err == nil {
		t.Error("accepted zero history bits")
	}
	if _, err := New(Config{HistoryBits: 10, TableBits: 0}); err == nil {
		t.Error("accepted zero table bits")
	}
	if _, err := New(Config{HistoryBits: 40, TableBits: 10}); err == nil {
		t.Error("accepted oversized history")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestAlwaysTakenLearns(t *testing.T) {
	p, _ := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		p.Access(0x400, true)
	}
	p.ResetStats()
	for i := 0; i < 1000; i++ {
		p.Access(0x400, true)
	}
	if rate := p.Stats().Rate(); rate > 0.01 {
		t.Errorf("always-taken misprediction rate = %v", rate)
	}
}

func TestLoopBranchLearns(t *testing.T) {
	// Taken 7 of 8 iterations: the period fits in the 12-bit history, so
	// gshare should learn the exit pattern essentially perfectly.
	p, _ := New(DefaultConfig())
	run := func() float64 {
		p.ResetStats()
		for iter := 0; iter < 2000; iter++ {
			for i := 0; i < 8; i++ {
				p.Access(0x800, i != 7)
			}
		}
		return p.Stats().Rate()
	}
	run() // warm
	if rate := run(); rate > 0.05 {
		t.Errorf("periodic loop branch misprediction rate = %v", rate)
	}
}

func TestRandomBranchNearHalf(t *testing.T) {
	p, _ := New(DefaultConfig())
	r := rng.New(1)
	for i := 0; i < 50000; i++ {
		p.Access(0xc00, r.Bool(0.5))
	}
	rate := p.Stats().Rate()
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random branch misprediction rate = %v, want ~0.5", rate)
	}
}

func TestBiasedBranchRate(t *testing.T) {
	// 90%-taken random branch: a 2-bit counter should approach ~10-18%.
	p, _ := New(DefaultConfig())
	r := rng.New(2)
	for i := 0; i < 20000; i++ {
		p.Access(0x1000, r.Bool(0.9))
	}
	p.ResetStats()
	for i := 0; i < 20000; i++ {
		p.Access(0x1000, r.Bool(0.9))
	}
	rate := p.Stats().Rate()
	if rate > 0.25 {
		t.Errorf("90%%-biased branch misprediction rate = %v", rate)
	}
	if rate == 0 {
		t.Error("biased random branch cannot be perfectly predicted")
	}
}

func TestPredictDoesNotMutate(t *testing.T) {
	p, _ := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		p.Access(0x400, true)
	}
	before := p.Stats()
	p.Predict(0x400)
	p.Predict(0x999)
	if p.Stats() != before {
		t.Error("Predict changed statistics")
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.Rate() != 0 || s.MPKI(1000) != 0 {
		t.Error("zero stats should give zero rates")
	}
	s = Stats{Branches: 100, Mispredicts: 10}
	if s.Rate() != 0.1 {
		t.Errorf("Rate = %v", s.Rate())
	}
	if s.MPKI(10000) != 1 {
		t.Errorf("MPKI = %v", s.MPKI(10000))
	}
	if s.MPKI(0) != 0 {
		t.Error("MPKI with zero instructions should be 0")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	seq := make([]bool, 5000)
	r := rng.New(3)
	for i := range seq {
		seq[i] = r.Bool(0.7)
	}
	run := func() Stats {
		p, _ := New(DefaultConfig())
		for i, taken := range seq {
			p.Access(uint64(0x400+(i%7)*64), taken)
		}
		return p.Stats()
	}
	if run() != run() {
		t.Error("identical branch streams produced different stats")
	}
}

func TestMispredictsNeverExceedBranches(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		p, _ := New(Config{HistoryBits: 8, TableBits: 8})
		r := rng.New(seed)
		for i := 0; i < int(n); i++ {
			p.Access(r.Next()%4096, r.Bool(0.5))
		}
		s := p.Stats()
		return s.Mispredicts <= s.Branches && s.Branches == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPredictorAccess(b *testing.B) {
	p, _ := New(DefaultConfig())
	r := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(uint64(0x400+(i%13)*64), r.Bool(0.8))
	}
}
