// Package stats provides the statistical helpers the reproduction needs:
// weighted aggregation of per-region statistics (the paper's "weighted
// average of the statistics reported by each [regional pinball]"),
// error metrics between sampled and whole runs, and correlation measures
// used to compare native execution against sampled simulation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedMean returns the weight-normalised mean of values. It is the
// aggregation rule the paper prescribes in Section IV-D: each simulation
// point reports a per-instruction-normalised statistic (miss rate, CPI,
// mix fraction), and the suite-level value is the weight-average. Weights
// need not sum to one; they are normalised internally. It panics if the
// slices differ in length and returns 0 for empty input or zero total
// weight.
func WeightedMean(values, weights []float64) float64 {
	if len(values) != len(weights) {
		panic(fmt.Sprintf("stats: %d values vs %d weights", len(values), len(weights)))
	}
	var sum, wsum float64
	for i, v := range values {
		sum += v * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Variance returns the population variance, or 0 for fewer than 2 values.
func Variance(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	var sum float64
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(values))
}

// StdDev returns the population standard deviation.
func StdDev(values []float64) float64 { return math.Sqrt(Variance(values)) }

// tTable95 holds two-sided 95 % Student-t critical values by degrees of
// freedom (index 1..30); larger samples use the normal 1.96.
var tTable95 = [...]float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95 % confidence interval on the mean
// of values — Student-t with n-1 degrees of freedom over the sample
// standard deviation, the small-sample interval the repeated-subsampling
// papers report. It returns 0 for fewer than 2 values (no spread to
// estimate).
func CI95(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	m := Mean(values)
	var sum float64
	for _, v := range values {
		d := v - m
		sum += d * d
	}
	sd := math.Sqrt(sum / float64(n-1))
	t := 1.96
	if dof := n - 1; dof < len(tTable95) {
		t = tTable95[dof]
	}
	return t * sd / math.Sqrt(float64(n))
}

// AbsError returns |measured - reference|.
func AbsError(measured, reference float64) float64 {
	return math.Abs(measured - reference)
}

// RelErrorPct returns the relative error of measured against reference, in
// percent. When the reference is zero the error is defined as 0 if measured
// is also zero, else +Inf — callers filter such degenerate metrics.
func RelErrorPct(measured, reference float64) float64 {
	if reference == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(measured-reference) / math.Abs(reference) * 100
}

// DiffPct returns the signed percentage difference of measured relative to
// reference: positive when the measurement overshoots. Same zero-reference
// convention as RelErrorPct.
func DiffPct(measured, reference float64) float64 {
	if reference == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (measured - reference) / math.Abs(reference) * 100
}

// MeanAbsError returns the mean absolute error between two equal-length
// series.
func MeanAbsError(measured, reference []float64) float64 {
	if len(measured) != len(reference) {
		panic(fmt.Sprintf("stats: %d measured vs %d reference", len(measured), len(reference)))
	}
	if len(measured) == 0 {
		return 0
	}
	var sum float64
	for i := range measured {
		sum += math.Abs(measured[i] - reference[i])
	}
	return sum / float64(len(measured))
}

// MeanRelErrorPct returns the mean of per-element relative errors (percent),
// skipping elements whose reference is zero.
func MeanRelErrorPct(measured, reference []float64) float64 {
	if len(measured) != len(reference) {
		panic(fmt.Sprintf("stats: %d measured vs %d reference", len(measured), len(reference)))
	}
	var sum float64
	var n int
	for i := range measured {
		if reference[i] == 0 {
			continue
		}
		sum += RelErrorPct(measured[i], reference[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Pearson returns the Pearson correlation coefficient between two
// equal-length series, or 0 when either series is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: %d xs vs %d ys", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Percentile returns the p-th percentile (0..100) of values using linear
// interpolation between order statistics. It copies its input.
//
// NaN values are filtered out before sorting: sort.Float64s leaves NaNs in
// unspecified positions, so keeping them would make the result depend on
// the input order (and often be NaN-adjacent garbage). If every value is
// NaN the result is NaN — an explicit propagation the caller can detect —
// while empty input keeps returning 0.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of positive values; non-positive
// values are skipped. Returns 0 when no positive value exists.
func GeoMean(values []float64) float64 {
	var sum float64
	var n int
	for _, v := range values {
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Normalize scales weights so they sum to 1. A zero vector is returned
// unchanged. The input is not modified.
func Normalize(weights []float64) []float64 {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	out := make([]float64, len(weights))
	if sum == 0 {
		copy(out, weights)
		return out
	}
	for i, w := range weights {
		out[i] = w / sum
	}
	return out
}
