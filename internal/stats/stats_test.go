package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 2, 3}, []float64{1, 1, 2})
	if !approx(got, 2.25, 1e-12) {
		t.Errorf("WeightedMean = %v, want 2.25", got)
	}
}

func TestWeightedMeanUnnormalizedWeights(t *testing.T) {
	a := WeightedMean([]float64{4, 8}, []float64{0.25, 0.75})
	b := WeightedMean([]float64{4, 8}, []float64{25, 75})
	if !approx(a, b, 1e-12) {
		t.Errorf("weight scaling changed the mean: %v vs %v", a, b)
	}
}

func TestWeightedMeanEmptyAndZeroWeight(t *testing.T) {
	if got := WeightedMean(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := WeightedMean([]float64{5}, []float64{0}); got != 0 {
		t.Errorf("zero weight = %v", got)
	}
}

func TestWeightedMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestWeightedMeanEqualWeightsIsMean(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		w := make([]float64, len(vals))
		for i := range w {
			w[i] = 1
		}
		return approx(WeightedMean(vals, w), Mean(vals), 1e-6*(1+math.Abs(Mean(vals))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndVariance(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); !approx(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(vals); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(vals); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("degenerate variance should be 0")
	}
}

func TestVarianceNonNegative(t *testing.T) {
	f := func(vals []float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		return Variance(vals) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelErrorPct(t *testing.T) {
	if got := RelErrorPct(110, 100); !approx(got, 10, 1e-12) {
		t.Errorf("RelErrorPct = %v", got)
	}
	if got := RelErrorPct(90, 100); !approx(got, 10, 1e-12) {
		t.Errorf("RelErrorPct = %v", got)
	}
	if got := RelErrorPct(0, 0); got != 0 {
		t.Errorf("0/0 error = %v", got)
	}
	if got := RelErrorPct(1, 0); !math.IsInf(got, 1) {
		t.Errorf("x/0 error = %v, want +Inf", got)
	}
}

func TestDiffPctSign(t *testing.T) {
	if got := DiffPct(110, 100); !approx(got, 10, 1e-12) {
		t.Errorf("DiffPct = %v", got)
	}
	if got := DiffPct(90, 100); !approx(got, -10, 1e-12) {
		t.Errorf("DiffPct = %v", got)
	}
}

func TestMeanAbsError(t *testing.T) {
	got := MeanAbsError([]float64{1, 2, 3}, []float64{2, 2, 1})
	if !approx(got, 1, 1e-12) {
		t.Errorf("MeanAbsError = %v", got)
	}
	if MeanAbsError(nil, nil) != 0 {
		t.Error("empty MAE should be 0")
	}
}

func TestMeanRelErrorPctSkipsZeroRef(t *testing.T) {
	got := MeanRelErrorPct([]float64{110, 5}, []float64{100, 0})
	if !approx(got, 10, 1e-12) {
		t.Errorf("MeanRelErrorPct = %v, want 10 (zero ref skipped)", got)
	}
	if MeanRelErrorPct([]float64{1}, []float64{0}) != 0 {
		t.Error("all-zero refs should give 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !approx(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !approx(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(xs, flat); got != 0 {
		t.Errorf("constant series correlation = %v", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>33) / float64(1<<31)
		}
		for i := range xs {
			xs[i] = next()
			ys[i] = next()
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); !approx(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

// TestPercentileNaN regresses the order-dependent-garbage bug: sort.Float64s
// leaves NaNs in unspecified positions, so before NaN filtering the result
// of Percentile depended on where the NaNs happened to land in the input.
func TestPercentileNaN(t *testing.T) {
	nan := math.NaN()
	// Every permutation of NaN placement must yield the NaN-free answer.
	perms := [][]float64{
		{nan, 1, 2, 3, 4, 5},
		{1, 2, nan, 3, 4, 5},
		{1, 2, 3, 4, 5, nan},
		{nan, 5, nan, 3, 1, 4, 2, nan},
	}
	for _, vals := range perms {
		for _, p := range []float64{0, 25, 50, 75, 100} {
			want := Percentile([]float64{1, 2, 3, 4, 5}, p)
			if got := Percentile(vals, p); !approx(got, want, 1e-12) {
				t.Errorf("Percentile(%v, %v) = %v, want %v (NaNs must be filtered)", vals, p, got, want)
			}
		}
	}
	// All-NaN input propagates NaN explicitly rather than returning a
	// position-dependent value.
	if got := Percentile([]float64{nan, nan}, 50); !math.IsNaN(got) {
		t.Errorf("Percentile(all NaN) = %v, want NaN", got)
	}
	// A single finite value among NaNs is that value at every percentile.
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile([]float64{nan, 7, nan}, p); got != 7 {
			t.Errorf("Percentile([NaN 7 NaN], %v) = %v, want 7", p, got)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !approx(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{2, 8, -1, 0}); !approx(got, 4, 1e-9) {
		t.Errorf("GeoMean skipping nonpositive = %v, want 4", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{-1}) != 0 {
		t.Error("degenerate GeoMean should be 0")
	}
}

func TestNormalize(t *testing.T) {
	w := Normalize([]float64{1, 3})
	if !approx(w[0], 0.25, 1e-12) || !approx(w[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", w)
	}
	zero := Normalize([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Normalize of zeros = %v", zero)
	}
	orig := []float64{2, 2}
	Normalize(orig)
	if orig[0] != 2 {
		t.Error("Normalize mutated input")
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		w := make([]float64, 0, len(raw))
		var sum float64
		for _, v := range raw {
			v = math.Abs(v)
			if math.IsNaN(v) || math.IsInf(v, 0) || v > 1e12 {
				return true
			}
			w = append(w, v)
			sum += v
		}
		if sum == 0 {
			return true
		}
		out := Normalize(w)
		var s float64
		for _, v := range out {
			s += v
		}
		return approx(s, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
