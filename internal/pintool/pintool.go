// Package pintool provides the reproduction's standard Pintools — the
// analogues of the tools shipped with Pin that the paper uses:
//
//   - InsCount: dynamic instruction counter (inscount0);
//   - LdStMix: dynamic memory-operand mix profiler (ldstmix);
//   - BBProfile: basic-block-vector collector (the PinPoints BBV profiler);
//   - AllCache: functional cache-hierarchy simulator (allcache).
//
// All tools attach to a pin.Engine and accumulate statistics; none perturbs
// execution.
package pintool

import (
	"specsampling/internal/bbv"
	"specsampling/internal/cache"
	"specsampling/internal/isa"
)

// InsCount counts dynamic instructions and basic blocks, like inscount0.
type InsCount struct {
	Instrs uint64
	Blocks uint64
}

// NewInsCount returns a fresh counter.
func NewInsCount() *InsCount { return &InsCount{} }

// Name implements pin.Tool.
func (*InsCount) Name() string { return "inscount" }

// OnBlock implements pin.BlockTool.
func (t *InsCount) OnBlock(b *isa.Block, _ int) {
	t.Instrs += uint64(b.Len())
	t.Blocks++
}

// LdStMix accumulates the instruction-distribution categories the paper
// reports (NO_MEM / MEM_R / MEM_W / MEM_RW), like the ldstmix Pintool.
// Because every static block knows its own mix, the tool runs at block
// granularity.
type LdStMix struct {
	Mix isa.Mix
}

// NewLdStMix returns a fresh profiler.
func NewLdStMix() *LdStMix { return &LdStMix{} }

// Name implements pin.Tool.
func (*LdStMix) Name() string { return "ldstmix" }

// OnBlock implements pin.BlockTool.
func (t *LdStMix) OnBlock(b *isa.Block, _ int) {
	t.Mix.Add(b.Mix)
}

// Fractions returns the four category shares in ldstmix order.
func (t *LdStMix) Fractions() [4]float64 { return t.Mix.Fractions() }

// BBProfile collects per-slice basic block vectors. Drive the engine in
// slice-sized steps and call CutSlice at each boundary, or use the
// simpoint package's profiler which does this for you.
type BBProfile struct {
	collector *bbv.Collector
	// Vectors holds the raw BBV of each completed slice.
	Vectors [][]float64
	// SliceLens holds the exact instruction count of each completed slice.
	SliceLens []uint64
}

// NewBBProfile returns a profiler for programs with dims static blocks.
func NewBBProfile(dims int) *BBProfile {
	return &BBProfile{collector: bbv.NewCollector(dims)}
}

// Name implements pin.Tool.
func (*BBProfile) Name() string { return "bbprofile" }

// OnBlock implements pin.BlockTool.
func (t *BBProfile) OnBlock(b *isa.Block, _ int) {
	t.collector.Observe(b)
}

// PendingInstrs returns the instruction count accumulated since the last
// cut.
func (t *BBProfile) PendingInstrs() uint64 { return t.collector.SliceInstrs() }

// CutSlice finishes the current slice. Cutting with no accumulated
// instructions is a no-op.
func (t *BBProfile) CutSlice() {
	v, n := t.collector.Cut()
	if v == nil {
		return
	}
	t.Vectors = append(t.Vectors, v)
	t.SliceLens = append(t.SliceLens, n)
}

// AllCache feeds data accesses and instruction fetches into a cache
// hierarchy, like the allcache Pintool. Attach it and read the hierarchy's
// per-level statistics afterwards.
type AllCache struct {
	H *cache.Hierarchy
}

// NewAllCache wraps a hierarchy.
func NewAllCache(h *cache.Hierarchy) *AllCache { return &AllCache{H: h} }

// Name implements pin.Tool.
func (*AllCache) Name() string { return "allcache" }

// OnMem implements pin.MemTool.
func (t *AllCache) OnMem(ref isa.MemRef) {
	t.H.Data(ref.Addr)
}

// SetWarmup implements pinball.Warmable: during pinball warm-up the
// hierarchy learns without counting statistics.
func (t *AllCache) SetWarmup(on bool) { t.H.SetWarmup(on) }

// OnFetch implements pin.FetchTool: the block's code footprint is touched
// line by line in the instruction cache.
func (t *AllCache) OnFetch(pc uint64, bytes uint64) {
	lineBytes := t.H.L1I.Config().LineBytes
	for addr := pc &^ (lineBytes - 1); addr < pc+bytes; addr += lineBytes {
		t.H.Fetch(addr)
	}
}

// PhaseMix accumulates the instruction mix per phase — not one of the
// paper's tools, but useful for validating that the synthetic workloads
// realise their per-phase mix targets.
type PhaseMix struct {
	PerPhase map[int]*isa.Mix
}

// NewPhaseMix returns a fresh profiler.
func NewPhaseMix() *PhaseMix { return &PhaseMix{PerPhase: map[int]*isa.Mix{}} }

// Name implements pin.Tool.
func (*PhaseMix) Name() string { return "phasemix" }

// OnBlock implements pin.BlockTool.
func (t *PhaseMix) OnBlock(b *isa.Block, phase int) {
	m := t.PerPhase[phase]
	if m == nil {
		m = &isa.Mix{}
		t.PerPhase[phase] = m
	}
	m.Add(b.Mix)
}
