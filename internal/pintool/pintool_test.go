package pintool

import (
	"math"
	"testing"

	"specsampling/internal/cache"
	"specsampling/internal/pin"
	"specsampling/internal/program"
)

func testProgram(t testing.TB, total uint64) *program.Program {
	t.Helper()
	specs := []program.PhaseSpec{
		{Blocks: 5, MinBlockLen: 4, MaxBlockLen: 10, Mix: [4]float64{0.5, 0.35, 0.12, 0.03},
			Pattern: program.MemPattern{Base: 1 << 20, WorkingSetBytes: 16 << 10, Stride: 8,
				SeqPermille: 600, StreamPermille: 0},
			JumpPermille: 30, ShareBlocksWith: -1},
		{Blocks: 5, MinBlockLen: 4, MaxBlockLen: 10, Mix: [4]float64{0.7, 0.2, 0.1, 0},
			Pattern: program.MemPattern{Base: 64 << 20, WorkingSetBytes: 8 << 20, Stride: 8,
				SeqPermille: 100, StreamPermille: 200, StreamBase: 1 << 34, StreamBytes: 1 << 28},
			JumpPermille: 60, ShareBlocksWith: -1},
	}
	p, err := program.BuildProgram("tooltest", 7, specs,
		program.UniformSchedule([]float64{0.5, 0.5}, total, 2))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInsCount(t *testing.T) {
	p := testProgram(t, 20000)
	e := pin.NewEngine(p)
	ic := NewInsCount()
	if err := e.Attach(ic); err != nil {
		t.Fatal(err)
	}
	n := e.RunToEnd()
	if ic.Instrs != n {
		t.Errorf("inscount %d != executed %d", ic.Instrs, n)
	}
	if ic.Blocks == 0 || ic.Blocks > ic.Instrs {
		t.Errorf("blocks = %d", ic.Blocks)
	}
}

func TestLdStMixMatchesBlockAccounting(t *testing.T) {
	p := testProgram(t, 20000)
	e := pin.NewEngine(p)
	mix := NewLdStMix()
	ic := NewInsCount()
	if err := e.Attach(mix); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(ic); err != nil {
		t.Fatal(err)
	}
	e.RunToEnd()
	if mix.Mix.Total() != ic.Instrs {
		t.Errorf("mix total %d != instruction count %d", mix.Mix.Total(), ic.Instrs)
	}
	fr := mix.Fractions()
	sum := fr[0] + fr[1] + fr[2] + fr[3]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	// The mix targets say roughly half the instructions reference memory.
	if fr[0] < 0.3 || fr[0] > 0.9 {
		t.Errorf("NO_MEM fraction %v implausible for targets", fr[0])
	}
}

func TestBBProfileSlices(t *testing.T) {
	p := testProgram(t, 30000)
	e := pin.NewEngine(p)
	prof := NewBBProfile(p.NumBlocks())
	if err := e.Attach(prof); err != nil {
		t.Fatal(err)
	}
	const slice = 2000
	var total uint64
	for !e.Done() {
		n := e.Run(slice)
		total += n
		prof.CutSlice()
	}
	if len(prof.Vectors) != len(prof.SliceLens) {
		t.Fatal("vectors/lengths mismatch")
	}
	var sliceSum uint64
	for i, v := range prof.Vectors {
		var vecSum float64
		for _, x := range v {
			vecSum += x
		}
		if uint64(vecSum) != prof.SliceLens[i] {
			t.Fatalf("slice %d: BBV mass %v != slice length %d", i, vecSum, prof.SliceLens[i])
		}
		sliceSum += prof.SliceLens[i]
	}
	if sliceSum != total {
		t.Errorf("slices sum to %d, executed %d (slicing must partition the run)", sliceSum, total)
	}
	// Empty cut is a no-op.
	before := len(prof.Vectors)
	prof.CutSlice()
	if len(prof.Vectors) != before {
		t.Error("empty CutSlice appended a slice")
	}
}

func TestAllCacheCountsAccesses(t *testing.T) {
	p := testProgram(t, 20000)
	h, err := cache.NewHierarchy(cache.TableIConfig())
	if err != nil {
		t.Fatal(err)
	}
	e := pin.NewEngine(p)
	ac := NewAllCache(h)
	mix := NewLdStMix()
	if err := e.Attach(ac); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(mix); err != nil {
		t.Fatal(err)
	}
	e.RunToEnd()
	// Every MEM_R/W is one data access; MEM_RW issues two.
	wantData := mix.Mix.MemR + mix.Mix.MemW + 2*mix.Mix.MemRW
	if got := h.L1D.Stats().Accesses; got != wantData {
		t.Errorf("L1D accesses = %d, want %d", got, wantData)
	}
	if h.L1I.Stats().Accesses == 0 {
		t.Error("no instruction fetches recorded")
	}
	// Code footprint is tiny: L1I must be near-perfect, as the paper notes.
	if r := h.L1I.Stats().MissRate(); r > 0.01 {
		t.Errorf("L1I miss rate = %v, expected negligible", r)
	}
}

func TestPhaseMixSeparatesPhases(t *testing.T) {
	p := testProgram(t, 20000)
	e := pin.NewEngine(p)
	pm := NewPhaseMix()
	if err := e.Attach(pm); err != nil {
		t.Fatal(err)
	}
	e.RunToEnd()
	if len(pm.PerPhase) != 2 {
		t.Fatalf("saw %d phases, want 2", len(pm.PerPhase))
	}
	f0 := pm.PerPhase[0].Fractions()
	f1 := pm.PerPhase[1].Fractions()
	// Phase 1 targets more NO_MEM than phase 0.
	if f1[0] <= f0[0] {
		t.Errorf("phase mixes not separated: NO_MEM %v vs %v", f0[0], f1[0])
	}
}

func TestToolNames(t *testing.T) {
	h, _ := cache.NewHierarchy(cache.TableIConfig())
	names := map[string]pin.Tool{
		"inscount":  NewInsCount(),
		"ldstmix":   NewLdStMix(),
		"bbprofile": NewBBProfile(1),
		"allcache":  NewAllCache(h),
		"phasemix":  NewPhaseMix(),
	}
	for want, tool := range names {
		if got := tool.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
