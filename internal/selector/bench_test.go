package selector

import (
	"testing"
)

// BenchmarkStratifiedSelect times the stratified backend's hot loop
// (phase-metric projection, sort, Neyman allocation, phase-2 draws) on a
// profile-sized input. Recorded in BENCH_*.json via perf.Targets.
func BenchmarkStratifiedSelect(b *testing.B) {
	const sliceLen = 1000
	slices, total := syntheticSlices(2000, 256, 6, sliceLen, 9)
	s, err := ByName("stratified")
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig(sliceLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select(tctx, "bench", slices, total, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankedSetSelect times the ranked-set backend on the same input
// (smoke-only; the per-draw pool refill dominates).
func BenchmarkRankedSetSelect(b *testing.B) {
	const sliceLen = 1000
	slices, total := syntheticSlices(2000, 256, 6, sliceLen, 9)
	s, err := ByName("rankedset")
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig(sliceLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Select(tctx, "bench", slices, total, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
