package selector

import (
	"context"
	"fmt"

	"specsampling/internal/kmeans"
	"specsampling/internal/simpoint"
)

func init() { Register(simPointSelector{}) }

// simPointSelector is the paper's pipeline behind the Selector interface:
// BBV normalisation, random projection, k-means with BIC model selection,
// nearest-to-centroid representatives. It is a thin adapter over
// simpoint.Cluster and is bit-identical to the pre-interface code path
// (pinned by TestSimPointSelectorMatchesCluster and the experiments
// determinism snapshots).
type simPointSelector struct{}

func (simPointSelector) Name() string { return "simpoint" }

// SimPointParams resolves cfg into the simpoint.Config the backend runs
// with: the paper defaults at cfg.SliceLen, the SimPoint block's knobs, and
// an explicit k-means engine config carrying the worker budget. Exported
// because core.VarianceSweep needs the same resolution for its fixed-k
// sweeps.
func SimPointParams(cfg Config) simpoint.Config {
	cfg = cfg.Normalize()
	sp := simpoint.DefaultConfig(cfg.SliceLen)
	sp.MaxK = cfg.SimPoint.MaxK
	sp.BICThreshold = cfg.SimPoint.BICThreshold
	sp.Seed = cfg.Seed
	// Hand the worker budget to the clustering engine. The explicit config
	// matches what simpoint would default to, plus Workers; k-means results
	// are identical for every worker count.
	sp.KMeans = kmeans.DefaultConfig(sp.Seed)
	sp.KMeans.Workers = cfg.Workers
	return sp
}

func (simPointSelector) Select(ctx context.Context, benchmark string, slices []simpoint.Slice, totalInstrs uint64, cfg Config) (*simpoint.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := validate(slices, cfg.Normalize()); err != nil {
		return nil, err
	}
	return simpoint.Cluster(benchmark, slices, totalInstrs, SimPointParams(cfg))
}

// KeyParts restates the pre-interface ClusterKey tail exactly, so existing
// stores keep their simpoint artifacts addressable.
func (simPointSelector) KeyParts(cfg Config) []string {
	sp := SimPointParams(cfg)
	return []string{
		fmt.Sprintf("maxk=%d", sp.MaxK),
		fmt.Sprintf("bic=%g", sp.BICThreshold),
		fmt.Sprintf("dims=%d", sp.ProjectDims),
		fmt.Sprintf("seed=%d", sp.Seed),
		fmt.Sprintf("restarts=%d", sp.KMeans.Restarts),
		fmt.Sprintf("maxiter=%d", sp.KMeans.MaxIter),
		fmt.Sprintf("sample=%d", sp.KMeans.SampleSize),
	}
}

func (simPointSelector) EchoConfig(cfg Config) simpoint.Config {
	return SimPointParams(cfg)
}

func (simPointSelector) Knobs() []Knob {
	return []Knob{
		{Name: "SimPoint.MaxK", Default: fmt.Sprint(simpoint.DefaultMaxK),
			Doc: "cluster ceiling for BIC model selection"},
		{Name: "SimPoint.BICThreshold", Default: fmt.Sprint(simpoint.DefaultBICThreshold),
			Doc: "fraction of the BIC range a candidate k must reach"},
	}
}
