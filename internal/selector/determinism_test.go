package selector

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"specsampling/internal/simpoint"
)

// encodeResult serialises a Result for byte comparison. JSON rather than
// gob: gob streams maps in iteration order, which would make the BIC map's
// bytes nondeterministic even for identical values; JSON sorts map keys.
func encodeResult(t *testing.T, r *simpoint.Result) []byte {
	t.Helper()
	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func assertResultsEqual(t *testing.T, got, want *simpoint.Result) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("results differ:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestSelectorDeterminism is the golden determinism test per backend: a
// fixed seed must yield a byte-identical Result for every worker count
// (run under -race by make racesmoke). Result.Config.KMeans.Workers is the
// one field that legitimately echoes the budget, so it is zeroed before the
// byte comparison.
func TestSelectorDeterminism(t *testing.T) {
	const sliceLen = 1000
	slices, total := syntheticSlices(150, 64, 4, sliceLen, 5)
	for _, s := range All() {
		t.Run(s.Name(), func(t *testing.T) {
			var golden []byte
			for _, workers := range []int{1, 2, 8} {
				cfg := testConfig(sliceLen)
				cfg.Workers = workers
				res, err := s.Select(tctx, "synthetic", slices, total, cfg)
				if err != nil {
					t.Fatal(err)
				}
				res.Config.KMeans.Workers = 0
				enc := encodeResult(t, res)
				if golden == nil {
					golden = enc
					continue
				}
				if !bytes.Equal(golden, enc) {
					t.Fatalf("workers=%d: result differs from workers=1", workers)
				}
			}
		})
	}
}

// TestSelectorSeedSensitivity checks the other side of determinism: a
// different seed must actually change the sampling backends' selections
// (the shoot-out's repeated subsampling depends on it).
func TestSelectorSeedSensitivity(t *testing.T) {
	const sliceLen = 1000
	slices, total := syntheticSlices(150, 64, 4, sliceLen, 5)
	for _, name := range []string{"stratified", "rankedset"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base := testConfig(sliceLen)
		shift := base
		shift.Seed = base.Seed + 1
		a, err := s.Select(tctx, "synthetic", slices, total, base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Select(tctx, "synthetic", slices, total, shift)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(encodeResult(t, a), encodeResult(t, b)) {
			t.Errorf("%s: identical selection under different seeds", name)
		}
	}
}
