package selector

import (
	"context"
	"math"
	"testing"

	"specsampling/internal/program"
	"specsampling/internal/rng"
	"specsampling/internal/simpoint"
)

var tctx = context.Background()

// syntheticSlices fabricates a profile with a few distinct phases: block
// vectors cluster around per-phase templates with small seeded noise, the
// same shape a real profile hands every backend.
func syntheticSlices(n, blocks, phases int, sliceLen uint64, seed uint64) ([]simpoint.Slice, uint64) {
	r := rng.New(seed)
	templates := make([][]float64, phases)
	for p := range templates {
		templates[p] = make([]float64, blocks)
		for b := range templates[p] {
			templates[p][b] = r.Float64() * 100
		}
	}
	slices := make([]simpoint.Slice, n)
	var total uint64
	for i := range slices {
		phase := (i * phases) / n
		v := make([]float64, blocks)
		for b := range v {
			v[b] = templates[phase][b] + r.Float64()
		}
		slices[i] = simpoint.Slice{
			Index: i,
			Start: program.State{Instrs: total},
			Len:   sliceLen,
			BBV:   v,
		}
		total += sliceLen
	}
	return slices, total
}

func testConfig(sliceLen uint64) Config {
	return Config{SliceLen: sliceLen, Workers: 1}.Normalize()
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"rankedset", "simpoint", "stratified"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
	def, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != DefaultName {
		t.Fatalf("ByName(\"\") = %q, want %q", def.Name(), DefaultName)
	}
	for _, s := range All() {
		if len(s.Knobs()) == 0 {
			t.Errorf("%s: no knobs documented", s.Name())
		}
		if len(s.KeyParts(testConfig(1000))) == 0 {
			t.Errorf("%s: empty cache-key contribution", s.Name())
		}
	}
}

// TestSelectorInvariants checks the cross-backend contract: weights sum
// to 1, every point replicates a profiled slice's exact coordinates, and
// the sampled instruction total never exceeds the whole run.
func TestSelectorInvariants(t *testing.T) {
	const sliceLen = 1000
	slices, total := syntheticSlices(200, 64, 4, sliceLen, 7)
	cfg := testConfig(sliceLen)
	for _, s := range All() {
		t.Run(s.Name(), func(t *testing.T) {
			res, err := s.Select(tctx, "synthetic", slices, total, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.NumPoints() == 0 {
				t.Fatal("no points selected")
			}
			if w := res.WeightTotal(); math.Abs(w-1) > 1e-9 {
				t.Errorf("WeightTotal = %v, want 1", w)
			}
			if res.SampledInstrs() > total {
				t.Errorf("SampledInstrs %d > totalInstrs %d", res.SampledInstrs(), total)
			}
			if res.NumSlices != len(slices) {
				t.Errorf("NumSlices = %d, want %d", res.NumSlices, len(slices))
			}
			last := -1
			for i, pt := range res.Points {
				if pt.SliceIndex <= last {
					t.Fatalf("point %d: SliceIndex %d out of order (prev %d)", i, pt.SliceIndex, last)
				}
				last = pt.SliceIndex
				if pt.SliceIndex < 0 || pt.SliceIndex >= len(slices) {
					t.Fatalf("point %d: SliceIndex %d out of range", i, pt.SliceIndex)
				}
				src := slices[pt.SliceIndex]
				if !pt.Start.Equal(src.Start) {
					t.Errorf("point %d: Start mismatch", i)
				}
				if pt.Len != src.Len {
					t.Errorf("point %d: Len = %d, want %d", i, pt.Len, src.Len)
				}
				if pt.Weight <= 0 || pt.Weight > 1 {
					t.Errorf("point %d: weight %v out of (0,1]", i, pt.Weight)
				}
			}
		})
	}
}

// TestSelectorRejectsDegenerateInput checks the shared validation.
func TestSelectorRejectsDegenerateInput(t *testing.T) {
	slices, total := syntheticSlices(10, 8, 2, 100, 3)
	for _, s := range All() {
		if _, err := s.Select(tctx, "x", nil, 0, testConfig(100)); err == nil {
			t.Errorf("%s: accepted empty slices", s.Name())
		}
		if _, err := s.Select(tctx, "x", slices, total, Config{}); err == nil {
			t.Errorf("%s: accepted zero slice length", s.Name())
		}
	}
}

// TestKeyPartsDistinguishConfigs checks that changing any backend knob
// changes that backend's cache-key contribution — the no-silent-aliasing
// rule the cachekey analyzer enforces statically.
func TestKeyPartsDistinguishConfigs(t *testing.T) {
	base := testConfig(1000)
	variants := map[string][]Config{}
	add := func(name string, mut func(*Config)) {
		c := base
		mut(&c)
		variants[name] = append(variants[name], c)
	}
	add("simpoint", func(c *Config) { c.SimPoint.MaxK = 7 })
	add("simpoint", func(c *Config) { c.SimPoint.BICThreshold = 0.5 })
	add("stratified", func(c *Config) { c.Stratified.Strata = 3 })
	add("stratified", func(c *Config) { c.Stratified.Budget = 11 })
	add("rankedset", func(c *Config) { c.RankedSet.SetSize = 2 })
	add("rankedset", func(c *Config) { c.RankedSet.Cycles = 9 })
	for _, s := range All() {
		add(s.Name(), func(c *Config) { c.Seed = 99 })
		baseKey := joined(s.KeyParts(base))
		for i, v := range variants[s.Name()] {
			if joined(s.KeyParts(v)) == baseKey {
				t.Errorf("%s: variant %d has the same key parts as the base config", s.Name(), i)
			}
		}
	}
}

func joined(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p + "\x00"
	}
	return out
}

// TestSimPointSelectorMatchesCluster pins the bit-identity guarantee: the
// simpoint backend routed through the Selector interface must produce the
// exact Result the pre-interface simpoint.Cluster call produced.
func TestSimPointSelectorMatchesCluster(t *testing.T) {
	const sliceLen = 1000
	slices, total := syntheticSlices(120, 64, 3, sliceLen, 11)
	cfg := testConfig(sliceLen)
	sel, err := ByName("simpoint")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sel.Select(tctx, "synthetic", slices, total, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := simpoint.Cluster("synthetic", slices, total, SimPointParams(cfg))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, got, want)
}
