package selector

// Per-backend configuration blocks. Each block is zero-value-safe: Normalize
// resolves unset knobs to the backend's defaults, and Config.Normalize
// normalises every block regardless of which backend runs, so sparse configs
// and cache keys agree on the resolved values.

import "specsampling/internal/simpoint"

// Backend defaults. The SimPoint values restate the paper's choices from
// package simpoint; the stratified and ranked-set values follow the NVIDIA
// papers' small-budget regimes scaled to this reproduction's slice counts.
const (
	// DefaultStrata is the stratified backend's stratum count.
	DefaultStrata = 8
	// DefaultBudget is the stratified backend's total sample budget.
	DefaultBudget = 30
	// DefaultSetSize is the ranked-set backend's per-set size m.
	DefaultSetSize = 5
	// DefaultCycles is the ranked-set backend's repeated-subsampling cycles.
	DefaultCycles = 6
)

// SimPointConfig configures the "simpoint" backend (the paper's pipeline).
type SimPointConfig struct {
	// MaxK is the cluster ceiling; <= 0 uses simpoint.DefaultMaxK (the
	// paper settles on 35).
	MaxK int
	// BICThreshold is the SimPoint BIC fraction; <= 0 uses
	// simpoint.DefaultBICThreshold (0.9).
	BICThreshold float64
}

// Normalize resolves zero values to the paper's defaults. Idempotent.
func (c SimPointConfig) Normalize() SimPointConfig {
	if c.MaxK <= 0 {
		c.MaxK = simpoint.DefaultMaxK
	}
	if c.BICThreshold <= 0 {
		c.BICThreshold = simpoint.DefaultBICThreshold
	}
	return c
}

// StratifiedConfig configures the "stratified" backend.
type StratifiedConfig struct {
	// Strata is the number of equal-population strata over the phase
	// metric; <= 0 uses DefaultStrata. Capped by the slice count.
	Strata int
	// Budget is the total number of slices sampled across all strata;
	// <= 0 uses DefaultBudget. Capped by the slice count.
	Budget int
}

// Normalize resolves zero values to the backend defaults. Idempotent.
func (c StratifiedConfig) Normalize() StratifiedConfig {
	if c.Strata <= 0 {
		c.Strata = DefaultStrata
	}
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	return c
}

// RankedSetConfig configures the "rankedset" backend.
type RankedSetConfig struct {
	// SetSize is the ranked-set size m: each draw ranks m random slices
	// and keeps one order statistic; <= 0 uses DefaultSetSize. Capped by
	// the slice count.
	SetSize int
	// Cycles is the number of full rank sweeps (repeated subsampling);
	// <= 0 uses DefaultCycles. The backend replays at most
	// SetSize*Cycles distinct slices.
	Cycles int
}

// Normalize resolves zero values to the backend defaults. Idempotent.
func (c RankedSetConfig) Normalize() RankedSetConfig {
	if c.SetSize <= 0 {
		c.SetSize = DefaultSetSize
	}
	if c.Cycles <= 0 {
		c.Cycles = DefaultCycles
	}
	return c
}
