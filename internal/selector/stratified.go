package selector

import (
	"context"
	"fmt"
	"sort"

	"specsampling/internal/rng"
	"specsampling/internal/simpoint"
	"specsampling/internal/stats"
)

func init() { Register(stratifiedSelector{}) }

// stratifiedSelector implements two-phase stratified sampling (after "CPU
// Simulation Using Two-Phase Stratified Sampling", PAPERS.md): phase 1
// computes a cheap metric per slice; slices are sorted by the metric and cut
// into equal-population strata; a fixed simulation budget is spread across
// strata by Neyman allocation (proportional to stratum size times
// within-stratum metric spread); phase 2 simple-random-samples each
// stratum's allocation. Every sampled slice carries its stratum's
// population share divided by the stratum's sample count, so the weighted
// aggregation downstream is the classic stratified estimator.
type stratifiedSelector struct{}

func (stratifiedSelector) Name() string { return "stratified" }

func (stratifiedSelector) Select(ctx context.Context, benchmark string, slices []simpoint.Slice, totalInstrs uint64, cfg Config) (*simpoint.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	if err := validate(slices, cfg); err != nil {
		return nil, err
	}
	metric, err := phaseMetric(ctx, slices, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}

	n := len(slices)
	budget := cfg.Stratified.Budget
	if budget > n {
		budget = n
	}
	nStrata := cfg.Stratified.Strata
	if nStrata > budget {
		nStrata = budget
	}

	// Order slices by metric (ties break on index so the layout is a pure
	// function of the profile) and cut the order into equal-population
	// strata.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if metric[order[a]] != metric[order[b]] {
			return metric[order[a]] < metric[order[b]]
		}
		return order[a] < order[b]
	})
	strata := make([][]int, nStrata)
	for h := range strata {
		strata[h] = order[h*n/nStrata : (h+1)*n/nStrata]
	}

	alloc := neymanAlloc(strata, metric, budget)

	// Phase 2: simple random sample within each stratum (partial
	// Fisher-Yates over a copy of the member list). Strata are processed in
	// order off one seeded generator, so the draw sequence is deterministic.
	r := rng.New(cfg.Seed)
	var pts []simpoint.Point
	var wcss float64
	for h, members := range strata {
		pool := append([]int(nil), members...)
		for j := 0; j < alloc[h]; j++ {
			k := j + r.Intn(len(pool)-j)
			pool[j], pool[k] = pool[k], pool[j]
		}
		chosen := pool[:alloc[h]]
		sort.Ints(chosen)
		w := float64(len(members)) / float64(n) / float64(alloc[h])
		for _, i := range chosen {
			s := slices[i]
			pts = append(pts, simpoint.Point{
				SliceIndex: s.Index,
				Start:      s.Start,
				Len:        s.Len,
				Weight:     w,
				Cluster:    h,
			})
		}
		mean := stratumMean(members, metric)
		for _, i := range members {
			d := metric[i] - mean
			wcss += d * d
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].SliceIndex < pts[j].SliceIndex })

	return &simpoint.Result{
		Benchmark:          benchmark,
		Config:             stratifiedSelector{}.EchoConfig(cfg),
		NumSlices:          n,
		TotalInstrs:        totalInstrs,
		Points:             pts,
		AvgClusterVariance: wcss / float64(n),
	}, nil
}

// neymanAlloc spreads budget across strata proportionally to
// N_h·σ_h (stratum size times within-stratum metric standard deviation),
// the variance-minimising Neyman allocation. Every stratum gets at least
// one sample and never more than its population; the remaining seats go
// one at a time to the stratum with the highest priority-per-seat
// (D'Hondt rounding — deterministic, ties to the lower stratum). When the
// metric is flat everywhere the priorities degrade to stratum sizes, i.e.
// proportional allocation.
func neymanAlloc(strata [][]int, metric []float64, budget int) []int {
	prio := make([]float64, len(strata))
	var sum float64
	for h, members := range strata {
		vals := make([]float64, len(members))
		for j, i := range members {
			vals[j] = metric[i]
		}
		prio[h] = float64(len(members)) * stats.StdDev(vals)
		sum += prio[h]
	}
	if sum == 0 {
		for h, members := range strata {
			prio[h] = float64(len(members))
		}
	}
	alloc := make([]int, len(strata))
	for h := range alloc {
		alloc[h] = 1
	}
	for seats := budget - len(strata); seats > 0; seats-- {
		best, bestP := -1, 0.0
		for h := range strata {
			if alloc[h] >= len(strata[h]) {
				continue
			}
			if p := prio[h] / float64(alloc[h]); best < 0 || p > bestP {
				best, bestP = h, p
			}
		}
		if best < 0 {
			break
		}
		alloc[best]++
	}
	return alloc
}

func stratumMean(members []int, metric []float64) float64 {
	var sum float64
	for _, i := range members {
		sum += metric[i]
	}
	return sum / float64(len(members))
}

// KeyParts covers the fields Select reads: the seed (metric projection and
// phase-2 draws) and the Stratified block. SliceLen is already in the
// ProfileKey prefix the caller extends.
func (stratifiedSelector) KeyParts(cfg Config) []string {
	cfg = cfg.Normalize()
	return []string{
		fmt.Sprintf("seed=%d", cfg.Seed),
		fmt.Sprintf("strata=%d", cfg.Stratified.Strata),
		fmt.Sprintf("budget=%d", cfg.Stratified.Budget),
	}
}

func (stratifiedSelector) EchoConfig(cfg Config) simpoint.Config {
	return SimPointParams(cfg)
}

func (stratifiedSelector) Knobs() []Knob {
	return []Knob{
		{Name: "Stratified.Strata", Default: fmt.Sprint(DefaultStrata),
			Doc: "equal-population strata over the phase metric"},
		{Name: "Stratified.Budget", Default: fmt.Sprint(DefaultBudget),
			Doc: "total slices sampled across all strata (Neyman allocation)"},
	}
}
