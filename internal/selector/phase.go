package selector

import (
	"context"

	"specsampling/internal/bbv"
	"specsampling/internal/sched"
	"specsampling/internal/simpoint"
)

// phaseMetric computes the cheap phase-1 signature both sampling backends
// rank and stratify by: each slice's L1-normalised BBV randomly projected to
// a single dimension. One number per slice preserves enough phase structure
// to order slices by behaviour (same family of projections SimPoint
// clusters in 15 dimensions) at a fraction of the cost — the "cheap metric,
// expensive simulation" split of the two-phase papers.
//
// The metric is a pure function of (slices, seed): the projection matrix is
// seeded, and the parallel fill writes by slice index, so any worker count
// produces identical output.
func phaseMetric(ctx context.Context, slices []simpoint.Slice, seed uint64, workers int) ([]float64, error) {
	proj, err := bbv.NewProjector(len(slices[0].BBV), 1, seed)
	if err != nil {
		return nil, err
	}
	metric := make([]float64, len(slices))
	err = sched.ForEach(ctx, workers, len(slices), func(i int) error {
		v := append([]float64(nil), slices[i].BBV...)
		bbv.NormalizeL1(v)
		metric[i] = proj.Project(v)[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	return metric, nil
}
