package selector

import (
	"context"
	"fmt"
	"sort"

	"specsampling/internal/rng"
	"specsampling/internal/simpoint"
)

func init() { Register(rankedSetSelector{}) }

// rankedSetSelector implements ranked-set sampling with repeated
// subsampling (after "CPU Simulation with Ranked Set Sampling and Repeated
// Subsampling", PAPERS.md). One cycle draws m random sets of m slices,
// ranks each set by the cheap phase metric, and keeps the i-th order
// statistic from the i-th set — covering every rank once, which spreads the
// sample across the behaviour distribution far better than simple random
// sampling of the same size. Cycles repeat the sweep (the repeated
// subsampling), and each kept slice accrues weight 1/(m·cycles); slices
// drawn more than once simply weigh more. The shoot-out harness re-runs the
// whole backend under shifted seeds to turn the repeat spread into
// confidence intervals.
type rankedSetSelector struct{}

func (rankedSetSelector) Name() string { return "rankedset" }

func (rankedSetSelector) Select(ctx context.Context, benchmark string, slices []simpoint.Slice, totalInstrs uint64, cfg Config) (*simpoint.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.Normalize()
	if err := validate(slices, cfg); err != nil {
		return nil, err
	}
	metric, err := phaseMetric(ctx, slices, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}

	n := len(slices)
	m := cfg.RankedSet.SetSize
	if m > n {
		m = n
	}
	cycles := cfg.RankedSet.Cycles

	r := rng.New(cfg.Seed)
	weight := make([]float64, n)
	rank := make([]int, n) // 1-based rank of a slice's first selection
	pool := make([]int, n)
	set := make([]int, m)
	unit := 1 / float64(m*cycles)
	for cyc := 0; cyc < cycles; cyc++ {
		for i := 1; i <= m; i++ {
			// Draw a simple random set of m distinct slices (partial
			// Fisher-Yates over the full index pool).
			for k := range pool {
				pool[k] = k
			}
			for j := 0; j < m; j++ {
				k := j + r.Intn(n-j)
				pool[j], pool[k] = pool[k], pool[j]
			}
			copy(set, pool[:m])
			// Rank the set by the phase metric and keep the i-th order
			// statistic (ties break on index for determinism).
			sort.Slice(set, func(a, b int) bool {
				if metric[set[a]] != metric[set[b]] {
					return metric[set[a]] < metric[set[b]]
				}
				return set[a] < set[b]
			})
			idx := set[i-1]
			if weight[idx] == 0 {
				rank[idx] = i
			}
			weight[idx] += unit
		}
	}

	var pts []simpoint.Point
	var wsum, wmean float64
	for i := 0; i < n; i++ {
		if weight[i] == 0 {
			continue
		}
		s := slices[i]
		pts = append(pts, simpoint.Point{
			SliceIndex: s.Index,
			Start:      s.Start,
			Len:        s.Len,
			Weight:     weight[i],
			Cluster:    rank[i] - 1,
		})
		wsum += weight[i]
		wmean += weight[i] * metric[i]
	}
	wmean /= wsum
	// Weighted metric variance of the sample — the spread the estimator
	// actually averages over, reported in the Figure 4 slot.
	var wvar float64
	for _, pt := range pts {
		d := metric[pt.SliceIndex] - wmean
		wvar += pt.Weight * d * d
	}
	wvar /= wsum

	return &simpoint.Result{
		Benchmark:          benchmark,
		Config:             rankedSetSelector{}.EchoConfig(cfg),
		NumSlices:          n,
		TotalInstrs:        totalInstrs,
		Points:             pts,
		AvgClusterVariance: wvar,
	}, nil
}

// KeyParts covers the fields Select reads: the seed (metric projection and
// set draws) and the RankedSet block.
func (rankedSetSelector) KeyParts(cfg Config) []string {
	cfg = cfg.Normalize()
	return []string{
		fmt.Sprintf("seed=%d", cfg.Seed),
		fmt.Sprintf("set=%d", cfg.RankedSet.SetSize),
		fmt.Sprintf("cycles=%d", cfg.RankedSet.Cycles),
	}
}

func (rankedSetSelector) EchoConfig(cfg Config) simpoint.Config {
	return SimPointParams(cfg)
}

func (rankedSetSelector) Knobs() []Knob {
	return []Knob{
		{Name: "RankedSet.SetSize", Default: fmt.Sprint(DefaultSetSize),
			Doc: "set size m: slices ranked per draw, one kept per rank"},
		{Name: "RankedSet.Cycles", Default: fmt.Sprint(DefaultCycles),
			Doc: "repeated-subsampling sweeps over all m ranks"},
	}
}
