// Package selector is the region-selection layer of the pipeline: the
// pluggable step that turns a benchmark's profiled slices into simulation
// points (representative regions with weights). The paper's PinPoints flow
// hard-wires SimPoint here; this package generalises it into a Selector
// interface with a registry, so the same profiling, replay, caching and
// reporting machinery can score alternative sampling methodologies against
// each other (the cross-selector shoot-out in internal/experiments).
//
// Three backends are registered:
//
//   - simpoint   — BBV → random projection → k-means with BIC model
//     selection → nearest-to-centroid representatives (the paper's method;
//     bit-identical to the pre-refactor pipeline).
//   - stratified — two-phase stratified sampling (after "CPU Simulation
//     Using Two-Phase Stratified Sampling"): a cheap phase-1 metric per
//     slice, equal-population strata over the metric, a Neyman-allocated
//     sample budget, and stratum-share weights.
//   - rankedset  — ranked-set sampling with repeated subsampling (after
//     "CPU Simulation with Ranked Set Sampling and Repeated Subsampling"):
//     random sets ranked by the phase metric, one order statistic taken per
//     set, repeated over cycles; repeats under different seeds yield
//     confidence intervals in the shoot-out harness.
//
// Determinism is part of the contract: a backend's Result must be a pure
// function of (benchmark, slices, totalInstrs, Config) minus the Workers
// budget — byte-identical for any worker count. Randomness comes only from
// internal/rng generators seeded from Config.Seed.
//
// Cache-key rule: every Config field a backend reads in Select must be
// folded into its KeyParts, so the persistent store can never alias two
// configurations. The cachekey analyzer (internal/analysis) enforces this
// across the interface dispatch: it resolves Selector method calls to every
// registered implementation.
package selector

import (
	"context"
	"fmt"
	"io"
	"sort"

	"specsampling/internal/simpoint"
)

// DefaultName is the backend used when a configuration names none: the
// paper's SimPoint pipeline.
const DefaultName = "simpoint"

// Config is the backend-independent selection configuration handed to every
// Selector. The common fields (slice length, seed, worker budget) apply to
// all backends; each backend additionally reads exactly one of the
// per-backend blocks. The zero value is safe: Normalize resolves defaults.
type Config struct {
	// SliceLen is the resolved slice length in scaled instructions (the
	// profile the slices came from).
	SliceLen uint64
	// Seed drives every random decision a backend makes (projection,
	// clustering, stratum draws, set draws).
	Seed uint64
	// Workers bounds backend-internal parallelism; results are identical
	// for every value, so it is excluded from cache keys.
	//lint:ignore cachekey worker budgets cannot change selection results, only wall-clock
	Workers int

	// SimPoint configures the "simpoint" backend.
	SimPoint SimPointConfig
	// Stratified configures the "stratified" backend.
	Stratified StratifiedConfig
	// RankedSet configures the "rankedset" backend.
	RankedSet RankedSetConfig
}

// Normalize resolves zero values to the pipeline defaults. Idempotent;
// every backend calls it on entry, so sparse configs are safe.
func (c Config) Normalize() Config {
	if c.Seed == 0 {
		c.Seed = simpoint.DefaultSeed
	}
	c.SimPoint = c.SimPoint.Normalize()
	c.Stratified = c.Stratified.Normalize()
	c.RankedSet = c.RankedSet.Normalize()
	return c
}

// Knob documents one configuration field of a backend for `-selector list`.
type Knob struct {
	// Name is the config field, qualified by its block ("Stratified.Strata").
	Name string
	// Default renders the normalised default value.
	Default string
	// Doc is a one-line description.
	Doc string
}

// Selector is one region-selection backend. Implementations must be
// stateless values: the registry hands the same instance to every caller
// concurrently.
type Selector interface {
	// Name is the registry identifier (also the `-selector` flag value).
	Name() string
	// Select chooses simulation points from the profiled slices. The
	// result must be deterministic in (benchmark, slices, totalInstrs,
	// cfg) for any Workers value, with weights summing to 1 and every
	// point replicating one profiled slice's coordinates.
	Select(ctx context.Context, benchmark string, slices []simpoint.Slice, totalInstrs uint64, cfg Config) (*simpoint.Result, error)
	// KeyParts returns the backend's cache-key contribution: canonical
	// "name=value" parts covering every Config field Select reads (minus
	// Workers). core.Config.ClusterKey folds them into the store key.
	KeyParts(cfg Config) []string
	// EchoConfig returns the simpoint.Config echo the backend stamps into
	// Result.Config; core restates it on cache hits so stored artifacts
	// match fresh computation in the non-semantic fields too.
	EchoConfig(cfg Config) simpoint.Config
	// Knobs documents the backend's configuration fields.
	Knobs() []Knob
}

// registry maps backend names to implementations. It is written only from
// package init (Register) and read-only afterwards, so no locking.
var registry = map[string]Selector{}

// Register adds a backend to the registry. It panics on a duplicate name —
// registration happens at init time, where a collision is a programming
// error worth failing loudly on.
func Register(s Selector) {
	if _, dup := registry[s.Name()]; dup {
		panic(fmt.Sprintf("selector: duplicate backend %q", s.Name()))
	}
	registry[s.Name()] = s
}

// ByName resolves a backend. The empty name means DefaultName.
func ByName(name string) (Selector, error) {
	if name == "" {
		name = DefaultName
	}
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("selector: unknown backend %q (registered: %v)", name, Names())
	}
	return s, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered backends in Names order.
func All() []Selector {
	var out []Selector
	for _, name := range Names() {
		out = append(out, registry[name])
	}
	return out
}

// FprintList writes the registered backends and their configuration knobs
// — the rendition behind `-selector list` in cmd/experiments and
// cmd/specsim.
func FprintList(w io.Writer) {
	fmt.Fprintln(w, "registered region-selection backends:")
	for _, s := range All() {
		name := s.Name()
		if name == DefaultName {
			name += " (default)"
		}
		fmt.Fprintf(w, "\n  %s\n", name)
		for _, k := range s.Knobs() {
			fmt.Fprintf(w, "    %-24s default %-6s %s\n", k.Name, k.Default, k.Doc)
		}
	}
}

// validate rejects degenerate inputs shared by every backend.
func validate(slices []simpoint.Slice, cfg Config) error {
	if len(slices) == 0 {
		return fmt.Errorf("selector: no slices")
	}
	if cfg.SliceLen == 0 {
		return fmt.Errorf("selector: zero slice length")
	}
	return nil
}
