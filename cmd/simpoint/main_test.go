package main

import (
	"context"

	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("missing -bench accepted")
	}
	if err := run(context.Background(), []string{"-bench", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(context.Background(), []string{"-bench", "505.mcf_r", "-scale", "nope"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "omn")
	err := run(context.Background(), []string{"-bench", "omnetpp_r", "-scale", "small",
		"-percentile", "0.9", "-o", prefix})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		prefix + ".simpoints", prefix + ".weights",
		prefix + ".p90.simpoints", prefix + ".p90.weights",
	} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
}

func TestRunWeightedMode(t *testing.T) {
	if err := run(context.Background(), []string{"-bench", "omnetpp_r", "-scale", "small", "-weighted"}); err != nil {
		t.Fatal(err)
	}
}
