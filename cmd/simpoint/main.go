// Command simpoint runs the SimPoint pipeline for one benchmark and writes
// the classic SimPoint output files: <prefix>.simpoints (slice index per
// point) and <prefix>.weights (weight per point), plus a human-readable
// summary.
//
// Usage:
//
//	simpoint -bench 623.xalancbmk_s [-scale medium] [-maxk 35]
//	         [-percentile 0.9] [-o out/xalancbmk_s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"specsampling/internal/core"
	"specsampling/internal/simpoint"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

func main() {
	// Root context: SIGINT aborts the analysis cleanly instead of killing
	// the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simpoint:", err)
		stop()
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("simpoint", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name (e.g. 623.xalancbmk_s)")
	scaleName := fs.String("scale", "medium", "workload scale: full, medium or small")
	maxK := fs.Int("maxk", 35, "maximum number of clusters (the paper's MaxK)")
	percentile := fs.Float64("percentile", 0, "also emit reduced points covering this cumulative weight (e.g. 0.9); 0 disables")
	weighted := fs.Bool("weighted", false, "weight slices by instruction count (variable-length-interval clustering)")
	out := fs.String("o", "", "output file prefix; empty prints the summary only")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench == "" {
		return fmt.Errorf("missing -bench")
	}
	spec, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(scale)
	cfg.SimPoint.MaxK = *maxK
	an, err := core.Analyze(ctx, spec, cfg)
	if err != nil {
		return err
	}
	res := an.Result
	if *weighted {
		spCfg := simpoint.DefaultConfig(scale.SliceLen)
		spCfg.MaxK = *maxK
		res, err = simpoint.ClusterWeighted(an.Prog.Name, an.Slices, an.TotalInstrs, spCfg)
		if err != nil {
			return err
		}
	}

	fmt.Printf("benchmark:        %s\n", spec.Name)
	fmt.Printf("scale:            %s (slice %d instrs, MaxK %d)\n", scale.Name, cfg.Scale.SliceLen, *maxK)
	fmt.Printf("whole run:        %d instructions, %d slices\n", an.TotalInstrs, res.NumSlices)
	fmt.Printf("simulation points: %d (sampled %d instructions, %.0fx reduction)\n",
		res.NumPoints(), res.SampledInstrs(),
		float64(an.TotalInstrs)/float64(res.SampledInstrs()))

	t := textplot.NewTable("Point", "Slice", "Start instr", "Length", "Weight")
	for i, pt := range res.Points {
		t.AddRowf(i, pt.SliceIndex, pt.Start.Instrs, pt.Len, pt.Weight)
	}
	fmt.Print(t.String())

	if *out != "" {
		if err := res.SaveFiles(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s.simpoints and %s.weights\n", *out, *out)
	}

	if *percentile > 0 {
		red, err := res.Reduce(*percentile)
		if err != nil {
			return err
		}
		fmt.Printf("%.0f%%-percentile points: %d (sampled %d instructions)\n",
			*percentile*100, red.NumPoints(), red.SampledInstrs())
		if *out != "" {
			prefix := fmt.Sprintf("%s.p%02.0f", *out, *percentile*100)
			if err := red.SaveFiles(prefix); err != nil {
				return err
			}
			fmt.Printf("wrote %s.simpoints and %s.weights\n", prefix, prefix)
		}
	}
	return nil
}
