// Command specbench drives the repository's benchmarks and its performance
// trajectory (DESIGN.md §10). The benchmark sets live in internal/perf
// (perf.Targets) — the one list benchsmoke, record and diff all share.
//
// Usage:
//
//	specbench list                          # show the benchmark sets
//	specbench smoke                         # run everything once (bit-rot gate)
//	specbench record [-benchtime 2x] [-count 1] [-out BENCH_<host>.json]
//	specbench diff   [-benchtime 2x] [-count 1] [-baseline <file>] [-skip-missing]
//
// record writes a schema-versioned BENCH_<host-class>.json snapshot of the
// Record-marked sets; diff re-runs them and compares against the committed
// snapshot with noise-tolerant thresholds, exiting non-zero on regression.
// With -skip-missing (what `make benchdiff` uses), a host class without a
// committed baseline passes trivially, so fresh clones and new machines are
// not broken by a gate they have no history for.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"

	"specsampling/internal/perf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "specbench:", err)
		os.Exit(1)
	}
}

// errRegression makes the regression exit path distinguishable from tool
// failures without an os.Exit scattered mid-logic.
var errRegression = fmt.Errorf("performance regression against committed baseline")

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: specbench <list|smoke|record|diff> [flags]")
	}
	switch args[0] {
	case "list":
		return list()
	case "smoke":
		return smoke()
	case "record":
		return record(args[1:])
	case "diff":
		return diff(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want list, smoke, record or diff)", args[0])
	}
}

func list() error {
	for _, t := range perf.Targets() {
		kind := "smoke"
		if t.Record {
			kind = "record+smoke"
		}
		fmt.Printf("%-12s %-16s %-13s -bench '%s'\n", t.Name, t.Pkg, kind, t.Pattern)
	}
	fmt.Printf("\nhost class: %s (snapshot file %s)\n", perf.HostClass(), perf.Filename())
	return nil
}

// goTestBench runs one benchmark set and returns its combined output.
// Output is also streamed to w (pass io.Discard to keep it quiet).
func goTestBench(t perf.Target, benchtime string, count int, w io.Writer) ([]byte, error) {
	if t.Benchtime != "" {
		benchtime = t.Benchtime
	}
	args := []string{"test", "-run", "^$", "-bench", t.Pattern,
		"-benchtime", benchtime, "-benchmem"}
	if count > 1 {
		args = append(args, "-count", fmt.Sprint(count))
	}
	args = append(args, t.Pkg)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(&buf, w)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return buf.Bytes(), fmt.Errorf("benchmark set %q: %w", t.Name, err)
	}
	return buf.Bytes(), nil
}

// smoke runs every set once — no timing fidelity, just "does every
// benchmark still compile and complete".
func smoke() error {
	for _, t := range perf.Targets() {
		fmt.Printf("== %s (%s -bench '%s')\n", t.Name, t.Pkg, t.Pattern)
		if _, err := goTestBench(t, "1x", 1, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// measure runs the Record-marked sets and returns the parsed snapshot.
func measure(benchtime string, count int) (*perf.Snapshot, error) {
	snap := perf.New()
	for _, t := range perf.Targets() {
		if !t.Record {
			continue
		}
		bt := benchtime
		if t.Benchtime != "" {
			bt = t.Benchtime
		}
		fmt.Fprintf(os.Stderr, "specbench: running %s (%s -bench '%s', -benchtime %s)\n",
			t.Name, t.Pkg, t.Pattern, bt)
		out, err := goTestBench(t, benchtime, count, io.Discard)
		if err != nil {
			return nil, err
		}
		parsed, err := perf.ParseBench(bytes.NewReader(out))
		if err != nil {
			return nil, err
		}
		for name, m := range parsed {
			snap.Benchmarks[name] = m
		}
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark results parsed — did the patterns match anything?")
	}
	return snap, nil
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	benchtime := fs.String("benchtime", "2x", "benchtime per benchmark (e.g. 2x, 100ms)")
	count := fs.Int("count", 3, "repetitions per benchmark (fastest run wins)")
	out := fs.String("out", perf.Filename(), "snapshot file to write")
	if err := fs.Parse(args); err != nil {
		return err
	}
	snap, err := measure(*benchtime, *count)
	if err != nil {
		return err
	}
	if err := snap.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, host class %s)\n", *out, len(snap.Benchmarks), snap.HostClass)
	return nil
}

func diff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	benchtime := fs.String("benchtime", "2x", "benchtime per benchmark")
	count := fs.Int("count", 3, "repetitions per benchmark (fastest run wins)")
	baseline := fs.String("baseline", perf.Filename(), "committed snapshot to compare against")
	skipMissing := fs.Bool("skip-missing", false, "exit 0 when no baseline exists for this host class")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base, err := perf.Load(*baseline)
	if err != nil {
		if os.IsNotExist(err) && *skipMissing {
			fmt.Printf("benchdiff: no baseline %s for host class %s — skipping (record one with `specbench record`)\n",
				*baseline, perf.HostClass())
			return nil
		}
		return err
	}
	if base.HostClass != perf.HostClass() {
		if *skipMissing {
			fmt.Printf("benchdiff: baseline %s is for host class %s, this host is %s — skipping\n",
				*baseline, base.HostClass, perf.HostClass())
			return nil
		}
		return fmt.Errorf("baseline host class %s does not match this host (%s)", base.HostClass, perf.HostClass())
	}

	cur, err := measure(*benchtime, *count)
	if err != nil {
		return err
	}
	th := perf.DefaultThresholds()
	deltas := perf.Compare(base, cur, th)
	regs := perf.Regressions(deltas)

	fmt.Printf("benchdiff vs %s (ns tolerance %+.0f%%, B/op %+.0f%%, allocs ±max(2, 2%%)):\n",
		*baseline, th.NsFrac*100, th.BytesFrac*100)
	for _, d := range deltas {
		if d.Metric != "ns/op" && !d.Regression {
			continue // keep the report focused: time always, memory only on failure
		}
		mark := "  "
		if d.Regression {
			mark = "✗ "
		} else if d.Metric == "ns/op" && d.Frac < -0.10 {
			mark = "✓ " // a real improvement worth seeing
		}
		fmt.Printf("%s%-28s %-10s %14.0f -> %14.0f  (%s)\n",
			mark, d.Benchmark, d.Metric, d.Base, d.Cur, pct(d.Frac))
	}
	if len(regs) > 0 {
		fmt.Printf("%d regression(s) beyond threshold\n", len(regs))
		return errRegression
	}
	fmt.Println("no regressions beyond threshold")
	return nil
}

func pct(f float64) string {
	if math.IsInf(f, 1) {
		return "new cost"
	}
	return fmt.Sprintf("%+.1f%%", f*100)
}
