package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specsampling/internal/cli"
)

func TestRunValidation(t *testing.T) {
	// Every mistyped value is a usage error: exit status 2, consistently.
	cases := [][]string{
		{"-scale", "nope"},
		{"-run", "fig99", "-scale", "small", "-bench", "520.omnetpp_r"},
		{"-run", "tableII", "-scale", "small", "-bench", "nope"},
		{"-selector", "nope", "-scale", "small"},
	}
	for _, args := range cases {
		err := run(context.Background(), args)
		if err == nil {
			t.Errorf("run(%v) accepted", args)
			continue
		}
		if !errors.Is(err, cli.ErrUsage) {
			t.Errorf("run(%v) = %v, want a usage error", args, err)
		}
	}
	// The selector error points at the discovery command.
	err := run(context.Background(), []string{"-selector", "nope", "-scale", "small"})
	if err == nil || !strings.Contains(err.Error(), "-selector list") {
		t.Errorf("selector error %q lacks the '-selector list' hint", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-run", "tableI", "-scale", "small", "-bench", "520.omnetpp_r"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-run", "fig6", "-scale", "small", "-bench", "520.omnetpp_r,557.xz_r"}); err != nil {
		t.Fatal(err)
	}
}

// TestExitCode regresses the SIGINT exit-status bug: cancellation must map
// to the distinct 130 (128+SIGINT), not a generic status — and certainly
// not 0. Usage mistakes exit 2, the shared convention of internal/cli.
func TestExitCode(t *testing.T) {
	if got := cli.ExitCode(context.Canceled); got != 130 {
		t.Errorf("ExitCode(Canceled) = %d, want 130", got)
	}
	wrapped := fmt.Errorf("interrupted by SIGINT: %w", context.Canceled)
	if got := cli.ExitCode(wrapped); got != 130 {
		t.Errorf("ExitCode(wrapped Canceled) = %d, want 130", got)
	}
	if got := cli.ExitCode(errors.New("boom")); got != 1 {
		t.Errorf("ExitCode(other) = %d, want 1", got)
	}
	if got := cli.ExitCode(run(context.Background(), []string{"-scale", "nope"})); got != 2 {
		t.Errorf("ExitCode(bad -scale) = %d, want 2", got)
	}
}

// TestRunWithCacheDir runs the same experiment twice through one cache
// directory: the first run populates the store, the second is served from
// it, and -no-cache still works against a populated directory.
func TestRunWithCacheDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-run", "tableII", "-scale", "small", "-bench", "505.mcf_r", "-cache-dir", dir}
	if err := run(context.Background(), args); err != nil {
		t.Fatalf("cold cached run: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir not populated (entries %v, err %v)", ents, err)
	}
	if err := run(context.Background(), args); err != nil {
		t.Fatalf("warm cached run: %v", err)
	}
	if err := run(context.Background(), append(args, "-no-cache")); err != nil {
		t.Fatalf("-no-cache run: %v", err)
	}
}
