package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(context.Background(), []string{"-scale", "nope"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run(context.Background(), []string{"-run", "fig99", "-scale", "small", "-bench", "520.omnetpp_r"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run(context.Background(), []string{"-run", "tableII", "-scale", "small", "-bench", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"-run", "tableI", "-scale", "small", "-bench", "520.omnetpp_r"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-run", "fig6", "-scale", "small", "-bench", "520.omnetpp_r,557.xz_r"}); err != nil {
		t.Fatal(err)
	}
}

// TestExitCode regresses the SIGINT exit-status bug: cancellation must map
// to the distinct 130 (128+SIGINT), not a generic status — and certainly
// not 0.
func TestExitCode(t *testing.T) {
	if got := exitCode(context.Canceled); got != 130 {
		t.Errorf("exitCode(Canceled) = %d, want 130", got)
	}
	wrapped := fmt.Errorf("interrupted by SIGINT: %w", context.Canceled)
	if got := exitCode(wrapped); got != 130 {
		t.Errorf("exitCode(wrapped Canceled) = %d, want 130", got)
	}
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Errorf("exitCode(other) = %d, want 1", got)
	}
}

// TestRunWithCacheDir runs the same experiment twice through one cache
// directory: the first run populates the store, the second is served from
// it, and -no-cache still works against a populated directory.
func TestRunWithCacheDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-run", "tableII", "-scale", "small", "-bench", "505.mcf_r", "-cache-dir", dir}
	if err := run(context.Background(), args); err != nil {
		t.Fatalf("cold cached run: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir not populated (entries %v, err %v)", ents, err)
	}
	if err := run(context.Background(), args); err != nil {
		t.Fatalf("warm cached run: %v", err)
	}
	if err := run(context.Background(), append(args, "-no-cache")); err != nil {
		t.Fatalf("-no-cache run: %v", err)
	}
}
