package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-scale", "nope"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-run", "fig99", "-scale", "small", "-bench", "520.omnetpp_r"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-run", "tableII", "-scale", "small", "-bench", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "tableI", "-scale", "small", "-bench", "520.omnetpp_r"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-run", "fig6", "-scale", "small", "-bench", "520.omnetpp_r,557.xz_r"}); err != nil {
		t.Fatal(err)
	}
}
