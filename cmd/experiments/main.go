// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                       # every table and figure
//	experiments -run fig8 -scale full          # one experiment at full scale
//	experiments -run tableII -bench 505.mcf_r,541.leela_r
//
// Scale "full" runs the complete suite at the fidelity used for
// EXPERIMENTS.md (minutes); "medium" (default) is a few times faster;
// "small" is for quick smoke runs.
//
// The suite pipeline is parallel: -workers (default: the machine's CPU
// count) bounds the fan-out of per-benchmark analyses, figure loops,
// clustering and replay. Every reported number is identical for any worker
// count — parallelism only changes wall-clock time.
//
// Persistence: -cache-dir DIR (default: env SPECSIM_CACHE) keeps the
// expensive pipeline artifacts — BBV profiles, SimPoint clusterings,
// whole-run replay profiles — in a crash-safe on-disk store, so repeated and
// interrupted runs reuse completed stages instead of recomputing them;
// -no-cache forces the store off. Cached results are byte-identical to
// recomputation.
//
// Observability: -trace FILE writes a JSONL span tree of the whole run
// (analyze → profile/cluster → replay), -progress narrates live progress to
// stderr, and -metrics dumps the pipeline counters on exit. All three are
// off by default and cost nothing when disabled. Ctrl-C cancels the run
// deterministically — in-flight benchmarks finish their current slice, the
// process reports "interrupted" on stderr and exits with status 130
// (128+SIGINT), and a later run with the same -cache-dir resumes from the
// completed stages. Mistyped flag values (unknown -run, -scale, -bench or
// -selector) are usage errors and exit with status 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"specsampling/internal/cli"
	"specsampling/internal/experiments"
	"specsampling/internal/obs"
	"specsampling/internal/selector"
	"specsampling/internal/store"
	"specsampling/internal/workload"
)

func main() {
	// The root context is minted here and nowhere else: SIGINT cancels it,
	// and every pipeline stage below sees the same cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if !errors.Is(err, flag.ErrHelp) && !cli.Reported(err) {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		stop()
		os.Exit(cli.ExitCode(err))
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	id := fs.String("run", "all", "experiment id: "+strings.Join(experiments.IDs(), ", ")+" or all")
	scaleName := fs.String("scale", "medium", "workload scale: full, medium or small (env SPECSIM_SCALE overrides)")
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: all 29)")
	workers := fs.Int("workers", runtime.NumCPU(),
		"worker goroutines for the suite pipeline: per-benchmark analyses, figure loops, "+
			"clustering and pinball replay all fan out across this budget "+
			"(results are identical for any value; <= 0 means GOMAXPROCS)")
	jsonPath := fs.String("json", "", "also write structured results as JSON to this file")
	sel := fs.String("selector", "",
		"region-selection backend (default simpoint); 'list' prints the registered backends and their knobs")
	repeats := fs.Int("repeats", 0,
		"shoot-out repeated-subsampling runs behind each confidence interval (default 5, min 2)")
	cacheFlags := store.BindFlags(fs)
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.ParseError(err)
	}
	if *sel == "list" {
		selector.FprintList(os.Stdout)
		return nil
	}
	// Validate the value-carrying flags up front, so a typo is a usage
	// error (exit 2) with a pointer at the discovery command, not a runtime
	// failure from deep inside the pipeline.
	if _, err := selector.ByName(*sel); err != nil {
		return cli.SelectorHint("experiments", err)
	}
	if *id != "all" {
		known := false
		for _, each := range experiments.IDs() {
			known = known || each == *id
		}
		if !known {
			return cli.Usagef("unknown experiment %q (want one of %s or all)", *id, strings.Join(experiments.IDs(), ", "))
		}
	}
	st, err := cacheFlags.Open()
	if err != nil {
		return err
	}
	shutdown, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := shutdown(); cerr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", cerr)
		}
	}()
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	scale = workload.ScaleFromEnv(scale)

	var names []string
	if *benches != "" {
		for _, n := range strings.Split(*benches, ",") {
			if n = strings.TrimSpace(n); n != "" {
				if _, err := workload.ByName(n); err != nil {
					return cli.Usagef("%v (run 'specsim list' to see the suite)", err)
				}
				names = append(names, n)
			}
		}
	}
	runner, err := experiments.New(experiments.Options{
		Scale:           scale,
		Benchmarks:      names,
		Workers:         *workers,
		Out:             os.Stdout,
		Store:           st,
		Selector:        *sel,
		ShootoutRepeats: *repeats,
	})
	if err != nil {
		return err
	}
	// interrupted maps a SIGINT cancellation to a clear, resumability-aware
	// error (main turns it into exit status 130 via exitCode).
	interrupted := func(err error) error {
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if st != nil {
			return fmt.Errorf("interrupted by SIGINT; completed stages are cached in %s — rerun with the same -cache-dir to resume: %w", st.Dir(), err)
		}
		return fmt.Errorf("interrupted by SIGINT (rerun with -cache-dir to make interrupted runs resumable): %w", err)
	}

	fmt.Printf("reproducing %s: %s\n", *id, runner.Describe())
	start := time.Now()
	if *jsonPath == "" {
		if err := runner.Run(ctx, *id); err != nil {
			return interrupted(err)
		}
	} else {
		report := experiments.NewReport()
		if err := runner.RunRecorded(ctx, *id, report); err != nil {
			return interrupted(err)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		var benchNames []string
		for _, s := range runner.Benchmarks() {
			benchNames = append(benchNames, s.Name)
		}
		if err := report.WriteJSON(f, scale.Name, benchNames); err != nil {
			_ = f.Close() // the encode error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, report.Len())
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
