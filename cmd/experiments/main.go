// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                       # every table and figure
//	experiments -run fig8 -scale full          # one experiment at full scale
//	experiments -run tableII -bench 505.mcf_r,541.leela_r
//
// Scale "full" runs the complete suite at the fidelity used for
// EXPERIMENTS.md (minutes); "medium" (default) is a few times faster;
// "small" is for quick smoke runs.
//
// The suite pipeline is parallel: -workers (default: the machine's CPU
// count) bounds the fan-out of per-benchmark analyses, figure loops,
// clustering and replay. Every reported number is identical for any worker
// count — parallelism only changes wall-clock time.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"specsampling/internal/experiments"
	"specsampling/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	id := fs.String("run", "all", "experiment id: "+strings.Join(experiments.IDs(), ", ")+" or all")
	scaleName := fs.String("scale", "medium", "workload scale: full, medium or small (env SPECSIM_SCALE overrides)")
	benches := fs.String("bench", "", "comma-separated benchmark subset (default: all 29)")
	workers := fs.Int("workers", runtime.NumCPU(),
		"worker goroutines for the suite pipeline: per-benchmark analyses, figure loops, "+
			"clustering and pinball replay all fan out across this budget "+
			"(results are identical for any value; <= 0 means GOMAXPROCS)")
	jsonPath := fs.String("json", "", "also write structured results as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	scale = workload.ScaleFromEnv(scale)

	var names []string
	if *benches != "" {
		for _, n := range strings.Split(*benches, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	runner, err := experiments.New(experiments.Options{
		Scale:      scale,
		Benchmarks: names,
		Workers:    *workers,
		Out:        os.Stdout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("reproducing %s at scale %q over %d benchmarks\n",
		*id, scale.Name, len(runner.Benchmarks()))
	start := time.Now()
	if *jsonPath == "" {
		if err := runner.Run(*id); err != nil {
			return err
		}
	} else {
		report := experiments.NewReport()
		if err := runner.RunRecorded(*id, report); err != nil {
			return err
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		var benchNames []string
		for _, s := range runner.Benchmarks() {
			benchNames = append(benchNames, s.Name)
		}
		if err := report.WriteJSON(f, scale.Name, benchNames); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, report.Len())
	}
	fmt.Printf("\ncompleted in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
