// Command specsim is the suite front-end: it lists the synthetic SPEC
// CPU2017 benchmarks and runs one under the standard Pintools, printing
// instruction counts, the ldstmix distribution and allcache miss rates.
//
// Usage:
//
//	specsim list
//	specsim run -bench 505.mcf_r [-scale medium] [-instrs N]
//	specsim phases -bench 503.bwaves_r [-scale medium] [-width 100] [-workers N] [-selector NAME]
//	specsim phases -selector list
//
// The run and phases subcommands accept the shared observability flags:
// -trace FILE (JSONL span trace), -progress (live narration on stderr) and
// -metrics (counter dump on exit). The phases subcommand additionally
// accepts -cache-dir DIR / -no-cache (default: env SPECSIM_CACHE): the
// benchmark's BBV profile and SimPoint clustering are served from the
// persistent artifact store when present and stored for the next run
// otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"specsampling/internal/cache"
	"specsampling/internal/cli"
	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/pintool"
	"specsampling/internal/textplot"
	"specsampling/internal/workload"
)

func main() {
	// Root context: SIGINT aborts the phases analysis cleanly; the store
	// keeps every stage completed before the interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if !errors.Is(err, flag.ErrHelp) && !cli.Reported(err) {
			fmt.Fprintln(os.Stderr, "specsim:", err)
		}
		stop()
		os.Exit(cli.ExitCode(err))
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		return cli.Usagef("usage: specsim <list|run|phases> [flags]")
	}
	switch args[0] {
	case "list":
		return list()
	case "run":
		return runBench(args[1:])
	case "phases":
		return phasesCmd(ctx, args[1:])
	default:
		return cli.Usagef("unknown subcommand %q (want list, run or phases)", args[0])
	}
}

func list() error {
	t := textplot.NewTable("Benchmark", "Class", "Phases", "90pct", "Whole instrs (full scale)")
	for _, s := range workload.Suite() {
		t.AddRowf(s.Name, s.Class.String(), s.Phases, s.Phases90, s.WholeInstrs)
	}
	fmt.Print(t.String())
	return nil
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name (e.g. 505.mcf_r)")
	scaleName := fs.String("scale", "medium", "workload scale: full, medium or small")
	instrs := fs.Uint64("instrs", 0, "stop after N instructions (0 = run to completion)")
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.ParseError(err)
	}
	if *bench == "" {
		return cli.Usagef("missing -bench (run 'specsim list' to see the suite)")
	}
	spec, err := workload.ByName(*bench)
	if err != nil {
		return cli.Usagef("%v (run 'specsim list' to see the suite)", err)
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	shutdown, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := shutdown(); cerr != nil {
			fmt.Fprintln(os.Stderr, "specsim:", cerr)
		}
	}()
	prog, err := spec.Build(scale)
	if err != nil {
		return err
	}

	hier, err := cache.NewHierarchy(cache.ScaledHierarchy(cache.TableIConfig(), scale.CacheDivs))
	if err != nil {
		return err
	}
	engine := pin.NewEngine(prog)
	ic := pintool.NewInsCount()
	mix := pintool.NewLdStMix()
	ac := pintool.NewAllCache(hier)
	for _, tool := range []pin.Tool{ic, mix, ac} {
		if err := engine.Attach(tool); err != nil {
			return err
		}
	}
	var n uint64
	if *instrs > 0 {
		n = engine.Run(*instrs)
	} else {
		n = engine.RunToEnd()
	}

	fmt.Printf("benchmark:    %s (%s)\n", spec.Name, spec.Class)
	fmt.Printf("scale:        %s\n", scale.Name)
	fmt.Printf("instructions: %d (%d basic blocks)\n", n, ic.Blocks)
	fr := mix.Fractions()
	fmt.Printf("ldstmix:      NO_MEM %.2f%%  MEM_R %.2f%%  MEM_W %.2f%%  MEM_RW %.2f%%\n",
		fr[0]*100, fr[1]*100, fr[2]*100, fr[3]*100)
	l1d, l2, l3 := hier.MissRates()
	fmt.Printf("allcache:     L1I %.2f%%  L1D %.2f%%  L2 %.2f%%  L3 %.2f%% miss\n",
		hier.L1I.Stats().MissRate()*100, l1d*100, l2*100, l3*100)
	return nil
}
