package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"specsampling/internal/bbv"
	"specsampling/internal/cli"
	"specsampling/internal/core"
	"specsampling/internal/obs"
	"specsampling/internal/pin"
	"specsampling/internal/pinball"
	"specsampling/internal/selector"
	"specsampling/internal/store"
	"specsampling/internal/textplot"
	"specsampling/internal/timing"
	"specsampling/internal/workload"
)

// phasesCmd prints a benchmark's time-varying phase behaviour: a timeline of
// the execution with each slice labelled by its cluster, plus per-phase
// statistics — the view Wu et al. (IISWC 2018) correlate with simulation
// points, as discussed in the paper's related work.
func phasesCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("phases", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name")
	scaleName := fs.String("scale", "medium", "workload scale")
	width := fs.Int("width", 100, "timeline width in characters")
	workers := fs.Int("workers", runtime.NumCPU(),
		"worker goroutines for clustering and replay (results are identical for any value; <= 0 means GOMAXPROCS)")
	sel := fs.String("selector", "",
		"region-selection backend (default simpoint); 'list' prints the registered backends and their knobs")
	cacheFlags := store.BindFlags(fs)
	obsFlags := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.ParseError(err)
	}
	if *sel == "list" {
		selector.FprintList(os.Stdout)
		return nil
	}
	if *bench == "" {
		return cli.Usagef("missing -bench (run 'specsim list' to see the suite)")
	}
	if _, err := selector.ByName(*sel); err != nil {
		return cli.SelectorHint("specsim phases", err)
	}
	spec, err := workload.ByName(*bench)
	if err != nil {
		return cli.Usagef("%v (run 'specsim list' to see the suite)", err)
	}
	scale, err := workload.ScaleByName(*scaleName)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	st, err := cacheFlags.Open()
	if err != nil {
		return err
	}
	shutdown, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := shutdown(); cerr != nil {
			fmt.Fprintln(os.Stderr, "specsim:", cerr)
		}
	}()
	acfg := core.DefaultConfig(scale)
	acfg.Workers = *workers
	acfg.Selector = *sel
	an, err := core.AnalyzeStored(ctx, spec, acfg, st)
	if err != nil {
		return err
	}

	// Re-assign every slice to its nearest simulation-point cluster by
	// projecting its BBV the same way the clustering did.
	proj, err := bbv.NewProjector(an.Prog.NumBlocks(), 15, 2017)
	if err != nil {
		return err
	}
	centroids := make([][]float64, len(an.Result.Points))
	for i, pt := range an.Result.Points {
		v := append([]float64(nil), an.Slices[pt.SliceIndex].BBV...)
		bbv.NormalizeL1(v)
		centroids[i] = proj.Project(v)
	}
	assign := make([]int, len(an.Slices))
	for i, s := range an.Slices {
		v := append([]float64(nil), s.BBV...)
		bbv.NormalizeL1(v)
		p := proj.Project(v)
		best, bestD := 0, math.MaxFloat64
		for c, cent := range centroids {
			if d := bbv.SqDist(p, cent); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}

	// Timeline: compress slices into width buckets, majority cluster wins.
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghij"
	if *width > len(an.Slices) {
		*width = len(an.Slices)
	}
	line := make([]byte, *width)
	for b := 0; b < *width; b++ {
		lo := b * len(an.Slices) / *width
		hi := (b + 1) * len(an.Slices) / *width
		// Count per cluster index (not a map: ties must break towards the
		// lowest cluster so the timeline is identical on every run).
		counts := make([]int, len(centroids))
		for i := lo; i < hi; i++ {
			counts[assign[i]]++
		}
		bestC, bestN := 0, -1
		for c, n := range counts {
			if n > bestN {
				bestC, bestN = c, n
			}
		}
		line[b] = alphabet[bestC%len(alphabet)]
	}

	fmt.Printf("%s at scale %s: %d slices, %d simulation points\n\n",
		spec.Name, scale.Name, len(an.Slices), an.Result.NumPoints())
	fmt.Printf("timeline (execution left to right, letter = phase):\n%s\n\n", line)

	// Per-point stats: weight + CPI of the representative region. The
	// regions are independent, so replay them through the sharded parallel
	// path; the table is assembled in point order afterwards.
	cfg := timing.ScaledConfig(timing.TableIIIConfig(), scale.CacheDivs)
	pbs := make([]*pinball.Pinball, len(an.Result.Points))
	cores := make([]*timing.Core, len(an.Result.Points))
	for i, pt := range an.Result.Points {
		pbs[i] = pinball.NewRegional(an.Prog.Name, scale.Name, i, pt.Start, pt.Len, pt.Weight)
		if cores[i], err = timing.NewCore(cfg); err != nil {
			return err
		}
	}
	results := pinball.ReplayAll(ctx, an.Prog, pbs, *workers, func(i int) []pin.Tool {
		return []pin.Tool{cores[i]}
	})
	t := textplot.NewTable("Phase", "Weight", "Slice", "CPI", "Share")
	for i, pt := range an.Result.Points {
		if results[i].Err != nil {
			return results[i].Err
		}
		t.AddRow(string(alphabet[i%len(alphabet)]),
			fmt.Sprintf("%.4f", pt.Weight),
			fmt.Sprint(pt.SliceIndex),
			fmt.Sprintf("%.3f", cores[i].CPI()),
			textplot.Bar(pt.Weight, 1, 30))
	}
	fmt.Print(t.String())
	return nil
}
