package main

import (
	"context"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run(context.Background(), []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(context.Background(), []string{"run"}); err == nil {
		t.Error("run without -bench accepted")
	}
	if err := run(context.Background(), []string{"run", "-bench", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(context.Background(), []string{"run", "-bench", "505.mcf_r", "-scale", "huge"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestList(t *testing.T) {
	if err := run(context.Background(), []string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchBounded(t *testing.T) {
	if err := run(context.Background(), []string{"run", "-bench", "omnetpp_r", "-scale", "small", "-instrs", "20000"}); err != nil {
		t.Fatal(err)
	}
}

func TestPhasesValidation(t *testing.T) {
	if err := run(context.Background(), []string{"phases"}); err == nil {
		t.Error("phases without -bench accepted")
	}
	if err := run(context.Background(), []string{"phases", "-bench", "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run(context.Background(), []string{"phases", "-bench", "505.mcf_r", "-scale", "nope"}); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestPhasesTimeline(t *testing.T) {
	if err := run(context.Background(), []string{"phases", "-bench", "omnetpp_r", "-scale", "small", "-width", "40"}); err != nil {
		t.Fatal(err)
	}
}
