// Command speclint runs the reproduction's project-specific static
// analyzers (see internal/analysis) over the module and exits non-zero on
// findings.
//
// Usage:
//
//	speclint [-analyzers detmap,spanleak,...] [-json] [-time] [packages]
//
// Packages are directories ("./internal/kmeans") or recursive patterns
// ("./..."); the default is "./..." from the working directory. Diagnostics
// print as "file:line:col: analyzer: message", or as a JSON array with
// -json. Findings can be suppressed with a reasoned
// "//lint:ignore <analyzer> <reason>" comment on the flagged line or the
// line above it.
//
// Exit status follows the internal/cli convention: 0 clean, 1 findings (or
// a load failure), 2 usage error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"specsampling/internal/analysis"
	"specsampling/internal/cli"
)

// errFindings marks "the analyzers found something": the diagnostics and
// summary are already printed, main only needs the exit status 1.
var errFindings = errors.New("findings reported")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil && !cli.Reported(err) && !errors.Is(err, flag.ErrHelp) && !errors.Is(err, errFindings) {
		fmt.Fprintln(os.Stderr, "speclint:", err)
	}
	os.Exit(cli.ExitCode(err))
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("speclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "",
		"comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array on stdout")
	timings := fs.Bool("time", false, "print per-analyzer wall time to stderr")
	if err := fs.Parse(args); err != nil {
		return cli.ParseError(err)
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *names != "" {
		analyzers = analysis.ByName(*names)
		if analyzers == nil {
			return cli.Usagef("unknown analyzer in %q (available: %s)",
				*names, strings.Join(analysis.Names(), ", "))
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	diags, elapsed := analysis.RunTimed(loader.Fset(), pkgs, loader.ModulePath(), analyzers)
	if *timings {
		for _, t := range elapsed {
			fmt.Fprintf(stderr, "speclint: %-12s %8s\n", t.Name, t.Elapsed.Round(time.Millisecond))
		}
	}
	wd, _ := os.Getwd()
	for i := range diags {
		if rel, err := filepath.Rel(wd, diags[i].Pos.Filename); err == nil && len(rel) < len(diags[i].Pos.Filename) {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "speclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return errFindings
	}
	return nil
}

// jsonFinding is the machine-readable diagnostic shape for -json.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as an indented JSON array ([] when clean, so
// consumers always get valid JSON).
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	findings := make([]jsonFinding, len(diags))
	for i, d := range diags {
		findings[i] = jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
