// Command speclint runs the reproduction's project-specific static
// analyzers (see internal/analysis) over the module and exits non-zero on
// findings.
//
// Usage:
//
//	speclint [-analyzers detmap,spanleak,...] [packages]
//
// Packages are directories ("./internal/kmeans") or recursive patterns
// ("./..."); the default is "./..." from the working directory. Diagnostics
// print as "file:line:col: analyzer: message". Findings can be suppressed
// with a reasoned "//lint:ignore <analyzer> <reason>" comment on the
// flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"specsampling/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("speclint", flag.ContinueOnError)
	names := fs.String("analyzers", "",
		"comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *names != "" {
		analyzers = analysis.ByName(*names)
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "speclint: unknown analyzer in %q\n", *names)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader("")
	if err != nil {
		fmt.Fprintln(os.Stderr, "speclint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "speclint:", err)
		return 2
	}
	diags := analysis.Run(loader.Fset(), pkgs, loader.ModulePath(), analyzers)
	wd, _ := os.Getwd()
	for _, d := range diags {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "speclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
